//! Executable claims: the headline experiment *shapes* from EXPERIMENTS.md,
//! asserted in test form so regressions in any crate surface here.

use rsti_bench::{geomean_pct, measure};
use rsti_core::Mechanism;

/// Figure 9's ordering claim, on a pointer-heavy and a numeric proxy.
#[test]
fn overhead_ordering_and_profile() {
    let heavy = rsti_workloads::spec2006()
        .into_iter()
        .find(|w| w.name == "omnetpp")
        .unwrap();
    let light = rsti_workloads::spec2006()
        .into_iter()
        .find(|w| w.name == "lbm")
        .unwrap();
    let h = measure(&heavy).expect("omnetpp proxy runs cleanly");
    let l = measure(&light).expect("lbm proxy runs cleanly");
    // [0]=STWC, [1]=STC, [2]=STL
    assert!(h.overhead_pct[1] <= h.overhead_pct[0] + 1e-9, "{h:?}");
    assert!(h.overhead_pct[0] <= h.overhead_pct[2] + 1e-9, "{h:?}");
    assert!(h.overhead_pct[0] > 10.0, "omnetpp is an outlier: {h:?}");
    assert!(l.overhead_pct[2] < 1.0, "lbm is pointer-free: {l:?}");
    assert!(l.instrumented_sites < h.instrumented_sites);
}

/// The geomean aggregation used throughout Figure 9 is the ratio geomean.
#[test]
fn geomean_is_ratio_based() {
    // 0% and 21% → sqrt(1.0 * 1.21) - 1 = 10%
    assert!((geomean_pct([0.0, 21.0]) - 10.0).abs() < 1e-9);
}

/// Table 3's order-invariants over every proxy in every suite.
#[test]
fn equivalence_invariants_over_all_proxies() {
    for w in rsti_workloads::all_workloads() {
        let m = w.module();
        let s = rsti_core::equivalence_stats(&m);
        assert_eq!(s.invariant_violation(), None, "{}: {s:?}", w.name);
    }
}

/// §6.2.2's rarity claim: lost-type double-pointer sites are a small
/// fraction of all double-pointer sites across the SPEC2006 proxies.
#[test]
fn pointer_to_pointer_lost_type_is_rare() {
    let mut total = 0;
    let mut lost = 0;
    for w in rsti_workloads::spec2006() {
        let m = w.module();
        let a = rsti_core::analyze(&m, Mechanism::Stwc);
        let plan = rsti_core::plan_pp(&m, &a);
        total += plan.census.total_sites;
        lost += plan.census.lost_type_sites;
    }
    assert!(total > 0, "the proxies do exercise double pointers");
    assert!(
        lost * 4 <= total,
        "lost-type sites must be the minority: {lost}/{total}"
    );
}

/// §7's replay-surface ordering over the generator corpus.
#[test]
fn replay_surface_shrinks_with_stricter_mechanisms() {
    for seed in 0..10u64 {
        let src = rsti_workloads::generate(seed, rsti_workloads::GenConfig::default());
        let m = rsti_frontend::compile(&src, "gen").unwrap();
        let surf = |mech| {
            rsti_core::replay_surface(&rsti_core::analyze(&m, mech), 4).substitutable_pairs
        };
        let (stl, stwc, parts) = (
            surf(Mechanism::Stl),
            surf(Mechanism::Stwc),
            surf(Mechanism::Parts),
        );
        assert!(stl <= stwc, "seed {seed}: stl={stl} stwc={stwc}");
        assert!(stwc <= parts, "seed {seed}: stwc={stwc} parts={parts}");
    }
}

/// The per-benchmark instrumentation counts drive overhead: more sites,
/// more cycles (the §6.3.2 correlation, in miniature).
#[test]
fn sites_correlate_with_overhead_in_miniature() {
    let names = ["lbm", "hmmer", "omnetpp"];
    let mut rows = Vec::new();
    for name in names {
        let w = rsti_workloads::spec2006()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        rows.push(measure(&w).expect("proxy runs cleanly"));
    }
    // lbm < hmmer < omnetpp in both sites and overhead.
    assert!(rows[0].instrumented_sites <= rows[1].instrumented_sites);
    assert!(rows[1].instrumented_sites <= rows[2].instrumented_sites);
    assert!(rows[0].overhead_pct[0] <= rows[1].overhead_pct[0] + 1e-9);
    assert!(rows[1].overhead_pct[0] <= rows[2].overhead_pct[0] + 1e-9);
}
