//! Security-focused integration tests: the threat model end to end —
//! forgery bounds, key isolation, replay limits, and the full Table 1/2
//! matrices as executable claims.

use rsti_core::Mechanism;
use rsti_vm::{Image, RunStop, Status, Trap, Vm};

const VICTIM: &str = r#"
    void benign() { }
    void gadget() { print_str("gadget"); }
    struct obj { long pad; void (*fp)(); };
    struct obj* g_obj;
    void fire() { g_obj->fp(); }
    int main() {
        g_obj = (struct obj*) malloc(sizeof(struct obj));
        g_obj->fp = benign;
        fire();
        return 0;
    }
"#;

fn instrumented_image(mech: Mechanism) -> Image {
    let m = rsti_frontend::compile(VICTIM, "victim").unwrap();
    Image::from_instrumented(&rsti_core::instrument(&m, mech))
}

/// An attacker who guesses PAC values succeeds with probability ≈ 2^-8
/// (8 PAC bits under TBI). Empirically verify the forgery bound: over 64
/// guess attempts, a large majority must fail.
#[test]
fn pac_forgery_is_probabilistically_bounded() {
    let img = instrumented_image(Mechanism::Stwc);
    let mut hits = 0;
    let attempts = 64;
    for guess in 0..attempts {
        let mut vm = Vm::new(&img);
        assert_eq!(vm.run_to_function("fire"), RunStop::Entered);
        let obj = vm.heap_live()[0].0;
        let gadget = vm.func_addr("gadget").unwrap();
        // Forge: plant the gadget address with a guessed PAC in bits 48..56.
        let forged = gadget | (guess << 48);
        vm.attacker_write_u64(obj + 8, forged).unwrap();
        let r = vm.finish();
        if r.output.iter().any(|o| o == "gadget") {
            hits += 1;
        }
    }
    // Expected hits ≈ 64/256 < 1; allow a little slack for the keyed PRF.
    assert!(hits <= 3, "{hits}/{attempts} forgeries succeeded — PAC too weak");
}

/// PACs are bound to the process keys: a pointer signed under one key
/// bank replayed into a process with fresh keys fails.
#[test]
fn signed_pointers_do_not_transfer_across_key_banks() {
    let m = rsti_frontend::compile(VICTIM, "victim").unwrap();
    let prog = rsti_core::instrument(&m, Mechanism::Stwc);

    // Process 1: capture the signed fp value from memory.
    let img1 = Image::from_instrumented(&prog);
    let mut vm1 = Vm::new(&img1);
    assert_eq!(vm1.run_to_function("fire"), RunStop::Entered);
    let signed = {
        let obj = vm1.heap_live()[0].0;
        u64::from_le_bytes(vm1.attacker_read(obj + 8, 8).unwrap().try_into().unwrap())
    };
    assert_ne!(signed & 0x00FF_0000_0000_0000, 0, "pointer carries a PAC");

    // Process 2: fresh random keys; replay the captured value.
    let mut img2 = Image::from_instrumented(&prog);
    let mut rng = rsti_rng::Rng64::seed_from_u64(99);
    img2.keys = rsti_pac::PacKeys::random(&mut rng);
    let mut vm2 = Vm::new(&img2);
    assert_eq!(vm2.run_to_function("fire"), RunStop::Entered);
    let obj = vm2.heap_live()[0].0;
    vm2.attacker_write_u64(obj + 8, signed).unwrap();
    let r = vm2.finish();
    assert!(
        matches!(&r.status, Status::Trapped(t) if t.is_detection()),
        "cross-process replay must fail: {:?}",
        r.status
    );
}

/// Within one process, replaying the *same slot's own* signed value is a
/// no-op (idempotent corruption) — RSTI only promises intent, not
/// freshness at the same location.
#[test]
fn replaying_a_slots_own_value_is_benign() {
    let img = instrumented_image(Mechanism::Stl);
    let mut vm = Vm::new(&img);
    assert_eq!(vm.run_to_function("fire"), RunStop::Entered);
    let obj = vm.heap_live()[0].0;
    let bytes = vm.attacker_read(obj + 8, 8).unwrap();
    vm.attacker_write(obj + 8, &bytes).unwrap();
    let r = vm.finish();
    assert_eq!(r.status, Status::Exited(0), "{:?}", r.status);
}

/// Null-pointer planting: writing zero into a signed slot is caught (a
/// raw zero has no PAC; legitimate nulls are signed too).
#[test]
fn planted_null_is_detected() {
    let img = instrumented_image(Mechanism::Stwc);
    let mut vm = Vm::new(&img);
    assert_eq!(vm.run_to_function("fire"), RunStop::Entered);
    let obj = vm.heap_live()[0].0;
    vm.attacker_write_u64(obj + 8, 0).unwrap();
    let r = vm.finish();
    match &r.status {
        Status::Trapped(t) if t.is_detection() => {}
        // A zero PAC can collide with the true PAC of null (p = 2^-8);
        // with the fixed test keys it does not.
        other => panic!("expected detection, got {other:?}"),
    }
}

/// Partial overwrite: corrupting only the low bytes of a signed pointer
/// (changing the target while keeping the PAC) still fails, because the
/// PAC covers the address bits.
#[test]
fn partial_pointer_overwrite_is_detected() {
    let img = instrumented_image(Mechanism::Stwc);
    let mut vm = Vm::new(&img);
    assert_eq!(vm.run_to_function("fire"), RunStop::Entered);
    let obj = vm.heap_live()[0].0;
    let gadget = vm.func_addr("gadget").unwrap();
    // Overwrite only the low 6 bytes, preserving the PAC byte.
    vm.attacker_write(obj + 8, &gadget.to_le_bytes()[..6]).unwrap();
    let r = vm.finish();
    assert!(
        matches!(&r.status, Status::Trapped(t) if t.is_detection()),
        "{:?}",
        r.status
    );
}

/// The full Table 1 and Table 2 matrices hold as a single assertion each
/// (the fine-grained versions live in `rsti-attacks`' unit tests).
#[test]
fn table1_and_table2_matrices() {
    let scenarios = rsti_attacks::scenarios::all();
    let matrix = rsti_attacks::run_matrix(&scenarios);
    for row in &matrix {
        // Column 0 = no defense: all hijacked.
        assert_eq!(row.verdicts[0], rsti_attacks::Verdict::PayloadExecuted, "{}", row.id);
        // Columns 2..5 = STC/STWC/STL: all detected.
        for v in &row.verdicts[2..] {
            assert!(matches!(v, rsti_attacks::Verdict::Detected(_)), "{}: {v:?}", row.id);
        }
    }
    let cap = rsti_attacks::capability_matrix();
    // STL detects even same-RSTI-type substitution (its Table 2 column).
    let same = cap.iter().find(|(id, _)| id == "subst-same-rsti-type").unwrap();
    assert_eq!(same.1[4], rsti_attacks::ProbeOutcome::Detected);
}

/// The VM's DEP model: indirect calls to data addresses trap.
#[test]
fn dep_calls_into_data_trap() {
    let img = instrumented_image(Mechanism::Stwc);
    let mut vm = Vm::new(&img);
    assert_eq!(vm.run_to_function("fire"), RunStop::Entered);
    let obj = vm.heap_live()[0].0;
    // Point the callback at the heap itself ("injected code").
    vm.attacker_write_u64(obj + 8, obj).unwrap();
    let r = vm.finish();
    match &r.status {
        // Either the auth catches it (instrumented load) ...
        Status::Trapped(t) if t.is_detection() => {}
        // ... or, were it to slip through, the call itself must trap.
        Status::Trapped(Trap::CallNonFunction { .. }) => {}
        other => panic!("{other:?}"),
    }
}
