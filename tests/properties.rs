//! Property-based tests over the core invariants, with `proptest`.

use proptest::prelude::*;
use rsti_core::Mechanism;
use rsti_pac::{KeyId, PacUnit, Qarma64, VaConfig};
use rsti_vm::{Image, Vm};

proptest! {
    /// QARMA decryption inverts encryption for arbitrary blocks/tweaks/keys.
    #[test]
    fn qarma_roundtrip(key in any::<u128>(), block in any::<u64>(), tweak in any::<u64>()) {
        let q = Qarma64::new(key);
        prop_assert_eq!(q.decrypt(q.encrypt(block, tweak), tweak), block);
    }

    /// Distinct tweaks produce distinct ciphertexts (PRP under fixed key —
    /// collisions would mean modifier confusion).
    #[test]
    fn qarma_tweak_separation(block in any::<u64>(), t1 in any::<u64>(), t2 in any::<u64>()) {
        prop_assume!(t1 != t2);
        let q = Qarma64::new(0xFEED_FACE_CAFE_BEEF_0123_4567_89AB_CDEF);
        // A PRP with different tweaks *may* collide on one point, but for a
        // fixed block the chance is 2^-64; treat collision as failure.
        prop_assert_ne!(q.encrypt(block, t1), q.encrypt(block, t2));
    }

    /// sign→auth roundtrips for any canonical user pointer and modifier;
    /// auth under a different modifier fails (unless the 8-bit PACs
    /// collide, which we filter).
    #[test]
    fn pac_sign_auth_contract(
        addr in 0u64..0x0000_7FFF_FFFF_FFFF,
        m1 in any::<u64>(),
        m2 in any::<u64>(),
    ) {
        let mut u = PacUnit::for_tests();
        let signed = u.sign(KeyId::Da, addr, m1);
        prop_assert_eq!(u.auth(KeyId::Da, signed, m1).unwrap(), addr);
        if m1 != m2 {
            let p1 = u.compute_pac(KeyId::Da, addr, m1);
            let p2 = u.compute_pac(KeyId::Da, addr, m2);
            if p1 != p2 {
                prop_assert!(u.auth(KeyId::Da, signed, m2).is_err());
            }
        }
    }

    /// TBI tags never disturb PAC validity.
    #[test]
    fn tbi_tag_transparent_to_auth(addr in 0u64..0x0000_7FFF_FFFF_FFFF, tag in 1u8..=255, modifier in any::<u64>()) {
        let mut u = PacUnit::for_tests();
        let cfg = VaConfig::paper_default();
        let signed = u.sign(KeyId::Da, addr, modifier);
        let tagged = cfg.with_tbi_tag(signed, tag);
        let back = u.auth(KeyId::Da, tagged, modifier).unwrap();
        prop_assert_eq!(cfg.clear_tbi(back), addr);
    }

    /// Generated programs: instrumented execution is semantics-preserving
    /// under every mechanism, and the equivalence invariants hold.
    #[test]
    fn generated_programs_differential(seed in 0u64..500) {
        let src = rsti_workloads::generate(seed, rsti_workloads::GenConfig::default());
        let m = rsti_frontend::compile(&src, "gen").expect("generator emits valid MiniC");
        let base = Vm::new(&Image::baseline(&m)).run();
        prop_assert!(base.status.is_exit(), "seed {}: {:?}", seed, base.status);
        for mech in Mechanism::ALL {
            let p = rsti_core::instrument(&m, mech);
            let r = Vm::new(&Image::from_instrumented(&p)).run();
            prop_assert_eq!(&r.status, &base.status, "seed {} {}", seed, mech);
            prop_assert_eq!(&r.output, &base.output, "seed {} {}", seed, mech);
        }
        let stats = rsti_core::equivalence_stats(&m);
        prop_assert_eq!(stats.invariant_violation(), None);
    }

    /// The optimizer (inlining + promotion + elision) never changes
    /// observable behaviour, on top of arbitrary generated programs.
    #[test]
    fn optimizer_is_semantics_preserving(seed in 0u64..200) {
        let src = rsti_workloads::generate(seed, rsti_workloads::GenConfig::default());
        let mut m = rsti_frontend::compile(&src, "gen").unwrap();
        let base = Vm::new(&Image::baseline(&m)).run();
        rsti_core::inline_leaf_functions(&mut m, 96);
        for mech in Mechanism::ALL {
            let mut p = rsti_core::instrument(&m, mech);
            rsti_core::optimize_program(&mut p);
            let r = Vm::new(&Image::from_instrumented(&p)).run();
            prop_assert_eq!(&r.status, &base.status, "seed {} {}", seed, mech);
            prop_assert_eq!(&r.output, &base.output, "seed {} {}", seed, mech);
        }
        // And the optimized baseline too.
        let mut mb = m.clone();
        rsti_core::optimize_baseline(&mut mb);
        let rb = Vm::new(&Image::baseline(&mb)).run();
        prop_assert_eq!(&rb.status, &base.status);
        prop_assert_eq!(&rb.output, &base.output);
    }

    /// Modifier determinism: analyzing twice yields identical modifiers
    /// (required for separate sign/auth sites to agree).
    #[test]
    fn analysis_is_deterministic(seed in 0u64..200) {
        let src = rsti_workloads::generate(seed, rsti_workloads::GenConfig::default());
        let m = rsti_frontend::compile(&src, "gen").unwrap();
        for mech in Mechanism::ALL {
            let a = rsti_core::analyze(&m, mech);
            let b = rsti_core::analyze(&m, mech);
            prop_assert_eq!(a.classes.len(), b.classes.len());
            for (x, y) in a.classes.iter().zip(b.classes.iter()) {
                prop_assert_eq!(x.modifier, y.modifier);
            }
        }
    }
}

proptest! {
    /// The compiler never panics: arbitrary byte soup either parses or
    /// returns a diagnostic with a line number.
    #[test]
    fn frontend_total_on_arbitrary_input(src in "\\PC*") {
        match rsti_frontend::compile(&src, "fuzz") {
            Ok(_) => {}
            Err(e) => prop_assert!(e.line >= 1),
        }
    }

    /// Structured fuzz: plausible-looking token streams exercise deeper
    /// parser paths without panicking.
    #[test]
    fn frontend_total_on_token_soup(parts in proptest::collection::vec(
        proptest::sample::select(vec![
            "int", "void*", "struct s", "{", "}", "(", ")", ";", ",",
            "x", "y", "f", "=", "+", "*", "&", "->", "if", "while",
            "return", "1", "null", "malloc", "(int*)", "[3]", "for",
        ]),
        0..40,
    )) {
        let src = parts.join(" ");
        let _ = rsti_frontend::compile(&src, "fuzz");
    }

    #[test]
    fn lexer_total(src in "\\PC*") {
        let _ = rsti_frontend::token::lex(&src);
    }

    /// Random single-slot corruption of heap pointer fields is either
    /// detected or semantics-preserving-by-luck, but never silently
    /// *executes an unintended external* under RSTI-STL. (Fuzz-style
    /// check on the strongest mechanism.)
    #[test]
    fn random_corruption_never_reaches_externals_under_stl(
        seed in 0u64..50,
        junk in any::<u64>(),
    ) {
        let src = r#"
            extern void system(char* cmd);
            struct cell { long v; struct cell* next; void (*fn)(); };
            struct cell* g;
            void ok() { }
            void touch() {
                if (g->next != null) { g->next->v = 1; }
                g->fn();
            }
            int main() {
                g = (struct cell*) malloc(sizeof(struct cell));
                g->v = 0;
                g->next = null;
                g->fn = ok;
                touch();
                return 0;
            }
        "#;
        let m = rsti_frontend::compile(src, "fuzz").unwrap();
        let p = rsti_core::instrument(&m, Mechanism::Stl);
        let img = Image::from_instrumented(&p);
        let mut vm = Vm::new(&img);
        prop_assert_eq!(vm.run_to_function("touch"), rsti_vm::RunStop::Entered);
        let (obj, size) = vm.heap_live()[0];
        // Corrupt one of the object's three slots with junk.
        let slot = obj + 8 * (seed % (size / 8));
        vm.attacker_write_u64(slot, junk).unwrap();
        let r = vm.finish();
        prop_assert!(
            !r.reached_critical(),
            "corruption (slot {} junk {:#x}) reached system(): {:?}",
            slot, junk, r.status
        );
    }
}
