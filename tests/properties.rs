//! Randomized property tests over the core invariants.
//!
//! The build environment carries no third-party registry, so these run on
//! the in-tree [`rsti_rng`] generator instead of `proptest`: each property
//! draws a fixed budget of seeded random cases, which keeps the runs
//! deterministic (and failures immediately reproducible from the case
//! index) while still sweeping the input space far beyond the hand-picked
//! unit tests.

use rsti_core::Mechanism;
use rsti_pac::{KeyId, PacUnit, Qarma64, VaConfig};
use rsti_rng::Rng64;
use rsti_vm::{Image, Vm};

/// QARMA decryption inverts encryption for arbitrary blocks/tweaks/keys.
#[test]
fn qarma_roundtrip() {
    let mut rng = Rng64::seed_from_u64(0x51);
    for case in 0..256 {
        let key = rng.next_u128();
        let block = rng.next_u64();
        let tweak = rng.next_u64();
        let q = Qarma64::new(key);
        assert_eq!(
            q.decrypt(q.encrypt(block, tweak), tweak),
            block,
            "case {case}: key={key:#x} block={block:#x} tweak={tweak:#x}"
        );
    }
}

/// Distinct tweaks produce distinct ciphertexts (PRP under fixed key —
/// collisions would mean modifier confusion; for a fixed block the chance
/// is 2^-64, so any collision is treated as failure).
#[test]
fn qarma_tweak_separation() {
    let q = Qarma64::new(0xFEED_FACE_CAFE_BEEF_0123_4567_89AB_CDEF);
    let mut rng = Rng64::seed_from_u64(0x52);
    for case in 0..256 {
        let block = rng.next_u64();
        let t1 = rng.next_u64();
        let t2 = rng.next_u64();
        if t1 == t2 {
            continue;
        }
        assert_ne!(q.encrypt(block, t1), q.encrypt(block, t2), "case {case}");
    }
}

/// sign→auth roundtrips for any canonical user pointer and modifier; auth
/// under a different modifier fails (unless the truncated PACs collide,
/// which we filter).
#[test]
fn pac_sign_auth_contract() {
    let mut rng = Rng64::seed_from_u64(0x53);
    for case in 0..256 {
        let addr = rng.gen_range(0, 0x0000_7FFF_FFFF_FFFF);
        let m1 = rng.next_u64();
        let m2 = rng.next_u64();
        let mut u = PacUnit::for_tests();
        let signed = u.sign(KeyId::Da, addr, m1);
        assert_eq!(u.auth(KeyId::Da, signed, m1).unwrap(), addr, "case {case}");
        if m1 != m2 {
            let p1 = u.compute_pac(KeyId::Da, addr, m1);
            let p2 = u.compute_pac(KeyId::Da, addr, m2);
            if p1 != p2 {
                assert!(u.auth(KeyId::Da, signed, m2).is_err(), "case {case}");
            }
        }
    }
}

/// TBI tags never disturb PAC validity.
#[test]
fn tbi_tag_transparent_to_auth() {
    let mut rng = Rng64::seed_from_u64(0x54);
    for case in 0..256 {
        let addr = rng.gen_range(0, 0x0000_7FFF_FFFF_FFFF);
        let tag = rng.gen_range(1, 256) as u8;
        let modifier = rng.next_u64();
        let mut u = PacUnit::for_tests();
        let cfg = VaConfig::paper_default();
        let signed = u.sign(KeyId::Da, addr, modifier);
        let tagged = cfg.with_tbi_tag(signed, tag);
        let back = u.auth(KeyId::Da, tagged, modifier).unwrap();
        assert_eq!(cfg.clear_tbi(back), addr, "case {case}: tag={tag:#x}");
    }
}

/// Generated programs: instrumented execution is semantics-preserving
/// under every mechanism, and the equivalence invariants hold.
#[test]
fn generated_programs_differential() {
    for seed in 0..48 {
        let src = rsti_workloads::generate(seed, rsti_workloads::GenConfig::default());
        let m = rsti_frontend::compile(&src, "gen").expect("generator emits valid MiniC");
        let base = Vm::new(&Image::baseline(&m)).run();
        assert!(base.status.is_exit(), "seed {seed}: {:?}", base.status);
        for mech in Mechanism::ALL {
            let p = rsti_core::instrument(&m, mech);
            let r = Vm::new(&Image::from_instrumented(&p)).run();
            assert_eq!(r.status, base.status, "seed {seed} {mech}");
            assert_eq!(r.output, base.output, "seed {seed} {mech}");
        }
        let stats = rsti_core::equivalence_stats(&m);
        assert_eq!(stats.invariant_violation(), None, "seed {seed}");
    }
}

/// The optimizer (inlining + promotion + elision + hoisting + premods)
/// never changes observable behaviour, at any level, on top of arbitrary
/// generated programs.
#[test]
fn optimizer_is_semantics_preserving() {
    for seed in 0..32 {
        let src = rsti_workloads::generate(seed, rsti_workloads::GenConfig::default());
        let mut m = rsti_frontend::compile(&src, "gen").unwrap();
        let base = Vm::new(&Image::baseline(&m)).run();
        rsti_core::inline_leaf_functions(&mut m, 96);
        for mech in Mechanism::ALL {
            for level in rsti_core::OptLevel::ALL {
                let mut p = rsti_core::instrument(&m, mech);
                rsti_core::optimize_module(&mut p.module, level);
                let r = Vm::new(&Image::from_instrumented(&p)).run();
                assert_eq!(r.status, base.status, "seed {seed} {mech} {}", level.label());
                assert_eq!(r.output, base.output, "seed {seed} {mech} {}", level.label());
            }
        }
        // And the optimized baseline too, at every level.
        for level in rsti_core::OptLevel::ALL {
            let mut mb = m.clone();
            rsti_core::optimize_module(&mut mb, level);
            let rb = Vm::new(&Image::baseline(&mb)).run();
            assert_eq!(rb.status, base.status, "seed {seed} {}", level.label());
            assert_eq!(rb.output, base.output, "seed {seed} {}", level.label());
        }
    }
}

/// Modifier determinism: analyzing twice yields identical modifiers
/// (required for separate sign/auth sites to agree).
#[test]
fn analysis_is_deterministic() {
    for seed in 0..32 {
        let src = rsti_workloads::generate(seed, rsti_workloads::GenConfig::default());
        let m = rsti_frontend::compile(&src, "gen").unwrap();
        for mech in Mechanism::ALL {
            let a = rsti_core::analyze(&m, mech);
            let b = rsti_core::analyze(&m, mech);
            assert_eq!(a.classes.len(), b.classes.len(), "seed {seed} {mech}");
            for (x, y) in a.classes.iter().zip(b.classes.iter()) {
                assert_eq!(x.modifier, y.modifier, "seed {seed} {mech}");
            }
        }
    }
}

fn random_bytes(rng: &mut Rng64, max_len: usize) -> String {
    let len = rng.gen_range(0, max_len as u64 + 1) as usize;
    (0..len)
        .map(|_| {
            // Mostly printable ASCII with occasional arbitrary code points,
            // mirroring proptest's "\\PC*" (printable-char) regime.
            if rng.gen_bool(0.9) {
                char::from_u32(rng.gen_range(0x20, 0x7F) as u32).unwrap()
            } else {
                char::from_u32(rng.gen_range(1, 0xD800) as u32).unwrap_or('?')
            }
        })
        .collect()
}

/// The compiler never panics: arbitrary byte soup either parses or returns
/// a diagnostic with a line number.
#[test]
fn frontend_total_on_arbitrary_input() {
    let mut rng = Rng64::seed_from_u64(0x55);
    for _ in 0..256 {
        let src = random_bytes(&mut rng, 120);
        match rsti_frontend::compile(&src, "fuzz") {
            Ok(_) => {}
            Err(e) => assert!(e.line >= 1, "diagnostic without a line for {src:?}"),
        }
    }
}

/// Structured fuzz: plausible-looking token streams exercise deeper parser
/// paths without panicking.
#[test]
fn frontend_total_on_token_soup() {
    const TOKENS: &[&str] = &[
        "int", "void*", "struct s", "{", "}", "(", ")", ";", ",", "x", "y", "f", "=", "+", "*",
        "&", "->", "if", "while", "return", "1", "null", "malloc", "(int*)", "[3]", "for",
    ];
    let mut rng = Rng64::seed_from_u64(0x56);
    for _ in 0..512 {
        let n = rng.gen_range(0, 40) as usize;
        let parts: Vec<&str> = (0..n).map(|_| *rng.choose(TOKENS)).collect();
        let _ = rsti_frontend::compile(&parts.join(" "), "fuzz");
    }
}

#[test]
fn lexer_total() {
    let mut rng = Rng64::seed_from_u64(0x57);
    for _ in 0..512 {
        let src = random_bytes(&mut rng, 200);
        let _ = rsti_frontend::token::lex(&src);
    }
}

/// Random single-slot corruption of heap pointer fields is either detected
/// or semantics-preserving-by-luck, but never silently *executes an
/// unintended external* under RSTI-STL. (Fuzz-style check on the strongest
/// mechanism.)
#[test]
fn random_corruption_never_reaches_externals_under_stl() {
    let src = r#"
        extern void system(char* cmd);
        struct cell { long v; struct cell* next; void (*fn)(); };
        struct cell* g;
        void ok() { }
        void touch() {
            if (g->next != null) { g->next->v = 1; }
            g->fn();
        }
        int main() {
            g = (struct cell*) malloc(sizeof(struct cell));
            g->v = 0;
            g->next = null;
            g->fn = ok;
            touch();
            return 0;
        }
    "#;
    let m = rsti_frontend::compile(src, "fuzz").unwrap();
    let p = rsti_core::instrument(&m, Mechanism::Stl);
    let img = Image::from_instrumented(&p);
    let mut rng = Rng64::seed_from_u64(0x58);
    for case in 0..50 {
        let junk = rng.next_u64();
        let mut vm = Vm::new(&img);
        assert_eq!(vm.run_to_function("touch"), rsti_vm::RunStop::Entered);
        let (obj, size) = vm.heap_live()[0];
        // Corrupt one of the object's three slots with junk.
        let slot = obj + 8 * (case % (size / 8));
        vm.attacker_write_u64(slot, junk).unwrap();
        let r = vm.finish();
        assert!(
            !r.reached_critical(),
            "corruption (slot {slot} junk {junk:#x}) reached system(): {:?}",
            r.status
        );
    }
}
