//! Cross-crate integration tests: source → IR → STI analysis →
//! instrumentation → VM execution, over the paper's figure programs and
//! the benchmark proxies.

use rsti_core::Mechanism;
use rsti_vm::{Image, Status, Vm};

fn run(src: &str, mech: Option<Mechanism>) -> rsti_vm::ExecResult {
    let m = rsti_frontend::compile(src, "it").expect("compiles");
    let img = match mech {
        None => Image::baseline(&m),
        Some(mech) => Image::from_instrumented(&rsti_core::instrument(&m, mech)),
    };
    let mut vm = Vm::new(&img);
    vm.set_fuel(50_000_000);
    vm.run()
}

/// The paper's Figure 1 (libtiff) code shape runs cleanly when benign.
#[test]
fn figure1_libtiff_shape_runs_under_all_mechanisms() {
    let src = r#"
        struct tiff {
            long tif_scanlinesize;
            void (*tif_encoderow)(struct tiff* t);
        };
        void _TIFFNoRowEncode(struct tiff* t) {
            t->tif_scanlinesize = t->tif_scanlinesize + 1;
        }
        void _TIFFSetDefaultCompressionState(struct tiff* t) {
            t->tif_encoderow = _TIFFNoRowEncode;
        }
        struct tiff* TIFFOpen(int width, int length) {
            struct tiff* t = (struct tiff*) malloc(sizeof(struct tiff));
            t->tif_scanlinesize = width * length;
            _TIFFSetDefaultCompressionState(t);
            return t;
        }
        int TIFFWriteScanline(struct tiff* t) {
            t->tif_encoderow(t);
            return 1;
        }
        int main() {
            int uncompr_size = 8 * 4;
            char* uncomprbuf = (char*) malloc(uncompr_size);
            struct tiff* out = TIFFOpen(8, 4);
            if (TIFFWriteScanline(out) < 0) { return 1; }
            return 0;
        }
    "#;
    for mech in [None, Some(Mechanism::Stwc), Some(Mechanism::Stc), Some(Mechanism::Stl)] {
        let r = run(src, mech);
        assert_eq!(r.status, Status::Exited(0), "{mech:?}: {:?}", r.status);
    }
}

/// Figure 6's composite-type program produces identical output across
/// every configuration.
#[test]
fn figure6_output_identical_across_mechanisms() {
    let src = r#"
        void hello_func() { print_str("Hello!"); }
        struct node { int key; void (*fp)(); struct node* next; };
        int main() {
            struct node* ptr = (struct node*) malloc(sizeof(struct node));
            ptr->fp = hello_func;
            ptr->fp();
            return 0;
        }
    "#;
    let base = run(src, None);
    for mech in Mechanism::ALL {
        let r = run(src, Some(mech));
        assert_eq!(r.output, base.output, "{mech}");
        assert_eq!(r.status, base.status, "{mech}");
    }
}

/// A program exercising every MiniC feature at once survives the whole
/// pipeline under every mechanism.
#[test]
fn kitchen_sink_program() {
    let src = r#"
        extern void syslog(char* msg);
        struct inner { long tag; };
        struct outer { struct inner in; long (*measure)(struct outer* o); struct outer* link; };
        const char* g_banner = "sink";
        long g_total;
        long measure_impl(struct outer* o) { return o->in.tag * 2; }
        long chase(struct outer* head) {
            long acc = 0;
            while (head != null) {
                acc = acc + head->measure(head);
                head = head->link;
            }
            return acc;
        }
        void grow(struct outer** slot, long tag) {
            struct outer* o = (struct outer*) malloc(sizeof(struct outer));
            o->in.tag = tag;
            o->measure = measure_impl;
            o->link = *slot;
            *slot = o;
        }
        int main() {
            struct outer* head = null;
            for (int i = 1; i <= 5; i = i + 1) { grow(&head, i); }
            g_total = chase(head);
            double scale = 1.5;
            long scaled = (long) (scale * g_total);
            int small[4];
            small[0] = (int) scaled % 100;
            char c = 'x';
            bool flag = small[0] > 0 || c == 'y';
            if (flag && g_total == 30) {
                syslog(g_banner);
                print_int(scaled);
            }
            return (int) g_total;
        }
    "#;
    let base = run(src, None);
    assert_eq!(base.status, Status::Exited(30), "{:?}", base.status);
    assert_eq!(base.output, vec!["45"]);
    for mech in Mechanism::ALL {
        let r = run(src, Some(mech));
        assert_eq!(r.status, base.status, "{mech}: {:?}", r.status);
        assert_eq!(r.output, base.output, "{mech}");
        assert_eq!(r.events.len(), 1, "{mech}: syslog called once");
    }
}

/// The workload proxies produce identical results instrumented vs not —
/// instrumentation must never change semantics.
#[test]
fn representative_workloads_are_semantics_preserving() {
    for name in ["perlbench", "mcf", "xalancbmk", "lbm"] {
        let w = rsti_workloads::spec2006()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let m = w.module();
        let base = {
            let img = Image::baseline(&m);
            let mut vm = Vm::new(&img);
            vm.set_fuel(100_000_000);
            vm.run()
        };
        assert!(base.status.is_exit(), "{name}: {:?}", base.status);
        for mech in [Mechanism::Stwc, Mechanism::Stl] {
            let p = rsti_core::instrument(&m, mech);
            let img = Image::from_instrumented(&p);
            let mut vm = Vm::new(&img);
            vm.set_fuel(100_000_000);
            let r = vm.run();
            assert_eq!(r.status, base.status, "{name} {mech}");
            assert_eq!(r.output, base.output, "{name} {mech}");
        }
    }
}

/// Instrumentation counts relate across mechanisms the way §4.6 says.
#[test]
fn instrumentation_count_ordering_over_the_proxy_suite() {
    for w in rsti_workloads::spec2006() {
        let m = w.module();
        let stc = rsti_core::instrument(&m, Mechanism::Stc).stats.total_pac_ops();
        let stwc = rsti_core::instrument(&m, Mechanism::Stwc).stats.total_pac_ops();
        let stl = rsti_core::instrument(&m, Mechanism::Stl).stats.total_pac_ops();
        assert!(stc <= stwc, "{}: STC {stc} > STWC {stwc}", w.name);
        assert!(stwc <= stl, "{}: STWC {stwc} > STL {stl}", w.name);
    }
}

/// The CLI drives the same pipeline.
#[test]
fn cli_end_to_end() {
    let path = std::env::temp_dir().join("rsti_it_cli.mc");
    std::fs::write(
        &path,
        "int main() { long* p = (long*) malloc(8); *p = 11; print_int(*p); return 0; }",
    )
    .unwrap();
    let p = path.to_string_lossy().into_owned();
    for mech in ["stwc", "stc", "stl", "parts", "none"] {
        let (code, out) =
            rsti_cli::run_cli(&["run".into(), p.clone(), "--mech".into(), mech.into()]);
        assert_eq!(code, 0, "{mech}: {out}");
        assert!(out.contains("11"), "{mech}: {out}");
    }
}
