//! Quickstart: the whole RSTI pipeline in one file.
//!
//! 1. Compile a small C program (MiniC) to IR with STI debug metadata.
//! 2. Instrument it with RSTI-STWC (sign pointers on store, authenticate
//!    on load, using scope-type modifiers).
//! 3. Run it in the PA-modelling VM.
//! 4. Corrupt a function pointer like an attacker would, and watch the
//!    authentication trap fire.
//!
//! Run with: `cargo run --example quickstart`

use rsti_core::Mechanism;
use rsti_vm::{Image, RunStop, Status, Vm};

const PROGRAM: &str = r#"
    void greet() { print_str("hello from greet()"); }
    void evil()  { print_str("!!! hijacked !!!"); }

    struct ctx { long id; void (*callback)(); };
    struct ctx* g_ctx;

    void dispatch() { g_ctx->callback(); }

    int main() {
        g_ctx = (struct ctx*) malloc(sizeof(struct ctx));
        g_ctx->id = 7;
        g_ctx->callback = greet;
        dispatch();
        return 0;
    }
"#;

fn main() {
    // 1. Compile.
    let module = rsti_frontend::compile(PROGRAM, "quickstart").expect("compiles");
    println!("compiled: {} functions, {} instructions", module.funcs.len(), module.inst_count());

    // 2. Instrument with RSTI-STWC.
    let prog = rsti_core::instrument(&module, Mechanism::Stwc);
    println!(
        "instrumented: {} on-store signs, {} on-load auths, {} RSTI-types",
        prog.stats.signs_on_store,
        prog.stats.auths_on_load,
        prog.analysis.classes.len()
    );

    // 3. Benign run.
    let img = Image::from_instrumented(&prog);
    let r = Vm::new(&img).run();
    println!("benign run: {:?}, output = {:?}", r.status, r.output);
    assert_eq!(r.status, Status::Exited(0));

    // 4. The attack: overwrite the signed callback pointer in heap memory
    //    with the raw address of `evil` (the attacker cannot mint a PAC).
    let mut vm = Vm::new(&img);
    assert_eq!(vm.run_to_function("dispatch"), RunStop::Entered);
    let obj = vm.heap_live()[0].0;
    let evil = vm.func_addr("evil").unwrap();
    vm.attacker_write_u64(obj + 8, evil).unwrap();
    let r = vm.finish();
    match r.status {
        Status::Trapped(t) if t.is_detection() => {
            println!("attack detected: {t}");
        }
        other => panic!("expected detection, got {other:?}"),
    }

    // The same corruption on an unprotected binary succeeds:
    let base = Image::baseline(&module);
    let mut vm = Vm::new(&base);
    vm.run_to_function("dispatch");
    let obj = vm.heap_live()[0].0;
    let evil = vm.func_addr("evil").unwrap();
    vm.attacker_write_u64(obj + 8, evil).unwrap();
    let r = vm.finish();
    println!("unprotected run: {:?}, output = {:?}", r.status, r.output);
    assert_eq!(r.output, vec!["!!! hijacked !!!"]);
}
