//! Data-oriented attack on a web server — the paper's Figure 2 (GHTTPD).
//!
//! The server rejects requests containing `/..` before handling CGI. The
//! attacker corrupts the data pointer `ptr` between the validation check
//! and the use, swapping in a pointer to a *different*, attacker-staged
//! request buffer — classic double-fetch/data-oriented flow. No code
//! pointer is touched.
//!
//! Under RSTI the two buffers' pointers live in different RSTI-types
//! (different scope), so the substituted pointer fails authentication.
//!
//! Run with: `cargo run --example webserver_dataflow`

use rsti_core::Mechanism;
use rsti_vm::{Image, RunStop, Status, Vm};

const SERVER: &str = r#"
    extern void exec_cgi(char* path);

    char* request;        // the validated request (scope: serveconnection)
    char* upload_buf;     // attacker-controlled upload area (scope: recv_upload)

    int contains_dotdot(char* s) {
        // toy strstr(s, "/..")
        int i = 0;
        while (s[i] != '\0') {
            if (s[i] == '/' && s[i + 1] == '.' && s[i + 2] == '.') { return 1; }
            i = i + 1;
        }
        return 0;
    }

    void recv_upload() {
        upload_buf = (char*) malloc(64);
        // the attacker's staged path lives here
        upload_buf[0] = '/';
        upload_buf[1] = '.';
        upload_buf[2] = '.';
        upload_buf[3] = '/';
        upload_buf[4] = 's';
        upload_buf[5] = 'h';
        upload_buf[6] = '\0';
    }

    void handle_cgi() {
        exec_cgi(request);
    }

    int serveconnection() {
        request = (char*) malloc(64);
        request[0] = 'c';
        request[1] = 'g';
        request[2] = 'i';
        request[3] = '\0';
        if (contains_dotdot(request)) { return 403; }
        // ... the overflow in log() happens here (paper Figure 2) ...
        handle_cgi();
        return 200;
    }

    int main() {
        recv_upload();
        int code = serveconnection();
        print_int(code);
        return 0;
    }
"#;

fn attack(img: &Image) -> rsti_vm::ExecResult {
    let mut vm = Vm::new(img);
    // Pause after validation, before the use: at handle_cgi entry.
    assert_eq!(vm.run_to_function("handle_cgi"), RunStop::Entered);
    // Corrupt `request` by replaying the signed upload_buf pointer —
    // both are char*, but their scopes differ.
    let src = vm.global_addr("upload_buf").unwrap();
    let dst = vm.global_addr("request").unwrap();
    let bytes = vm.attacker_read(src, 8).unwrap();
    vm.attacker_write(dst, &bytes).unwrap();
    vm.finish()
}

fn main() {
    let module = rsti_frontend::compile(SERVER, "ghttpd").expect("compiles");

    // Unprotected: the CGI handler executes the attacker's ../sh path.
    let base = Image::baseline(&module);
    let r = attack(&base);
    let cgi = r.events.iter().find(|e| e.name == "exec_cgi").expect("cgi ran");
    println!("unprotected: exec_cgi({:?}) — check bypassed, attack succeeded", cgi.args);
    assert!(matches!(r.status, Status::Exited(_)));

    // Under each RSTI mechanism the substitution is detected.
    for mech in [Mechanism::Stc, Mechanism::Stwc, Mechanism::Stl] {
        let prog = rsti_core::instrument(&module, mech);
        let img = Image::from_instrumented(&prog);
        let r = attack(&img);
        match &r.status {
            Status::Trapped(t) if t.is_detection() => {
                println!("{mech}: detected — {t}");
            }
            other => panic!("{mech}: expected detection, got {other:?}"),
        }
        assert!(r.events.iter().all(|e| e.name != "exec_cgi"), "payload must not run");
    }

    // PARTS (type-only modifier) cannot tell the two char* apart.
    let prog = rsti_core::instrument(&module, Mechanism::Parts);
    let img = Image::from_instrumented(&prog);
    let r = attack(&img);
    assert!(
        r.events.iter().any(|e| e.name == "exec_cgi"),
        "PARTS misses the same-type substitution: {:?}",
        r.status
    );
    println!("PARTS: MISSED — same basic type, scope ignored (paper §6.1.2)");
}
