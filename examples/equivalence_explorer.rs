//! Equivalence-class explorer: reproduces the paper's Figure 5 tables —
//! how the same program gets different RSTI-type tables under STWC, STC,
//! and STL — and prints a Table 3-style row for it.
//!
//! Run with: `cargo run --example equivalence_explorer`

use rsti_core::Mechanism;

/// The program of the paper's Figure 5.
const FIG5: &str = r#"
    struct ctx { void (*send_file)(int x); };
    void foo(struct ctx* c) { }
    void bar(struct ctx* c) { }
    void foo2(void* v_ctx) {
        foo((struct ctx*) v_ctx);
        bar((struct ctx*) v_ctx);
    }
    int main() {
        struct ctx* c = (struct ctx*) malloc(sizeof(struct ctx));
        const void* v_const = malloc(1);
        foo2((void*) c);
        return 0;
    }
"#;

fn main() {
    let module = rsti_frontend::compile(FIG5, "fig5").expect("compiles");

    for mech in [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl] {
        let a = rsti_core::analyze(&module, mech);
        println!("== {mech} ({} RSTI-types) ==", a.classes.len());
        for (i, c) in a.classes.iter().enumerate() {
            let tys: Vec<String> = c.types.iter().map(|t| module.types.display(*t)).collect();
            let members: Vec<&str> =
                c.members.iter().map(|&v| a.facts.vars[v].name.as_str()).collect();
            println!(
                "  M{} = types[{}] perm {} members {{{}}}",
                i + 1,
                tys.join(", "),
                if c.writable { "R/W" } else { "R" },
                members.join(", ")
            );
        }
        println!();
    }

    let s = rsti_core::equivalence_stats(&module);
    println!("Table 3 row for this program:");
    println!(
        "  NT {}  RT(STC) {}  RT(STWC) {}  RT(STL) {}  NV {}",
        s.nt, s.rt_stc, s.rt_stwc, s.rt_stl, s.nv
    );
    println!(
        "  largest ECV: STC {} / STWC {}    largest ECT: STC {} / STWC {}",
        s.ecv_stc, s.ecv_stwc, s.ect_stc, s.ect_stwc
    );
    assert_eq!(s.invariant_violation(), None);
}
