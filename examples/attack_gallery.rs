//! Attack gallery: runs the full Table 1 corpus (twelve control-flow
//! hijacking and data-oriented exploits) under every defense and prints
//! the verdict matrix — the reproduction of the paper's §6.1 security
//! evaluation.
//!
//! Run with: `cargo run --example attack_gallery`

fn main() {
    let scenarios = rsti_attacks::scenarios::all();
    println!("running {} attacks x 5 defenses...\n", scenarios.len());
    let matrix = rsti_attacks::run_matrix(&scenarios);
    print!("{}", rsti_attacks::render_table1(&scenarios, &matrix));

    // Summarize the headline claims.
    let baseline_hijacks = matrix
        .iter()
        .filter(|r| r.verdicts[0] == rsti_attacks::Verdict::PayloadExecuted)
        .count();
    let rsti_detections = matrix
        .iter()
        .filter(|r| r.verdicts[2..].iter().all(|v| matches!(v, rsti_attacks::Verdict::Detected(_))))
        .count();
    println!("\nsummary: {baseline_hijacks}/12 succeed unprotected;");
    println!("         {rsti_detections}/12 detected by every RSTI mechanism;");
    println!("         PARTS misses the same-basic-type substitutions (COOP, PittyPat, DOP).");
}
