//! Mechanism tour: one program, every defense configuration.
//!
//! Runs a small victim under no defense, PARTS, RSTI-STC/STWC/STL, the
//! adaptive variant, and the MAC-table backend, and reports for each:
//! static instrumentation counts, dynamic cycles, and whether a pointer
//! substitution attack slips through — the whole security/performance
//! trade-off of the paper's Table 2 and Figure 9 in one screen.
//!
//! Run with: `cargo run --example mechanism_tour`

use rsti_core::Mechanism;
use rsti_vm::{Backend, Image, RunStop, Status, Vm};

const PROGRAM: &str = r#"
    struct job { long id; struct job* next; };
    struct job* queue_a;
    struct job* queue_b;

    void enqueue_twice() {
        queue_a = (struct job*) malloc(sizeof(struct job));
        queue_a->id = 1;
        queue_a->next = null;
        queue_b = (struct job*) malloc(sizeof(struct job));
        queue_b->id = 1000;
        queue_b->next = null;
    }

    long drain() {
        // Both queues are used here, so queue_a and queue_b end up with
        // identical scope-type facts — one RSTI-type under STC/STWC.
        long acc = 0;
        struct job* cur = queue_a;
        while (cur != null) {
            acc += cur->id;
            cur = cur->next;
        }
        cur = queue_b;
        while (cur != null) {
            acc += cur->id;
            cur = cur->next;
        }
        return acc;
    }

    int main() {
        enqueue_twice();
        long r = drain();
        print_int(r);
        return (int) r;
    }
"#;

/// Substitute the signed queue_b pointer into queue_a's slot and see what
/// happens: the two queues share a basic type, so only scope/location
/// discrimination can catch it.
fn attack(img: &Image) -> &'static str {
    let mut vm = Vm::new(img);
    assert_eq!(vm.run_to_function("drain"), RunStop::Entered);
    let src = vm.global_addr("queue_b").unwrap();
    let dst = vm.global_addr("queue_a").unwrap();
    let bytes = vm.attacker_read(src, 8).unwrap();
    vm.attacker_write(dst, &bytes).unwrap();
    match vm.finish().status {
        Status::Exited(_) => "substitution SUCCEEDED",
        Status::Trapped(t) if t.is_detection() => "detected",
        Status::Trapped(_) => "crashed",
    }
}

fn benign_cycles(img: &Image) -> u64 {
    let r = Vm::new(img).run();
    assert_eq!(r.status, Status::Exited(1001), "{:?}", r.status);
    r.cycles
}

fn main() {
    let module = rsti_frontend::compile(PROGRAM, "tour").expect("compiles");
    let baseline = Image::baseline(&module);
    let base_cycles = benign_cycles(&baseline);
    println!(
        "{:<28} {:>9} {:>10} {:>9}   same-type substitution",
        "configuration", "pac ops", "cycles", "overhead"
    );
    println!(
        "{:<28} {:>9} {:>10} {:>9}   {}",
        "no defense",
        0,
        base_cycles,
        "-",
        attack(&baseline)
    );

    for mech in [Mechanism::Parts, Mechanism::Stc, Mechanism::Stwc, Mechanism::Stl] {
        let p = rsti_core::instrument(&module, mech);
        let img = Image::from_instrumented(&p);
        let c = benign_cycles(&img);
        println!(
            "{:<28} {:>9} {:>10} {:>8.1}%   {}",
            mech.name(),
            p.stats.total_pac_ops(),
            c,
            (c as f64 / base_cycles as f64 - 1.0) * 100.0,
            attack(&img)
        );
    }

    // The §7 adaptive variant: location binding only on classes larger
    // than one member — queue_a/queue_b share a class, so it hardens them.
    let p = rsti_core::instrument_adaptive(&module, 1);
    let img = Image::from_instrumented(&p);
    let c = benign_cycles(&img);
    println!(
        "{:<28} {:>9} {:>10} {:>8.1}%   {}",
        "adaptive (ECV > 1)",
        p.stats.total_pac_ops(),
        c,
        (c as f64 / base_cycles as f64 - 1.0) * 100.0,
        attack(&img)
    );

    // The §7 non-PAC backend: CCFI-style shadow MACs, slot-bound.
    let p = rsti_core::instrument(&module, Mechanism::Stwc);
    let img = Image::from_instrumented(&p).with_backend(Backend::MacTable);
    let c = benign_cycles(&img);
    println!(
        "{:<28} {:>9} {:>10} {:>8.1}%   {}",
        "STWC + MAC-table backend",
        p.stats.total_pac_ops(),
        c,
        (c as f64 / base_cycles as f64 - 1.0) * 100.0,
        attack(&img)
    );

    println!(
        "\nReading: PARTS/STC/STWC share queue_a and queue_b's RSTI-type\n\
         (same type, same scope, same permission), so the substitution\n\
         passes their checks — the equivalence-class residual of §7. STL,\n\
         the adaptive variant, and the slot-bound MAC backend all close it."
    );
}
