//! Golden tests for the textual IR printer: the exact rendering is part of
//! the debugging contract (EXPERIMENTS.md and the CLI's `instrument`
//! command show this text to humans).

use rsti_ir::{
    BinOp, CmpOp, FieldDef, FuncSig, FunctionBuilder, Inst, Module, Operand, PacKey, PacSite,
    StructDef,
};

/// Builds a tiny module exercising every printable construct and checks the
/// rendering line by line.
#[test]
fn print_module_golden() {
    let mut m = Module::new("golden");
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let label_ty = m.types.char_ptr();
    let node = m.types.declare_struct(StructDef {
        name: "node".into(),
        fields: vec![
            FieldDef { name: "key".into(), ty: i64t, is_const: false },
            FieldDef { name: "label".into(), ty: label_ty, is_const: true },
        ],
    });
    let node_ty = m.types.intern(rsti_ir::Type::Struct(node));
    let node_ptr = m.types.ptr(node_ty);

    let callee = m.declare_func("callee", FuncSig::new(i32t, vec![i32t]), false);
    {
        let mut b = FunctionBuilder::new(&mut m, callee);
        let p = b.param(0);
        let r = b.bin(BinOp::Add, p, Operand::ConstInt(1, i32t), i32t);
        b.ret(Some(r.into()));
        b.finish();
    }

    let f = m.declare_func("driver", FuncSig::new(i32t, vec![]), false);
    {
        let mut b = FunctionBuilder::new(&mut m, f);
        let obj = b.malloc(Operand::ConstInt(16, i64t), node_ptr);
        let key_addr = b.field_addr(obj, node, 0);
        b.store(Operand::ConstInt(7, i64t), key_addr);
        let key = b.load(key_addr, i64t);
        let cond = b.cmp(CmpOp::Gt, key, Operand::ConstInt(0, i64t));
        let then_bb = b.new_block();
        let done = b.new_block();
        b.cond_br(cond, then_bb, done);
        b.switch_to(then_bb);
        let signed = b.fresh_value(node_ptr);
        b.push_raw(Inst::PacSign {
            result: signed,
            value: obj.into(),
            key: PacKey::Da,
            modifier: 0xABCD,
            loc: None,
            site: PacSite::OnStore,
        });
        b.free(signed);
        b.br(done);
        b.switch_to(done);
        let narrowed = b.convert(key, i32t);
        let r = b.call(callee, vec![narrowed.into()]).unwrap();
        b.ret(Some(r.into()));
        b.finish();
    }
    rsti_ir::verify_module(&m).unwrap();

    let text = rsti_ir::print_module(&m);
    for needle in [
        "; module golden",
        "struct node ; #0 { long key, char* label const }",
        "define int @callee(int %0)",
        "define int @driver()",
        "%0 = malloc long 16 as struct node*",
        "%1 = fieldaddr %0, node.key",
        "store long 7, %1",
        "%2 = load long, %1",
        "%3 = cmp gt %2, long 0",
        "condbr %3, bb1, bb2",
        "%4 = pac.sign.da %0, mod=0xabcd ; OnStore",
        "free %4",
        "%5 = convert %2 to int",
        "%6 = call @callee(%5)",
        "ret %6",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}

/// External declarations print as `declare` lines.
#[test]
fn externals_print_as_declare() {
    let mut m = Module::new("ext");
    let void = m.types.void();
    let cp = m.types.char_ptr();
    m.declare_func("syslog", FuncSig::new(void, vec![cp]), true);
    let text = rsti_ir::print_module(&m);
    assert!(text.contains("declare void @syslog(char* %0)"), "{text}");
}

/// The verifier pinpoints the exact offending instruction.
#[test]
fn verifier_reports_position() {
    let mut m = Module::new("bad");
    let i32t = m.types.i32();
    let void = m.types.void();
    let f = m.declare_func("f", FuncSig::new(void, vec![]), false);
    let mut b = FunctionBuilder::new(&mut m, f);
    let slot = b.alloca(i32t, None);
    b.store(Operand::ConstInt(0, i32t), slot); // fine
    // Bad: load through a non-pointer.
    let x = b.load(slot, i32t);
    let bad = b.fresh_value(i32t);
    b.push_raw(Inst::Load { result: bad, ptr: x.into(), ty: i32t });
    b.ret(None);
    b.finish();
    let errs = rsti_ir::verify_module(&m).unwrap_err();
    assert_eq!(errs.len(), 1);
    let e = &errs[0];
    assert_eq!(e.func, "f");
    assert_eq!(e.block, 0);
    assert_eq!(e.index, 3, "alloca, store, load, bad-load");
    assert!(e.to_string().contains("expected a pointer"));
}
