//! Natural-loop forest and preheader insertion.
//!
//! A *back edge* is a CFG edge `latch → header` whose target dominates its
//! source; the *natural loop* of that edge is the header plus every block
//! that can reach the latch without passing through the header. Loops
//! sharing a header are merged (a `continue` statement produces exactly
//! that shape). A retreating edge whose target does **not** dominate its
//! source marks an *irreducible* region — a multi-entry cycle, which `goto`
//! could produce but structured MiniC lowering never does. The analysis
//! flags the whole function irreducible and the loop-aware optimizer
//! passes conservatively skip it.
//!
//! [`insert_preheaders`] gives every loop header a dedicated out-of-loop
//! predecessor: a fresh block that all entry edges are retargeted through.
//! Loop-invariant auth hoisting (`rsti-core`) moves header-resident
//! load+authenticate pairs there so a hot loop pays one check per *entry*
//! instead of one per *iteration*.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::{BasicBlock, BlockId, Function};
use crate::inst::Terminator;
use std::collections::BTreeSet;

/// One natural loop (back edges merged per header).
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The unique entry block of the loop: it dominates every block in
    /// [`NaturalLoop::blocks`].
    pub header: BlockId,
    /// Sources of the back edges into [`NaturalLoop::header`].
    pub latches: Vec<BlockId>,
    /// All blocks of the loop, header included.
    pub blocks: BTreeSet<BlockId>,
    /// Nesting depth: 1 for an outermost loop, 2 for a loop whose header
    /// lies inside exactly one other loop, and so on.
    pub depth: u32,
}

impl NaturalLoop {
    /// Whether `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// Blocks inside the loop whose terminator leaves it — either via an
    /// edge to an outside block or by returning/trapping. Guaranteed-
    /// execution reasoning ("dominates all exits") must consider both.
    pub fn exiting_blocks(&self, cfg: &Cfg, f: &Function) -> Vec<BlockId> {
        let mut out = Vec::new();
        for &b in &self.blocks {
            let leaves_by_edge =
                cfg.succs[b.0 as usize].iter().any(|s| !self.blocks.contains(s));
            let leaves_by_term = matches!(
                f.blocks[b.0 as usize].term,
                Terminator::Ret(_) | Terminator::Unreachable
            );
            if leaves_by_edge || leaves_by_term {
                out.push(b);
            }
        }
        out
    }
}

/// Every natural loop of one function, or an irreducibility verdict.
#[derive(Debug, Clone)]
pub struct LoopForest {
    /// The loops, sorted by header block id. Empty when
    /// [`LoopForest::irreducible`] is set.
    pub loops: Vec<NaturalLoop>,
    /// `true` when a retreating edge targeted a non-dominating block
    /// (multi-entry cycle). Loop-aware passes must skip the function.
    pub irreducible: bool,
}

impl LoopForest {
    /// Finds all natural loops of a function from its CFG and dominator
    /// tree. Unreachable blocks never participate.
    pub fn new(cfg: &Cfg, dom: &DomTree) -> LoopForest {
        // A retreating edge goes from a higher RPO number to a lower one.
        // Retreating + dominating target = back edge; retreating without
        // domination = irreducible.
        let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new(); // (latch, header)
        for &b in &cfg.rpo {
            let bi = cfg.rpo_index[b.0 as usize].unwrap();
            for &s in &cfg.succs[b.0 as usize] {
                let si = match cfg.rpo_index[s.0 as usize] {
                    Some(i) => i,
                    None => continue,
                };
                if si <= bi {
                    if dom.dominates(s, b) {
                        if !back_edges.contains(&(b, s)) {
                            back_edges.push((b, s));
                        }
                    } else {
                        return LoopForest { loops: Vec::new(), irreducible: true };
                    }
                }
            }
        }

        // Natural loop of a back edge: walk predecessors from the latch,
        // stopping at the header. Merge loops that share a header.
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (latch, header) in back_edges {
            let mut blocks = BTreeSet::new();
            blocks.insert(header);
            let mut work = vec![latch];
            while let Some(b) = work.pop() {
                if blocks.insert(b) {
                    for &p in &cfg.preds[b.0 as usize] {
                        if cfg.is_reachable(p) {
                            work.push(p);
                        }
                    }
                }
            }
            match loops.iter_mut().find(|l| l.header == header) {
                Some(l) => {
                    l.latches.push(latch);
                    l.blocks.extend(blocks);
                }
                None => loops.push(NaturalLoop {
                    header,
                    latches: vec![latch],
                    blocks,
                    depth: 0,
                }),
            }
        }
        loops.sort_by_key(|l| l.header);

        // Depth: number of loops whose body contains this header.
        let depths: Vec<u32> = loops
            .iter()
            .map(|l| {
                loops
                    .iter()
                    .filter(|o| o.blocks.contains(&l.header))
                    .count() as u32
            })
            .collect();
        for (l, d) in loops.iter_mut().zip(depths) {
            l.depth = d;
        }
        LoopForest { loops, irreducible: false }
    }
}

/// Gives every loop header a dedicated *preheader*: a fresh block appended
/// to the function whose only successor is the header, with every entry
/// edge (predecessor of the header from outside the loop) retargeted
/// through it. Back edges are left alone.
///
/// Appending keeps all existing [`BlockId`]s stable, so the forest passed
/// in stays valid for the old blocks; callers that need a fresh analysis
/// over the new shape (e.g. to find the preheaders as blocks) recompute the
/// CFG afterwards. Returns `(header, preheader)` pairs.
pub fn insert_preheaders(f: &mut Function, forest: &LoopForest) -> Vec<(BlockId, BlockId)> {
    let mut created = Vec::new();
    if forest.irreducible {
        return created;
    }
    for l in &forest.loops {
        let ph = BlockId(f.blocks.len() as u32);
        // Retarget every entry edge. New preheaders (for other headers)
        // can never target this header, so scanning all blocks — old and
        // appended — is safe.
        for (bi, blk) in f.blocks.iter_mut().enumerate() {
            if l.blocks.contains(&BlockId(bi as u32)) {
                continue; // back edge or in-loop edge
            }
            match &mut blk.term {
                Terminator::Br(t) if *t == l.header => *t = ph,
                Terminator::CondBr { then_bb, else_bb, .. } => {
                    if *then_bb == l.header {
                        *then_bb = ph;
                    }
                    if *else_bb == l.header {
                        *else_bb = ph;
                    }
                }
                _ => {}
            }
        }
        f.blocks.push(BasicBlock {
            insts: Vec::new(),
            term: Terminator::Br(l.header),
            term_loc: f.blocks[l.header.0 as usize].term_loc,
        });
        created.push((l.header, ph));
    }
    created
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::tests::{cond, skeleton};

    fn analyze(terms: Vec<Terminator>) -> (Function, Cfg, DomTree, LoopForest) {
        let f = skeleton(terms);
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        (f, cfg, dom, forest)
    }

    #[test]
    fn simple_while_loop() {
        // 0 -> 1 ; 1 -> 2,3 ; 2 -> 1 ; 3 ret
        let (f, cfg, _, forest) = analyze(vec![
            Terminator::Br(BlockId(1)),
            cond(2, 3),
            Terminator::Br(BlockId(1)),
            Terminator::Ret(None),
        ]);
        assert!(!forest.irreducible);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert_eq!(l.blocks.iter().copied().collect::<Vec<_>>(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(l.depth, 1);
        assert_eq!(l.exiting_blocks(&cfg, &f), vec![BlockId(1)]);
    }

    #[test]
    fn nested_loops_have_depths() {
        // outer: 1..4 ; inner: 2,3
        let (_, _, _, forest) = analyze(vec![
            Terminator::Br(BlockId(1)),
            cond(2, 5),
            cond(3, 4),
            Terminator::Br(BlockId(2)),
            Terminator::Br(BlockId(1)),
            Terminator::Ret(None),
        ]);
        assert_eq!(forest.loops.len(), 2);
        let outer = forest.loops.iter().find(|l| l.header == BlockId(1)).unwrap();
        let inner = forest.loops.iter().find(|l| l.header == BlockId(2)).unwrap();
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(outer.blocks.contains(&BlockId(3)));
        assert!(inner.blocks.contains(&BlockId(3)));
        assert!(!inner.blocks.contains(&BlockId(4)));
    }

    #[test]
    fn multi_exit_loop_reports_break_and_ret_blocks() {
        // 0 -> 1 ; 1 -> 2,4 ; 2 -> 3,5 ; 3 -> 1 ; 4,5 ret
        let (f, cfg, _, forest) = analyze(vec![
            Terminator::Br(BlockId(1)),
            cond(2, 4),
            cond(3, 5),
            Terminator::Br(BlockId(1)),
            Terminator::Ret(None),
            Terminator::Ret(None),
        ]);
        let l = &forest.loops[0];
        assert_eq!(l.exiting_blocks(&cfg, &f), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn mid_loop_return_block_is_outside_and_its_pred_exits() {
        // 0 -> 1 ; 1 -> 2,4 ; 2 -> 3,5 ; 3 -> 1 ; 4 ret ; 5 ret.
        // Block 5 returns "from inside" the loop body source-wise, but a
        // returning block can never reach the latch, so the natural loop
        // excludes it and its predecessor 2 counts as exiting.
        let (f, cfg, _, forest) = analyze(vec![
            Terminator::Br(BlockId(1)),
            cond(2, 4),
            cond(3, 5),
            Terminator::Br(BlockId(1)),
            Terminator::Ret(None),
            Terminator::Ret(None),
        ]);
        let l = &forest.loops[0];
        assert!(!l.contains(BlockId(5)));
        assert!(l.exiting_blocks(&cfg, &f).contains(&BlockId(2)));
    }

    #[test]
    fn continue_shape_merges_latches() {
        // Two back edges to one header: 0 -> 1 ; 1 -> 2,4 ; 2 -> 3,1 ; 3 -> 1
        let (_, _, _, forest) = analyze(vec![
            Terminator::Br(BlockId(1)),
            cond(2, 4),
            cond(3, 1),
            Terminator::Br(BlockId(1)),
            Terminator::Ret(None),
        ]);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.latches.len(), 2);
    }

    #[test]
    fn irreducible_cycle_bails_out() {
        // 0 -> 1,2 ; 1 -> 2 ; 2 -> 1: a cycle with two entries.
        let (mut f, _, _, forest) = analyze(vec![
            cond(1, 2),
            Terminator::Br(BlockId(2)),
            Terminator::Br(BlockId(1)),
        ]);
        assert!(forest.irreducible);
        assert!(forest.loops.is_empty());
        assert!(insert_preheaders(&mut f, &forest).is_empty());
    }

    #[test]
    fn preheader_takes_over_entry_edges_only() {
        let (mut f, _, _, forest) = analyze(vec![
            Terminator::Br(BlockId(1)),
            cond(2, 3),
            Terminator::Br(BlockId(1)),
            Terminator::Ret(None),
        ]);
        let created = insert_preheaders(&mut f, &forest);
        assert_eq!(created, vec![(BlockId(1), BlockId(4))]);
        // Entry edge 0 -> 1 rerouted through the preheader...
        assert_eq!(f.blocks[0].term, Terminator::Br(BlockId(4)));
        assert_eq!(f.blocks[4].term, Terminator::Br(BlockId(1)));
        // ...back edge untouched.
        assert_eq!(f.blocks[2].term, Terminator::Br(BlockId(1)));
        // The new shape still analyzes cleanly and the preheader is the
        // header's only out-of-loop predecessor.
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        let forest2 = LoopForest::new(&cfg, &dom);
        let l = forest2.loops.iter().find(|l| l.header == BlockId(1)).unwrap();
        let entries: Vec<BlockId> = cfg.preds[1]
            .iter()
            .copied()
            .filter(|p| !l.blocks.contains(p))
            .collect();
        assert_eq!(entries, vec![BlockId(4)]);
        assert!(dom.dominates(BlockId(4), BlockId(1)));
    }
}
