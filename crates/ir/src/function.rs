//! Functions and basic blocks.

use crate::debug::{DebugLoc, VarId};
use crate::inst::{Inst, Terminator};
use crate::types::{FuncSig, TypeId};
use std::fmt;

/// A virtual register, local to one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic-block index, local to one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// An instruction plus its optional debug location. The RSTI pass propagates
/// the location of the instrumented load/store onto the inserted PAC
/// instructions, exactly as the LLVM pass inherits `!dbg`.
#[derive(Debug, Clone, PartialEq)]
pub struct InstNode {
    /// The instruction.
    pub inst: Inst,
    /// Scope/line the instruction belongs to (`None` only for
    /// compiler-generated glue).
    pub loc: Option<DebugLoc>,
}

/// A straight-line run of instructions ending in exactly one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// The block body.
    pub insts: Vec<InstNode>,
    /// The terminator. Blocks under construction hold
    /// [`Terminator::Unreachable`] until sealed by the builder.
    pub term: Terminator,
    /// Debug location of the terminator.
    pub term_loc: Option<DebugLoc>,
}

impl BasicBlock {
    /// An empty, unterminated block.
    pub fn new() -> Self {
        BasicBlock { insts: Vec::new(), term: Terminator::Unreachable, term_loc: None }
    }
}

impl Default for BasicBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// A function definition (or external declaration).
#[derive(Debug, Clone)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Signature.
    pub sig: FuncSig,
    /// Parameter values: `params[i]` is the [`ValueId`] bound to the i-th
    /// argument on entry, with its optional debug variable.
    pub params: Vec<(ValueId, Option<VarId>)>,
    /// Basic blocks; block 0 is the entry. Empty for externals.
    pub blocks: Vec<BasicBlock>,
    /// Type of every value, indexed by [`ValueId`]. Maintained by the
    /// builder; the verifier checks it.
    pub value_types: Vec<TypeId>,
    /// `true` for uninstrumented external library functions ("libc"): they
    /// have no body in this module, their behaviour is provided by the VM,
    /// and pointers flowing into them are PAC-stripped (§7 "Handling
    /// external code").
    pub is_external: bool,
}

impl Function {
    /// Total number of instructions across all blocks (terminators
    /// excluded).
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Type of a value.
    ///
    /// # Panics
    /// Panics when `v` was never defined in this function.
    pub fn value_type(&self, v: ValueId) -> TypeId {
        self.value_types[v.0 as usize]
    }

    /// Iterator over all instruction nodes in block order.
    pub fn insts(&self) -> impl Iterator<Item = &InstNode> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_block_is_unreachable() {
        let b = BasicBlock::new();
        assert_eq!(b.term, Terminator::Unreachable);
        assert!(b.insts.is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(ValueId(7).to_string(), "%7");
        assert_eq!(BlockId(2).to_string(), "bb2");
    }
}
