//! Control-flow graph over a function's basic blocks.
//!
//! The optimizer's CFG-aware passes (dominator-based auth elision,
//! loop-invariant auth hoisting — see `rsti-core`) all start from the same
//! three artifacts computed here: the successor lists read straight off the
//! terminators, the inverted predecessor lists, and a reverse-postorder
//! (RPO) numbering of the blocks reachable from the entry. RPO is the
//! iteration order that makes forward dataflow and the Cooper–Harvey–
//! Kennedy dominator algorithm ([`crate::dom`]) converge in a small number
//! of passes.
//!
//! Blocks that are unreachable from the entry (the frontend emits a few —
//! e.g. the tail of a `return`-terminated branch) get no RPO number and are
//! ignored by every analysis built on top; the optimizer leaves their
//! contents untouched.

use crate::function::{BlockId, Function};
use crate::inst::Terminator;

/// Successor blocks of a terminator, in branch order.
pub fn term_successors(t: &Terminator) -> Vec<BlockId> {
    match t {
        Terminator::Br(b) => vec![*b],
        Terminator::CondBr { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
        Terminator::Ret(_) | Terminator::Unreachable => vec![],
    }
}

/// The control-flow graph of one function: successors, predecessors, and a
/// reverse-postorder over the blocks reachable from the entry.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `succs[b]` — successors of block `b`, in terminator branch order.
    /// A block targeted by both arms of a `CondBr` appears twice.
    pub succs: Vec<Vec<BlockId>>,
    /// `preds[b]` — predecessors of block `b` (deduplicated).
    pub preds: Vec<Vec<BlockId>>,
    /// Reachable blocks in reverse-postorder; `rpo[0]` is the entry.
    pub rpo: Vec<BlockId>,
    /// `rpo_index[b]` — position of block `b` in [`Cfg::rpo`], or `None`
    /// when `b` is unreachable from the entry.
    pub rpo_index: Vec<Option<u32>>,
}

impl Cfg {
    /// Builds the CFG of `f`. Functions with no blocks (externals) yield an
    /// empty graph.
    pub fn new(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs: Vec<Vec<BlockId>> = Vec::with_capacity(n);
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for (i, blk) in f.blocks.iter().enumerate() {
            let ss = term_successors(&blk.term);
            for &s in &ss {
                let p = &mut preds[s.0 as usize];
                if !p.contains(&BlockId(i as u32)) {
                    p.push(BlockId(i as u32));
                }
            }
            succs.push(ss);
        }

        // Iterative DFS from the entry; postorder reversed gives RPO.
        let mut rpo_index = vec![None; n];
        let mut rpo = Vec::new();
        if n > 0 {
            let mut post: Vec<BlockId> = Vec::with_capacity(n);
            let mut visited = vec![false; n];
            // (block, next successor index to explore)
            let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
            visited[0] = true;
            while let Some(&mut (b, ref mut next)) = stack.last_mut() {
                let ss = &succs[b.0 as usize];
                if *next < ss.len() {
                    let s = ss[*next];
                    *next += 1;
                    if !visited[s.0 as usize] {
                        visited[s.0 as usize] = true;
                        stack.push((s, 0));
                    }
                } else {
                    post.push(b);
                    stack.pop();
                }
            }
            rpo = post.into_iter().rev().collect();
            for (i, &b) in rpo.iter().enumerate() {
                rpo_index[b.0 as usize] = Some(i as u32);
            }
        }
        Cfg { succs, preds, rpo, rpo_index }
    }

    /// Whether `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.0 as usize].is_some()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::function::BasicBlock;
    use crate::inst::Operand;
    use crate::types::{FuncSig, TypeTable};

    /// Builds a function skeleton out of terminators only.
    pub(crate) fn skeleton(terms: Vec<Terminator>) -> Function {
        let types = TypeTable::new();
        let void = types.void();
        Function {
            name: "skel".into(),
            sig: FuncSig::new(void, vec![]),
            params: vec![],
            blocks: terms
                .into_iter()
                .map(|t| BasicBlock { insts: vec![], term: t, term_loc: None })
                .collect(),
            value_types: vec![],
            is_external: false,
        }
    }

    pub(crate) fn cond(then_bb: u32, else_bb: u32) -> Terminator {
        let types = TypeTable::new();
        let b = types.bool();
        Terminator::CondBr {
            cond: Operand::ConstInt(1, b),
            then_bb: BlockId(then_bb),
            else_bb: BlockId(else_bb),
        }
    }

    #[test]
    fn diamond_rpo_and_edges() {
        // 0 -> 1,2 ; 1 -> 3 ; 2 -> 3 ; 3 ret
        let f = skeleton(vec![
            cond(1, 2),
            Terminator::Br(BlockId(3)),
            Terminator::Br(BlockId(3)),
            Terminator::Ret(None),
        ]);
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs[0], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds[3], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.rpo.len(), 4);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert_eq!(cfg.rpo[3], BlockId(3));
        // RPO: every edge that is not a back edge goes forward.
        let ix = |b: BlockId| cfg.rpo_index[b.0 as usize].unwrap();
        assert!(ix(BlockId(0)) < ix(BlockId(1)));
        assert!(ix(BlockId(1)) < ix(BlockId(3)));
    }

    #[test]
    fn unreachable_blocks_get_no_rpo_number() {
        let f = skeleton(vec![
            Terminator::Ret(None),
            Terminator::Br(BlockId(0)), // unreachable
        ]);
        let cfg = Cfg::new(&f);
        assert!(cfg.is_reachable(BlockId(0)));
        assert!(!cfg.is_reachable(BlockId(1)));
        assert_eq!(cfg.rpo, vec![BlockId(0)]);
    }

    #[test]
    fn both_arms_to_same_block_dedup_preds() {
        let f = skeleton(vec![cond(1, 1), Terminator::Ret(None)]);
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs[0].len(), 2);
        assert_eq!(cfg.preds[1], vec![BlockId(0)]);
    }
}
