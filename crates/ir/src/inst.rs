//! Instructions, operands, and terminators.
//!
//! The instruction set mirrors the LLVM subset the paper's pass operates on:
//! `alloca`, `load`, `store`, `getelementptr` (split into [`Inst::FieldAddr`]
//! and [`Inst::IndexAddr`]), `bitcast`, direct and indirect calls, and
//! arithmetic. On top of those, the RSTI instrumentation pass inserts the
//! PAC pseudo-instructions ([`Inst::PacSign`], [`Inst::PacAuth`],
//! [`Inst::PacStrip`]) and the pointer-to-pointer runtime calls
//! ([`Inst::PpAdd`] and friends, §4.7.7) — the IR-level analogue of
//! `llvm.ptrauth.sign` / `llvm.ptrauth.auth` intrinsics and the compiler-rt
//! `pp_*` library.

use crate::debug::VarId;
use crate::function::{BlockId, ValueId};
use crate::module::{FuncId, GlobalId, StrId};
use crate::types::{FuncSig, StructId, TypeId};

/// An instruction operand: either a virtual register or an immediate.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A value produced by an earlier instruction or a parameter.
    Value(ValueId),
    /// Integer immediate of the given type.
    ConstInt(i64, TypeId),
    /// Float immediate, stored as raw bits so `Operand` can stay `Eq`-able
    /// in tests via `PartialEq` on bits.
    ConstFloat(u64, TypeId),
    /// The null pointer of the given pointer type.
    Null(TypeId),
    /// The address of a function (a code pointer); type is
    /// pointer-to-function.
    FuncAddr(FuncId, TypeId),
    /// The address of a global variable; type is pointer-to-global-type.
    GlobalAddr(GlobalId, TypeId),
    /// The address of an interned string literal (`char*`).
    Str(StrId, TypeId),
}

impl Operand {
    /// Convenience constructor for a float immediate.
    pub fn float(v: f64, ty: TypeId) -> Self {
        Operand::ConstFloat(v.to_bits(), ty)
    }
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Self {
        Operand::Value(v)
    }
}

/// Binary arithmetic/bitwise operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// Comparison operators (signed semantics; result type is `bool`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// The five ARMv8.3 PA key registers. RSTI uses the data keys (`Da`) for
/// data pointers — "key = 2 (for pacda/autda)" in the paper's Figure 5 —
/// and `Ia` for code pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacKey {
    /// Instruction key A (`paciza`/`pacia`).
    Ia,
    /// Instruction key B.
    Ib,
    /// Data key A (`pacda`/`autda`).
    Da,
    /// Data key B.
    Db,
    /// Generic key (`pacga`), unused by RSTI but part of the hardware model.
    Ga,
}

/// Why a PAC instruction was inserted. Purely diagnostic: drives the
/// instrumentation-count statistics behind Figure 9's correlation analysis
/// and the per-mechanism cost breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacSite {
    /// §4.7.1 on-store signing.
    OnStore,
    /// §4.7.2 on-load authentication.
    OnLoad,
    /// §4.6 STWC cast handling: authenticate with the old RSTI-type then
    /// re-sign with the new one.
    CastResign,
    /// §4.6 STL argument passing: location changed, re-sign.
    ArgResign,
    /// §4.6/§7 stripping before an external (uninstrumented library) call.
    ExternalStrip,
    /// Signing a freshly allocated pointer (malloc result, address-of).
    NewPointer,
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Inst {
    /// Reserve stack storage for one value of `ty`; yields a pointer to it.
    /// `var` links the slot to its debug variable (LLVM: `llvm.dbg.declare`).
    Alloca {
        result: ValueId,
        ty: TypeId,
        var: Option<VarId>,
    },
    /// Load a value of type `ty` from `ptr`.
    Load {
        result: ValueId,
        ptr: Operand,
        ty: TypeId,
    },
    /// Store `value` to `ptr`.
    Store { value: Operand, ptr: Operand },
    /// Address of field `field` of the struct pointed to by `base`
    /// (LLVM: struct GEP). Result type is pointer-to-field-type.
    FieldAddr {
        result: ValueId,
        base: Operand,
        struct_id: StructId,
        field: usize,
    },
    /// `base + index * sizeof(elem_ty)` — array indexing and pointer
    /// arithmetic (LLVM: array GEP). Result has the same type as `base`.
    IndexAddr {
        result: ValueId,
        base: Operand,
        index: Operand,
        elem_ty: TypeId,
    },
    /// Reinterpret a pointer as another pointer type (LLVM: `bitcast`).
    /// This is the cast site the mechanisms treat differently (§4.8).
    BitCast {
        result: ValueId,
        value: Operand,
        to: TypeId,
    },
    /// Numeric conversion between integer widths and to/from `double`
    /// (LLVM: `sext`/`trunc`/`sitofp`/`fptosi`). Never involves pointers.
    Convert {
        result: ValueId,
        value: Operand,
        to: TypeId,
    },
    /// Integer/float binary operation.
    Bin {
        result: ValueId,
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
        ty: TypeId,
    },
    /// Comparison; yields `bool`.
    Cmp {
        result: ValueId,
        op: CmpOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// Direct call.
    Call {
        result: Option<ValueId>,
        callee: FuncId,
        args: Vec<Operand>,
    },
    /// Indirect call through a function pointer — the control-flow-hijack
    /// target surface.
    CallIndirect {
        result: Option<ValueId>,
        callee: Operand,
        sig: FuncSig,
        args: Vec<Operand>,
    },
    /// Heap allocation (models `malloc`); yields a raw `void*`-compatible
    /// pointer of type `result_ty`.
    Malloc {
        result: ValueId,
        size: Operand,
        result_ty: TypeId,
    },
    /// Heap free (models `free`).
    Free { ptr: Operand },
    /// Print an integer (harness observability; models `printf("%ld")`).
    PrintInt { value: Operand },
    /// Print an interned string (models `puts`).
    PrintStr { s: StrId },

    // ---- RSTI instrumentation (inserted by the rsti-core pass) ----
    /// Sign `value` with `key` and modifier `modifier`; when `loc` is set
    /// (RSTI-STL), the runtime mixes the location address into the modifier
    /// (`M = M ^ &p`, paper Figure 5c).
    PacSign {
        result: ValueId,
        value: Operand,
        key: PacKey,
        modifier: u64,
        loc: Option<Operand>,
        site: PacSite,
    },
    /// Authenticate `value`; traps the VM on mismatch. Same modifier rules
    /// as [`Inst::PacSign`].
    PacAuth {
        result: ValueId,
        value: Operand,
        key: PacKey,
        modifier: u64,
        loc: Option<Operand>,
        site: PacSite,
    },
    /// Remove the PAC without authenticating (`xpacd`), used before passing
    /// pointers to uninstrumented external code.
    PacStrip { result: ValueId, value: Operand },

    // ---- pointer-to-pointer runtime library (§4.7.7, Figure 7) ----
    /// `pp_add`: register the Compact Equivalent → Full Equivalent mapping
    /// (CE tag → original RSTI-type modifier) in the read-only metadata
    /// store.
    PpAdd { ce: u8, fe_modifier: u64 },
    /// `pp_sign`: sign a double pointer with the FE modifier registered for
    /// `ce`.
    PpSign {
        result: ValueId,
        value: Operand,
        ce: u8,
        key: PacKey,
    },
    /// `pp_add_tbi`: place the CE tag in the Top-Byte-Ignore byte.
    PpAddTbi {
        result: ValueId,
        value: Operand,
        ce: u8,
    },
    /// `pp_auth`: read the CE from the TBI byte, look up the FE modifier,
    /// authenticate, and clear the tag.
    PpAuth {
        result: ValueId,
        value: Operand,
        key: PacKey,
    },
}

impl Inst {
    /// The value this instruction defines, if any.
    pub fn result(&self) -> Option<ValueId> {
        match self {
            Inst::Alloca { result, .. }
            | Inst::Load { result, .. }
            | Inst::FieldAddr { result, .. }
            | Inst::IndexAddr { result, .. }
            | Inst::BitCast { result, .. }
            | Inst::Convert { result, .. }
            | Inst::Bin { result, .. }
            | Inst::Cmp { result, .. }
            | Inst::Malloc { result, .. }
            | Inst::PacSign { result, .. }
            | Inst::PacAuth { result, .. }
            | Inst::PacStrip { result, .. }
            | Inst::PpSign { result, .. }
            | Inst::PpAddTbi { result, .. }
            | Inst::PpAuth { result, .. } => Some(*result),
            Inst::Call { result, .. } | Inst::CallIndirect { result, .. } => *result,
            Inst::Store { .. }
            | Inst::Free { .. }
            | Inst::PrintInt { .. }
            | Inst::PrintStr { .. }
            | Inst::PpAdd { .. } => None,
        }
    }

    /// Whether this is one of the PA instructions (for cost accounting —
    /// the paper charges each `pac`/`aut` the cost of ~7 XOR ops).
    pub fn is_pac_op(&self) -> bool {
        matches!(
            self,
            Inst::PacSign { .. }
                | Inst::PacAuth { .. }
                | Inst::PacStrip { .. }
                | Inst::PpSign { .. }
                | Inst::PpAuth { .. }
        )
    }

    /// Operands read by this instruction (used by the verifier).
    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            Inst::Alloca { .. } | Inst::PrintStr { .. } | Inst::PpAdd { .. } => vec![],
            Inst::Load { ptr, .. } => vec![ptr],
            Inst::Store { value, ptr } => vec![value, ptr],
            Inst::FieldAddr { base, .. } => vec![base],
            Inst::IndexAddr { base, index, .. } => vec![base, index],
            Inst::BitCast { value, .. } | Inst::Convert { value, .. } => vec![value],
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => vec![lhs, rhs],
            Inst::Call { args, .. } => args.iter().collect(),
            Inst::CallIndirect { callee, args, .. } => {
                let mut v = vec![callee];
                v.extend(args.iter());
                v
            }
            Inst::Malloc { size, .. } => vec![size],
            Inst::Free { ptr } => vec![ptr],
            Inst::PrintInt { value } => vec![value],
            Inst::PacSign { value, loc, .. } | Inst::PacAuth { value, loc, .. } => {
                let mut v = vec![value];
                if let Some(l) = loc {
                    v.push(l);
                }
                v
            }
            Inst::PacStrip { value, .. }
            | Inst::PpSign { value, .. }
            | Inst::PpAddTbi { value, .. }
            | Inst::PpAuth { value, .. } => vec![value],
        }
    }
}

/// Block terminators, kept separate from [`Inst`] so that every block has
/// exactly one by construction.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way conditional branch on a `bool` operand.
    CondBr {
        cond: Operand,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Function return.
    Ret(Option<Operand>),
    /// Control never reaches here (e.g. after a guaranteed trap).
    Unreachable,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_extraction() {
        let i = Inst::Store {
            value: Operand::ConstInt(1, TypeId(4)),
            ptr: Operand::Value(ValueId(0)),
        };
        assert_eq!(i.result(), None);
        let j = Inst::Alloca { result: ValueId(3), ty: TypeId(4), var: None };
        assert_eq!(j.result(), Some(ValueId(3)));
    }

    #[test]
    fn pac_ops_flagged() {
        let s = Inst::PacSign {
            result: ValueId(1),
            value: Operand::Value(ValueId(0)),
            key: PacKey::Da,
            modifier: 42,
            loc: None,
            site: PacSite::OnStore,
        };
        assert!(s.is_pac_op());
        assert_eq!(s.operands().len(), 1);
        let l = Inst::Load {
            result: ValueId(1),
            ptr: Operand::Value(ValueId(0)),
            ty: TypeId(4),
        };
        assert!(!l.is_pac_op());
    }

    #[test]
    fn float_operand_roundtrip() {
        let o = Operand::float(1.5, TypeId(6));
        match o {
            Operand::ConstFloat(bits, _) => assert_eq!(f64::from_bits(bits), 1.5),
            _ => unreachable!(),
        }
    }
}
