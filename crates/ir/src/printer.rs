//! Textual IR printer (LLVM-flavoured), for debugging, docs, and golden
//! tests of the instrumentation pass.

use crate::function::Function;
use crate::inst::{BinOp, CmpOp, Inst, Operand, PacKey, Terminator};
use crate::module::Module;
use std::fmt::Write as _;

/// Renders a whole module as text.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; module {}", m.name);
    for (sid, def) in m.types.structs() {
        let fields: Vec<String> = def
            .fields
            .iter()
            .map(|f| format!("{} {}{}", m.types.display(f.ty), f.name, if f.is_const { " const" } else { "" }))
            .collect();
        let _ = writeln!(out, "struct {} ; #{} {{ {} }}", def.name, sid.0, fields.join(", "));
    }
    for g in &m.globals {
        let _ = writeln!(
            out,
            "global {} : {} = {:?}",
            g.name,
            m.types.display(g.ty),
            g.init
        );
    }
    for (_, f) in m.funcs() {
        out.push_str(&print_function(m, f));
    }
    out
}

/// Renders one function as text.
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .zip(f.sig.params.iter())
        .map(|((v, _), t)| format!("{} {}", m.types.display(*t), v))
        .collect();
    let head = format!(
        "{} @{}({})",
        m.types.display(f.sig.ret),
        f.name,
        params.join(", ")
    );
    if f.is_external {
        let _ = writeln!(out, "declare {head}");
        return out;
    }
    let _ = writeln!(out, "define {head} {{");
    for (bi, blk) in f.blocks.iter().enumerate() {
        let _ = writeln!(out, "bb{bi}:");
        for node in &blk.insts {
            let _ = writeln!(out, "  {}", print_inst(m, f, &node.inst));
        }
        let _ = writeln!(out, "  {}", print_term(m, &blk.term));
    }
    let _ = writeln!(out, "}}");
    out
}

fn print_op(m: &Module, op: &Operand) -> String {
    match op {
        Operand::Value(v) => v.to_string(),
        Operand::ConstInt(i, t) => format!("{} {}", m.types.display(*t), i),
        Operand::ConstFloat(bits, _) => format!("double {}", f64::from_bits(*bits)),
        Operand::Null(t) => format!("{} null", m.types.display(*t)),
        Operand::FuncAddr(fid, _) => format!("@{}", m.funcs[fid.0 as usize].name),
        Operand::GlobalAddr(gid, _) => format!("@g.{}", m.globals[gid.0 as usize].name),
        Operand::Str(sid, _) => format!("str.{}", sid.0),
    }
}

fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
    }
}

fn cmpop_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn key_name(k: PacKey) -> &'static str {
    match k {
        PacKey::Ia => "ia",
        PacKey::Ib => "ib",
        PacKey::Da => "da",
        PacKey::Db => "db",
        PacKey::Ga => "ga",
    }
}

/// Renders a single instruction.
pub fn print_inst(m: &Module, _f: &Function, inst: &Inst) -> String {
    match inst {
        Inst::Alloca { result, ty, var } => {
            let v = var
                .map(|v| format!(" ; var {}", m.var(v).name))
                .unwrap_or_default();
            format!("{result} = alloca {}{v}", m.types.display(*ty))
        }
        Inst::Load { result, ptr, ty } => {
            format!("{result} = load {}, {}", m.types.display(*ty), print_op(m, ptr))
        }
        Inst::Store { value, ptr } => {
            format!("store {}, {}", print_op(m, value), print_op(m, ptr))
        }
        Inst::FieldAddr { result, base, struct_id, field } => {
            let def = m.types.struct_def(*struct_id);
            format!(
                "{result} = fieldaddr {}, {}.{}",
                print_op(m, base),
                def.name,
                def.fields[*field].name
            )
        }
        Inst::IndexAddr { result, base, index, elem_ty } => format!(
            "{result} = indexaddr {}, {} x {}",
            print_op(m, base),
            print_op(m, index),
            m.types.display(*elem_ty)
        ),
        Inst::BitCast { result, value, to } => {
            format!("{result} = bitcast {} to {}", print_op(m, value), m.types.display(*to))
        }
        Inst::Convert { result, value, to } => {
            format!("{result} = convert {} to {}", print_op(m, value), m.types.display(*to))
        }
        Inst::Bin { result, op, lhs, rhs, .. } => format!(
            "{result} = {} {}, {}",
            binop_name(*op),
            print_op(m, lhs),
            print_op(m, rhs)
        ),
        Inst::Cmp { result, op, lhs, rhs } => format!(
            "{result} = cmp {} {}, {}",
            cmpop_name(*op),
            print_op(m, lhs),
            print_op(m, rhs)
        ),
        Inst::Call { result, callee, args } => {
            let args: Vec<String> = args.iter().map(|a| print_op(m, a)).collect();
            let r = result.map(|r| format!("{r} = ")).unwrap_or_default();
            format!("{r}call @{}({})", m.funcs[callee.0 as usize].name, args.join(", "))
        }
        Inst::CallIndirect { result, callee, args, .. } => {
            let args: Vec<String> = args.iter().map(|a| print_op(m, a)).collect();
            let r = result.map(|r| format!("{r} = ")).unwrap_or_default();
            format!("{r}icall {}({})", print_op(m, callee), args.join(", "))
        }
        Inst::Malloc { result, size, result_ty } => format!(
            "{result} = malloc {} as {}",
            print_op(m, size),
            m.types.display(*result_ty)
        ),
        Inst::Free { ptr } => format!("free {}", print_op(m, ptr)),
        Inst::PrintInt { value } => format!("print_int {}", print_op(m, value)),
        Inst::PrintStr { s } => format!("print_str {:?}", m.strings[s.0 as usize]),
        Inst::PacSign { result, value, key, modifier, loc, site } => format!(
            "{result} = pac.sign.{} {}, mod={modifier:#x}{} ; {site:?}",
            key_name(*key),
            print_op(m, value),
            loc.as_ref()
                .map(|l| format!(" ^ &{}", print_op(m, l)))
                .unwrap_or_default()
        ),
        Inst::PacAuth { result, value, key, modifier, loc, site } => format!(
            "{result} = pac.auth.{} {}, mod={modifier:#x}{} ; {site:?}",
            key_name(*key),
            print_op(m, value),
            loc.as_ref()
                .map(|l| format!(" ^ &{}", print_op(m, l)))
                .unwrap_or_default()
        ),
        Inst::PacStrip { result, value } => {
            format!("{result} = pac.strip {}", print_op(m, value))
        }
        Inst::PpAdd { ce, fe_modifier } => {
            format!("pp_add ce={ce}, fe={fe_modifier:#x}")
        }
        Inst::PpSign { result, value, ce, key } => format!(
            "{result} = pp_sign.{} {}, ce={ce}",
            key_name(*key),
            print_op(m, value)
        ),
        Inst::PpAddTbi { result, value, ce } => {
            format!("{result} = pp_add_tbi {}, ce={ce}", print_op(m, value))
        }
        Inst::PpAuth { result, value, key } => {
            format!("{result} = pp_auth.{} {}", key_name(*key), print_op(m, value))
        }
    }
}

fn print_term(m: &Module, t: &Terminator) -> String {
    match t {
        Terminator::Br(b) => format!("br {b}"),
        Terminator::CondBr { cond, then_bb, else_bb } => {
            format!("condbr {}, {then_bb}, {else_bb}", print_op(m, cond))
        }
        Terminator::Ret(None) => "ret void".into(),
        Terminator::Ret(Some(v)) => format!("ret {}", print_op(m, v)),
        Terminator::Unreachable => "unreachable".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::FuncSig;

    #[test]
    fn prints_roundtrippable_text() {
        let mut m = Module::new("demo");
        let i32t = m.types.i32();
        let fid = m.declare_func("f", FuncSig::new(i32t, vec![i32t]), false);
        let mut b = FunctionBuilder::new(&mut m, fid);
        let slot = b.alloca(i32t, None);
        let p0 = b.param(0);
        b.store(p0, slot);
        let v = b.load(slot, i32t);
        b.ret(Some(v.into()));
        b.finish();

        let text = print_module(&m);
        assert!(text.contains("define int @f(int %0)"), "{text}");
        assert!(text.contains("alloca int"), "{text}");
        assert!(text.contains("ret %"), "{text}");
    }

    #[test]
    fn prints_pac_instructions() {
        use crate::inst::{PacSite, PacKey};
        let mut m = Module::new("demo");
        let void = m.types.void();
        let vp = m.types.void_ptr();
        let fid = m.declare_func("g", FuncSig::new(void, vec![vp]), false);
        let mut b = FunctionBuilder::new(&mut m, fid);
        let p = b.param(0);
        let r = b.fresh_value(vp);
        b.push_raw(Inst::PacSign {
            result: r,
            value: p.into(),
            key: PacKey::Da,
            modifier: 0xbeef,
            loc: None,
            site: PacSite::OnStore,
        });
        b.ret(None);
        b.finish();
        let text = print_module(&m);
        assert!(text.contains("pac.sign.da %0, mod=0xbeef ; OnStore"), "{text}");
    }
}
