//! Dominator tree, computed with the Cooper–Harvey–Kennedy algorithm.
//!
//! Block `A` *dominates* block `B` when every path from the entry to `B`
//! passes through `A`. The optimizer leans on this in two places:
//!
//! * **dominator-based auth elision** — a previously authenticated value may
//!   replace a later identical check only when its defining block dominates
//!   the use, so the authenticated register is guaranteed to be live on
//!   every path that reaches the re-check;
//! * **loop analysis** ([`crate::loops`]) — a back edge is an edge whose
//!   target dominates its source; everything else retreating is an
//!   irreducible-graph symptom and makes the loop passes bail out.
//!
//! The algorithm is the classic "A Simple, Fast Dominance Algorithm"
//! (Cooper, Harvey & Kennedy, 2001): iterate `idom[b] = intersect(preds)`
//! over the reverse-postorder until a fixpoint, with `intersect` walking
//! the two candidate dominators up the tree by RPO number. On the small,
//! mostly-structured functions the MiniC frontend emits this converges in
//! two passes.

use crate::cfg::Cfg;
use crate::function::BlockId;

/// The dominator tree of one function, derived from its [`Cfg`].
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` — immediate dominator of block `b`. The entry block is its
    /// own idom (the CHK convention); unreachable blocks have `None`.
    pub idom: Vec<Option<BlockId>>,
    /// RPO numbering copied from the [`Cfg`] (used by `intersect` and by
    /// clients that order queries).
    rpo_index: Vec<Option<u32>>,
}

impl DomTree {
    /// Computes the dominator tree for `cfg`.
    pub fn new(cfg: &Cfg) -> DomTree {
        let n = cfg.succs.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 || cfg.rpo.is_empty() {
            return DomTree { idom, rpo_index: cfg.rpo_index.clone() };
        }
        let entry = cfg.rpo[0];
        idom[entry.0 as usize] = Some(entry);

        let rpo_num = |b: BlockId| cfg.rpo_index[b.0 as usize];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                // First processed predecessor seeds the intersection.
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.0 as usize] {
                    if rpo_num(p).is_none() || idom[p.0 as usize].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &cfg.rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, rpo_index: cfg.rpo_index.clone() }
    }

    /// Immediate dominator of `b` (`None` for the entry and for unreachable
    /// blocks — the entry has no *strict* dominator).
    pub fn idom_of(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.0 as usize] {
            Some(d) if d != b => Some(d),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (reflexively: every block dominates
    /// itself). Unreachable blocks dominate nothing and are dominated by
    /// nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_index[a.0 as usize].is_none() || self.rpo_index[b.0 as usize].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

/// CHK `intersect`: walk the two candidates up the tree until they meet,
/// comparing RPO numbers (the entry has the smallest).
fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[Option<u32>],
    a: BlockId,
    b: BlockId,
) -> BlockId {
    let num = |x: BlockId| rpo_index[x.0 as usize].expect("reachable block");
    let (mut f1, mut f2) = (a, b);
    while f1 != f2 {
        while num(f1) > num(f2) {
            f1 = idom[f1.0 as usize].expect("processed block");
        }
        while num(f2) > num(f1) {
            f2 = idom[f2.0 as usize].expect("processed block");
        }
    }
    f1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::tests::{cond, skeleton};
    use crate::inst::Terminator;

    fn dom_of(terms: Vec<Terminator>) -> (Cfg, DomTree) {
        let f = skeleton(terms);
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg);
        (cfg, dom)
    }

    #[test]
    fn diamond_join_is_dominated_by_fork_only() {
        // 0 -> 1,2 ; 1,2 -> 3
        let (_, dom) = dom_of(vec![
            cond(1, 2),
            Terminator::Br(BlockId(3)),
            Terminator::Br(BlockId(3)),
            Terminator::Ret(None),
        ]);
        assert_eq!(dom.idom_of(BlockId(3)), Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(3)));
        assert!(dom.dominates(BlockId(3), BlockId(3)), "reflexive");
        assert_eq!(dom.idom_of(BlockId(0)), None, "entry has no strict idom");
    }

    #[test]
    fn nested_loop_headers_chain() {
        // 0 -> 1 (outer header); 1 -> 2 (inner header), 5
        // 2 -> 3 (inner body), 4 ; 3 -> 2 (inner latch); 4 -> 1 (outer latch)
        // 5 ret
        let (_, dom) = dom_of(vec![
            Terminator::Br(BlockId(1)),
            cond(2, 5),
            cond(3, 4),
            Terminator::Br(BlockId(2)),
            Terminator::Br(BlockId(1)),
            Terminator::Ret(None),
        ]);
        assert_eq!(dom.idom_of(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom_of(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dom.idom_of(BlockId(3)), Some(BlockId(2)));
        assert_eq!(dom.idom_of(BlockId(4)), Some(BlockId(2)));
        assert_eq!(dom.idom_of(BlockId(5)), Some(BlockId(1)));
        assert!(dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(5)));
    }

    #[test]
    fn multi_exit_loop() {
        // 0 -> 1; 1 -> 2,4 ; 2 -> 3,5 ; 3 -> 1 ; 4 ret ; 5 ret
        // Block 2 exits the loop directly (break): neither exit dominates
        // the other, both are dominated by their branching block.
        let (_, dom) = dom_of(vec![
            Terminator::Br(BlockId(1)),
            cond(2, 4),
            cond(3, 5),
            Terminator::Br(BlockId(1)),
            Terminator::Ret(None),
            Terminator::Ret(None),
        ]);
        assert_eq!(dom.idom_of(BlockId(4)), Some(BlockId(1)));
        assert_eq!(dom.idom_of(BlockId(5)), Some(BlockId(2)));
        assert!(!dom.dominates(BlockId(4), BlockId(5)));
        assert!(dom.dominates(BlockId(1), BlockId(5)));
    }

    #[test]
    fn irreducible_graph_still_has_a_tree() {
        // 0 -> 1,2 ; 1 -> 2 ; 2 -> 1 (two-entry cycle). CHK handles this
        // fine — the loop *forest* is what bails out on it.
        let (_, dom) = dom_of(vec![cond(1, 2), Terminator::Br(BlockId(2)), Terminator::Br(BlockId(1))]);
        assert_eq!(dom.idom_of(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom_of(BlockId(2)), Some(BlockId(0)));
        assert!(!dom.dominates(BlockId(1), BlockId(2)));
        assert!(!dom.dominates(BlockId(2), BlockId(1)));
    }

    #[test]
    fn unreachable_blocks_dominate_nothing() {
        let (_, dom) = dom_of(vec![Terminator::Ret(None), Terminator::Br(BlockId(0))]);
        assert!(!dom.dominates(BlockId(1), BlockId(0)));
        assert!(!dom.dominates(BlockId(0), BlockId(1)));
        assert_eq!(dom.idom_of(BlockId(1)), None);
    }
}
