//! Debug metadata: the IR-level equivalent of LLVM's `llvm.dbg` machinery.
//!
//! The paper's STI analysis (§4.4) recovers three facts per pointer variable
//! from LLVM debug info:
//!
//! * **type** — from the `!DILocalVariable`'s type reference,
//! * **scope** — from the `!DISubprogram` / `!DICompositeType` chain,
//! * **permission** — from a `DW_TAG_const_type` `!DIDerivedType` wrapper.
//!
//! Our frontend attaches the same facts directly: every declared variable
//! gets a [`VarInfo`] record, every instruction an optional [`DebugLoc`]
//! naming the scope it executes in, and struct fields carry their own
//! type/const facts on [`crate::types::FieldDef`].

use crate::types::{StructId, TypeId};
use std::fmt;

/// A lexical scope, in the paper's *extended* sense (§4.4): either a
/// function, or a composite type (for struct members), or an entire module
/// (for globals and for uninstrumented "libc" code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scope {
    /// A function scope, by function index in the module.
    Function(u32),
    /// A composite-type scope (`struct bar` is in the scope of its pointer
    /// members).
    Struct(StructId),
    /// Module/global scope.
    Module,
    /// Code in an external, uninstrumented library ("libc" in the paper's
    /// attack table). Pointers originating here never carry a PAC.
    External,
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Function(i) => write!(f, "fn#{i}"),
            Scope::Struct(s) => write!(f, "struct#{}", s.0),
            Scope::Module => write!(f, "module"),
            Scope::External => write!(f, "external"),
        }
    }
}

/// Reference to a [`VarInfo`] in a module's variable table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "var{}", self.0)
    }
}

/// Where a variable's storage lives. STI treats all three uniformly
/// (§4.7.6: "From the IR's perspective, heap access is just another memory
/// access") but the distinction matters for reports and for the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// A function-local variable (paper: `DILocalVariable`).
    Local,
    /// A function parameter.
    Param,
    /// A module-level global.
    Global,
    /// A struct member, owned by the composite type rather than a function.
    Field,
}

/// Debug record for one declared variable — the unit STI reasons about.
///
/// This is the analogue of `!DILocalVariable` (+ the `!DIDerivedType` chain
/// that encodes `const`). The *declaration* scope recorded here is the
/// starting point; escape analysis in `rsti-core` widens it to the full set
/// of functions that use the variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Source-level name.
    pub name: String,
    /// Declared type.
    pub ty: TypeId,
    /// Declaration scope.
    pub scope: Scope,
    /// `true` when declared `const` (read-only permission).
    pub is_const: bool,
    /// Storage class.
    pub kind: VarKind,
    /// Source line of the declaration (reports only).
    pub line: u32,
}

/// Source location + scope attached to instructions, like LLVM's `!dbg`.
///
/// Per the paper (§4.4): "When instrumenting loads/stores, the scope is
/// obtained with the `!16` instruction and every load/store has this LLVM
/// metadata. Thus, this means the proper scope can always be obtained."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DebugLoc {
    /// The scope the instruction executes in.
    pub scope: Scope,
    /// Source line.
    pub line: u32,
}

impl DebugLoc {
    /// Convenience constructor.
    pub fn new(scope: Scope, line: u32) -> Self {
        DebugLoc { scope, line }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_display() {
        assert_eq!(Scope::Function(3).to_string(), "fn#3");
        assert_eq!(Scope::Module.to_string(), "module");
        assert_eq!(Scope::External.to_string(), "external");
        assert_eq!(Scope::Struct(StructId(1)).to_string(), "struct#1");
    }

    #[test]
    fn scope_ordering_is_total() {
        let mut scopes = vec![
            Scope::Module,
            Scope::Function(2),
            Scope::Function(0),
            Scope::External,
            Scope::Struct(StructId(0)),
        ];
        scopes.sort();
        scopes.dedup();
        assert_eq!(scopes.len(), 5);
    }
}
