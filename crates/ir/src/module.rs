//! Modules: the unit of whole-program analysis.
//!
//! The paper runs its pass in the LTO phase "after all the object files have
//! been combined into one" (§5) precisely so the analysis sees the entire
//! program at once. Our [`Module`] is that combined view: all functions,
//! globals, struct definitions, string literals, and the variable debug
//! table live together.

use crate::debug::{VarId, VarInfo};
use crate::function::Function;
use crate::types::{TypeId, TypeTable};
use std::fmt;

/// Index of a function in a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Index of a global variable in a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

/// Index of an interned string literal in a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrId(pub u32);

/// Initial value of a global.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Zero-initialized storage.
    Zero,
    /// An integer constant.
    Int(i64),
    /// The address of a function (a statically initialized code pointer).
    FuncAddr(FuncId),
    /// The address of a string literal.
    Str(StrId),
}

/// A module-level global variable.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Symbol name.
    pub name: String,
    /// Stored type.
    pub ty: TypeId,
    /// Debug variable record (type/scope/permission facts for STI).
    pub var: VarId,
    /// Initializer.
    pub init: GlobalInit,
}

/// Base virtual address of the globals segment.
///
/// This is *the* address contract between the VM's memory model
/// (`rsti-vm`'s `layout::GLOBAL_BASE` re-exports it) and the optimizer's
/// precomputed-modifier pass: global addresses are fully determined by the
/// module (see [`Module::global_addresses`]), so RSTI-STL's
/// location-mixing (`M ^ &p`, paper Fig. 5c) can be folded into the
/// instruction's modifier field at optimize time instead of being derived
/// on every executed check.
pub const GLOBAL_SEG_BASE: u64 = 0x2000_0000_0000;

/// A whole program.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Module name (reports only).
    pub name: String,
    /// The type universe.
    pub types: TypeTable,
    /// All functions; [`FuncId`] indexes here.
    pub funcs: Vec<Function>,
    /// All globals; [`GlobalId`] indexes here.
    pub globals: Vec<GlobalDef>,
    /// Interned string literals; [`StrId`] indexes here.
    pub strings: Vec<String>,
    /// The program-wide debug variable table; [`VarId`] indexes here.
    /// Covers locals, params, globals, and struct fields.
    pub vars: Vec<VarInfo>,
}

impl Module {
    /// An empty module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Module { name: name.into(), ..Default::default() }
    }

    /// Looks up a function by symbol name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Looks up a global by symbol name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// The function behind an id.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Mutable access to a function (instrumentation passes rewrite bodies).
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// The global behind an id.
    pub fn global(&self, id: GlobalId) -> &GlobalDef {
        &self.globals[id.0 as usize]
    }

    /// The debug record behind a variable id.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.0 as usize]
    }

    /// Registers a debug variable and returns its id.
    pub fn add_var(&mut self, info: VarInfo) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(info);
        id
    }

    /// Interns a string literal.
    pub fn intern_str(&mut self, s: impl Into<String>) -> StrId {
        let s = s.into();
        if let Some(i) = self.strings.iter().position(|x| *x == s) {
            return StrId(i as u32);
        }
        let id = StrId(self.strings.len() as u32);
        self.strings.push(s);
        id
    }

    /// Total instruction count across all function bodies — the program
    /// "size" metric used when correlating overhead with instrumentation
    /// density (§6.3.2).
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.inst_count()).sum()
    }

    /// The virtual address every global will live at when this module is
    /// loaded: `GLOBAL_SEG_BASE` plus the cumulative 8-byte-aligned sizes
    /// of the preceding globals. Deterministic per module — the VM's
    /// loader uses exactly this layout, which is what lets the optimizer
    /// precompute STL location-mixed modifiers statically.
    pub fn global_addresses(&self) -> Vec<u64> {
        let mut addrs = Vec::with_capacity(self.globals.len());
        let mut off = 0u64;
        for g in &self.globals {
            addrs.push(GLOBAL_SEG_BASE.saturating_add(off));
            off = off.saturating_add(
                self.types.size_of(g.ty).max(8).div_ceil(8).saturating_mul(8),
            );
        }
        addrs
    }

    /// Iterator over `(FuncId, &Function)` pairs.
    pub fn funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debug::{Scope, VarKind};

    #[test]
    fn string_interning_dedups() {
        let mut m = Module::new("t");
        let a = m.intern_str("hello");
        let b = m.intern_str("hello");
        let c = m.intern_str("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.strings.len(), 2);
    }

    #[test]
    fn var_table_roundtrip() {
        let mut m = Module::new("t");
        let ty = m.types.i32();
        let id = m.add_var(VarInfo {
            name: "x".into(),
            ty,
            scope: Scope::Module,
            is_const: true,
            kind: VarKind::Global,
            line: 1,
        });
        assert_eq!(m.var(id).name, "x");
        assert!(m.var(id).is_const);
    }
}
