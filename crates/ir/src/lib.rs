//! # rsti-ir — the intermediate representation underneath the RSTI pipeline
//!
//! This crate models the slice of LLVM IR that the RSTI paper's compiler
//! pass consumes and rewrites:
//!
//! * a typed instruction set with `alloca`/`load`/`store`, struct and array
//!   GEPs, `bitcast`, direct/indirect calls, and heap intrinsics
//!   ([`inst`]),
//! * a faithful debug-metadata layer carrying the **scope, type, and
//!   permission** facts STI extracts from `llvm.dbg` ([`debug`]),
//! * PAC pseudo-instructions and the pointer-to-pointer runtime calls that
//!   the instrumentation pass inserts (the analogue of `llvm.ptrauth.*`
//!   intrinsics and the compiler-rt `pp_*` library),
//! * a builder ([`builder::FunctionBuilder`]), a verifier
//!   ([`verify::verify_module`]), and a textual printer ([`printer`]).
//!
//! # Example
//!
//! Build and verify `int twice(int x) { return x + x; }`:
//!
//! ```
//! use rsti_ir::{Module, FunctionBuilder, FuncSig, BinOp};
//!
//! let mut m = Module::new("example");
//! let i32t = m.types.i32();
//! let f = m.declare_func("twice", FuncSig::new(i32t, vec![i32t]), false);
//! let mut b = FunctionBuilder::new(&mut m, f);
//! let x = b.param(0);
//! let r = b.bin(BinOp::Add, x, x, i32t);
//! b.ret(Some(r.into()));
//! b.finish();
//! rsti_ir::verify_module(&m).unwrap();
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod callgraph;
pub mod cfg;
pub mod debug;
pub mod dom;
pub mod function;
pub mod loops;
pub mod inst;
pub mod module;
pub mod printer;
pub mod types;
pub mod verify;

pub use builder::FunctionBuilder;
pub use callgraph::{direct_callees, CallGraph};
pub use cfg::{term_successors, Cfg};
pub use debug::{DebugLoc, Scope, VarId, VarInfo, VarKind};
pub use dom::DomTree;
pub use function::{BasicBlock, BlockId, Function, InstNode, ValueId};
pub use inst::{BinOp, CmpOp, Inst, Operand, PacKey, PacSite, Terminator};
pub use loops::{insert_preheaders, LoopForest, NaturalLoop};
pub use module::{FuncId, GlobalDef, GlobalId, GlobalInit, Module, StrId, GLOBAL_SEG_BASE};
pub use printer::{print_function, print_inst, print_module};
pub use types::{FieldDef, FuncSig, StructDef, StructId, Type, TypeId, TypeLayout, TypeTable};
pub use verify::{verify_module, VerifyError};
