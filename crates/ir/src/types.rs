//! The IR type system.
//!
//! Types are interned in a [`TypeTable`] and referred to by [`TypeId`], the
//! same way LLVM contexts unique their types. Interning makes structural
//! equality an integer comparison and lets the STI analysis key maps by type
//! cheaply.
//!
//! The modelled universe covers exactly what the paper's analysis
//! distinguishes: scalar types, pointers (including pointer-to-pointer at any
//! depth), named composite (struct) types, sized arrays, and function types
//! used through function pointers.

use std::collections::HashMap;
use std::fmt;

/// Interned reference to a [`Type`] inside a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// Reference to a [`StructDef`] inside a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub u32);

/// A function signature: return type plus parameter types.
///
/// Signatures appear both on [`crate::Function`] definitions and inside
/// [`Type::Func`] for function-pointer types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuncSig {
    /// Return type ([`TypeTable::void`] for `void` functions).
    pub ret: TypeId,
    /// Parameter types, in order.
    pub params: Vec<TypeId>,
    /// Whether extra arguments are accepted (C varargs, used by `printf`
    /// style externals).
    pub varargs: bool,
}

impl FuncSig {
    /// Creates a non-varargs signature.
    pub fn new(ret: TypeId, params: Vec<TypeId>) -> Self {
        FuncSig { ret, params, varargs: false }
    }
}

/// A single IR type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// The absence of a value (function returns only).
    Void,
    /// 1-bit boolean (comparison results).
    Bool,
    /// 8-bit integer (`char`).
    I8,
    /// 16-bit integer (`short`).
    I16,
    /// 32-bit integer (`int`).
    I32,
    /// 64-bit integer (`long`).
    I64,
    /// 64-bit IEEE float (`double`).
    F64,
    /// Pointer to the given pointee type.
    Ptr(TypeId),
    /// A named composite type; the definition lives in the [`TypeTable`].
    Struct(StructId),
    /// Fixed-length array of an element type.
    Array(TypeId, u64),
    /// A function type; only meaningful behind a pointer.
    Func(FuncSig),
}

/// A field of a composite type, carrying the debug facts STI consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Source-level field name.
    pub name: String,
    /// Field type.
    pub ty: TypeId,
    /// Whether the field was declared `const` (read-only permission).
    pub is_const: bool,
}

/// Definition of a named composite (struct) type.
///
/// This doubles as the IR equivalent of LLVM's `!DICompositeType`: the STI
/// analysis treats the struct itself as part of the *scope* of its pointer
/// members (paper §4.4, §4.7.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Source-level struct name.
    pub name: String,
    /// Ordered field definitions.
    pub fields: Vec<FieldDef>,
}

impl StructDef {
    /// Index of the field with the given name, if present.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// Interning table for types and struct definitions.
///
/// A fresh table always contains the scalar types, exposed through the
/// accessor methods ([`TypeTable::i32`], [`TypeTable::void`], ...), so these
/// never allocate.
#[derive(Debug, Clone)]
pub struct TypeTable {
    types: Vec<Type>,
    lookup: HashMap<Type, TypeId>,
    structs: Vec<StructDef>,
    struct_names: HashMap<String, StructId>,
}

impl Default for TypeTable {
    fn default() -> Self {
        Self::new()
    }
}

impl TypeTable {
    /// Creates a table pre-populated with the scalar types.
    pub fn new() -> Self {
        let mut t = TypeTable {
            types: Vec::new(),
            lookup: HashMap::new(),
            structs: Vec::new(),
            struct_names: HashMap::new(),
        };
        // Order must match the scalar accessors below.
        for ty in [
            Type::Void,
            Type::Bool,
            Type::I8,
            Type::I16,
            Type::I32,
            Type::I64,
            Type::F64,
        ] {
            t.intern(ty);
        }
        t
    }

    /// `void`
    pub fn void(&self) -> TypeId {
        TypeId(0)
    }
    /// `bool` (i1)
    pub fn bool(&self) -> TypeId {
        TypeId(1)
    }
    /// `i8`
    pub fn i8(&self) -> TypeId {
        TypeId(2)
    }
    /// `i16`
    pub fn i16(&self) -> TypeId {
        TypeId(3)
    }
    /// `i32`
    pub fn i32(&self) -> TypeId {
        TypeId(4)
    }
    /// `i64`
    pub fn i64(&self) -> TypeId {
        TypeId(5)
    }
    /// `f64`
    pub fn f64(&self) -> TypeId {
        TypeId(6)
    }

    /// Interns a type, returning its id. Structurally equal types share ids.
    pub fn intern(&mut self, ty: Type) -> TypeId {
        if let Some(&id) = self.lookup.get(&ty) {
            return id;
        }
        let id = TypeId(self.types.len() as u32);
        self.types.push(ty.clone());
        self.lookup.insert(ty, id);
        id
    }

    /// Interns a pointer to `pointee`.
    pub fn ptr(&mut self, pointee: TypeId) -> TypeId {
        self.intern(Type::Ptr(pointee))
    }

    /// Interns `void*`, the universal pointer type.
    pub fn void_ptr(&mut self) -> TypeId {
        let v = self.void();
        self.ptr(v)
    }

    /// Interns `char*` (`i8*`).
    pub fn char_ptr(&mut self) -> TypeId {
        let c = self.i8();
        self.ptr(c)
    }

    /// Interns an array type.
    pub fn array(&mut self, elem: TypeId, len: u64) -> TypeId {
        self.intern(Type::Array(elem, len))
    }

    /// Interns a function type from its signature.
    pub fn func(&mut self, sig: FuncSig) -> TypeId {
        self.intern(Type::Func(sig))
    }

    /// Declares a new struct; panics if the name is taken.
    ///
    /// # Panics
    /// Panics when a struct with the same name was already declared; MiniC
    /// has a single flat struct namespace.
    pub fn declare_struct(&mut self, def: StructDef) -> StructId {
        assert!(
            !self.struct_names.contains_key(&def.name),
            "duplicate struct `{}`",
            def.name
        );
        let id = StructId(self.structs.len() as u32);
        self.struct_names.insert(def.name.clone(), id);
        self.structs.push(def);
        id
    }

    /// Looks up a struct by name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.struct_names.get(name).copied()
    }

    /// The definition of a struct.
    pub fn struct_def(&self, id: StructId) -> &StructDef {
        &self.structs[id.0 as usize]
    }

    /// Mutable access to a struct definition (used when MiniC declares a
    /// struct before its body is known, e.g. self-referential nodes).
    pub fn struct_def_mut(&mut self, id: StructId) -> &mut StructDef {
        &mut self.structs[id.0 as usize]
    }

    /// The [`Type`] behind an id.
    pub fn get(&self, id: TypeId) -> &Type {
        &self.types[id.0 as usize]
    }

    /// Number of interned types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the table holds no types (never true in practice: scalars are
    /// pre-interned).
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Number of declared structs.
    pub fn struct_count(&self) -> usize {
        self.structs.len()
    }

    /// Iterator over `(StructId, &StructDef)` pairs.
    pub fn structs(&self) -> impl Iterator<Item = (StructId, &StructDef)> {
        self.structs
            .iter()
            .enumerate()
            .map(|(i, d)| (StructId(i as u32), d))
    }

    /// Whether `id` is a pointer type.
    pub fn is_ptr(&self, id: TypeId) -> bool {
        matches!(self.get(id), Type::Ptr(_))
    }

    /// Pointee of a pointer type, if `id` is a pointer.
    pub fn pointee(&self, id: TypeId) -> Option<TypeId> {
        match self.get(id) {
            Type::Ptr(p) => Some(*p),
            _ => None,
        }
    }

    /// Pointer indirection depth: `i32` is 0, `i32*` is 1, `i32**` is 2...
    pub fn ptr_depth(&self, id: TypeId) -> u32 {
        let mut depth = 0;
        let mut cur = id;
        while let Type::Ptr(p) = self.get(cur) {
            depth += 1;
            cur = *p;
        }
        depth
    }

    /// Whether values of this type are function pointers.
    pub fn is_func_ptr(&self, id: TypeId) -> bool {
        match self.get(id) {
            Type::Ptr(p) => matches!(self.get(*p), Type::Func(_)),
            _ => false,
        }
    }

    /// Size of the type in bytes under the VM's data layout (pointers are 8
    /// bytes, `bool` is 1 byte, structs have no padding beyond natural field
    /// sizes — a simplification the whole workspace shares).
    pub fn size_of(&self, id: TypeId) -> u64 {
        match self.get(id) {
            Type::Void => 0,
            Type::Bool | Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 => 4,
            Type::I64 | Type::F64 | Type::Ptr(_) => 8,
            Type::Struct(sid) => {
                let def = self.struct_def(*sid);
                def.fields
                    .iter()
                    .fold(0u64, |acc, f| acc.saturating_add(self.size_of(f.ty)))
            }
            // Saturating: a declared `long a[<huge>]` must yield a size the
            // VM's segment bound can reject, not a multiply overflow.
            Type::Array(elem, n) => self.size_of(*elem).saturating_mul(*n),
            // A bare function type has no storage; only pointers to it do.
            Type::Func(_) => 0,
        }
    }

    /// Byte offset of field `idx` inside struct `sid`.
    ///
    /// # Panics
    /// Panics when `idx` is out of range for the struct.
    pub fn field_offset(&self, sid: StructId, idx: usize) -> u64 {
        let def = self.struct_def(sid);
        assert!(idx < def.fields.len(), "field index out of range");
        def.fields[..idx].iter().map(|f| self.size_of(f.ty)).sum()
    }

    /// Precomputes the data layout of every interned type and struct, so
    /// per-access address arithmetic (the interpreter's `IndexAddr` /
    /// `FieldAddr` / `Alloca` paths) is an indexed load instead of a
    /// recursive walk over struct definitions.
    pub fn layout(&self) -> TypeLayout {
        let sizes = (0..self.types.len()).map(|i| self.size_of(TypeId(i as u32))).collect();
        let field_offsets = self
            .structs
            .iter()
            .map(|d| {
                let mut off = 0u64;
                d.fields
                    .iter()
                    .map(|f| {
                        let o = off;
                        off += self.size_of(f.ty);
                        o
                    })
                    .collect()
            })
            .collect();
        TypeLayout { sizes, field_offsets }
    }

    /// Renders a type as C-flavoured source text (`struct node*`, `void*`,
    /// `int (*)(int)`), the spelling used in reports and tables.
    pub fn display(&self, id: TypeId) -> String {
        match self.get(id) {
            Type::Void => "void".into(),
            Type::Bool => "bool".into(),
            Type::I8 => "char".into(),
            Type::I16 => "short".into(),
            Type::I32 => "int".into(),
            Type::I64 => "long".into(),
            Type::F64 => "double".into(),
            Type::Ptr(p) => format!("{}*", self.display(*p)),
            Type::Struct(sid) => format!("struct {}", self.struct_def(*sid).name),
            Type::Array(e, n) => format!("{}[{}]", self.display(*e), n),
            Type::Func(sig) => {
                let params: Vec<String> =
                    sig.params.iter().map(|p| self.display(*p)).collect();
                format!("{} ({})", self.display(sig.ret), params.join(", "))
            }
        }
    }
}

/// Frozen layout answers for a [`TypeTable`]: the size of every interned
/// type and the byte offset of every struct field, computed once by
/// [`TypeTable::layout`]. Valid for as long as the table it was built from
/// is not extended (the VM builds it after the module is final).
#[derive(Debug, Clone)]
pub struct TypeLayout {
    sizes: Vec<u64>,
    field_offsets: Vec<Vec<u64>>,
}

impl TypeLayout {
    /// Size of the type in bytes; same answer as [`TypeTable::size_of`].
    #[inline]
    pub fn size_of(&self, id: TypeId) -> u64 {
        self.sizes[id.0 as usize]
    }

    /// Byte offset of field `idx` inside struct `sid`; same answer as
    /// [`TypeTable::field_offset`].
    #[inline]
    pub fn field_offset(&self, sid: StructId, idx: usize) -> u64 {
        self.field_offsets[sid.0 as usize][idx]
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_are_preinterned() {
        let t = TypeTable::new();
        assert_eq!(t.get(t.void()), &Type::Void);
        assert_eq!(t.get(t.i32()), &Type::I32);
        assert_eq!(t.get(t.f64()), &Type::F64);
    }

    #[test]
    fn interning_dedups() {
        let mut t = TypeTable::new();
        let a = t.ptr(t.i32());
        let b = t.ptr(t.i32());
        assert_eq!(a, b);
        let c = t.ptr(a);
        assert_ne!(a, c);
        assert_eq!(t.ptr_depth(c), 2);
    }

    #[test]
    fn struct_layout() {
        let mut t = TypeTable::new();
        let i32t = t.i32();
        let sid = t.declare_struct(StructDef {
            name: "node".into(),
            fields: vec![
                FieldDef { name: "key".into(), ty: i32t, is_const: false },
                FieldDef { name: "next".into(), ty: i32t, is_const: false },
            ],
        });
        let st = t.intern(Type::Struct(sid));
        assert_eq!(t.size_of(st), 8);
        assert_eq!(t.field_offset(sid, 1), 4);
        assert_eq!(t.struct_by_name("node"), Some(sid));
    }

    #[test]
    fn display_matches_c_spelling() {
        let mut t = TypeTable::new();
        let vp = t.void_ptr();
        assert_eq!(t.display(vp), "void*");
        let i32t = t.i32();
        let sig = FuncSig::new(i32t, vec![vp]);
        let f = t.func(sig);
        let fp = t.ptr(f);
        assert_eq!(t.display(fp), "int (void*)*");
    }

    #[test]
    fn func_ptr_detection() {
        let mut t = TypeTable::new();
        let void = t.void();
        let f = t.func(FuncSig::new(void, vec![]));
        let fp = t.ptr(f);
        assert!(t.is_func_ptr(fp));
        assert!(!t.is_func_ptr(t.i32()));
        let vp = t.void_ptr();
        assert!(!t.is_func_ptr(vp));
    }

    #[test]
    fn array_sizes() {
        let mut t = TypeTable::new();
        let a = t.array(t.i32(), 10);
        assert_eq!(t.size_of(a), 40);
        let i8t = t.i8();
        let pa = t.ptr(i8t);
        assert_eq!(t.size_of(pa), 8);
    }
}
