//! The module verifier.
//!
//! Instrumentation passes rewrite instruction streams wholesale; the
//! verifier gives them (and the frontend) a machine-checked well-formedness
//! contract so that the VM can assume structurally valid input. It checks:
//!
//! * every branch targets an existing block and no block is left
//!   unterminated (except deliberate `unreachable`),
//! * every operand refers to a defined value,
//! * loads/stores/GEPs/calls/returns are type-consistent.
//!
//! Pointer-typed positions are checked *loosely* (any pointer may stand in
//! for any other): MiniC, like C, freely passes `struct node*` where `void*`
//! is expected, and the instrumentation inserts `PacSign`/`PacAuth` values
//! that keep the original pointer type. Scalar positions are checked
//! strictly.

use crate::function::Function;
use crate::inst::{Inst, Operand, Terminator};
use crate::module::Module;
use crate::types::{Type, TypeId};
use std::fmt;

/// A single verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub func: String,
    /// Block index.
    pub block: usize,
    /// Instruction index within the block (`usize::MAX` = terminator).
    pub index: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.index == usize::MAX {
            write!(f, "{}: bb{}: terminator: {}", self.func, self.block, self.msg)
        } else {
            write!(f, "{}: bb{}[{}]: {}", self.func, self.block, self.index, self.msg)
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole module. Returns all failures rather than the first.
///
/// # Errors
/// Returns the list of [`VerifyError`]s when the module is ill-formed.
pub fn verify_module(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();
    for (_, f) in m.funcs() {
        verify_function(m, f, &mut errs);
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

struct Ctx<'a> {
    m: &'a Module,
    f: &'a Function,
    errs: &'a mut Vec<VerifyError>,
    block: usize,
    index: usize,
}

impl Ctx<'_> {
    fn err(&mut self, msg: impl Into<String>) {
        self.errs.push(VerifyError {
            func: self.f.name.clone(),
            block: self.block,
            index: self.index,
            msg: msg.into(),
        });
    }

    fn operand_type(&mut self, op: &Operand) -> Option<TypeId> {
        match op {
            Operand::Value(v) => {
                if (v.0 as usize) < self.f.value_types.len() {
                    Some(self.f.value_types[v.0 as usize])
                } else {
                    self.err(format!("use of undefined value %{}", v.0));
                    None
                }
            }
            Operand::ConstInt(_, t)
            | Operand::ConstFloat(_, t)
            | Operand::Null(t)
            | Operand::Str(_, t) => Some(*t),
            Operand::FuncAddr(fid, t) => {
                if (fid.0 as usize) >= self.m.funcs.len() {
                    self.err(format!("funcaddr of unknown function @{}", fid.0));
                }
                Some(*t)
            }
            Operand::GlobalAddr(gid, t) => {
                if (gid.0 as usize) >= self.m.globals.len() {
                    self.err(format!("globaladdr of unknown global #{}", gid.0));
                }
                Some(*t)
            }
        }
    }

    /// Strict match for scalars; any-pointer-matches-any-pointer laxity.
    fn types_compatible(&self, a: TypeId, b: TypeId) -> bool {
        if a == b {
            return true;
        }
        matches!(
            (self.m.types.get(a), self.m.types.get(b)),
            (Type::Ptr(_), Type::Ptr(_))
        )
    }

    fn expect_compatible(&mut self, what: &str, expected: TypeId, got: TypeId) {
        if !self.types_compatible(expected, got) {
            let e = self.m.types.display(expected);
            let g = self.m.types.display(got);
            self.err(format!("{what}: expected `{e}`, got `{g}`"));
        }
    }

    fn expect_ptr(&mut self, what: &str, ty: TypeId) -> Option<TypeId> {
        match self.m.types.get(ty) {
            Type::Ptr(p) => Some(*p),
            _ => {
                self.err(format!(
                    "{what}: expected a pointer, got `{}`",
                    self.m.types.display(ty)
                ));
                None
            }
        }
    }
}

fn verify_function(m: &Module, f: &Function, errs: &mut Vec<VerifyError>) {
    if f.is_external {
        if !f.blocks.is_empty() {
            errs.push(VerifyError {
                func: f.name.clone(),
                block: 0,
                index: 0,
                msg: "external function has a body".into(),
            });
        }
        return;
    }
    if f.blocks.is_empty() {
        errs.push(VerifyError {
            func: f.name.clone(),
            block: 0,
            index: 0,
            msg: "defined function has no blocks".into(),
        });
        return;
    }

    let mut ctx = Ctx { m, f, errs, block: 0, index: 0 };

    for (bi, blk) in f.blocks.iter().enumerate() {
        ctx.block = bi;
        for (ii, node) in blk.insts.iter().enumerate() {
            ctx.index = ii;
            verify_inst(&mut ctx, &node.inst);
        }
        ctx.index = usize::MAX;
        match &blk.term {
            Terminator::Br(t) => {
                if (t.0 as usize) >= f.blocks.len() {
                    ctx.err(format!("branch to unknown block {t}"));
                }
            }
            Terminator::CondBr { cond, then_bb, else_bb } => {
                if let Some(ct) = ctx.operand_type(cond) {
                    ctx.expect_compatible("condbr condition", m.types.bool(), ct);
                }
                for t in [then_bb, else_bb] {
                    if (t.0 as usize) >= f.blocks.len() {
                        ctx.err(format!("branch to unknown block {t}"));
                    }
                }
            }
            Terminator::Ret(v) => {
                let want = f.sig.ret;
                match v {
                    None => {
                        if want != m.types.void() {
                            ctx.err("return without value from non-void function");
                        }
                    }
                    Some(op) => {
                        if want == m.types.void() {
                            ctx.err("return with value from void function");
                        } else if let Some(t) = ctx.operand_type(op) {
                            ctx.expect_compatible("return value", want, t);
                        }
                    }
                }
            }
            Terminator::Unreachable => {}
        }
    }
}

fn verify_inst(ctx: &mut Ctx<'_>, inst: &Inst) {
    // All operands must at least be defined.
    for op in inst.operands() {
        ctx.operand_type(op);
    }
    match inst {
        Inst::Load { result, ptr, ty } => {
            if let Some(pt) = ctx.operand_type(ptr) {
                if let Some(pointee) = ctx.expect_ptr("load pointer", pt) {
                    ctx.expect_compatible("load result", *ty, pointee);
                }
            }
            let rt = ctx.f.value_types[result.0 as usize];
            ctx.expect_compatible("load result register", *ty, rt);
        }
        Inst::Store { value, ptr } => {
            let vt = ctx.operand_type(value);
            if let (Some(vt), Some(pt)) = (vt, ctx.operand_type(ptr)) {
                if let Some(pointee) = ctx.expect_ptr("store pointer", pt) {
                    ctx.expect_compatible("store value", pointee, vt);
                }
            }
        }
        Inst::FieldAddr { base, struct_id, field, .. } => {
            if (struct_id.0 as usize) >= ctx.m.types.struct_count() {
                ctx.err("fieldaddr of unknown struct");
                return;
            }
            let def = ctx.m.types.struct_def(*struct_id);
            if *field >= def.fields.len() {
                ctx.err(format!(
                    "field index {} out of range for struct {}",
                    field, def.name
                ));
            }
            if let Some(bt) = ctx.operand_type(base) {
                ctx.expect_ptr("fieldaddr base", bt);
            }
        }
        Inst::IndexAddr { base, index, .. } => {
            if let Some(bt) = ctx.operand_type(base) {
                ctx.expect_ptr("indexaddr base", bt);
            }
            if let Some(it) = ctx.operand_type(index) {
                if !matches!(
                    ctx.m.types.get(it),
                    Type::I8 | Type::I16 | Type::I32 | Type::I64
                ) {
                    ctx.err("indexaddr index must be an integer");
                }
            }
        }
        Inst::BitCast { value, to, .. } => {
            if let Some(vt) = ctx.operand_type(value) {
                let both_ptr = ctx.m.types.is_ptr(vt) && ctx.m.types.is_ptr(*to);
                if !both_ptr {
                    ctx.err("bitcast requires pointer types on both sides");
                }
            }
        }
        Inst::Convert { value, to, .. } => {
            if let Some(vt) = ctx.operand_type(value) {
                let numeric = |t: TypeId| {
                    matches!(
                        ctx.m.types.get(t),
                        Type::Bool | Type::I8 | Type::I16 | Type::I32 | Type::I64 | Type::F64
                    )
                };
                if !numeric(vt) || !numeric(*to) {
                    ctx.err("convert requires numeric types on both sides");
                }
            }
        }
        Inst::Bin { op: _, lhs, rhs, ty, .. } => {
            if let Some(t) = ctx.operand_type(lhs) {
                ctx.expect_compatible("binop lhs", *ty, t);
            }
            if let Some(t) = ctx.operand_type(rhs) {
                ctx.expect_compatible("binop rhs", *ty, t);
            }
        }
        Inst::Cmp { lhs, rhs, .. } => {
            if let (Some(a), Some(b)) = (ctx.operand_type(lhs), ctx.operand_type(rhs)) {
                if !ctx.types_compatible(a, b) {
                    ctx.err("cmp operands have different types");
                }
            }
        }
        Inst::Call { callee, args, .. } => {
            if (callee.0 as usize) >= ctx.m.funcs.len() {
                ctx.err("call to unknown function");
                return;
            }
            let sig = ctx.m.funcs[callee.0 as usize].sig.clone();
            check_call_args(ctx, &sig, args);
        }
        Inst::CallIndirect { callee, sig, args, .. } => {
            if let Some(ct) = ctx.operand_type(callee) {
                ctx.expect_ptr("indirect callee", ct);
            }
            check_call_args(ctx, sig, args);
        }
        Inst::Malloc { size, .. } => {
            if let Some(st) = ctx.operand_type(size) {
                if !matches!(ctx.m.types.get(st), Type::I32 | Type::I64) {
                    ctx.err("malloc size must be i32/i64");
                }
            }
        }
        Inst::Free { ptr } | Inst::PacStrip { value: ptr, .. } => {
            if let Some(pt) = ctx.operand_type(ptr) {
                ctx.expect_ptr("pointer operand", pt);
            }
        }
        Inst::PacSign { value, loc, .. } | Inst::PacAuth { value, loc, .. } => {
            if let Some(vt) = ctx.operand_type(value) {
                ctx.expect_ptr("pac operand", vt);
            }
            if let Some(l) = loc {
                if let Some(lt) = ctx.operand_type(l) {
                    ctx.expect_ptr("pac location", lt);
                }
            }
        }
        Inst::PpSign { value, .. } | Inst::PpAddTbi { value, .. } | Inst::PpAuth { value, .. } => {
            if let Some(vt) = ctx.operand_type(value) {
                ctx.expect_ptr("pp operand", vt);
            }
        }
        Inst::PrintStr { s } => {
            if (s.0 as usize) >= ctx.m.strings.len() {
                ctx.err("print of unknown string");
            }
        }
        Inst::Alloca { .. } | Inst::PrintInt { .. } | Inst::PpAdd { .. } => {}
    }
}

fn check_call_args(ctx: &mut Ctx<'_>, sig: &crate::types::FuncSig, args: &[Operand]) {
    let fixed = sig.params.len();
    if args.len() < fixed || (!sig.varargs && args.len() != fixed) {
        ctx.err(format!(
            "call arity mismatch: expected {}{}, got {}",
            fixed,
            if sig.varargs { "+" } else { "" },
            args.len()
        ));
        return;
    }
    for (i, (arg, want)) in args.iter().zip(sig.params.iter()).enumerate() {
        if let Some(t) = ctx.operand_type(arg) {
            ctx.expect_compatible(&format!("call argument {i}"), *want, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;
    use crate::types::FuncSig;

    #[test]
    fn valid_module_passes() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let fid = m.declare_func("f", FuncSig::new(i32t, vec![i32t]), false);
        let mut b = FunctionBuilder::new(&mut m, fid);
        let p = b.param(0);
        let r = b.bin(BinOp::Mul, p, Operand::ConstInt(2, i32t), i32t);
        b.ret(Some(r.into()));
        b.finish();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn type_mismatch_caught() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let f64t = m.types.f64();
        let fid = m.declare_func("f", FuncSig::new(i32t, vec![]), false);
        let mut b = FunctionBuilder::new(&mut m, fid);
        let slot = b.alloca(i32t, None);
        // storing a double into an i32 slot
        b.store(Operand::float(1.0, f64t), slot);
        b.ret(Some(Operand::ConstInt(0, i32t)));
        b.finish();
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.msg.contains("store value")), "{errs:?}");
    }

    #[test]
    fn missing_return_value_caught() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let fid = m.declare_func("f", FuncSig::new(i32t, vec![]), false);
        let mut b = FunctionBuilder::new(&mut m, fid);
        b.ret(None);
        b.finish();
        let errs = verify_module(&m).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].to_string().contains("without value"));
    }

    #[test]
    fn pointer_laxity_between_pointer_types() {
        // Storing a struct pointer into a void* slot is fine, as in C.
        let mut m = Module::new("t");
        let void = m.types.void();
        let vp = m.types.void_ptr();
        let i32t = m.types.i32();
        let ip = m.types.ptr(i32t);
        let fid = m.declare_func("f", FuncSig::new(void, vec![ip]), false);
        let mut b = FunctionBuilder::new(&mut m, fid);
        let arg = b.param(0);
        let slot = b.alloca(vp, None);
        b.store(arg, slot);
        b.ret(None);
        b.finish();
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn branch_to_unknown_block_caught() {
        let mut m = Module::new("t");
        let void = m.types.void();
        let fid = m.declare_func("f", FuncSig::new(void, vec![]), false);
        let mut b = FunctionBuilder::new(&mut m, fid);
        b.br(crate::function::BlockId(9));
        b.finish();
        let errs = verify_module(&m).unwrap_err();
        assert!(errs[0].msg.contains("unknown block"));
    }
}
