//! Convenience builder for constructing IR, used by the MiniC frontend, the
//! instrumentation tests, and the workload generator.
//!
//! Functions are *declared* first ([`Module::declare_func`]) so that bodies
//! may reference each other (forward calls, mutual recursion, function
//! pointers), then *defined* through a [`FunctionBuilder`] which tracks the
//! current block and debug location and assigns fresh [`ValueId`]s with
//! their types.

use crate::debug::{DebugLoc, VarId};
use crate::function::{BasicBlock, BlockId, Function, InstNode, ValueId};
use crate::inst::{BinOp, CmpOp, Inst, Operand, Terminator};
use crate::module::{FuncId, Module, StrId};
use crate::types::{FuncSig, StructId, Type, TypeId};

impl Module {
    /// Declares a function (body added later through [`FunctionBuilder`]).
    /// Parameters receive the first `sig.params.len()` value ids.
    pub fn declare_func(
        &mut self,
        name: impl Into<String>,
        sig: FuncSig,
        is_external: bool,
    ) -> FuncId {
        let params: Vec<(ValueId, Option<VarId>)> = (0..sig.params.len())
            .map(|i| (ValueId(i as u32), None))
            .collect();
        let value_types = sig.params.clone();
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(Function {
            name: name.into(),
            sig,
            params,
            blocks: Vec::new(),
            value_types,
            is_external,
        });
        id
    }
}

/// Builds the body of a previously declared function.
///
/// The builder temporarily takes the [`Function`] out of the module so it can
/// hand out `&mut` access to both; [`FunctionBuilder::finish`] puts it back.
/// Dropping the builder without calling `finish` leaves the declaration
/// empty (useful in tests that only need declarations).
pub struct FunctionBuilder<'m> {
    /// The module, available for interning types, strings, and variables.
    pub module: &'m mut Module,
    func: Function,
    fid: FuncId,
    cur: BlockId,
    cur_loc: Option<DebugLoc>,
}

impl<'m> FunctionBuilder<'m> {
    /// Starts building `fid`'s body. Creates the entry block (`bb0`).
    ///
    /// # Panics
    /// Panics when the function already has a body or is external.
    pub fn new(module: &'m mut Module, fid: FuncId) -> Self {
        // The placeholder keeps the declaration (name, signature, params)
        // visible so that recursive and mutually recursive calls resolve
        // correctly while the body is under construction.
        let slot = &mut module.funcs[fid.0 as usize];
        let placeholder = Function {
            name: slot.name.clone(),
            sig: slot.sig.clone(),
            params: slot.params.clone(),
            blocks: vec![],
            value_types: slot.sig.params.clone(),
            is_external: slot.is_external,
        };
        let func = std::mem::replace(slot, placeholder);
        assert!(!func.is_external, "cannot build body of external `{}`", func.name);
        assert!(func.blocks.is_empty(), "function `{}` already defined", func.name);
        let mut b = FunctionBuilder { module, func, fid, cur: BlockId(0), cur_loc: None };
        b.func.blocks.push(BasicBlock::new());
        b
    }

    /// The id of the function under construction.
    pub fn func_id(&self) -> FuncId {
        self.fid
    }

    /// The value bound to parameter `i`.
    pub fn param(&self, i: usize) -> ValueId {
        self.func.params[i].0
    }

    /// Attaches a debug variable to parameter `i`.
    pub fn set_param_var(&mut self, i: usize, var: VarId) {
        self.func.params[i].1 = Some(var);
    }

    /// Sets the debug location attached to subsequently emitted
    /// instructions.
    pub fn set_loc(&mut self, loc: DebugLoc) {
        self.cur_loc = Some(loc);
    }

    /// Creates a new (empty, unterminated) block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(BasicBlock::new());
        id
    }

    /// Moves the insertion point to `bb`.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.cur = bb;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Whether the current block already has a real terminator.
    pub fn current_terminated(&self) -> bool {
        !matches!(
            self.func.blocks[self.cur.0 as usize].term,
            Terminator::Unreachable
        )
    }

    fn fresh(&mut self, ty: TypeId) -> ValueId {
        let id = ValueId(self.func.value_types.len() as u32);
        self.func.value_types.push(ty);
        id
    }

    fn push(&mut self, inst: Inst) {
        let loc = self.cur_loc;
        self.func.blocks[self.cur.0 as usize]
            .insts
            .push(InstNode { inst, loc });
    }

    /// Type of an operand under this function's value table.
    pub fn operand_type(&self, op: &Operand) -> TypeId {
        match op {
            Operand::Value(v) => self.func.value_types[v.0 as usize],
            Operand::ConstInt(_, t)
            | Operand::ConstFloat(_, t)
            | Operand::Null(t)
            | Operand::FuncAddr(_, t)
            | Operand::GlobalAddr(_, t)
            | Operand::Str(_, t) => *t,
        }
    }

    // ---- instruction emitters -------------------------------------------

    /// `alloca ty` — a stack slot; yields `ty*`.
    pub fn alloca(&mut self, ty: TypeId, var: Option<VarId>) -> ValueId {
        let ptr_ty = self.module.types.ptr(ty);
        let result = self.fresh(ptr_ty);
        self.push(Inst::Alloca { result, ty, var });
        result
    }

    /// `load ty, ptr`.
    pub fn load(&mut self, ptr: impl Into<Operand>, ty: TypeId) -> ValueId {
        let result = self.fresh(ty);
        self.push(Inst::Load { result, ptr: ptr.into(), ty });
        result
    }

    /// `store value, ptr`.
    pub fn store(&mut self, value: impl Into<Operand>, ptr: impl Into<Operand>) {
        self.push(Inst::Store { value: value.into(), ptr: ptr.into() });
    }

    /// Struct-field GEP; yields a pointer to the field.
    pub fn field_addr(
        &mut self,
        base: impl Into<Operand>,
        struct_id: StructId,
        field: usize,
    ) -> ValueId {
        let fty = self.module.types.struct_def(struct_id).fields[field].ty;
        let rty = self.module.types.ptr(fty);
        let result = self.fresh(rty);
        self.push(Inst::FieldAddr { result, base: base.into(), struct_id, field });
        result
    }

    /// Array/pointer-arithmetic GEP; result has the base pointer's type.
    pub fn index_addr(
        &mut self,
        base: impl Into<Operand>,
        index: impl Into<Operand>,
        elem_ty: TypeId,
    ) -> ValueId {
        let base = base.into();
        let bty = self.operand_type(&base);
        // Indexing into an array yields a pointer to the element type.
        let rty = match self.module.types.get(bty).clone() {
            Type::Ptr(p) => match self.module.types.get(p).clone() {
                Type::Array(e, _) => self.module.types.ptr(e),
                _ => bty,
            },
            _ => bty,
        };
        let result = self.fresh(rty);
        self.push(Inst::IndexAddr { result, base, index: index.into(), elem_ty });
        result
    }

    /// `bitcast value to to`.
    pub fn bitcast(&mut self, value: impl Into<Operand>, to: TypeId) -> ValueId {
        let result = self.fresh(to);
        self.push(Inst::BitCast { result, value: value.into(), to });
        result
    }

    /// Numeric conversion.
    pub fn convert(&mut self, value: impl Into<Operand>, to: TypeId) -> ValueId {
        let result = self.fresh(to);
        self.push(Inst::Convert { result, value: value.into(), to });
        result
    }

    /// Binary operation.
    pub fn bin(
        &mut self,
        op: BinOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
        ty: TypeId,
    ) -> ValueId {
        let result = self.fresh(ty);
        self.push(Inst::Bin { result, op, lhs: lhs.into(), rhs: rhs.into(), ty });
        result
    }

    /// Comparison; yields `bool`.
    pub fn cmp(
        &mut self,
        op: CmpOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> ValueId {
        let bty = self.module.types.bool();
        let result = self.fresh(bty);
        self.push(Inst::Cmp { result, op, lhs: lhs.into(), rhs: rhs.into() });
        result
    }

    /// Direct call. Returns the result value when the callee returns one.
    pub fn call(&mut self, callee: FuncId, args: Vec<Operand>) -> Option<ValueId> {
        let ret = self.module.funcs[callee.0 as usize].sig.ret;
        let result = if ret == self.module.types.void() {
            None
        } else {
            Some(self.fresh(ret))
        };
        self.push(Inst::Call { result, callee, args });
        result
    }

    /// Indirect call through a function pointer.
    pub fn call_indirect(
        &mut self,
        callee: impl Into<Operand>,
        sig: FuncSig,
        args: Vec<Operand>,
    ) -> Option<ValueId> {
        let result = if sig.ret == self.module.types.void() {
            None
        } else {
            Some(self.fresh(sig.ret))
        };
        self.push(Inst::CallIndirect { result, callee: callee.into(), sig, args });
        result
    }

    /// `malloc(size)`; yields a pointer of `result_ty`.
    pub fn malloc(&mut self, size: impl Into<Operand>, result_ty: TypeId) -> ValueId {
        let result = self.fresh(result_ty);
        self.push(Inst::Malloc { result, size: size.into(), result_ty });
        result
    }

    /// `free(ptr)`.
    pub fn free(&mut self, ptr: impl Into<Operand>) {
        self.push(Inst::Free { ptr: ptr.into() });
    }

    /// Print an integer (observability).
    pub fn print_int(&mut self, value: impl Into<Operand>) {
        self.push(Inst::PrintInt { value: value.into() });
    }

    /// Print a string literal (observability).
    pub fn print_str(&mut self, s: StrId) {
        self.push(Inst::PrintStr { s });
    }

    /// Pushes an arbitrary instruction (instrumentation passes and tests).
    /// The caller is responsible for having allocated the result id via
    /// [`FunctionBuilder::fresh_value`].
    pub fn push_raw(&mut self, inst: Inst) {
        self.push(inst);
    }

    /// Allocates a fresh value of the given type without emitting anything.
    pub fn fresh_value(&mut self, ty: TypeId) -> ValueId {
        self.fresh(ty)
    }

    // ---- terminators -----------------------------------------------------

    fn terminate(&mut self, t: Terminator) {
        let blk = &mut self.func.blocks[self.cur.0 as usize];
        debug_assert!(
            matches!(blk.term, Terminator::Unreachable),
            "block {} terminated twice in `{}`",
            self.cur,
            self.func.name
        );
        blk.term = t;
        blk.term_loc = self.cur_loc;
    }

    /// Unconditional branch.
    pub fn br(&mut self, bb: BlockId) {
        self.terminate(Terminator::Br(bb));
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: impl Into<Operand>, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::CondBr { cond: cond.into(), then_bb, else_bb });
    }

    /// Return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.terminate(Terminator::Ret(value));
    }

    /// Installs the finished body back into the module.
    pub fn finish(self) -> FuncId {
        self.module.funcs[self.fid.0 as usize] = self.func;
        self.fid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FuncSig;

    /// Builds `int add1(int x) { return x + 1; }`.
    #[test]
    fn build_simple_function() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let fid = m.declare_func("add1", FuncSig::new(i32t, vec![i32t]), false);
        let mut b = FunctionBuilder::new(&mut m, fid);
        let x = b.param(0);
        let r = b.bin(BinOp::Add, x, Operand::ConstInt(1, i32t), i32t);
        b.ret(Some(r.into()));
        b.finish();

        let f = m.func(fid);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.inst_count(), 1);
        assert_eq!(f.value_type(r), i32t);
        assert!(matches!(f.blocks[0].term, Terminator::Ret(Some(_))));
    }

    #[test]
    fn alloca_yields_pointer() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let void = m.types.void();
        let fid = m.declare_func("f", FuncSig::new(void, vec![]), false);
        let mut b = FunctionBuilder::new(&mut m, fid);
        let slot = b.alloca(i32t, None);
        b.store(Operand::ConstInt(7, i32t), slot);
        let v = b.load(slot, i32t);
        b.print_int(v);
        b.ret(None);
        b.finish();
        let f = m.func(fid);
        let pty = f.value_type(slot);
        assert_eq!(m.types.pointee(pty), Some(i32t));
    }

    #[test]
    #[should_panic(expected = "already defined")]
    fn double_definition_panics() {
        let mut m = Module::new("t");
        let void = m.types.void();
        let fid = m.declare_func("f", FuncSig::new(void, vec![]), false);
        let mut b = FunctionBuilder::new(&mut m, fid);
        b.ret(None);
        b.finish();
        let _ = FunctionBuilder::new(&mut m, fid);
    }
}
