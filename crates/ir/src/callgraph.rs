//! Call graph over a module's functions.
//!
//! The interprocedural optimizer (`--opt ipo` in `rsti-core`) needs three
//! artifacts that all come from the direct-call structure of the program:
//! the callee/caller adjacency read straight off `Inst::Call`, a strongly-
//! connected-component condensation that isolates recursion, and an
//! ordering of the condensation so per-function summaries can be computed
//! **bottom-up** (callees before callers — a callee's effects must be known
//! before any call site that names it is summarized).
//!
//! Indirect calls (`Inst::CallIndirect`) have no static callee; they are
//! not edges here. Instead each function records whether it *contains* an
//! indirect call, and summary construction treats that as "may call
//! anything" (top). External functions have no body and therefore no
//! outgoing edges; callers record the edge so the summarizer can see that
//! the callee is external and treat it conservatively.
//!
//! The SCC algorithm is Tarjan's, run iteratively (deep call chains in
//! generated programs would overflow a recursive walk, same reasoning as
//! the iterative DFS in [`crate::cfg`]). Tarjan emits components in
//! reverse topological order of the condensation — every edge leaving a
//! component points to an *earlier*-emitted component — so
//! [`CallGraph::sccs`] is already the bottom-up order, and reverse-
//! postorder over the condensation (callers first) is simply its reverse.

use crate::function::Function;
use crate::inst::Inst;
use crate::module::{FuncId, Module};

/// Direct-call edges of one function body, deduplicated, in first-
/// occurrence order. Externals (no body) yield an empty list.
pub fn direct_callees(f: &Function) -> Vec<FuncId> {
    let mut out: Vec<FuncId> = Vec::new();
    for node in f.insts() {
        if let Inst::Call { callee, .. } = node.inst {
            if !out.contains(&callee) {
                out.push(callee);
            }
        }
    }
    out
}

/// The call graph of one module: adjacency, SCC condensation, and the
/// bottom-up (callees-first) component order.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `callees[f]` — functions `f` calls directly (deduplicated, in
    /// first-occurrence order).
    pub callees: Vec<Vec<FuncId>>,
    /// `callers[f]` — functions that call `f` directly (deduplicated).
    pub callers: Vec<Vec<FuncId>>,
    /// `has_indirect[f]` — whether `f` contains a `CallIndirect`; its
    /// possible callees are unknown, so summaries must treat `f` as
    /// calling anything.
    pub has_indirect: Vec<bool>,
    /// Strongly connected components in **bottom-up** order: every direct
    /// call from a member of `sccs[i]` lands in `sccs[j]` with `j <= i`
    /// (`j == i` exactly for intra-component, i.e. recursive, calls).
    /// Singleton components cover non-recursive functions.
    pub sccs: Vec<Vec<FuncId>>,
    /// `scc_of[f]` — index into [`CallGraph::sccs`] of `f`'s component.
    pub scc_of: Vec<u32>,
    /// `scc_recursive[i]` — whether component `i` contains a cycle: more
    /// than one member, or a single member that calls itself.
    pub scc_recursive: Vec<bool>,
}

impl CallGraph {
    /// Builds the call graph of `m`.
    pub fn new(m: &Module) -> CallGraph {
        let n = m.funcs.len();
        let mut callees: Vec<Vec<FuncId>> = Vec::with_capacity(n);
        let mut callers: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut has_indirect = vec![false; n];
        for (i, f) in m.funcs.iter().enumerate() {
            let cs = direct_callees(f);
            for &c in &cs {
                let back = &mut callers[c.0 as usize];
                if !back.contains(&FuncId(i as u32)) {
                    back.push(FuncId(i as u32));
                }
            }
            callees.push(cs);
            has_indirect[i] =
                f.insts().any(|n| matches!(n.inst, Inst::CallIndirect { .. }));
        }

        let (sccs, scc_of) = tarjan_sccs(&callees, n);
        let scc_recursive = sccs
            .iter()
            .map(|comp| {
                comp.len() > 1
                    || comp.len() == 1
                        && callees[comp[0].0 as usize].contains(&comp[0])
            })
            .collect();
        CallGraph { callees, callers, has_indirect, sccs, scc_of, scc_recursive }
    }

    /// Whether `f` participates in recursion (its SCC has a cycle).
    pub fn is_recursive(&self, f: FuncId) -> bool {
        self.scc_recursive[self.scc_of[f.0 as usize] as usize]
    }

    /// Component indices in bottom-up (callees-first) order — the order
    /// per-function summaries are computed in. Identity over
    /// [`CallGraph::sccs`], named for readability at call sites.
    pub fn bottom_up(&self) -> impl Iterator<Item = usize> {
        0..self.sccs.len()
    }

    /// Component indices in reverse-postorder over the condensation
    /// (callers before callees) — the order top-down interprocedural
    /// passes would use. The reverse of [`CallGraph::bottom_up`].
    pub fn condensation_rpo(&self) -> impl Iterator<Item = usize> {
        (0..self.sccs.len()).rev()
    }
}

/// Iterative Tarjan over the `callees` adjacency. Returns the components
/// in emission order (reverse topological over the condensation) and the
/// per-function component index.
fn tarjan_sccs(callees: &[Vec<FuncId>], n: usize) -> (Vec<Vec<FuncId>>, Vec<u32>) {
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<FuncId>> = Vec::new();
    let mut scc_of = vec![0u32; n];

    // Explicit DFS frames: (node, next callee position to explore).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut next)) = frames.last_mut() {
            let succs = &callees[v as usize];
            if *next < succs.len() {
                let w = succs[*next].0;
                *next += 1;
                if index[w as usize] == UNVISITED {
                    frames.push((w, 0));
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] =
                        lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        scc_of[w as usize] = sccs.len() as u32;
                        comp.push(FuncId(w));
                        if w == v {
                            break;
                        }
                    }
                    // Members in ascending id order: deterministic and
                    // independent of DFS entry point.
                    comp.sort();
                    sccs.push(comp);
                }
            }
        }
    }
    (sccs, scc_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{BasicBlock, Function, InstNode, ValueId};
    use crate::inst::{Operand, Terminator};
    use crate::types::{FuncSig, TypeTable};

    /// A module of `void`-returning functions where function `i` directly
    /// calls the ids in `edges[i]` (in order, duplicates allowed).
    fn graph(edges: Vec<Vec<u32>>) -> Module {
        let types = TypeTable::new();
        let void = types.void();
        let mut m = Module::new("cg");
        for (i, es) in edges.iter().enumerate() {
            let insts = es
                .iter()
                .map(|&c| InstNode {
                    inst: Inst::Call { result: None, callee: FuncId(c), args: vec![] },
                    loc: None,
                })
                .collect();
            m.funcs.push(Function {
                name: format!("f{i}"),
                sig: FuncSig::new(void, vec![]),
                params: vec![],
                blocks: vec![BasicBlock {
                    insts,
                    term: Terminator::Ret(None),
                    term_loc: None,
                }],
                value_types: vec![],
                is_external: false,
            });
        }
        m
    }

    #[test]
    fn chain_orders_callees_first() {
        // 0 -> 1 -> 2
        let cg = CallGraph::new(&graph(vec![vec![1], vec![2], vec![]]));
        assert_eq!(cg.callees[0], vec![FuncId(1)]);
        assert_eq!(cg.callers[1], vec![FuncId(0)]);
        assert_eq!(cg.sccs.len(), 3);
        // Bottom-up: 2 before 1 before 0.
        let pos = |f: u32| cg.scc_of[f as usize];
        assert!(pos(2) < pos(1));
        assert!(pos(1) < pos(0));
        assert!(!cg.is_recursive(FuncId(0)));
        // Condensation RPO is the reverse: callers first.
        let rpo: Vec<usize> = cg.condensation_rpo().collect();
        assert_eq!(rpo[0], pos(0) as usize);
    }

    #[test]
    fn duplicate_calls_dedup_edges() {
        let cg = CallGraph::new(&graph(vec![vec![1, 1, 1], vec![]]));
        assert_eq!(cg.callees[0], vec![FuncId(1)]);
        assert_eq!(cg.callers[1], vec![FuncId(0)]);
    }

    #[test]
    fn mutual_recursion_is_one_recursive_scc() {
        // 0 -> 1, 1 -> 0; 2 calls into the cycle.
        let cg = CallGraph::new(&graph(vec![vec![1], vec![0], vec![0]]));
        assert_eq!(cg.scc_of[0], cg.scc_of[1]);
        assert_ne!(cg.scc_of[0], cg.scc_of[2]);
        assert!(cg.is_recursive(FuncId(0)));
        assert!(cg.is_recursive(FuncId(1)));
        assert!(!cg.is_recursive(FuncId(2)));
        // The cycle's component precedes its caller's in bottom-up order.
        assert!(cg.scc_of[0] < cg.scc_of[2]);
        // Members listed in ascending id order.
        let comp = &cg.sccs[cg.scc_of[0] as usize];
        assert_eq!(comp.as_slice(), &[FuncId(0), FuncId(1)]);
    }

    #[test]
    fn self_loop_is_recursive_singleton() {
        let cg = CallGraph::new(&graph(vec![vec![0], vec![]]));
        assert!(cg.is_recursive(FuncId(0)));
        assert!(!cg.is_recursive(FuncId(1)));
        assert_eq!(cg.sccs[cg.scc_of[0] as usize], vec![FuncId(0)]);
    }

    #[test]
    fn indirect_calls_flagged_not_edged() {
        let types = TypeTable::new();
        let void = types.void();
        let mut m = graph(vec![vec![]]);
        let sig = FuncSig::new(void, vec![]);
        m.funcs[0].blocks[0].insts.push(InstNode {
            inst: Inst::CallIndirect {
                result: None,
                callee: Operand::Value(ValueId(0)),
                sig,
                args: vec![],
            },
            loc: None,
        });
        let cg = CallGraph::new(&m);
        assert!(cg.has_indirect[0]);
        assert!(cg.callees[0].is_empty());
    }

    #[test]
    fn every_edge_stays_within_or_below_its_component() {
        // A denser shape: diamond with a back edge forming a cycle.
        // 0 -> 1,2 ; 1 -> 3 ; 2 -> 3 ; 3 -> 1 (cycle 1,3)
        let cg =
            CallGraph::new(&graph(vec![vec![1, 2], vec![3], vec![3], vec![1]]));
        for (f, cs) in cg.callees.iter().enumerate() {
            for c in cs {
                assert!(
                    cg.scc_of[c.0 as usize] <= cg.scc_of[f],
                    "edge {f} -> {} goes up the bottom-up order",
                    c.0
                );
            }
        }
        assert_eq!(cg.scc_of[1], cg.scc_of[3]);
        assert!(cg.is_recursive(FuncId(1)));
    }
}
