//! Parameterized MiniC kernels — the building blocks of the benchmark
//! proxies.
//!
//! Each kernel is a family of MiniC functions exercising one execution
//! character (pointer chasing, virtual dispatch, string walking, numeric
//! array math, ...). A benchmark proxy composes kernels with weights that
//! match the paper's characterization of the original program: the
//! SPEC-style pointer-heavy outliers (perlbench, xalancbmk, povray,
//! omnetpp) are dominated by pointer-dereference kernels, while the
//! numeric codes (lbm, namd, nab, nbench) barely touch pointers — which is
//! exactly what makes their RSTI overhead small.
//!
//! Kernels generate *source text* with a unique prefix so several kernels
//! coexist in one translation unit.

/// A generated kernel: declarations plus a call statement for `main`.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Top-level declarations (structs, globals, functions).
    pub decls: String,
    /// Statement(s) invoking the kernel from `main`.
    pub call: String,
}

/// Linked-list build/reverse/sum — classic pointer chasing (mcf, omnetpp,
/// perlbench inner loops).
pub fn list_kernel(prefix: &str, nodes: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
struct {p}_node {{ long key; struct {p}_node* next; }};
void {p}_push(struct {p}_node** headp, long key) {{
    struct {p}_node* x = (struct {p}_node*) malloc(sizeof(struct {p}_node));
    x->key = key;
    x->next = *headp;
    *headp = x;
}}
struct {p}_node* {p}_build(int n) {{
    struct {p}_node* head = null;
    for (int i = 0; i < n; i = i + 1) {{
        {p}_push(&head, i);
    }}
    return head;
}}
struct {p}_node* {p}_reverse(struct {p}_node* head) {{
    struct {p}_node* prev = null;
    while (head != null) {{
        struct {p}_node* nx = head->next;
        head->next = prev;
        prev = head;
        head = nx;
    }}
    return prev;
}}
long {p}_sum(struct {p}_node* head) {{
    long acc = 0;
    while (head != null) {{
        acc = acc + head->key;
        head = head->next;
    }}
    return acc;
}}
long {p}_run(int nodes, int iters) {{
    struct {p}_node* head = {p}_build(nodes);
    long acc = 0;
    for (int i = 0; i < iters; i = i + 1) {{
        head = {p}_reverse(head);
        acc = acc + {p}_sum(head);
    }}
    return acc;
}}
"#,
        p = prefix
    );
    let call = format!("g_check = g_check + {prefix}_run({nodes}, {iters});\n");
    Kernel { decls, call }
}

/// Indirect dispatch through function-pointer tables — virtual calls
/// (xalancbmk, omnetpp, perlbench op dispatch).
pub fn dispatch_kernel(prefix: &str, objects: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
struct {p}_obj {{ long state; long (*step)(struct {p}_obj* o); }};
long {p}_inc(struct {p}_obj* o) {{ o->state = o->state + 1; return o->state; }}
long {p}_dec(struct {p}_obj* o) {{ o->state = o->state - 1; return o->state; }}
long {p}_dbl(struct {p}_obj* o) {{ o->state = o->state * 2; return o->state; }}
long {p}_run(int n, int iters) {{
    struct {p}_obj* objs = (struct {p}_obj*) malloc(n * sizeof(struct {p}_obj));
    for (int i = 0; i < n; i = i + 1) {{
        struct {p}_obj* o = objs + i;
        o->state = i;
        if (i % 3 == 0) {{ o->step = {p}_inc; }}
        else {{ if (i % 3 == 1) {{ o->step = {p}_dec; }} else {{ o->step = {p}_dbl; }} }}
    }}
    long acc = 0;
    for (int it = 0; it < iters; it = it + 1) {{
        for (int i = 0; i < n; i = i + 1) {{
            struct {p}_obj* o = objs + i;
            void* raw = (void*) o;
            struct {p}_obj* oo = (struct {p}_obj*) raw;
            acc = acc + oo->step(oo);
            if (oo->state > 1000) {{ oo->state = i; }}
        }}
    }}
    return acc;
}}
"#,
        p = prefix
    );
    let call = format!("g_check = g_check + {prefix}_run({objects}, {iters});\n");
    Kernel { decls, call }
}

/// Character-buffer walking and copying (perlbench string ops, h264ref
/// bitstreams, xz/bzip2 buffers).
pub fn string_kernel(prefix: &str, len: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
long {p}_run(int len, int iters) {{
    char* src = (char*) malloc(len);
    char* dst = (char*) malloc(len);
    for (int i = 0; i < len; i = i + 1) {{ src[i] = (char) (i % 26 + 97); }}
    long acc = 0;
    for (int it = 0; it < iters; it = it + 1) {{
        char* s = src;
        char* d = dst;
        for (int i = 0; i < len; i = i + 1) {{
            *d = *s;
            acc = acc + *d;
            s = s + 1;
            d = d + 1;
        }}
    }}
    return acc;
}}
"#,
        p = prefix
    );
    let call = format!("g_check = g_check + {prefix}_run({len}, {iters});\n");
    Kernel { decls, call }
}

/// Integer array arithmetic with **no pointer variables in the hot loop**
/// beyond the array itself (libquantum, sjeng eval, nbench numeric sort).
pub fn numeric_kernel(prefix: &str, n: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
long {p}_run(int n, int iters) {{
    long acc = 0;
    for (int it = 0; it < iters; it = it + 1) {{
        long x = it + 1;
        for (int i = 0; i < n; i = i + 1) {{
            x = (x * 1103515245 + 12345) % 2147483647;
            acc = acc + (x & 255) - ((x >> 8) & 127);
            if (acc > 100000000) {{ acc = acc % 9973; }}
        }}
    }}
    return acc;
}}
"#,
        p = prefix
    );
    let call = format!("g_check = g_check + {prefix}_run({n}, {iters});\n");
    Kernel { decls, call }
}

/// Double-precision stencil (lbm, namd, nab, imagick, milc, nbench
/// fourier/neural-net).
pub fn float_kernel(prefix: &str, n: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
long {p}_run(int n, int iters) {{
    double acc = 0.5;
    for (int it = 0; it < iters; it = it + 1) {{
        double x = 1.5;
        for (int i = 0; i < n; i = i + 1) {{
            x = x * 1.000001 + 0.000003;
            acc = acc + x / (x + 2.0);
            acc = acc - (acc / 1000.0);
        }}
    }}
    return (long) acc;
}}
"#,
        p = prefix
    );
    let call = format!("g_check = g_check + {prefix}_run({n}, {iters});\n");
    Kernel { decls, call }
}

/// Graph arc relaxation over index arrays + node pointers (mcf, astar).
pub fn graph_kernel(prefix: &str, nodes: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
struct {p}_gnode {{ long dist; struct {p}_gnode* pred; }};
long {p}_run(int n, int iters) {{
    struct {p}_gnode* nodes = (struct {p}_gnode*) malloc(n * sizeof(struct {p}_gnode));
    for (int i = 0; i < n; i = i + 1) {{
        struct {p}_gnode* v = nodes + i;
        v->dist = 1000000;
        v->pred = null;
    }}
    struct {p}_gnode* root = nodes;
    root->dist = 0;
    long relaxed = 0;
    for (int it = 0; it < iters; it = it + 1) {{
        for (int i = 1; i < n; i = i + 1) {{
            struct {p}_gnode* v = nodes + i;
            struct {p}_gnode* u = nodes + (i - 1);
            struct {p}_gnode* w = nodes + (i * 7 % n);
            if (u->dist + i < v->dist) {{
                v->dist = u->dist + i;
                v->pred = u;
                relaxed = relaxed + 1;
            }}
            if (w->dist + 2 < v->dist) {{
                v->dist = w->dist + 2;
                v->pred = w;
                relaxed = relaxed + 1;
            }}
        }}
    }}
    return relaxed;
}}
"#,
        p = prefix
    );
    let call = format!("g_check = g_check + {prefix}_run({nodes}, {iters});\n");
    Kernel { decls, call }
}

/// Event-driven server loop: connection objects with handler pointers and
/// buffer chains (the NGINX proxy).
pub fn server_kernel(prefix: &str, conns: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
struct {p}_buf {{ long len; char* data; struct {p}_buf* next; }};
struct {p}_conn {{
    long fd;
    long (*read_handler)(struct {p}_conn* c);
    long (*write_handler)(struct {p}_conn* c);
    struct {p}_buf* chain;
}};
long {p}_do_read(struct {p}_conn* c) {{
    struct {p}_buf* b = (struct {p}_buf*) malloc(sizeof(struct {p}_buf));
    b->len = 16;
    b->data = (char*) malloc(16);
    b->next = c->chain;
    c->chain = b;
    return b->len;
}}
long {p}_do_write(struct {p}_conn* c) {{
    long sent = 0;
    struct {p}_buf* b = c->chain;
    while (b != null) {{
        sent = sent + b->len;
        b = b->next;
    }}
    c->chain = null;
    return sent;
}}
long {p}_run(int n, int iters) {{
    struct {p}_conn* conns = (struct {p}_conn*) malloc(n * sizeof(struct {p}_conn));
    for (int i = 0; i < n; i = i + 1) {{
        struct {p}_conn* c = conns + i;
        c->fd = i;
        c->read_handler = {p}_do_read;
        c->write_handler = {p}_do_write;
        c->chain = null;
    }}
    long acc = 0;
    for (int it = 0; it < iters; it = it + 1) {{
        for (int i = 0; i < n; i = i + 1) {{
            struct {p}_conn* c = conns + i;
            acc = acc + c->read_handler(c);
            if (it % 2 == 1) {{ acc = acc + c->write_handler(c); }}
        }}
    }}
    return acc;
}}
"#,
        p = prefix
    );
    let call = format!("g_check = g_check + {prefix}_run({conns}, {iters});\n");
    Kernel { decls, call }
}

/// Bytecode-interpreter loop over refcounted objects (the CPython proxy).
pub fn interp_kernel(prefix: &str, code_len: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
struct {p}_pyobj {{ long refcnt; long value; struct {p}_pyobj* next; }};
long {p}_probe(void** slot) {{
    if (*slot == null) {{ return 1; }}
    return 0;
}}
struct {p}_pyobj* {p}_new(long v, struct {p}_pyobj* pool) {{
    struct {p}_pyobj* o = (struct {p}_pyobj*) malloc(sizeof(struct {p}_pyobj));
    o->refcnt = 1;
    o->value = v;
    o->next = pool;
    return o;
}}
long {p}_run(int code_len, int iters) {{
    int* code = (int*) malloc(code_len * 4);
    for (int i = 0; i < code_len; i = i + 1) {{ code[i] = i % 5; }}
    struct {p}_pyobj* pool = null;
    long acc = {p}_probe((void**) &pool);
    for (int it = 0; it < iters; it = it + 1) {{
        struct {p}_pyobj* tos = {p}_new(it, pool);
        pool = tos;
        for (int pc = 0; pc < code_len; pc = pc + 1) {{
            int op = code[pc];
            if (op == 0) {{
                void* praw = (void*) tos;
                struct {p}_pyobj* pv = (struct {p}_pyobj*) praw;
                pv->value = pv->value + 1;
            }}
            else {{ if (op == 1) {{ tos->refcnt = tos->refcnt + 1; }}
            else {{ if (op == 2) {{ acc = acc + tos->value; }}
            else {{ if (op == 3) {{
                struct {p}_pyobj* o = {p}_new(acc, pool);
                pool = o;
                tos = o;
            }} else {{ tos->refcnt = tos->refcnt - 1; }} }} }} }}
        }}
    }}
    return acc;
}}
"#,
        p = prefix
    );
    let call = format!("g_check = g_check + {prefix}_run({code_len}, {iters});\n");
    Kernel { decls, call }
}

/// Binary-tree build and traversal (gobmk/deepsjeng/leela search trees,
/// dealII meshes).
pub fn tree_kernel(prefix: &str, inserts: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
struct {p}_tnode {{ long key; struct {p}_tnode* left; struct {p}_tnode* right; }};
struct {p}_tnode* {p}_insert(struct {p}_tnode* root, long key) {{
    if (root == null) {{
        struct {p}_tnode* x = (struct {p}_tnode*) malloc(sizeof(struct {p}_tnode));
        x->key = key;
        x->left = null;
        x->right = null;
        return x;
    }}
    if (key < root->key) {{ root->left = {p}_insert(root->left, key); }}
    else {{ root->right = {p}_insert(root->right, key); }}
    return root;
}}
long {p}_sum(struct {p}_tnode* root) {{
    if (root == null) {{ return 0; }}
    return root->key + {p}_sum(root->left) + {p}_sum(root->right);
}}
long {p}_run(int inserts, int iters) {{
    struct {p}_tnode* root = null;
    long seed = 12345;
    for (int i = 0; i < inserts; i = i + 1) {{
        seed = (seed * 1103515245 + 12345) % 2147483647;
        root = {p}_insert(root, seed % 1000);
    }}
    long acc = 0;
    for (int it = 0; it < iters; it = it + 1) {{ acc = acc + {p}_sum(root); }}
    return acc;
}}
"#,
        p = prefix
    );
    let call = format!("g_check = g_check + {prefix}_run({inserts}, {iters});\n");
    Kernel { decls, call }
}

/// Assembles kernels into a complete MiniC program.
pub fn assemble(kernels: &[Kernel]) -> String {
    let mut src = String::from("long g_check;\n");
    for k in kernels {
        src.push_str(&k.decls);
    }
    src.push_str("int main() {\n    g_check = 0;\n");
    for k in kernels {
        src.push_str("    ");
        src.push_str(&k.call);
    }
    src.push_str("    print_int(g_check);\n    return 0;\n}\n");
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsti_frontend::compile;
    use rsti_vm::{Image, Status, Vm};

    fn runs(kernels: &[Kernel]) -> i64 {
        let src = assemble(kernels);
        let m = compile(&src, "k").unwrap_or_else(|e| panic!("{e}\n{src}"));
        let img = Image::baseline(&m);
        let r = Vm::new(&img).run();
        match r.status {
            Status::Exited(c) => {
                assert_eq!(c, 0);
                r.output[0].parse().unwrap()
            }
            other => panic!("{other:?}\n{src}"),
        }
    }

    #[test]
    fn every_kernel_compiles_and_runs() {
        assert!(runs(&[list_kernel("l", 20, 3)]) > 0);
        assert!(runs(&[dispatch_kernel("d", 9, 3)]) != 0);
        assert!(runs(&[string_kernel("s", 32, 2)]) > 0);
        assert!(runs(&[numeric_kernel("n", 50, 2)]) != 0);
        assert!(runs(&[float_kernel("f", 50, 2)]) != 0);
        assert!(runs(&[graph_kernel("g", 16, 2)]) > 0);
        assert!(runs(&[server_kernel("v", 4, 4)]) > 0);
        assert!(runs(&[interp_kernel("i", 16, 4)]) != 0);
        assert!(runs(&[tree_kernel("t", 24, 2)]) > 0);
    }

    #[test]
    fn kernels_compose_into_one_program() {
        let v = runs(&[
            list_kernel("a", 10, 2),
            numeric_kernel("b", 20, 2),
            dispatch_kernel("c", 6, 2),
        ]);
        assert!(v != 0);
    }

    #[test]
    fn kernels_run_instrumented_with_same_result() {
        let src = assemble(&[list_kernel("l", 15, 2), dispatch_kernel("d", 6, 2)]);
        let m = compile(&src, "k").unwrap();
        let base = Vm::new(&Image::baseline(&m)).run();
        for mech in rsti_core::Mechanism::ALL {
            let p = rsti_core::instrument(&m, mech);
            let img = Image::from_instrumented(&p);
            let r = Vm::new(&img).run();
            assert_eq!(r.status, base.status, "{mech}");
            assert_eq!(r.output, base.output, "{mech} must compute the same result");
        }
    }
}
