//! # rsti-workloads — benchmark proxies and a random-program generator
//!
//! The paper evaluates RSTI on SPEC CPU 2006/2017, nbench, CPython/PyTorch,
//! and NGINX — none of which can be compiled by the reproduction's MiniC
//! frontend (nor licensed here). This crate substitutes *proxies*: MiniC
//! programs assembled from parameterized kernels ([`kernels`]) whose
//! pointer-operation density matches each benchmark's published character
//! ([`suites`]), so the *shape* of the overhead results (who is expensive,
//! who is free, where the mechanisms separate) reproduces Figures 9/10 and
//! Table 3. A seeded random-program generator ([`generator`]) provides
//! differential-testing inputs beyond the hand-written set.

#![warn(missing_docs)]

pub mod generator;
pub mod kernels;
pub mod nbench_kernels;
pub mod suites;

pub use generator::{generate, generate_items, generate_source, AstGenConfig, GenConfig};
pub use suites::{all_workloads, cpython, nbench, nginx, spec2006, spec2017, Suite, Workload};
