//! The benchmark-proxy suites: one named workload per benchmark the paper
//! evaluates (SPEC CPU 2017, SPEC CPU 2006, nbench, CPython/PyTorch,
//! NGINX).
//!
//! Each proxy's kernel mix follows the paper's characterization:
//! "perlbench, povray, and xalancbmk ... are known to heavily dereference
//! pointers, either in a loop or very frequently" (§6.3.2) — those get
//! pointer-chasing and dispatch kernels; the numeric codes (lbm, namd,
//! nab, imagick, most of nbench) spend their time in scalar loops that
//! RSTI does not instrument, which is what keeps their overhead near zero.

use crate::kernels::*;
use crate::nbench_kernels;
use rsti_frontend::compile;
use rsti_ir::Module;

/// Which published suite a workload proxies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU 2017.
    Spec2017,
    /// SPEC CPU 2006.
    Spec2006,
    /// nbench.
    Nbench,
    /// CPython running PyTorch benchmarks.
    Cpython,
    /// NGINX under wrk load.
    Nginx,
}

impl Suite {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Suite::Spec2017 => "SPEC CPU2017",
            Suite::Spec2006 => "SPEC CPU2006",
            Suite::Nbench => "nbench",
            Suite::Cpython => "CPython PyTorch",
            Suite::Nginx => "NGINX",
        }
    }
}

/// A named benchmark proxy.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (paper spelling).
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// The MiniC program.
    pub source: String,
}

impl Workload {
    /// Compiles the proxy to IR.
    ///
    /// # Panics
    /// Panics when the generated source does not compile — a bug in the
    /// kernel generators, caught by the suite tests.
    pub fn module(&self) -> Module {
        compile(&self.source, self.name)
            .unwrap_or_else(|e| panic!("workload {}: {e}", self.name))
    }
}

fn wl(name: &'static str, suite: Suite, kernels: &[Kernel]) -> Workload {
    Workload { name, suite, source: assemble(kernels) }
}

/// The SPEC CPU 2017 proxies (the benchmarks of Figure 9's x-axis).
pub fn spec2017() -> Vec<Workload> {
    use Suite::Spec2017 as S;
    vec![
        wl("500.perlbench_r", S, &[
            list_kernel("pl", 120, 20),
            dispatch_kernel("pd", 24, 30),
            string_kernel("ps", 96, 30),
            interp_kernel("pi", 48, 20),
            numeric_kernel("pn", 1000, 9),
        ]),
        wl("505.mcf_r", S, &[graph_kernel("mg", 160, 30), list_kernel("ml", 60, 10), numeric_kernel("mn", 1800, 30)]),
        wl("520.omnetpp_r", S, &[
            dispatch_kernel("od", 32, 30),
            list_kernel("ol", 100, 16),
            server_kernel("ov", 8, 12),
            numeric_kernel("on", 640, 7),
        ]),
        wl("523.xalancbmk_r", S, &[
            dispatch_kernel("xd", 32, 36),
            tree_kernel("xt", 150, 16),
            string_kernel("xs", 96, 24),
            numeric_kernel("xn", 770, 10),
        ]),
        wl("531.deepsjeng_r", S, &[tree_kernel("jt", 120, 12), numeric_kernel("jn", 600, 72)]),
        wl("541.leela_r", S, &[tree_kernel("lt", 100, 10), numeric_kernel("ln", 700, 56)]),
        wl("557.xz_r", S, &[string_kernel("zs", 128, 16), numeric_kernel("zn", 800, 55)]),
        wl("600.perlbench_s", S, &[
            list_kernel("ql", 110, 18),
            dispatch_kernel("qd", 24, 28),
            string_kernel("qs", 96, 26),
            interp_kernel("qi", 48, 18),
            numeric_kernel("qn", 900, 9),
        ]),
        wl("605.mcf_s", S, &[graph_kernel("ng", 150, 28), list_kernel("nl", 60, 9), numeric_kernel("nn", 1700, 28)]),
        wl("620.omnetpp_s", S, &[
            dispatch_kernel("rd", 30, 28),
            list_kernel("rl", 100, 15),
            server_kernel("rv", 8, 11),
            numeric_kernel("rn", 600, 7),
        ]),
        wl("623.xalancbmk_s", S, &[
            dispatch_kernel("yd", 30, 34),
            tree_kernel("yt", 140, 15),
            string_kernel("ys", 96, 22),
            numeric_kernel("yn", 720, 10),
        ]),
        wl("631.deepsjeng_s", S, &[tree_kernel("kt", 110, 11), numeric_kernel("kn", 600, 68)]),
        wl("641.leela_s", S, &[tree_kernel("ut", 95, 10), numeric_kernel("un", 700, 52)]),
        wl("657.xz_s", S, &[string_kernel("ws", 120, 15), numeric_kernel("wn", 800, 52)]),
        wl("508.namd_r", S, &[float_kernel("af", 2500, 30)]),
        wl("510.parest_r", S, &[float_kernel("bf", 2000, 28), graph_kernel("bg", 40, 6)]),
        wl("511.povray_r", S, &[
            float_kernel("cf", 1200, 35),
            dispatch_kernel("cd", 24, 28),
            list_kernel("cl", 90, 14),
        ]),
        wl("519.lbm_r", S, &[float_kernel("df", 3000, 30)]),
        wl("538.imagick_r", S, &[float_kernel("ef", 2600, 28), string_kernel("es", 48, 6)]),
        wl("544.nab_r", S, &[float_kernel("ff", 2400, 28), numeric_kernel("fn", 500, 10)]),
        wl("619.lbm_s", S, &[float_kernel("gf", 2800, 30)]),
        wl("638.imagick_s", S, &[float_kernel("hf", 2500, 27), string_kernel("hs", 48, 6)]),
        wl("644.nab_s", S, &[float_kernel("if2", 2300, 27), numeric_kernel("in2", 500, 10)]),
    ]
}

/// The SPEC CPU 2006 proxies (Table 3 + Figure 10).
pub fn spec2006() -> Vec<Workload> {
    use Suite::Spec2006 as S;
    vec![
        wl("perlbench", S, &[
            list_kernel("apl", 120, 20),
            dispatch_kernel("apd", 24, 30),
            string_kernel("aps", 96, 28),
            interp_kernel("api", 48, 18),
            numeric_kernel("apn", 950, 9),
        ]),
        wl("bzip2", S, &[string_kernel("abs", 128, 16), numeric_kernel("abn", 800, 28)]),
        wl("mcf", S, &[graph_kernel("amg", 170, 30), numeric_kernel("amn2", 1500, 28)]),
        wl("milc", S, &[float_kernel("amf", 2400, 28), numeric_kernel("amn", 300, 8)]),
        wl("namd", S, &[float_kernel("anf", 2600, 30)]),
        wl("gobmk", S, &[tree_kernel("agt", 130, 12), numeric_kernel("agn", 500, 60)]),
        wl("dealII", S, &[
            tree_kernel("adt", 120, 10),
            float_kernel("adf", 1000, 14),
            dispatch_kernel("add", 20, 20),
        ]),
        wl("soplex", S, &[float_kernel("asf", 1600, 20), graph_kernel("asg", 80, 12)]),
        wl("povray", S, &[
            float_kernel("avf", 1200, 35),
            dispatch_kernel("avd", 24, 28),
            list_kernel("avl", 90, 14),
        ]),
        wl("hmmer", S, &[numeric_kernel("ahn", 900, 28), string_kernel("ahs", 64, 10)]),
        wl("libquantum", S, &[numeric_kernel("aqn", 1200, 30)]),
        wl("sjeng", S, &[tree_kernel("ajt", 110, 10), numeric_kernel("ajn", 600, 55)]),
        wl("h264ref", S, &[string_kernel("ars", 112, 14), numeric_kernel("arn", 700, 24)]),
        wl("lbm", S, &[float_kernel("alf", 3000, 30)]),
        wl("omnetpp", S, &[
            dispatch_kernel("aod", 30, 28),
            list_kernel("aol", 100, 15),
            server_kernel("aov", 8, 10),
            numeric_kernel("aon", 600, 7),
        ]),
        wl("astar", S, &[graph_kernel("aag", 120, 18), tree_kernel("aat", 80, 8), numeric_kernel("aan", 900, 30)]),
        wl("sphinx3", S, &[float_kernel("axf", 1800, 22), string_kernel("axs", 64, 8)]),
        wl("xalancbmk", S, &[
            dispatch_kernel("azd", 32, 36),
            tree_kernel("azt", 150, 16),
            string_kernel("azs", 96, 22),
            numeric_kernel("azn", 740, 10),
        ]),
    ]
}

/// The nbench proxies (§6.3.2's PARTS comparison runs here) — real
/// BYTEmark algorithms at reduced scale (see [`nbench_kernels`]).
pub fn nbench() -> Vec<Workload> {
    use Suite::Nbench as S;
    vec![
        wl("numeric sort", S, &[nbench_kernels::numeric_sort("b1", 256, 12)]),
        wl("string sort", S, &[nbench_kernels::string_sort("b2", 48, 8)]),
        wl("bitfield", S, &[nbench_kernels::bitfield("b3", 1024, 12)]),
        wl("fp emulation", S, &[nbench_kernels::fp_emulation("b4", 600, 12)]),
        wl("fourier", S, &[nbench_kernels::fourier("b5", 12, 12)]),
        wl("assignment", S, &[nbench_kernels::assignment("b6", 20, 12)]),
        wl("idea", S, &[nbench_kernels::idea("b7", 120, 12)]),
        wl("huffman", S, &[nbench_kernels::huffman("b8", 32, 10)]),
        wl("neural net", S, &[nbench_kernels::neural_net("b9", 24, 40)]),
        wl("lu decomposition", S, &[nbench_kernels::lu_decomposition("ba", 16, 10)]),
    ]
}

/// The CPython/PyTorch proxy (§6.3.2 "CPython 3.9").
pub fn cpython() -> Vec<Workload> {
    use Suite::Cpython as S;
    vec![
        wl("pytorch-forward", S, &[
            interp_kernel("c1", 64, 24),
            float_kernel("c1f", 1400, 18),
        ]),
        wl("pytorch-backward", S, &[
            interp_kernel("c2", 64, 22),
            float_kernel("c2f", 1500, 18),
            list_kernel("c2l", 60, 8),
        ]),
        wl("pytorch-optimizer", S, &[
            interp_kernel("c3", 48, 20),
            float_kernel("c3f", 1600, 20),
        ]),
    ]
}

/// The NGINX proxy (TLS transactions-per-second configuration, §6.3.1).
pub fn nginx() -> Vec<Workload> {
    vec![wl("NGINX", Suite::Nginx, &[
        server_kernel("w1", 12, 24),
        string_kernel("w1s", 96, 16),
        numeric_kernel("w1n", 600, 80),
    ])]
}

/// Every workload across all suites.
pub fn all_workloads() -> Vec<Workload> {
    let mut v = spec2017();
    v.extend(spec2006());
    v.extend(nbench());
    v.extend(cpython());
    v.extend(nginx());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsti_vm::{Image, Status, Vm};

    #[test]
    fn suites_have_paper_sizes() {
        assert_eq!(spec2017().len(), 23, "Figure 9 lists 23 SPEC2017 runs");
        assert_eq!(spec2006().len(), 18, "Table 3 lists 18 SPEC2006 benchmarks");
        assert_eq!(nbench().len(), 10);
        assert!(!cpython().is_empty());
        assert_eq!(nginx().len(), 1);
    }

    #[test]
    fn every_workload_compiles_and_runs_baseline() {
        for w in all_workloads() {
            let m = w.module();
            let img = Image::baseline(&m);
            let mut vm = Vm::new(&img);
            vm.set_fuel(80_000_000);
            let r = vm.run();
            assert!(
                matches!(r.status, Status::Exited(0)),
                "{}: {:?}",
                w.name,
                r.status
            );
        }
    }

    #[test]
    fn pointer_heavy_proxies_have_more_pac_sites_than_numeric_ones() {
        let find = |name: &str| {
            spec2006()
                .into_iter()
                .find(|w| w.name == name)
                .expect("workload exists")
        };
        let heavy = rsti_core::instrument(&find("perlbench").module(), rsti_core::Mechanism::Stwc);
        let light = rsti_core::instrument(&find("lbm").module(), rsti_core::Mechanism::Stwc);
        assert!(
            heavy.stats.total_pac_ops() > 5 * light.stats.total_pac_ops().max(1),
            "perlbench {} vs lbm {}",
            heavy.stats.total_pac_ops(),
            light.stats.total_pac_ops()
        );
    }
}
