//! Deterministic random-program generator.
//!
//! Produces valid MiniC programs with a randomized pointer landscape —
//! struct shapes, pointer depths, cast chains, escaping locals, function
//! pointers — for differential testing (instrumented output must equal
//! baseline output under every mechanism) and for stressing the STI
//! analysis beyond the hand-written proxies.
//!
//! Two generators live here:
//!
//! * [`generate`] — the legacy string-template generator the measurement
//!   harness uses (its output is stable across releases so Fig. 9/10
//!   numbers stay comparable).
//! * [`generate_items`] — a grammar-directed generator that builds
//!   [`Item`](rsti_frontend::ast::Item) trees directly. `rsti-fuzz`
//!   minimizes failures at the AST level, so its inputs must *be* ASTs;
//!   the pretty-printer (`rsti_frontend::print_items`) turns them into
//!   source for the pipeline under test. Every program it emits is
//!   well-defined MiniC — null-guarded dereferences, constant-bounded
//!   loops, division only by nonzero constants — so the instrumented and
//!   baseline runs must agree and any divergence is a pipeline bug, not
//!   undefined behaviour in the input.

use rsti_frontend::ast::{AstType, BinOpAst, Block, Expr, FieldDecl, Item, Param, Stmt, UnOp};
use rsti_rng::Rng64;
use std::fmt::Write as _;

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of struct types.
    pub structs: u32,
    /// Number of worker functions.
    pub funcs: u32,
    /// Objects allocated per struct in `main`.
    pub objects: u32,
    /// Loop iterations in `main`.
    pub iters: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { structs: 3, funcs: 5, objects: 4, iters: 6 }
    }
}

/// Generates a deterministic random MiniC program for `seed`.
pub fn generate(seed: u64, cfg: GenConfig) -> String {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut src = String::new();
    let ns = cfg.structs.max(1);

    // Struct types: a long, a pointer to the previous struct (chains), and
    // optionally a function pointer.
    for s in 0..ns {
        let fp = rng.gen_bool(0.5);
        let _ = writeln!(src, "struct s{s} {{");
        let _ = writeln!(src, "    long v;");
        if s > 0 {
            let _ = writeln!(src, "    struct s{} *peer;", s - 1);
        } else {
            let _ = writeln!(src, "    struct s0 *peer;");
        }
        if fp {
            let _ = writeln!(src, "    long (*hook)(long x);");
        }
        let _ = writeln!(src, "}};");
    }

    // A couple of hook implementations.
    let _ = writeln!(src, "long hook_a(long x) {{ return x + 1; }}");
    let _ = writeln!(src, "long hook_b(long x) {{ return x * 2; }}");

    // Global roots, one per struct.
    for s in 0..ns {
        let _ = writeln!(src, "struct s{s}* root{s};");
    }

    // Worker functions: take a pointer (sometimes as void*), walk/update.
    let mut calls = Vec::new();
    for f in 0..cfg.funcs {
        let s = rng.gen_range(0, ns as u64);
        let via_void = rng.gen_bool(0.4);
        if via_void {
            let _ = writeln!(
                src,
                "long work{f}(void* raw) {{\n    struct s{s}* p = (struct s{s}*) raw;\n    if (p == null) {{ return 0; }}\n    p->v = p->v + {inc};\n    return p->v;\n}}",
                inc = rng.gen_range(1, 5)
            );
            calls.push(format!("acc = acc + work{f}((void*) root{s});"));
        } else {
            let deref_peer = rng.gen_bool(0.5);
            let body = if deref_peer {
                format!(
                    "    if (p == null) {{ return 0; }}\n    if (p->peer != null) {{ p->peer->v = p->peer->v + 1; }}\n    p->v = p->v + {};\n    return p->v;",
                    rng.gen_range(1, 5)
                )
            } else {
                format!(
                    "    if (p == null) {{ return 0; }}\n    p->v = p->v * {} + 1;\n    return p->v;",
                    rng.gen_range(2, 4)
                )
            };
            let _ = writeln!(src, "long work{f}(struct s{s}* p) {{\n{body}\n}}");
            calls.push(format!("acc = acc + work{f}(root{s});"));
        }
    }

    // A chain builder per struct so `objects` controls allocation count.
    for s in 0..ns {
        let peer = if s > 0 { s - 1 } else { 0 };
        let _ = writeln!(
            src,
            "struct s{s}* build{s}(int n, struct s{peer}* peer) {{\n    \
             struct s{s}* head = null;\n    \
             for (int i = 0; i < n; i = i + 1) {{\n        \
             struct s{s}* o = (struct s{s}*) malloc(sizeof(struct s{s}));\n        \
             o->v = i;\n        o->peer = peer;\n        head = o;\n    }}\n    \
             return head;\n}}"
        );
    }

    // main: allocate object chains, set hooks, run the workers in a loop.
    let _ = writeln!(src, "int main() {{");
    let _ = writeln!(src, "    long acc = 0;");
    for s in 0..ns {
        let peer = if s > 0 { s - 1 } else { 0 };
        if s == 0 {
            let _ = writeln!(
                src,
                "    root0 = build0({}, null);",
                cfg.objects.max(1)
            );
        } else {
            let _ = writeln!(
                src,
                "    root{s} = build{s}({}, root{peer});",
                cfg.objects.max(1)
            );
        }
        let _ = writeln!(src, "    root{s}->v = {s};");
    }
    let _ = writeln!(src, "    for (int it = 0; it < {}; it = it + 1) {{", cfg.iters);
    for c in &calls {
        let _ = writeln!(src, "        {c}");
    }
    let _ = writeln!(src, "    }}");
    let _ = writeln!(src, "    print_int(acc);");
    let _ = writeln!(src, "    return 0;");
    let _ = writeln!(src, "}}");
    src
}

// ---------------------------------------------------------------------------
// Grammar-directed AST generator
// ---------------------------------------------------------------------------

/// Parameters for the grammar-directed AST generator ([`generate_items`]).
///
/// Unlike [`GenConfig`], which drives the legacy string-template generator,
/// this configuration controls a generator that emits AST trees the fuzzing
/// subsystem can minimize node-by-node.
#[derive(Debug, Clone, Copy)]
pub struct AstGenConfig {
    /// Number of struct types (the vtable struct is extra).
    pub structs: u32,
    /// Number of hook functions and vtable slots.
    pub hooks: u32,
    /// Number of worker functions.
    pub funcs: u32,
    /// Random statements per worker body.
    pub stmts_per_func: u32,
    /// Maximum depth of generated arithmetic expressions.
    pub max_expr_depth: u32,
    /// Objects allocated per struct chain.
    pub objects: u32,
    /// Iterations of the main driver loop.
    pub iters: u32,
}

impl Default for AstGenConfig {
    fn default() -> Self {
        AstGenConfig {
            structs: 3,
            hooks: 3,
            funcs: 5,
            stmts_per_func: 6,
            max_expr_depth: 3,
            objects: 4,
            iters: 4,
        }
    }
}

/// Generates a deterministic random MiniC program as an AST.
///
/// The emitted program always contains, per the fuzzing plan: a
/// function-pointer table (`struct vtbl` of hook slots plus per-object
/// `hook` members), nested by-value structs, double pointers (`long**`),
/// explicit casts and `void*` punning round-trips, locals that escape
/// through `&` into callees and a global, and heap churn (`malloc`/`free`
/// loops). It is well-defined for every seed, so differential oracles can
/// treat any baseline/instrumented divergence as a pipeline bug.
pub fn generate_items(seed: u64, cfg: AstGenConfig) -> Vec<Item> {
    let mut g = AstGen {
        rng: Rng64::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1)),
        cfg,
        structs: Vec::new(),
        hooks: cfg.hooks.max(2),
        tmp: 0,
    };
    g.gen_shapes();

    let mut items = Vec::new();
    for k in 0..g.structs.len() {
        items.push(g.struct_item(k));
    }
    items.push(g.vtbl_item());
    for h in 0..g.hooks {
        items.push(g.hook_item(h));
    }

    // Globals: the vtable, one chain root per struct, a counter the
    // workers mutate, and an escape slot for a `main` local's address.
    items.push(global(sptr("vtbl"), "vt", None));
    for k in 0..g.structs.len() {
        let name = g.structs[k].name.clone();
        items.push(global(sptr(&name), &format!("root{k}"), None));
    }
    items.push(global(AstType::Long, "gcounter", Some(ilit(g.c(1, 9)))));
    items.push(global(AstType::Long.ptr(), "saved", None));

    items.push(g.cell_new_item());
    items.push(g.cell_drop_item());
    items.push(g.bump2_item());
    items.push(g.churn_item());
    for k in 0..g.structs.len() {
        items.push(g.builder_item(k));
    }

    let mut workers = Vec::new();
    for f in 0..cfg.funcs.max(1) {
        let (item, k) = g.worker_item(f);
        workers.push((format!("work{f}"), k));
        items.push(item);
    }
    items.push(g.main_item(&workers));
    items
}

/// [`generate_items`] printed to MiniC source via the round-trip printer.
pub fn generate_source(seed: u64, cfg: AstGenConfig) -> String {
    rsti_frontend::print_items(&generate_items(seed, cfg))
}

// ---- AST construction shorthand (all nodes on line 1: the printer/parser
// round-trip is modulo line numbers, so synthetic lines carry no meaning).

const LN: u32 = 1;

fn ilit(v: i64) -> Expr {
    Expr::IntLit(v, LN)
}

fn evar(n: &str) -> Expr {
    Expr::Var(n.to_string(), LN)
}

fn null() -> Expr {
    Expr::Null(LN)
}

fn bin(op: BinOpAst, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line: LN }
}

fn un(op: UnOp, e: Expr) -> Expr {
    Expr::Unary { op, expr: Box::new(e), line: LN }
}

fn call(name: &str, args: Vec<Expr>) -> Expr {
    Expr::Call { callee: Box::new(evar(name)), args, line: LN }
}

fn call_via(callee: Expr, args: Vec<Expr>) -> Expr {
    Expr::Call { callee: Box::new(callee), args, line: LN }
}

fn arrow(base: Expr, field: &str) -> Expr {
    Expr::Member { base: Box::new(base), field: field.to_string(), arrow: true, line: LN }
}

fn dot(base: Expr, field: &str) -> Expr {
    Expr::Member { base: Box::new(base), field: field.to_string(), arrow: false, line: LN }
}

fn idx(base: Expr, index: Expr) -> Expr {
    Expr::Index { base: Box::new(base), index: Box::new(index), line: LN }
}

fn cast(ty: AstType, e: Expr) -> Expr {
    Expr::Cast { ty, expr: Box::new(e), line: LN }
}

fn assign(target: Expr, value: Expr) -> Stmt {
    Stmt::Assign { target, value, line: LN }
}

fn decl(ty: AstType, name: &str, init: Option<Expr>) -> Stmt {
    Stmt::Decl { ty, name: name.to_string(), is_const: false, init, line: LN }
}

fn sret(e: Expr) -> Stmt {
    Stmt::Return(Some(e), LN)
}

fn block(stmts: Vec<Stmt>) -> Block {
    Block { stmts }
}

fn sif(cond: Expr, then: Vec<Stmt>) -> Stmt {
    Stmt::If { cond, then_blk: block(then), else_blk: None, line: LN }
}

fn sif_else(cond: Expr, then: Vec<Stmt>, els: Vec<Stmt>) -> Stmt {
    Stmt::If { cond, then_blk: block(then), else_blk: Some(block(els)), line: LN }
}

fn sfor(init: Stmt, cond: Expr, step: Stmt, body: Vec<Stmt>) -> Stmt {
    Stmt::For {
        init: Some(Box::new(init)),
        cond: Some(cond),
        step: Some(Box::new(step)),
        body: block(body),
        line: LN,
    }
}

/// `for (long name = 0; name < bound; name = name + 1) body`
fn counted_for(name: &str, bound: Expr, body: Vec<Stmt>) -> Stmt {
    sfor(
        decl(AstType::Long, name, Some(ilit(0))),
        bin(BinOpAst::Lt, evar(name), bound),
        assign(evar(name), bin(BinOpAst::Add, evar(name), ilit(1))),
        body,
    )
}

fn param(ty: AstType, name: &str) -> Param {
    Param { ty, name: name.to_string(), is_const: false, line: LN }
}

fn field(ty: AstType, name: &str) -> FieldDecl {
    FieldDecl { ty, name: name.to_string(), is_const: false, line: LN }
}

fn global(ty: AstType, name: &str, init: Option<Expr>) -> Item {
    Item::Global { ty, name: name.to_string(), is_const: false, init, line: LN }
}

fn func(ret: AstType, name: &str, params: Vec<Param>, body: Vec<Stmt>) -> Item {
    Item::Func {
        ret,
        name: name.to_string(),
        params,
        body: Some(block(body)),
        is_extern: false,
        line: LN,
    }
}

fn sptr(name: &str) -> AstType {
    AstType::Struct(name.to_string()).ptr()
}

/// `long (*)(long)` — the hook signature shared by vtable slots, struct
/// members, and the `op` local in `main`.
fn hook_ty() -> AstType {
    AstType::FuncPtr { ret: Box::new(AstType::Long), params: vec![AstType::Long] }
}

#[derive(Clone)]
struct StructShape {
    name: String,
    /// By-value nested field `struct s<j> inner;` (index of an earlier
    /// struct, so sizes stay finite).
    inner: Option<usize>,
    has_hook: bool,
}

struct AstGen {
    rng: Rng64,
    cfg: AstGenConfig,
    structs: Vec<StructShape>,
    hooks: u32,
    tmp: u32,
}

impl AstGen {
    /// Inclusive random constant.
    fn c(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.rng.gen_range(0, (hi - lo + 1) as u64) as i64
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.tmp += 1;
        format!("{prefix}{}", self.tmp)
    }

    fn hook_name(&mut self) -> String {
        format!("hook{}", self.rng.gen_range(0, self.hooks as u64))
    }

    fn gen_shapes(&mut self) {
        let n = self.cfg.structs.max(1) as usize;
        for k in 0..n {
            let inner = if k > 0 && self.rng.gen_bool(0.7) {
                Some(self.rng.gen_range(0, k as u64) as usize)
            } else {
                None
            };
            let has_hook = self.rng.gen_bool(0.6);
            self.structs.push(StructShape { name: format!("s{k}"), inner, has_hook });
        }
        // The fuzzing plan requires these constructs in *every* program,
        // not just with high probability.
        if !self.structs.iter().any(|s| s.has_hook) {
            self.structs[0].has_hook = true;
        }
        if n >= 2 && !self.structs.iter().any(|s| s.inner.is_some()) {
            self.structs[1].inner = Some(0);
        }
    }

    // ---- fixed-shape items ----------------------------------------------

    fn struct_item(&self, k: usize) -> Item {
        let s = &self.structs[k];
        let peer = &self.structs[k.saturating_sub(1)].name;
        let mut fields = vec![
            field(AstType::Long, "v"),
            field(AstType::Long, "tag"),
            field(sptr(peer), "peer"),
        ];
        if let Some(j) = s.inner {
            fields.push(field(AstType::Struct(self.structs[j].name.clone()), "inner"));
        }
        if s.has_hook {
            fields.push(field(hook_ty(), "hook"));
        }
        Item::Struct { name: s.name.clone(), fields, line: LN }
    }

    /// `struct vtbl { long (*h0)(long); ... };` — the function-pointer table.
    fn vtbl_item(&self) -> Item {
        let fields = (0..self.hooks)
            .map(|j| field(hook_ty(), &format!("h{j}")))
            .collect();
        Item::Struct { name: "vtbl".to_string(), fields, line: LN }
    }

    fn hook_item(&mut self, h: u32) -> Item {
        let x = evar("x");
        let e = match self.rng.gen_range(0, 5) {
            0 => bin(BinOpAst::Add, x, ilit(self.c(1, 99))),
            1 => bin(BinOpAst::Mul, x, ilit(self.c(2, 9))),
            2 => bin(
                BinOpAst::Add,
                bin(BinOpAst::BitXor, x, ilit(self.c(1, 255))),
                ilit(self.c(0, 9)),
            ),
            3 => bin(
                BinOpAst::Sub,
                bin(BinOpAst::BitAnd, x, ilit(0xff)),
                ilit(self.c(0, 50)),
            ),
            _ => bin(BinOpAst::Add, bin(BinOpAst::Shr, x, ilit(self.c(1, 5))), ilit(1)),
        };
        func(
            AstType::Long,
            &format!("hook{h}"),
            vec![param(AstType::Long, "x")],
            vec![sret(e)],
        )
    }

    /// `long* cell_new(long v) { long* c = (long*) malloc(sizeof(long)); *c = v; return c; }`
    fn cell_new_item(&mut self) -> Item {
        func(
            AstType::Long.ptr(),
            "cell_new",
            vec![param(AstType::Long, "v")],
            vec![
                decl(
                    AstType::Long.ptr(),
                    "c",
                    Some(cast(
                        AstType::Long.ptr(),
                        call("malloc", vec![Expr::Sizeof(AstType::Long, LN)]),
                    )),
                ),
                assign(un(UnOp::Deref, evar("c")), evar("v")),
                sret(evar("c")),
            ],
        )
    }

    fn cell_drop_item(&mut self) -> Item {
        func(
            AstType::Void,
            "cell_drop",
            vec![param(AstType::Long.ptr(), "c")],
            vec![sif(
                bin(BinOpAst::Ne, evar("c"), null()),
                vec![Stmt::Expr(call("free", vec![cast(AstType::Void.ptr(), evar("c"))]))],
            )],
        )
    }

    /// Double-pointer helper: `void bump2(long** pp, long d)`.
    fn bump2_item(&mut self) -> Item {
        func(
            AstType::Void,
            "bump2",
            vec![param(AstType::Long.ptr().ptr(), "pp"), param(AstType::Long, "d")],
            vec![sif(
                bin(BinOpAst::Ne, evar("pp"), null()),
                vec![sif(
                    bin(BinOpAst::Ne, un(UnOp::Deref, evar("pp")), null()),
                    vec![assign(
                        un(UnOp::Deref, un(UnOp::Deref, evar("pp"))),
                        bin(
                            BinOpAst::Add,
                            un(UnOp::Deref, un(UnOp::Deref, evar("pp"))),
                            evar("d"),
                        ),
                    )],
                )],
            )],
        )
    }

    /// Heap churn: allocate cells in a loop, read them back, free every
    /// other one (mixing frees with live allocations stresses the
    /// allocator and the STL scope checks).
    fn churn_item(&mut self) -> Item {
        let c1 = self.c(1, 9);
        let c2 = self.c(0, 9);
        func(
            AstType::Long,
            "churn",
            vec![param(AstType::Long, "n")],
            vec![
                decl(AstType::Long, "acc", Some(ilit(0))),
                counted_for(
                    "i",
                    evar("n"),
                    vec![
                        decl(
                            AstType::Long.ptr(),
                            "cell",
                            Some(call(
                                "cell_new",
                                vec![bin(
                                    BinOpAst::Add,
                                    bin(BinOpAst::Mul, evar("i"), ilit(c1)),
                                    ilit(c2),
                                )],
                            )),
                        ),
                        assign(
                            evar("acc"),
                            bin(BinOpAst::Add, evar("acc"), un(UnOp::Deref, evar("cell"))),
                        ),
                        sif(
                            bin(BinOpAst::Eq, bin(BinOpAst::Rem, evar("i"), ilit(2)), ilit(0)),
                            vec![Stmt::Expr(call("cell_drop", vec![evar("cell")]))],
                        ),
                    ],
                ),
                sret(evar("acc")),
            ],
        )
    }

    /// Chain builder for struct `k`: allocates `n` objects, initializes
    /// every field (hooks always set, so indirect calls never hit null).
    fn builder_item(&mut self, k: usize) -> Item {
        let s = self.structs[k].clone();
        let sp = sptr(&s.name);
        let c1 = self.c(1, 9);
        let c2 = self.c(1, 7);
        let c3 = self.c(0, 5);
        let mut loop_body = vec![
            decl(
                sp.clone(),
                "o",
                Some(cast(
                    sp.clone(),
                    call("malloc", vec![Expr::Sizeof(AstType::Struct(s.name.clone()), LN)]),
                )),
            ),
            assign(arrow(evar("o"), "v"), bin(BinOpAst::Add, evar("i"), ilit(c1))),
            assign(
                arrow(evar("o"), "tag"),
                bin(BinOpAst::Sub, bin(BinOpAst::Mul, evar("i"), ilit(c2)), ilit(c3)),
            ),
            // s0 chains to the previously built object; later structs
            // point at the previous struct's chain.
            assign(arrow(evar("o"), "peer"), evar(if k == 0 { "head" } else { "peer" })),
        ];
        if s.inner.is_some() {
            loop_body.push(assign(
                dot(arrow(evar("o"), "inner"), "v"),
                bin(BinOpAst::Mul, evar("i"), ilit(c2)),
            ));
            loop_body.push(assign(dot(arrow(evar("o"), "inner"), "tag"), ilit(c3)));
        }
        if s.has_hook {
            let h = self.hook_name();
            loop_body.push(assign(arrow(evar("o"), "hook"), evar(&h)));
        }
        loop_body.push(assign(evar("head"), evar("o")));

        let mut params = vec![param(AstType::Long, "n")];
        if k > 0 {
            params.push(param(sptr(&self.structs[k - 1].name), "peer"));
        }
        func(
            sp.clone(),
            &format!("build{k}"),
            params,
            vec![
                decl(sp, "head", Some(null())),
                counted_for("i", evar("n"), loop_body),
                sret(evar("head")),
            ],
        )
    }

    // ---- random expressions ---------------------------------------------

    /// A well-defined `long` expression over `env` lvalues and constants:
    /// wrapping add/sub/mul/bit-ops, division and remainder only by
    /// nonzero constants, shifts masked by the VM.
    fn gen_long(&mut self, env: &[Expr], depth: u32) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.3) {
            if !env.is_empty() && self.rng.gen_bool(0.72) {
                let i = self.rng.gen_range(0, env.len() as u64) as usize;
                return env[i].clone();
            }
            return ilit(self.c(-64, 512));
        }
        let l = self.gen_long(env, depth - 1);
        match self.rng.gen_range(0, 12) {
            0 | 1 => {
                let r = self.gen_long(env, depth - 1);
                bin(BinOpAst::Add, l, r)
            }
            2 => {
                let r = self.gen_long(env, depth - 1);
                bin(BinOpAst::Sub, l, r)
            }
            3 => {
                let r = self.gen_long(env, depth - 1);
                bin(BinOpAst::Mul, l, r)
            }
            4 => {
                let r = self.gen_long(env, depth - 1);
                bin(BinOpAst::BitAnd, l, r)
            }
            5 => {
                let r = self.gen_long(env, depth - 1);
                bin(BinOpAst::BitOr, l, r)
            }
            6 => {
                let r = self.gen_long(env, depth - 1);
                bin(BinOpAst::BitXor, l, r)
            }
            7 => bin(BinOpAst::Div, l, ilit(self.c(1, 9))),
            8 => bin(BinOpAst::Rem, l, ilit(self.c(1, 9))),
            9 => bin(BinOpAst::Shr, l, ilit(self.c(0, 7))),
            10 => bin(
                BinOpAst::Shl,
                bin(BinOpAst::BitAnd, l, ilit(0xffff)),
                ilit(self.c(0, 7)),
            ),
            _ => un(UnOp::Neg, l),
        }
    }

    fn gen_cond(&mut self, env: &[Expr], allow_logic: bool) -> Expr {
        let op = [
            BinOpAst::Eq,
            BinOpAst::Ne,
            BinOpAst::Lt,
            BinOpAst::Le,
            BinOpAst::Gt,
            BinOpAst::Ge,
        ][self.rng.gen_range(0, 6) as usize];
        let l = self.gen_long(env, 1);
        let r = self.gen_long(env, 1);
        let base = bin(op, l, r);
        if allow_logic && self.rng.gen_bool(0.3) {
            let rhs = self.gen_cond(env, false);
            let lop = if self.rng.gen_bool(0.5) { BinOpAst::LogAnd } else { BinOpAst::LogOr };
            return bin(lop, base, rhs);
        }
        base
    }

    // ---- workers ---------------------------------------------------------

    /// A worker takes a (possibly null) chain pointer plus a scalar and
    /// folds random well-defined work into an accumulator.
    fn worker_item(&mut self, f: u32) -> (Item, usize) {
        let k = self.rng.gen_range(0, self.structs.len() as u64) as usize;
        let shape = self.structs[k].clone();
        let depth = self.cfg.max_expr_depth.max(1);

        let mut env = vec![
            evar("acc"),
            evar("z"),
            arrow(evar("p"), "v"),
            arrow(evar("p"), "tag"),
            evar("gcounter"),
        ];
        if shape.inner.is_some() {
            env.push(dot(arrow(evar("p"), "inner"), "v"));
        }

        let mut stmts = vec![
            sif(
                bin(BinOpAst::Eq, evar("p"), null()),
                vec![sret(bin(BinOpAst::Sub, ilit(0), evar("z")))],
            ),
            decl(AstType::Long, "acc", Some(evar("z"))),
        ];
        for _ in 0..self.cfg.stmts_per_func.max(1) {
            self.worker_stmt(&mut stmts, &env, &shape, depth);
        }
        stmts.push(sret(evar("acc")));

        let item = func(
            AstType::Long,
            &format!("work{f}"),
            vec![param(sptr(&shape.name), "p"), param(AstType::Long, "z")],
            stmts,
        );
        (item, k)
    }

    fn worker_stmt(&mut self, out: &mut Vec<Stmt>, env: &[Expr], shape: &StructShape, depth: u32) {
        match self.rng.gen_range(0, 11) {
            0 => {
                let e = self.gen_long(env, depth);
                out.push(assign(evar("acc"), e));
            }
            1 => {
                let e = self.gen_long(env, depth);
                out.push(assign(arrow(evar("p"), "v"), e));
            }
            2 => {
                // int↔long punning: truncate through `int` and widen back.
                let e = self.gen_long(env, depth.min(2));
                out.push(assign(
                    arrow(evar("p"), "tag"),
                    cast(AstType::Long, cast(AstType::Int, e)),
                ));
            }
            3 => {
                // Null-guarded peer walk.
                let peer = arrow(evar("p"), "peer");
                let e = self.gen_long(env, 1);
                out.push(sif(
                    bin(BinOpAst::Ne, peer.clone(), null()),
                    vec![
                        assign(
                            arrow(peer.clone(), "v"),
                            bin(BinOpAst::Add, arrow(peer.clone(), "v"), e),
                        ),
                        assign(
                            evar("acc"),
                            bin(BinOpAst::Add, evar("acc"), arrow(peer, "tag")),
                        ),
                    ],
                ));
            }
            4 => {
                // Indirect call through the object's own hook (builders
                // always set it) or through the global vtable.
                let arg = bin(BinOpAst::BitAnd, self.gen_long(env, 1), ilit(1023));
                let callee = if shape.has_hook && self.rng.gen_bool(0.5) {
                    arrow(evar("p"), "hook")
                } else {
                    let j = self.rng.gen_range(0, self.hooks as u64);
                    arrow(evar("vt"), &format!("h{j}"))
                };
                let add = assign(
                    evar("acc"),
                    bin(BinOpAst::Add, evar("acc"), call_via(callee, vec![arg])),
                );
                out.push(sif(bin(BinOpAst::Ne, evar("vt"), null()), vec![add]));
            }
            5 => {
                // Pointer punning round-trip through void*.
                let q = self.fresh("pun");
                let sp = sptr(&shape.name);
                out.push(Stmt::Block(block(vec![
                    decl(
                        sp.clone(),
                        &q,
                        Some(cast(sp, cast(AstType::Void.ptr(), evar("p")))),
                    ),
                    assign(
                        evar("acc"),
                        bin(BinOpAst::Add, evar("acc"), arrow(evar(&q), "v")),
                    ),
                ])));
            }
            6 => {
                let c = self.c(1, 5);
                out.push(assign(
                    evar("gcounter"),
                    bin(BinOpAst::Add, evar("gcounter"), ilit(c)),
                ));
                out.push(assign(
                    evar("acc"),
                    bin(BinOpAst::Add, evar("acc"), evar("gcounter")),
                ));
            }
            7 => {
                let c = self.gen_cond(env, true);
                let t = self.gen_long(env, depth.min(2));
                let e = self.gen_long(env, depth.min(2));
                out.push(sif_else(
                    c,
                    vec![assign(evar("acc"), t)],
                    vec![assign(evar("acc"), e)],
                ));
            }
            8 => {
                // Constant-bounded while countdown.
                let t = self.fresh("t");
                let n = self.c(1, 4);
                let e = self.gen_long(env, 1);
                out.push(decl(AstType::Long, &t, Some(ilit(n))));
                out.push(Stmt::While {
                    cond: bin(BinOpAst::Gt, evar(&t), ilit(0)),
                    body: block(vec![
                        assign(evar("acc"), bin(BinOpAst::Add, evar("acc"), e)),
                        assign(evar(&t), bin(BinOpAst::Sub, evar(&t), ilit(1))),
                    ]),
                    line: LN,
                });
            }
            9 => {
                // do-while runs at least once; constant bound.
                let t = self.fresh("t");
                let n = self.c(1, 3);
                let e = self.gen_long(env, 1);
                out.push(decl(AstType::Long, &t, Some(ilit(0))));
                out.push(Stmt::DoWhile {
                    cond: bin(BinOpAst::Lt, evar(&t), ilit(n)),
                    body: block(vec![
                        assign(evar("acc"), bin(BinOpAst::BitXor, evar("acc"), e)),
                        assign(evar(&t), bin(BinOpAst::Add, evar(&t), ilit(1))),
                    ]),
                    line: LN,
                });
            }
            _ => {
                let i = self.fresh("i");
                let n = self.c(1, 4);
                let e = self.gen_long(env, 1);
                out.push(counted_for(
                    &i,
                    ilit(n),
                    vec![assign(evar("acc"), bin(BinOpAst::Add, evar("acc"), e))],
                ));
            }
        }
    }

    // ---- main ------------------------------------------------------------

    fn main_item(&mut self, workers: &[(String, usize)]) -> Item {
        let mut st = vec![decl(AstType::Long, "acc", Some(ilit(0)))];

        // Function-pointer table: heap vtable with randomly wired slots.
        st.push(assign(
            evar("vt"),
            cast(
                sptr("vtbl"),
                call("malloc", vec![Expr::Sizeof(AstType::Struct("vtbl".to_string()), LN)]),
            ),
        ));
        for j in 0..self.hooks {
            let h = self.hook_name();
            st.push(assign(arrow(evar("vt"), &format!("h{j}")), evar(&h)));
        }

        // Build the chains.
        let n_objects = self.cfg.objects.max(1) as i64;
        for k in 0..self.structs.len() {
            let mut args = vec![ilit(n_objects)];
            if k > 0 {
                args.push(evar(&format!("root{}", k - 1)));
            }
            st.push(assign(evar(&format!("root{k}")), call(&format!("build{k}"), args)));
        }

        // Stack array, filled with a constant-bounded loop.
        let cf = self.c(1, 9);
        let cg = self.c(0, 5);
        st.push(decl(AstType::Array(Box::new(AstType::Long), 8), "buf", None));
        st.push(counted_for(
            "i",
            ilit(8),
            vec![assign(
                idx(evar("buf"), evar("i")),
                bin(BinOpAst::Add, bin(BinOpAst::Mul, evar("i"), ilit(cf)), ilit(cg)),
            )],
        ));

        // Escaping locals and double pointers: &loc flows into bump2
        // (long**) and into the `saved` global; both writes land while the
        // frame is still live.
        st.push(decl(AstType::Long, "loc", Some(ilit(self.c(1, 99)))));
        st.push(decl(AstType::Long.ptr(), "lp", Some(un(UnOp::AddrOf, evar("loc")))));
        let d1 = self.c(1, 9);
        let d2 = self.c(1, 9);
        st.push(Stmt::Expr(call("bump2", vec![un(UnOp::AddrOf, evar("lp")), ilit(d1)])));
        st.push(assign(evar("saved"), evar("lp")));
        st.push(Stmt::Expr(call("bump2", vec![un(UnOp::AddrOf, evar("saved")), ilit(d2)])));
        st.push(assign(
            evar("acc"),
            bin(
                BinOpAst::Add,
                evar("acc"),
                bin(BinOpAst::Add, evar("loc"), un(UnOp::Deref, evar("lp"))),
            ),
        ));
        st.push(assign(
            evar("acc"),
            bin(BinOpAst::Add, evar("acc"), idx(evar("buf"), ilit(3))),
        ));

        // A local function-pointer variable, reassigned between calls.
        let h1 = self.hook_name();
        let h2 = self.hook_name();
        let a1 = self.c(1, 49);
        st.push(decl(hook_ty(), "op", Some(evar(&h1))));
        st.push(assign(
            evar("acc"),
            bin(BinOpAst::Add, evar("acc"), call_via(evar("op"), vec![ilit(a1)])),
        ));
        st.push(assign(evar("op"), evar(&h2)));
        st.push(assign(
            evar("acc"),
            bin(
                BinOpAst::Add,
                evar("acc"),
                call_via(evar("op"), vec![bin(BinOpAst::BitAnd, evar("acc"), ilit(255))]),
            ),
        ));

        // Heap churn.
        st.push(assign(
            evar("acc"),
            bin(BinOpAst::Add, evar("acc"), call("churn", vec![ilit(n_objects + 2)])),
        ));

        // Driver loop over the workers.
        let mut loop_body = Vec::new();
        for (wname, k) in workers {
            let sname = self.structs[*k].name.clone();
            let root = evar(&format!("root{k}"));
            let arg0 = if self.rng.gen_bool(0.35) {
                cast(sptr(&sname), cast(AstType::Void.ptr(), root))
            } else {
                root
            };
            let z = if self.rng.gen_bool(0.5) {
                bin(BinOpAst::Add, evar("it"), ilit(self.c(0, 9)))
            } else {
                ilit(self.c(0, 99))
            };
            loop_body.push(assign(
                evar("acc"),
                bin(BinOpAst::Add, evar("acc"), call(wname, vec![arg0, z])),
            ));
        }
        loop_body.push(assign(
            evar("gcounter"),
            bin(BinOpAst::Add, evar("gcounter"), ilit(1)),
        ));
        st.push(counted_for("it", ilit(self.cfg.iters.max(1) as i64), loop_body));

        st.push(assign(evar("saved"), null()));
        st.push(Stmt::Expr(call("print_int", vec![evar("acc")])));
        st.push(Stmt::Expr(call("print_int", vec![evar("gcounter")])));
        st.push(Stmt::Return(Some(ilit(0)), LN));

        func(AstType::Int, "main", Vec::new(), st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsti_frontend::compile;
    use rsti_vm::{Image, Status, Vm};

    #[test]
    fn generated_programs_compile_and_run() {
        for seed in 0..30u64 {
            let src = generate(seed, GenConfig::default());
            let m = compile(&src, "gen").unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let r = Vm::new(&Image::baseline(&m)).run();
            assert!(matches!(r.status, Status::Exited(0)), "seed {seed}: {:?}\n{src}", r.status);
        }
    }

    #[test]
    fn differential_instrumented_equals_baseline() {
        for seed in 0..15u64 {
            let src = generate(seed, GenConfig::default());
            let m = compile(&src, "gen").unwrap();
            let base = Vm::new(&Image::baseline(&m)).run();
            for mech in rsti_core::Mechanism::ALL {
                let p = rsti_core::instrument(&m, mech);
                let r = Vm::new(&Image::from_instrumented(&p)).run();
                assert_eq!(r.status, base.status, "seed {seed} {mech}\n{src}");
                assert_eq!(r.output, base.output, "seed {seed} {mech}");
            }
        }
    }

    #[test]
    fn table3_invariants_hold_on_generated_programs() {
        for seed in 0..20u64 {
            let src = generate(seed, GenConfig { structs: 4, funcs: 8, objects: 3, iters: 2 });
            let m = compile(&src, "gen").unwrap();
            let stats = rsti_core::equivalence_stats(&m);
            assert_eq!(stats.invariant_violation(), None, "seed {seed}: {stats:?}");
        }
    }

    // ---- grammar-directed AST generator ---------------------------------

    #[test]
    fn ast_generated_programs_roundtrip_through_the_printer() {
        for seed in 0..40u64 {
            let items = generate_items(seed, AstGenConfig::default());
            let src = rsti_frontend::print_items(&items);
            let reparsed = rsti_frontend::parse(&src)
                .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{src}"));
            assert!(
                rsti_frontend::ast_eq_items(&items, &reparsed),
                "seed {seed}: parse(print(ast)) != ast\n{src}"
            );
        }
    }

    #[test]
    fn ast_generated_programs_compile_and_run_deterministically() {
        for seed in 0..25u64 {
            let src = generate_source(seed, AstGenConfig::default());
            let m = compile(&src, "astgen")
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let a = Vm::new(&Image::baseline(&m)).run();
            let b = Vm::new(&Image::baseline(&m)).run();
            assert!(
                matches!(a.status, Status::Exited(0)),
                "seed {seed}: {:?}\n{src}",
                a.status
            );
            assert_eq!(a.output, b.output, "seed {seed}: nondeterministic output");
        }
    }

    #[test]
    fn ast_generated_differential_instrumented_equals_baseline() {
        for seed in 0..8u64 {
            let src = generate_source(seed, AstGenConfig::default());
            let m = compile(&src, "astgen").unwrap();
            let base = Vm::new(&Image::baseline(&m)).run();
            for mech in rsti_core::Mechanism::ALL {
                let p = rsti_core::instrument(&m, mech);
                let r = Vm::new(&Image::from_instrumented(&p)).run();
                assert_eq!(r.status, base.status, "seed {seed} {mech}\n{src}");
                assert_eq!(r.output, base.output, "seed {seed} {mech}");
            }
        }
    }

    #[test]
    fn ast_generator_always_emits_the_required_constructs() {
        for seed in 0..10u64 {
            let src = generate_source(seed, AstGenConfig::default());
            for needle in [
                "struct vtbl", // function-pointer table
                "(*hook)",     // per-object function-pointer member
                " inner;",     // nested by-value struct
                "long** pp",   // double pointer
                "(void*)",     // cast / type punning
                "&loc",        // escaping local
                "free(",       // heap churn
                "malloc(",
            ] {
                assert!(
                    src.contains(needle),
                    "seed {seed}: generated program lacks `{needle}`:\n{src}"
                );
            }
        }
    }
}
