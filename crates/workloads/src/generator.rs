//! Deterministic random-program generator.
//!
//! Produces valid MiniC programs with a randomized pointer landscape —
//! struct shapes, pointer depths, cast chains, escaping locals, function
//! pointers — for differential testing (instrumented output must equal
//! baseline output under every mechanism) and for stressing the STI
//! analysis beyond the hand-written proxies.

use rsti_rng::Rng64;
use std::fmt::Write as _;

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of struct types.
    pub structs: u32,
    /// Number of worker functions.
    pub funcs: u32,
    /// Objects allocated per struct in `main`.
    pub objects: u32,
    /// Loop iterations in `main`.
    pub iters: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { structs: 3, funcs: 5, objects: 4, iters: 6 }
    }
}

/// Generates a deterministic random MiniC program for `seed`.
pub fn generate(seed: u64, cfg: GenConfig) -> String {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut src = String::new();
    let ns = cfg.structs.max(1);

    // Struct types: a long, a pointer to the previous struct (chains), and
    // optionally a function pointer.
    for s in 0..ns {
        let fp = rng.gen_bool(0.5);
        let _ = writeln!(src, "struct s{s} {{");
        let _ = writeln!(src, "    long v;");
        if s > 0 {
            let _ = writeln!(src, "    struct s{} *peer;", s - 1);
        } else {
            let _ = writeln!(src, "    struct s0 *peer;");
        }
        if fp {
            let _ = writeln!(src, "    long (*hook)(long x);");
        }
        let _ = writeln!(src, "}};");
    }

    // A couple of hook implementations.
    let _ = writeln!(src, "long hook_a(long x) {{ return x + 1; }}");
    let _ = writeln!(src, "long hook_b(long x) {{ return x * 2; }}");

    // Global roots, one per struct.
    for s in 0..ns {
        let _ = writeln!(src, "struct s{s}* root{s};");
    }

    // Worker functions: take a pointer (sometimes as void*), walk/update.
    let mut calls = Vec::new();
    for f in 0..cfg.funcs {
        let s = rng.gen_range(0, ns as u64);
        let via_void = rng.gen_bool(0.4);
        if via_void {
            let _ = writeln!(
                src,
                "long work{f}(void* raw) {{\n    struct s{s}* p = (struct s{s}*) raw;\n    if (p == null) {{ return 0; }}\n    p->v = p->v + {inc};\n    return p->v;\n}}",
                inc = rng.gen_range(1, 5)
            );
            calls.push(format!("acc = acc + work{f}((void*) root{s});"));
        } else {
            let deref_peer = rng.gen_bool(0.5);
            let body = if deref_peer {
                format!(
                    "    if (p == null) {{ return 0; }}\n    if (p->peer != null) {{ p->peer->v = p->peer->v + 1; }}\n    p->v = p->v + {};\n    return p->v;",
                    rng.gen_range(1, 5)
                )
            } else {
                format!(
                    "    if (p == null) {{ return 0; }}\n    p->v = p->v * {} + 1;\n    return p->v;",
                    rng.gen_range(2, 4)
                )
            };
            let _ = writeln!(src, "long work{f}(struct s{s}* p) {{\n{body}\n}}");
            calls.push(format!("acc = acc + work{f}(root{s});"));
        }
    }

    // A chain builder per struct so `objects` controls allocation count.
    for s in 0..ns {
        let peer = if s > 0 { s - 1 } else { 0 };
        let _ = writeln!(
            src,
            "struct s{s}* build{s}(int n, struct s{peer}* peer) {{\n    \
             struct s{s}* head = null;\n    \
             for (int i = 0; i < n; i = i + 1) {{\n        \
             struct s{s}* o = (struct s{s}*) malloc(sizeof(struct s{s}));\n        \
             o->v = i;\n        o->peer = peer;\n        head = o;\n    }}\n    \
             return head;\n}}"
        );
    }

    // main: allocate object chains, set hooks, run the workers in a loop.
    let _ = writeln!(src, "int main() {{");
    let _ = writeln!(src, "    long acc = 0;");
    for s in 0..ns {
        let peer = if s > 0 { s - 1 } else { 0 };
        if s == 0 {
            let _ = writeln!(
                src,
                "    root0 = build0({}, null);",
                cfg.objects.max(1)
            );
        } else {
            let _ = writeln!(
                src,
                "    root{s} = build{s}({}, root{peer});",
                cfg.objects.max(1)
            );
        }
        let _ = writeln!(src, "    root{s}->v = {s};");
    }
    let _ = writeln!(src, "    for (int it = 0; it < {}; it = it + 1) {{", cfg.iters);
    for c in &calls {
        let _ = writeln!(src, "        {c}");
    }
    let _ = writeln!(src, "    }}");
    let _ = writeln!(src, "    print_int(acc);");
    let _ = writeln!(src, "    return 0;");
    let _ = writeln!(src, "}}");
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsti_frontend::compile;
    use rsti_vm::{Image, Status, Vm};

    #[test]
    fn generated_programs_compile_and_run() {
        for seed in 0..30u64 {
            let src = generate(seed, GenConfig::default());
            let m = compile(&src, "gen").unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            let r = Vm::new(&Image::baseline(&m)).run();
            assert!(matches!(r.status, Status::Exited(0)), "seed {seed}: {:?}\n{src}", r.status);
        }
    }

    #[test]
    fn differential_instrumented_equals_baseline() {
        for seed in 0..15u64 {
            let src = generate(seed, GenConfig::default());
            let m = compile(&src, "gen").unwrap();
            let base = Vm::new(&Image::baseline(&m)).run();
            for mech in rsti_core::Mechanism::ALL {
                let p = rsti_core::instrument(&m, mech);
                let r = Vm::new(&Image::from_instrumented(&p)).run();
                assert_eq!(r.status, base.status, "seed {seed} {mech}\n{src}");
                assert_eq!(r.output, base.output, "seed {seed} {mech}");
            }
        }
    }

    #[test]
    fn table3_invariants_hold_on_generated_programs() {
        for seed in 0..20u64 {
            let src = generate(seed, GenConfig { structs: 4, funcs: 8, objects: 3, iters: 2 });
            let m = compile(&src, "gen").unwrap();
            let stats = rsti_core::equivalence_stats(&m);
            assert_eq!(stats.invariant_violation(), None, "seed {seed}: {stats:?}");
        }
    }
}
