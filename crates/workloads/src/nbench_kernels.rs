//! Faithful nbench kernels, one per benchmark in the original BYTEmark
//! suite. Unlike the generic proxies these implement the *actual
//! algorithms* (at reduced problem sizes), so their instruction mix — and
//! therefore their RSTI overhead profile — matches the real programs:
//! mostly scalar/array arithmetic with thin pointer traffic, which is
//! exactly why the paper measures only 1.54 % / 0.52 % / 2.78 % on nbench.
//!
//! Every kernel self-checks: `*_run` returns a value accumulated from the
//! computation, so a semantics-breaking instrumentation bug flips the
//! program's exit status in the differential tests.

use crate::kernels::Kernel;

/// Numeric sort: heapsort over a pseudo-random `long` array.
pub fn numeric_sort(prefix: &str, n: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
void {p}_sift(long* a, int start, int end) {{
    int root = start;
    while (root * 2 + 1 <= end) {{
        int child = root * 2 + 1;
        if (child + 1 <= end && a[child] < a[child + 1]) {{ child++; }}
        if (a[root] < a[child]) {{
            long t = a[root];
            a[root] = a[child];
            a[child] = t;
            root = child;
        }} else {{ return; }}
    }}
}}
long {p}_run(int n, int iters) {{
    long* a = (long*) malloc(n * 8);
    long acc = 0;
    for (int it = 0; it < iters; it = it + 1) {{
        long seed = 12345 + it;
        for (int i = 0; i < n; i = i + 1) {{
            seed = (seed * 1103515245 + 12345) % 2147483647;
            a[i] = seed % 10000;
        }}
        for (int s = n / 2 - 1; s >= 0; s = s - 1) {{ {p}_sift(a, s, n - 1); }}
        for (int e = n - 1; e > 0; e = e - 1) {{
            long t = a[e];
            a[e] = a[0];
            a[0] = t;
            {p}_sift(a, 0, e - 1);
        }}
        acc = acc + a[0] + a[n / 2] + a[n - 1];
    }}
    return acc;
}}
"#,
        p = prefix
    );
    Kernel { decls, call: format!("g_check = g_check + {prefix}_run({n}, {iters});\n") }
}

/// String sort: an array of `char*` keys insertion-sorted by content —
/// the pointer-swap traffic is the part RSTI instruments.
pub fn string_sort(prefix: &str, n: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
int {p}_cmp(char* a, char* b) {{
    int i = 0;
    while (a[i] != '\0' && a[i] == b[i]) {{ i++; }}
    return (int) a[i] - (int) b[i];
}}
long {p}_run(int n, int iters) {{
    char** keys = (char**) malloc(n * 8);
    for (int i = 0; i < n; i = i + 1) {{
        char* s = (char*) malloc(32);
        long seed = (i * 2654435761) % 2147483647;
        // Long common prefixes make the comparison byte work dominate,
        // like BYTEmark's real string area.
        for (int j = 0; j < 24; j = j + 1) {{
            s[j] = (char) (97 + j % 3);
        }}
        for (int j = 24; j < 30; j = j + 1) {{
            seed = (seed * 1103515245 + 12345) % 2147483647;
            s[j] = (char) (97 + seed % 26);
        }}
        s[30] = '\0';
        keys[i] = s;
    }}
    long acc = 0;
    for (int it = 0; it < iters; it = it + 1) {{
        for (int i = 1; i < n; i = i + 1) {{
            char* key = keys[i];
            int j = i - 1;
            while (j >= 0 && {p}_cmp(keys[j], key) > 0) {{
                keys[j + 1] = keys[j];
                j = j - 1;
            }}
            keys[j + 1] = key;
        }}
        acc = acc + (long) keys[0][0] + (long) keys[n - 1][0];
        // Shuffle a little so later iterations re-sort.
        char* t = keys[0];
        keys[0] = keys[n - 1];
        keys[n - 1] = t;
    }}
    return acc;
}}
"#,
        p = prefix
    );
    Kernel { decls, call: format!("g_check = g_check + {prefix}_run({n}, {iters});\n") }
}

/// Bitfield: set/clear/toggle runs of bits in a `long` bitmap.
pub fn bitfield(prefix: &str, bits: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
long {p}_run(int bits, int iters) {{
    int words = bits / 64 + 1;
    long* map = (long*) malloc(words * 8);
    for (int i = 0; i < words; i = i + 1) {{ map[i] = 0; }}
    long acc = 0;
    for (int it = 0; it < iters; it = it + 1) {{
        long seed = 777 + it;
        for (int op = 0; op < bits; op = op + 1) {{
            seed = (seed * 1103515245 + 12345) % 2147483647;
            int bit = (int) (seed % bits);
            int w = bit / 64;
            // keep clear of the sign bit: >> is arithmetic on long
            int o = bit % 62;
            long mask = 1;
            mask = mask << o;
            int kind = (int) (seed % 3);
            if (kind == 0) {{ map[w] = map[w] | mask; }}
            else {{ if (kind == 1) {{ map[w] = map[w] & (0 - 1 - mask); }}
            else {{ map[w] = map[w] ^ mask; }} }}
        }}
        for (int i = 0; i < words; i = i + 1) {{
            long v = map[i];
            while (v != 0) {{ acc = acc + (v & 1); v = v >> 1; }}
        }}
    }}
    return acc;
}}
"#,
        p = prefix
    );
    Kernel { decls, call: format!("g_check = g_check + {prefix}_run({bits}, {iters});\n") }
}

/// FP emulation: software floating point — pack/unpack/add/multiply of a
/// (sign, exponent, mantissa) representation using integer ops only.
pub fn fp_emulation(prefix: &str, n: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
long {p}_fpadd(long a_man, long a_exp, long b_man, long b_exp) {{
    while (a_exp < b_exp) {{ a_man = a_man >> 1; a_exp = a_exp + 1; }}
    while (b_exp < a_exp) {{ b_man = b_man >> 1; b_exp = b_exp + 1; }}
    long m = a_man + b_man;
    while (m >= 65536) {{ m = m >> 1; a_exp = a_exp + 1; }}
    return m + a_exp * 65536;
}}
long {p}_fpmul(long a_man, long a_exp, long b_man, long b_exp) {{
    long m = (a_man * b_man) >> 8;
    long e = a_exp + b_exp;
    while (m >= 65536) {{ m = m >> 1; e = e + 1; }}
    return m + e * 65536;
}}
long {p}_run(int n, int iters) {{
    long acc = 0;
    for (int it = 0; it < iters; it = it + 1) {{
        long seed = 99 + it;
        for (int i = 0; i < n; i = i + 1) {{
            seed = (seed * 1103515245 + 12345) % 2147483647;
            long am = 256 + seed % 255;
            long bm = 256 + (seed >> 8) % 255;
            acc = acc + {p}_fpadd(am, 3, bm, 5);
            acc = acc + {p}_fpmul(am, 2, bm, 1);
            if (acc > 1000000000) {{ acc = acc % 65521; }}
        }}
    }}
    return acc;
}}
"#,
        p = prefix
    );
    Kernel { decls, call: format!("g_check = g_check + {prefix}_run({n}, {iters});\n") }
}

/// Fourier: numerically integrate the first coefficients of a series
/// (trapezoid rule over a polynomial stand-in for sin/cos).
pub fn fourier(prefix: &str, terms: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
double {p}_wave(double x) {{
    // Cubic Bhaskara-like approximation standing in for sin(x).
    double x2 = x * x;
    return x - x2 * x / 6.0 + x2 * x2 * x / 120.0;
}}
double {p}_integrate(int k, int steps) {{
    double a = 0.0;
    double b = 2.0;
    double h = (b - a) / (double) steps;
    double sum = ({p}_wave(a * (double) k) + {p}_wave(b * (double) k)) / 2.0;
    double x = a + h;
    for (int i = 1; i < steps; i = i + 1) {{
        sum = sum + {p}_wave(x * (double) k);
        x = x + h;
    }}
    return sum * h;
}}
long {p}_run(int terms, int iters) {{
    double acc = 0.0;
    for (int it = 0; it < iters; it = it + 1) {{
        for (int k = 1; k <= terms; k = k + 1) {{
            acc = acc + {p}_integrate(k, 20);
        }}
    }}
    return (long) (acc * 1000.0);
}}
"#,
        p = prefix
    );
    Kernel { decls, call: format!("g_check = g_check + {prefix}_run({terms}, {iters});\n") }
}

/// Assignment: greedy row-minimum assignment over a cost matrix (the
/// nbench task is Hungarian; the greedy variant keeps the same access
/// pattern at toy scale).
pub fn assignment(prefix: &str, dim: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
long {p}_run(int dim, int iters) {{
    long* cost = (long*) malloc(dim * dim * 8);
    long* taken = (long*) malloc(dim * 8);
    long acc = 0;
    for (int it = 0; it < iters; it = it + 1) {{
        long seed = 31 + it;
        for (int i = 0; i < dim * dim; i = i + 1) {{
            seed = (seed * 1103515245 + 12345) % 2147483647;
            cost[i] = seed % 100;
        }}
        for (int i = 0; i < dim; i = i + 1) {{ taken[i] = 0; }}
        for (int r = 0; r < dim; r = r + 1) {{
            long best = 1000000;
            int best_c = 0;
            for (int c = 0; c < dim; c = c + 1) {{
                if (taken[c] == 0 && cost[r * dim + c] < best) {{
                    best = cost[r * dim + c];
                    best_c = c;
                }}
            }}
            taken[best_c] = 1;
            acc = acc + best;
        }}
    }}
    return acc;
}}
"#,
        p = prefix
    );
    Kernel { decls, call: format!("g_check = g_check + {prefix}_run({dim}, {iters});\n") }
}

/// IDEA-like cipher: 16-bit modular multiply/add/xor rounds over a block.
pub fn idea(prefix: &str, blocks: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
long {p}_mulmod(long a, long b) {{
    long m = (a * b) % 65537;
    if (m == 0) {{ m = 65536; }}
    return m % 65536;
}}
long {p}_run(int blocks, int iters) {{
    long acc = 0;
    for (int it = 0; it < iters; it = it + 1) {{
        long x1 = 1 + it;
        long x2 = 2;
        long x3 = 3;
        long x4 = 4;
        for (int b = 0; b < blocks; b = b + 1) {{
            for (int round = 0; round < 8; round = round + 1) {{
                x1 = {p}_mulmod(x1, 2 + round);
                x2 = (x2 + round + 17) % 65536;
                x3 = (x3 + x1) % 65536;
                x4 = {p}_mulmod(x4, 3 + round);
                long t = x2 ^ x3;
                x2 = x3 ^ x1;
                x3 = t ^ x4;
            }}
            acc = acc + x1 + x2 + x3 + x4;
            if (acc > 1000000000) {{ acc = acc % 65521; }}
        }}
    }}
    return acc;
}}
"#,
        p = prefix
    );
    Kernel { decls, call: format!("g_check = g_check + {prefix}_run({blocks}, {iters});\n") }
}

/// Huffman: frequency count, then a greedy two-smallest merge over a heap
/// node forest — the only genuinely pointer-structured nbench kernel.
pub fn huffman(prefix: &str, symbols: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
struct {p}_hnode {{ long weight; struct {p}_hnode* left; struct {p}_hnode* right; }};
long {p}_depth_sum(struct {p}_hnode* n, long depth) {{
    if (n == null) {{ return 0; }}
    if (n->left == null && n->right == null) {{ return depth * n->weight; }}
    return {p}_depth_sum(n->left, depth + 1) + {p}_depth_sum(n->right, depth + 1);
}}
long {p}_run(int symbols, int iters) {{
    struct {p}_hnode** forest =
        (struct {p}_hnode**) malloc(symbols * 8);
    long acc = 0;
    for (int it = 0; it < iters; it = it + 1) {{
        long seed = 5 + it;
        for (int i = 0; i < symbols; i = i + 1) {{
            struct {p}_hnode* n = (struct {p}_hnode*) malloc(sizeof(struct {p}_hnode));
            seed = (seed * 1103515245 + 12345) % 2147483647;
            n->weight = 1 + seed % 50;
            n->left = null;
            n->right = null;
            forest[i] = n;
        }}
        int live = symbols;
        while (live > 1) {{
            // find two smallest
            int a = 0;
            for (int i = 1; i < live; i = i + 1) {{
                if (forest[i]->weight < forest[a]->weight) {{ a = i; }}
            }}
            struct {p}_hnode* na = forest[a];
            forest[a] = forest[live - 1];
            live = live - 1;
            int b = 0;
            for (int i = 1; i < live; i = i + 1) {{
                if (forest[i]->weight < forest[b]->weight) {{ b = i; }}
            }}
            struct {p}_hnode* nb = forest[b];
            struct {p}_hnode* m = (struct {p}_hnode*) malloc(sizeof(struct {p}_hnode));
            m->weight = na->weight + nb->weight;
            m->left = na;
            m->right = nb;
            forest[b] = m;
        }}
        acc = acc + {p}_depth_sum(forest[0], 0);
    }}
    return acc;
}}
"#,
        p = prefix
    );
    Kernel { decls, call: format!("g_check = g_check + {prefix}_run({symbols}, {iters});\n") }
}

/// Neural net: one feed-forward + delta pass of a tiny dense network.
pub fn neural_net(prefix: &str, hidden: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
double {p}_act(double x) {{
    // rational sigmoid stand-in
    if (x < 0.0) {{ return 1.0 - 1.0 / (1.0 - x); }}
    return 1.0 / (1.0 + x);
}}
long {p}_run(int hidden, int iters) {{
    int inputs = 8;
    double* w1 = (double*) malloc(inputs * hidden * 8);
    double* w2 = (double*) malloc(hidden * 8);
    double* h = (double*) malloc(hidden * 8);
    for (int i = 0; i < inputs * hidden; i = i + 1) {{ w1[i] = 0.01 * (double) (i % 17); }}
    for (int i = 0; i < hidden; i = i + 1) {{ w2[i] = 0.02 * (double) (i % 13); }}
    double acc = 0.0;
    for (int it = 0; it < iters; it = it + 1) {{
        for (int j = 0; j < hidden; j = j + 1) {{
            double sum = 0.0;
            for (int i = 0; i < inputs; i = i + 1) {{
                sum = sum + w1[i * hidden + j] * (double) ((i + it) % 3);
            }}
            h[j] = {p}_act(sum);
        }}
        double out = 0.0;
        for (int j = 0; j < hidden; j = j + 1) {{ out = out + h[j] * w2[j]; }}
        double err = 0.5 - out;
        for (int j = 0; j < hidden; j = j + 1) {{ w2[j] = w2[j] + 0.1 * err * h[j]; }}
        acc = acc + out;
    }}
    return (long) (acc * 1000.0);
}}
"#,
        p = prefix
    );
    Kernel { decls, call: format!("g_check = g_check + {prefix}_run({hidden}, {iters});\n") }
}

/// LU decomposition (Doolittle, no pivoting) of a diagonally dominant
/// matrix, plus a determinant-style checksum.
pub fn lu_decomposition(prefix: &str, dim: u32, iters: u32) -> Kernel {
    let decls = format!(
        r#"
long {p}_run(int dim, int iters) {{
    double* a = (double*) malloc(dim * dim * 8);
    double acc = 0.0;
    for (int it = 0; it < iters; it = it + 1) {{
        for (int i = 0; i < dim; i = i + 1) {{
            for (int j = 0; j < dim; j = j + 1) {{
                if (i == j) {{ a[i * dim + j] = (double) (dim + 1); }}
                else {{ a[i * dim + j] = 1.0 / (double) (1 + (i + j + it) % 7); }}
            }}
        }}
        for (int k = 0; k < dim; k = k + 1) {{
            for (int i = k + 1; i < dim; i = i + 1) {{
                double f = a[i * dim + k] / a[k * dim + k];
                for (int j = k; j < dim; j = j + 1) {{
                    a[i * dim + j] = a[i * dim + j] - f * a[k * dim + j];
                }}
                a[i * dim + k] = f;
            }}
        }}
        double det = 1.0;
        for (int k = 0; k < dim; k = k + 1) {{ det = det * a[k * dim + k]; }}
        acc = acc + det / (det + 1.0);
    }}
    return (long) (acc * 1000.0);
}}
"#,
        p = prefix
    );
    Kernel { decls, call: format!("g_check = g_check + {prefix}_run({dim}, {iters});\n") }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::assemble;
    use rsti_frontend::compile;
    use rsti_vm::{Image, Status, Vm};

    fn check(kernel: Kernel) -> i64 {
        let src = assemble(&[kernel]);
        let m = compile(&src, "nb").unwrap_or_else(|e| panic!("{e}\n{src}"));
        let img = Image::baseline(&m);
        let mut vm = Vm::new(&img);
        vm.set_fuel(60_000_000);
        let r = vm.run();
        match r.status {
            Status::Exited(0) => r.output[0].parse().unwrap(),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn numeric_sort_sorts() {
        // Heapsort leaves a[0] = min; checksum is stable and non-zero.
        assert!(check(numeric_sort("t1", 64, 2)) > 0);
    }

    #[test]
    fn string_sort_orders_keys() {
        let v = check(string_sort("t2", 24, 2));
        assert!(v > 0, "{v}");
    }

    #[test]
    fn bitfield_counts_bits() {
        assert!(check(bitfield("t3", 256, 2)) > 0);
    }

    #[test]
    fn fp_emulation_accumulates() {
        assert!(check(fp_emulation("t4", 64, 2)) != 0);
    }

    #[test]
    fn fourier_series_converges() {
        assert!(check(fourier("t5", 6, 2)) != 0);
    }

    #[test]
    fn assignment_picks_minima() {
        let v = check(assignment("t6", 8, 2));
        assert!(v > 0 && v < 2 * 8 * 100, "{v}");
    }

    #[test]
    fn idea_rounds_run() {
        assert!(check(idea("t7", 16, 2)) > 0);
    }

    #[test]
    fn huffman_tree_weighted_depth() {
        assert!(check(huffman("t8", 16, 2)) > 0);
    }

    #[test]
    fn neural_net_learns_something() {
        assert!(check(neural_net("t9", 8, 3)) != 0);
    }

    #[test]
    fn lu_decomposition_determinant() {
        assert!(check(lu_decomposition("ta", 6, 2)) != 0);
    }

    /// The real-algorithm kernels stay semantics-identical under every
    /// mechanism — the strongest correctness check in the workload crate.
    #[test]
    fn nbench_kernels_differential() {
        let kernels = [
            numeric_sort("d1", 32, 1),
            string_sort("d2", 12, 1),
            huffman("d3", 10, 1),
        ];
        for k in kernels {
            let src = assemble(&[k]);
            let m = compile(&src, "nb").unwrap();
            let base = Vm::new(&Image::baseline(&m)).run();
            assert!(base.status.is_exit());
            for mech in rsti_core::Mechanism::ALL {
                // At every optimizer level: unoptimized, block-local
                // elision only, and the full CFG pipeline.
                for level in rsti_core::OptLevel::ALL {
                    let mut p = rsti_core::instrument(&m, mech);
                    rsti_core::optimize_module(&mut p.module, level);
                    let r = Vm::new(&Image::from_instrumented(&p)).run();
                    assert_eq!(r.status, base.status, "{mech} at {}", level.label());
                    assert_eq!(r.output, base.output, "{mech} at {}", level.label());
                }
            }
        }
    }
}
