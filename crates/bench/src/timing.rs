//! A minimal wall-clock timing harness for the `benches/` binaries.
//!
//! The build environment has no third-party registry, so Criterion is not
//! available; this module provides the small slice of it the benches need:
//! warmup, a time-targeted measurement loop, and a per-iteration report.
//! Numbers are indicative (no outlier rejection) — the cycle-model reports
//! remain the deterministic source of truth.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Bench label.
    pub label: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations executed in the measurement window.
    pub iters: u64,
}

impl Measurement {
    /// Iterations per second implied by the mean.
    pub fn per_sec(&self) -> f64 {
        if self.ns_per_iter > 0.0 { 1e9 / self.ns_per_iter } else { 0.0 }
    }
}

/// Times `f`, targeting roughly `target` of measurement after a short
/// warmup, and prints a Criterion-style one-liner.
pub fn bench_with_target<R>(
    label: &str,
    target: Duration,
    mut f: impl FnMut() -> R,
) -> Measurement {
    // Warmup + calibration: find an iteration count that fills the window.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000_000) as u64;
    let t1 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let elapsed = t1.elapsed();
    let m = Measurement {
        label: label.to_string(),
        ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
        iters,
    };
    println!(
        "{:<40} {:>14.1} ns/iter   ({} iters, {:.2?} total)",
        m.label, m.ns_per_iter, m.iters, elapsed
    );
    m
}

/// Times `f` with the default 300 ms measurement window.
pub fn bench<R>(label: &str, f: impl FnMut() -> R) -> Measurement {
    bench_with_target(label, Duration::from_millis(300), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_time() {
        let m = bench_with_target("spin", Duration::from_millis(5), || {
            (0..100u64).fold(0, |a, b| a ^ b.wrapping_mul(31))
        });
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters >= 1);
        assert!(m.per_sec() > 0.0);
    }
}
