//! Text renderers for the figure/table reproductions.

use crate::overhead::{box_stats, geomean_pct, measure_suite, pearson, MeasureError, OverheadRow};
use rsti_workloads::{cpython, nbench, nginx, spec2006, spec2017, Workload};

/// The full Figure 9 data set: per-benchmark SPEC2017 overheads plus the
/// geometric means of every suite and the all-suite mean.
pub struct Fig9 {
    /// SPEC2017 per-benchmark rows.
    pub spec2017: Vec<OverheadRow>,
    /// SPEC2006 rows (aggregated in the figure).
    pub spec2006: Vec<OverheadRow>,
    /// nbench rows.
    pub nbench: Vec<OverheadRow>,
    /// CPython rows.
    pub cpython: Vec<OverheadRow>,
    /// NGINX row.
    pub nginx: Vec<OverheadRow>,
}

impl Fig9 {
    /// Measures everything (minutes of VM time in debug; seconds in
    /// release).
    ///
    /// All five suites are flattened into one workload list and fanned
    /// out together over [`crate::overhead::bench_threads`] scoped
    /// threads — one pool, so the long SPEC rows overlap the short
    /// nbench/NGINX tail instead of each suite serialising on its own
    /// slowest member. The flat results are split back per suite in
    /// order, so every row is exactly what a serial sweep would report.
    ///
    /// # Errors
    /// Returns the first failing workload's [`MeasureError`].
    pub fn measure() -> Result<Self, MeasureError> {
        let suites = [spec2017(), spec2006(), nbench(), cpython(), nginx()];
        let counts: Vec<usize> = suites.iter().map(Vec::len).collect();
        let all: Vec<Workload> = suites.into_iter().flatten().collect();
        let mut rows = measure_suite(&all)?.into_iter();
        let mut take = |n: usize| rows.by_ref().take(n).collect::<Vec<_>>();
        Ok(Fig9 {
            spec2017: take(counts[0]),
            spec2006: take(counts[1]),
            nbench: take(counts[2]),
            cpython: take(counts[3]),
            nginx: take(counts[4]),
        })
    }

    /// Geomean of `[STWC, STC, STL]` over a row set.
    pub fn geomeans(rows: &[OverheadRow]) -> [f64; 3] {
        [
            geomean_pct(rows.iter().map(|r| r.overhead_pct[0])),
            geomean_pct(rows.iter().map(|r| r.overhead_pct[1])),
            geomean_pct(rows.iter().map(|r| r.overhead_pct[2])),
        ]
    }

    /// All rows across suites.
    pub fn all_rows(&self) -> Vec<&OverheadRow> {
        self.spec2017
            .iter()
            .chain(&self.spec2006)
            .chain(&self.nbench)
            .chain(&self.cpython)
            .chain(&self.nginx)
            .collect()
    }

    /// Renders the Figure 9 report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Figure 9 reproduction: performance overhead (%) per benchmark and\n\
             suite geomeans, cycle-model VM (PA op = 7 ALU ops, as the paper\n\
             emulates). Columns: RSTI-STWC / RSTI-STC / RSTI-STL.\n\n",
        );
        out.push_str(&format!(
            "{:<20} {:>10} {:>10} {:>10}   {:>8} {:>10} {:>10} {:>10}\n",
            "SPEC CPU2017", "STWC%", "STC%", "STL%", "sites", "base", "signs", "auths"
        ));
        for r in &self.spec2017 {
            out.push_str(&format!(
                "{:<20} {:>10.2} {:>10.2} {:>10.2}   {:>8} {:>10} {:>10} {:>10}\n",
                r.name,
                r.overhead_pct[0],
                r.overhead_pct[1],
                r.overhead_pct[2],
                r.instrumented_sites,
                r.base_cycles,
                r.pac_signs[0],
                r.pac_auths[0],
            ));
        }
        fn push_geo(out: &mut String, label: &str, rows: &[OverheadRow]) {
            let g = Fig9::geomeans(rows);
            out.push_str(&format!(
                "{:<20} {:>10.2} {:>10.2} {:>10.2}\n",
                label, g[0], g[1], g[2]
            ));
        }
        out.push('\n');
        push_geo(&mut out, "Geomean-SPEC2017", &self.spec2017);
        push_geo(&mut out, "Geomean-SPEC2006", &self.spec2006);
        push_geo(&mut out, "Geomean-nbench", &self.nbench);
        push_geo(&mut out, "Geomean-CPython", &self.cpython);
        push_geo(&mut out, "NGINX", &self.nginx);
        let all: Vec<OverheadRow> = self.all_rows().into_iter().cloned().collect();
        push_geo(&mut out, "Geomean-all", &all);

        // §6.3.2 correlation: instrumented load/stores vs overhead.
        let xs: Vec<f64> = all.iter().map(|r| r.instrumented_sites as f64).collect();
        let ys: Vec<f64> = all.iter().map(|r| r.overhead_pct[0]).collect();
        out.push_str(&format!(
            "\nPearson(instrumented load/stores, STWC overhead) = {:.2}  (paper: 0.75-0.8)\n",
            pearson(&xs, &ys)
        ));

        // Dynamic check totals per mechanism (telemetry columns).
        let mut signs = [0u64; 3];
        let mut auths = [0u64; 3];
        for r in &all {
            for i in 0..3 {
                signs[i] += r.pac_signs[i];
                auths[i] += r.pac_auths[i];
            }
        }
        out.push_str(&format!(
            "\nDynamic checks (all suites): \
             STWC {} signs / {} auths;  STC {} signs / {} auths;  STL {} signs / {} auths\n",
            signs[0], auths[0], signs[1], auths[1], signs[2], auths[2]
        ));
        out
    }
}

/// Renders the Figure 10 report (box-plot statistics).
pub fn render_fig10(fig9: &Fig9) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 10 reproduction: overhead distribution per suite\n\
         (min / q1 / median / q3 / max / geomean, outliers beyond 1.5 IQR)\n\n",
    );
    let mech_names = ["STWC", "STC", "STL"];
    for (suite, rows) in [
        ("SPEC 2006", &fig9.spec2006),
        ("nbench", &fig9.nbench),
        ("PyTorch", &fig9.cpython),
    ] {
        out.push_str(&format!("{suite}:\n"));
        for (mi, mname) in mech_names.iter().enumerate() {
            let vals: Vec<f64> = rows.iter().map(|r| r.overhead_pct[mi]).collect();
            let s = box_stats(&vals);
            out.push_str(&format!(
                "  {:<5} min {:>7.2}  q1 {:>7.2}  med {:>7.2}  q3 {:>7.2}  max {:>7.2}  geo {:>7.2}  outliers {:?}\n",
                mname,
                s.min,
                s.q1,
                s.median,
                s.q3,
                s.max,
                s.geomean,
                s.outliers.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
            ));
        }
    }
    out
}

/// Renders the Table 3 reproduction (equivalence-class data, SPEC2006).
pub fn render_table3() -> String {
    let mut out = String::new();
    out.push_str(
        "Table 3 reproduction: SPEC 2006 equivalence-class data\n\
         (NT: basic pointer types; RT: RSTI-types; NV: pointer variables;\n\
         ECV/ECT: largest equivalence class of variables/types)\n\n",
    );
    out.push_str(&format!(
        "{:<12} {:>4} {:>8} {:>9} {:>5} {:>8} {:>9} {:>8} {:>9}\n",
        "BM", "NT", "RT(STC)", "RT(STWC)", "NV", "ECV(STC)", "ECV(STWC)", "ECT(STC)", "ECT(STWC)"
    ));
    for w in spec2006() {
        let m = w.module();
        let s = rsti_core::equivalence_stats(&m);
        assert_eq!(s.invariant_violation(), None, "{}: {s:?}", w.name);
        out.push_str(&format!(
            "{:<12} {:>4} {:>8} {:>9} {:>5} {:>8} {:>9} {:>8} {:>9}\n",
            w.name, s.nt, s.rt_stc, s.rt_stwc, s.nv, s.ecv_stc, s.ecv_stwc, s.ect_stc, s.ect_stwc
        ));
    }
    // Scaling check: generated programs grow the tables the way the
    // paper's real SPEC inputs do (NT in the tens to hundreds, RT > NT).
    out.push_str("\nsynthetic scaling (seeded generator):\n");
    for (label, cfg) in [
        ("gen-small", rsti_workloads::GenConfig { structs: 8, funcs: 24, objects: 2, iters: 1 }),
        ("gen-medium", rsti_workloads::GenConfig { structs: 24, funcs: 72, objects: 2, iters: 1 }),
        ("gen-large", rsti_workloads::GenConfig { structs: 64, funcs: 200, objects: 2, iters: 1 }),
    ] {
        let src = rsti_workloads::generate(7, cfg);
        let m = rsti_frontend::compile(&src, label).expect("generator emits valid MiniC");
        let s = rsti_core::equivalence_stats(&m);
        assert_eq!(s.invariant_violation(), None, "{label}: {s:?}");
        out.push_str(&format!(
            "{:<12} {:>4} {:>8} {:>9} {:>5} {:>8} {:>9} {:>8} {:>9}\n",
            label, s.nt, s.rt_stc, s.rt_stwc, s.nv, s.ecv_stc, s.ecv_stwc, s.ect_stc, s.ect_stwc
        ));
    }
    out.push_str(
        "\nInvariants checked: RT(STWC)>=RT(STC); RT(STL)<=NV;\n\
         ECV(STC)>=ECV(STWC); ECT(STC)>=ECT(STWC). The paper's strict\n\
         equalities (ECT(STWC)=1, RT(STL)=NV) hold on alias-free programs;\n\
         address-escaped variables share their type's class (DESIGN.md).\n",
    );
    out
}

/// Renders the §6.2.2 pointer-to-pointer census.
pub fn render_pp_census() -> String {
    let mut out = String::new();
    out.push_str(
        "§6.2.2 reproduction: pointer-to-pointer site census over the SPEC\n\
         2006 proxies (paper: 7,489 sites, of which only 25 lose the\n\
         original type and need the CE/FE mechanism)\n\n",
    );
    let mut total = 0;
    let mut lost = 0;
    out.push_str(&format!("{:<12} {:>12} {:>16}\n", "BM", "pp sites", "lost-type sites"));
    for w in spec2006() {
        let m = w.module();
        let a = rsti_core::analyze(&m, rsti_core::Mechanism::Stwc);
        let plan = rsti_core::plan_pp(&m, &a);
        out.push_str(&format!(
            "{:<12} {:>12} {:>16}\n",
            w.name, plan.census.total_sites, plan.census.lost_type_sites
        ));
        total += plan.census.total_sites;
        lost += plan.census.lost_type_sites;
    }
    out.push_str(&format!(
        "\ntotal: {total} double-pointer sites, {lost} lose the original type\n\
         ({:.1}% — confirming the paper's 'this is a rare case': 25/7489 = 0.3%)\n",
        if total > 0 { 100.0 * lost as f64 / total as f64 } else { 0.0 }
    ));
    out
}

/// Renders the §6.3.2 PARTS-vs-RSTI nbench comparison.
pub fn render_parts_compare() -> String {
    let mut out = String::new();
    out.push_str(
        "§6.3.2 reproduction: nbench overhead, PARTS baseline vs RSTI\n\
         (paper: PARTS 19.5% mean; RSTI 1.54% / 0.52% / 2.78% for\n\
         STWC / STC / STL)\n\n",
    );
    let ws: Vec<Workload> = nbench();
    out.push_str(&format!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}\n",
        "benchmark", "PARTS%", "STWC%", "STC%", "STL%"
    ));
    let mut parts_all = Vec::new();
    let mut rsti_all = [Vec::new(), Vec::new(), Vec::new()];
    for w in &ws {
        let mut m = w.module();
        rsti_core::inline_leaf_functions(&mut m, 96);
        let base = {
            let mut mb = m.clone();
            rsti_core::optimize_baseline(&mut mb);
            let img = rsti_vm::Image::baseline(&mb);
            let mut vm = rsti_vm::Vm::new(&img);
            vm.set_fuel(200_000_000);
            vm.run().cycles as f64
        };
        let pct = |mech: rsti_core::Mechanism| {
            let mut p = rsti_core::instrument(&m, mech);
            rsti_core::optimize_program(&mut p);
            let img = rsti_vm::Image::from_instrumented(&p);
            let mut vm = rsti_vm::Vm::new(&img);
            vm.set_fuel(200_000_000);
            (vm.run().cycles as f64 / base - 1.0) * 100.0
        };
        let parts = pct(rsti_core::Mechanism::Parts);
        let stwc = pct(rsti_core::Mechanism::Stwc);
        let stc = pct(rsti_core::Mechanism::Stc);
        let stl = pct(rsti_core::Mechanism::Stl);
        out.push_str(&format!(
            "{:<18} {:>9.2} {:>9.2} {:>9.2} {:>9.2}\n",
            w.name, parts, stwc, stc, stl
        ));
        parts_all.push(parts);
        rsti_all[0].push(stwc);
        rsti_all[1].push(stc);
        rsti_all[2].push(stl);
    }
    out.push_str(&format!(
        "\nmean: PARTS {:.2}%  STWC {:.2}%  STC {:.2}%  STL {:.2}%\n",
        geomean_pct(parts_all),
        geomean_pct(rsti_all[0].clone()),
        geomean_pct(rsti_all[1].clone()),
        geomean_pct(rsti_all[2].clone()),
    ));
    out.push_str(
        "\nNote: PARTS' per-op cost is modelled at 22 cycles (non-inlined\n\
         runtime calls + spills) vs RSTI's 7 (inlined intrinsics), per the\n\
         paper's explanation of the gap (§6.3.2). The nbench proxies are\n\
         numeric-dominated, so absolute numbers stay small; the ordering\n\
         PARTS > STL > STWC > STC on the pointer-active rows is the\n\
         reproduced shape. The security gap is Table 1's.\n",
    );
    out
}
