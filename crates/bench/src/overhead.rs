//! Overhead measurement: the machinery behind Figures 9 and 10.
//!
//! For every workload we execute the uninstrumented baseline and each
//! mechanism in the cycle-model VM and report the overhead ratio. The
//! paper measures wall-clock on an Apple M1; our deterministic cycle model
//! (PA op = 7 ALU ops, the paper's own emulation factor) reproduces the
//! *shape*: STC < STWC < STL, pointer-heavy outliers, near-zero nbench.

use rsti_core::{Mechanism, OptLevel};
use rsti_vm::{Image, Status, Vm};
use rsti_workloads::{Suite, Workload};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Mechanisms in report column order.
pub const MECHS: [Mechanism; 3] = [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl];

/// A workload run that did not exit cleanly — the measurement is
/// meaningless, so the whole sweep reports which benchmark failed and how
/// instead of asserting deep inside the VM loop.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureError {
    /// Name of the failing benchmark.
    pub workload: String,
    /// How the run ended (a trap, or a non-zero exit).
    pub status: Status,
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload `{}` did not run cleanly: {:?}", self.workload, self.status)
    }
}

impl std::error::Error for MeasureError {}

/// One benchmark's overhead measurements.
///
/// `PartialEq` so the determinism tests can assert that parallel and
/// serial sweeps produce identical rows.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Benchmark name.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// Baseline cycles.
    pub base_cycles: u64,
    /// Cycles under `[STWC, STC, STL]`.
    pub cycles: [u64; 3],
    /// Overhead percentages under `[STWC, STC, STL]`.
    pub overhead_pct: [f64; 3],
    /// Instrumented pointer load/store sites under STWC (for the
    /// correlation analysis of §6.3.2).
    pub instrumented_sites: usize,
    /// Dynamic `pac` (sign) operations executed under `[STWC, STC, STL]`.
    /// Taken from the run's own [`rsti_vm::ExecResult`] — a deterministic
    /// per-row value, independent of the global telemetry collector, so
    /// parallel sweeps aggregate exactly the totals serial sweeps do.
    pub pac_signs: [u64; 3],
    /// Dynamic `aut` operations executed under `[STWC, STC, STL]`.
    pub pac_auths: [u64; 3],
}

fn run_measured(img: &Image, workload: &str) -> Result<rsti_vm::ExecResult, MeasureError> {
    let mut vm = Vm::new(img);
    vm.set_fuel(200_000_000);
    let r = vm.run();
    if !matches!(r.status, Status::Exited(0)) {
        return Err(MeasureError { workload: workload.to_string(), status: r.status });
    }
    Ok(r)
}

/// Measures one workload under the baseline and all three mechanisms, at
/// the full (CFG) optimization level.
///
/// Both sides run through the O2-model optimizer (register promotion +
/// redundant-auth elision), mirroring the paper's "compiled with LTO and
/// O2 for fair comparison" methodology (§6.3.1).
///
/// # Errors
/// Returns [`MeasureError`] when any of the four runs traps or exits
/// non-zero.
pub fn measure(w: &Workload) -> Result<OverheadRow, MeasureError> {
    measure_at(w, OptLevel::Cfg)
}

/// [`measure`] at an explicit optimizer level — the knob behind the
/// `opt_compare` ablation (block-local vs CFG rows per mechanism). The
/// baseline side always gets the same level, so each row is a fair
/// comparison at that level.
///
/// # Errors
/// Returns [`MeasureError`] when any of the four runs traps or exits
/// non-zero.
pub fn measure_at(w: &Workload, level: OptLevel) -> Result<OverheadRow, MeasureError> {
    let mut m = w.module();
    rsti_core::inline_leaf_functions(&mut m, 96);
    let mut mb = m.clone();
    rsti_core::optimize_module(&mut mb, level);
    let base = run_measured(&Image::baseline_owned(mb), w.name)?.cycles;
    let mut cycles = [0u64; 3];
    let mut pct = [0f64; 3];
    let mut sites = 0;
    let mut pac_signs = [0u64; 3];
    let mut pac_auths = [0u64; 3];
    for (i, mech) in MECHS.iter().enumerate() {
        let mut p = rsti_core::instrument(&m, *mech);
        rsti_core::optimize_module(&mut p.module, level);
        if *mech == Mechanism::Stwc {
            sites = p.stats.signs_on_store + p.stats.auths_on_load;
        }
        let r = run_measured(&Image::from_instrumented_owned(p), w.name)?;
        cycles[i] = r.cycles;
        pct[i] = (r.cycles as f64 / base as f64 - 1.0) * 100.0;
        pac_signs[i] = r.pac_signs;
        pac_auths[i] = r.pac_auths;
    }
    Ok(OverheadRow {
        name: w.name.to_string(),
        suite: w.suite,
        base_cycles: base,
        cycles,
        overhead_pct: pct,
        instrumented_sites: sites,
        pac_signs,
        pac_auths,
    })
}

/// Worker count for parallel sweeps: `RSTI_BENCH_THREADS` when set to a
/// positive integer, else all available cores; always capped by
/// [`std::thread::available_parallelism`] so an over-eager override
/// cannot oversubscribe the machine.
pub fn bench_threads() -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    match std::env::var("RSTI_BENCH_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n.min(hw),
        _ => hw,
    }
}

/// Measures a whole suite, fanning the workloads out over
/// [`bench_threads`] scoped threads.
///
/// Each row is a pure function of its workload (the VM's cycle model is
/// deterministic), so the fan-out cannot change any reported number —
/// results land in per-workload slots and come back in suite order. See
/// the `parallel_suite_matches_serial` test.
///
/// # Errors
/// Returns the first (in suite order) [`MeasureError`] of any failing
/// workload.
pub fn measure_suite(ws: &[Workload]) -> Result<Vec<OverheadRow>, MeasureError> {
    measure_suite_with_threads(ws, bench_threads())
}

/// [`measure_suite`] with an explicit worker count (`1` = fully serial,
/// on the calling thread). Exposed so tests can compare serial and
/// parallel sweeps directly, without racing on the environment.
pub fn measure_suite_with_threads(
    ws: &[Workload],
    threads: usize,
) -> Result<Vec<OverheadRow>, MeasureError> {
    let threads = threads.clamp(1, ws.len().max(1));
    if threads == 1 {
        return ws.iter().map(measure).collect();
    }
    // Order-preserving fan-out: workers pull the next workload index from
    // a shared counter and write into that index's slot, so the collected
    // vector is in suite order no matter which worker ran what.
    let slots: Vec<Mutex<Option<Result<OverheadRow, MeasureError>>>> =
        ws.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(w) = ws.get(i) else { break };
                let row = measure(w);
                // Same poison-recovery policy as the serve cache and the
                // telemetry sink: the guarded state is a plain slot write,
                // so a panicked peer cannot have left it half-updated —
                // recover the guard rather than cascading the panic.
                *slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(row);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("every slot filled")
        })
        .collect()
}

/// Geometric mean of overhead *ratios* reported back as a percentage
/// (the paper's aggregation).
///
/// Entries whose ratio `1 + p/100` is not a positive finite number (NaN
/// percentages, or overheads at or below -100%, whose log is undefined)
/// are skipped rather than poisoning the whole aggregate with NaN.
pub fn geomean_pct(pcts: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0f64, 0u32);
    for p in pcts {
        let ratio = 1.0 + p / 100.0;
        if !(ratio.is_finite() && ratio > 0.0) {
            continue;
        }
        log_sum += ratio.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    ((log_sum / n as f64).exp() - 1.0) * 100.0
}

/// Five-number summary + geomean, for the Figure 10 box plots.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Geometric mean of the ratios, as a percentage.
    pub geomean: f64,
    /// Values beyond 1.5×IQR of the quartiles.
    pub outliers: Vec<f64>,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

/// Computes box-plot statistics for a set of overhead percentages.
/// NaN entries carry no ordering information and are dropped before the
/// sort (which would otherwise panic on them).
pub fn box_stats(values: &[f64]) -> BoxStats {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    v.sort_by(f64::total_cmp);
    let q1 = percentile(&v, 0.25);
    let q3 = percentile(&v, 0.75);
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    BoxStats {
        min: v.first().copied().unwrap_or(0.0),
        q1,
        median: percentile(&v, 0.5),
        q3,
        max: v.last().copied().unwrap_or(0.0),
        geomean: geomean_pct(v.iter().copied()),
        outliers: v.iter().copied().filter(|&x| x < lo || x > hi).collect(),
    }
}

/// Pearson correlation coefficient (the §6.3.2 instrumentation-count vs
/// overhead analysis).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_computation() {
        // ratios 1.1 and 1.21 → geomean ratio 1.1537... (sqrt(1.331))
        let g = geomean_pct([10.0, 21.0]);
        assert!((g - ((1.1f64 * 1.21).sqrt() - 1.0) * 100.0).abs() < 1e-9);
        assert_eq!(geomean_pct([]), 0.0);
    }

    #[test]
    fn geomean_skips_degenerate_ratios() {
        // NaN and ratios <= 0 (p <= -100) carry no log; the rest aggregate.
        let clean = geomean_pct([10.0, 21.0]);
        let dirty = geomean_pct([10.0, f64::NAN, -100.0, -250.0, 21.0]);
        assert!((clean - dirty).abs() < 1e-12);
        assert!(dirty.is_finite());
        // All-degenerate input degrades to the empty-input answer.
        assert_eq!(geomean_pct([f64::NAN, -100.0]), 0.0);
    }

    #[test]
    fn box_stats_basics() {
        let s = box_stats(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.outliers, vec![100.0]);
    }

    #[test]
    fn box_stats_tolerates_nan() {
        let s = box_stats(&[1.0, f64::NAN, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 3.0);
        assert!(s.outliers.iter().all(|o| !o.is_nan()));
        // Degenerate all-NaN input yields the empty-input summary.
        let e = box_stats(&[f64::NAN]);
        assert_eq!((e.min, e.median, e.max), (0.0, 0.0, 0.0));
    }

    #[test]
    fn pearson_on_known_data() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0, 8.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[8.0, 6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_workload_overhead_shape() {
        let w = rsti_workloads::nginx().remove(0);
        let row = measure(&w).expect("nginx proxy runs cleanly");
        // STC <= STWC <= STL
        assert!(row.overhead_pct[1] <= row.overhead_pct[0] + 1e-9, "{row:?}");
        assert!(row.overhead_pct[0] <= row.overhead_pct[2] + 1e-9, "{row:?}");
        assert!(row.overhead_pct[0] > 0.0, "NGINX proxy is pointer-active: {row:?}");
    }

    /// The Fig. 9/10 acceptance property of the parallel harness: fanning
    /// a sweep out over threads changes *nothing* about the reported rows
    /// — names, cycle counts, percentages, site counts, and dynamic check
    /// counts are identical to the serial sweep, element for element.
    #[test]
    fn parallel_suite_matches_serial() {
        let ws: Vec<_> =
            rsti_workloads::nbench().into_iter().chain(rsti_workloads::nginx()).collect();
        let serial = measure_suite_with_threads(&ws, 1).expect("suite runs cleanly");
        let parallel = measure_suite_with_threads(&ws, 4).expect("suite runs cleanly");
        assert_eq!(serial.len(), ws.len());
        assert_eq!(serial, parallel);
        // The aggregated dynamic-check totals — what the report columns
        // sum — are identical too, and non-trivial.
        let totals = |rows: &[OverheadRow]| {
            rows.iter().fold(([0u64; 3], [0u64; 3]), |(mut s, mut a), r| {
                for i in 0..3 {
                    s[i] += r.pac_signs[i];
                    a[i] += r.pac_auths[i];
                }
                (s, a)
            })
        };
        let (s_signs, s_auths) = totals(&serial);
        let (p_signs, p_auths) = totals(&parallel);
        assert_eq!(s_signs, p_signs);
        assert_eq!(s_auths, p_auths);
        assert!(s_signs.iter().all(|&n| n > 0), "{s_signs:?}");
        assert!(s_auths.iter().all(|&n| n > 0), "{s_auths:?}");
    }

    /// The optimizer acceptance property on the loop-heavy mix: for every
    /// mechanism, each level of the ladder executes *strictly* fewer
    /// dynamic auths than the one below it (cfg < block-local, ipo < cfg),
    /// while status and output stay bit-identical across all four levels.
    /// The ipo < cfg leg is the `--opt ipo` acceptance gate.
    #[test]
    fn cfg_strictly_reduces_dynamic_auths_vs_block_local() {
        let ws: Vec<_> =
            rsti_workloads::nbench().into_iter().chain(rsti_workloads::nginx()).collect();
        // auths[level][mech], summed over the suite.
        let mut auths = [[0u64; 3]; 4];
        for w in &ws {
            let mut m = w.module();
            rsti_core::inline_leaf_functions(&mut m, 96);
            for (mi, mech) in MECHS.iter().enumerate() {
                let mut reference: Option<(Status, Vec<String>)> = None;
                for (li, level) in OptLevel::ALL.iter().enumerate() {
                    let mut p = rsti_core::instrument(&m, *mech);
                    rsti_core::optimize_module(&mut p.module, *level);
                    let img = Image::from_instrumented_owned(p);
                    let mut vm = Vm::new(&img);
                    vm.set_fuel(200_000_000);
                    let r = vm.run();
                    assert!(
                        matches!(r.status, Status::Exited(0)),
                        "{} {} {}: {:?}",
                        w.name,
                        mech.name(),
                        level.label(),
                        r.status
                    );
                    match &reference {
                        None => reference = Some((r.status.clone(), r.output.clone())),
                        Some((s, o)) => {
                            assert_eq!(&r.status, s, "{} {}", w.name, level.label());
                            assert_eq!(&r.output, o, "{} {}", w.name, level.label());
                        }
                    }
                    auths[li][mi] += r.pac_auths;
                }
            }
        }
        for (mi, mech) in MECHS.iter().enumerate() {
            assert!(
                auths[3][mi] < auths[2][mi],
                "{}: ipo auths {} not strictly below cfg {}",
                mech.name(),
                auths[3][mi],
                auths[2][mi]
            );
            assert!(
                auths[2][mi] < auths[1][mi],
                "{}: cfg auths {} not strictly below block-local {}",
                mech.name(),
                auths[2][mi],
                auths[1][mi]
            );
            assert!(
                auths[1][mi] <= auths[0][mi],
                "{}: block-local auths {} above unoptimized {}",
                mech.name(),
                auths[1][mi],
                auths[0][mi]
            );
        }
    }

    #[test]
    fn measure_error_reports_workload_and_status() {
        // A program that exits non-zero is a measurement error, not a panic.
        let w = rsti_workloads::Workload {
            name: "exits-badly",
            suite: rsti_workloads::Suite::Nbench,
            source: "int main() { return 3; }".into(),
        };
        let e = measure(&w).expect_err("non-zero exit must fail the measurement");
        assert_eq!(e.workload, "exits-badly");
        assert_eq!(e.status, Status::Exited(3));
    }

    #[test]
    fn bench_threads_is_positive_and_capped() {
        let n = bench_threads();
        let hw = std::thread::available_parallelism().map_or(1, |c| c.get());
        assert!(n >= 1 && n <= hw, "bench_threads() = {n}, hw = {hw}");
    }
}
