//! Overhead measurement: the machinery behind Figures 9 and 10.
//!
//! For every workload we execute the uninstrumented baseline and each
//! mechanism in the cycle-model VM and report the overhead ratio. The
//! paper measures wall-clock on an Apple M1; our deterministic cycle model
//! (PA op = 7 ALU ops, the paper's own emulation factor) reproduces the
//! *shape*: STC < STWC < STL, pointer-heavy outliers, near-zero nbench.

use rsti_core::Mechanism;
use rsti_vm::{Image, Status, Vm};
use rsti_workloads::{Suite, Workload};

/// Mechanisms in report column order.
pub const MECHS: [Mechanism; 3] = [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl];

/// One benchmark's overhead measurements.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Benchmark name.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// Baseline cycles.
    pub base_cycles: u64,
    /// Cycles under `[STWC, STC, STL]`.
    pub cycles: [u64; 3],
    /// Overhead percentages under `[STWC, STC, STL]`.
    pub overhead_pct: [f64; 3],
    /// Instrumented pointer load/store sites under STWC (for the
    /// correlation analysis of §6.3.2).
    pub instrumented_sites: usize,
}

fn run_cycles(img: &Image) -> u64 {
    let mut vm = Vm::new(img);
    vm.set_fuel(200_000_000);
    let r = vm.run();
    assert!(
        matches!(r.status, Status::Exited(0)),
        "workload must run cleanly: {:?}",
        r.status
    );
    r.cycles
}

/// Measures one workload under the baseline and all three mechanisms.
///
/// Both sides run through the O2-model optimizer (register promotion +
/// redundant-auth elision), mirroring the paper's "compiled with LTO and
/// O2 for fair comparison" methodology (§6.3.1).
pub fn measure(w: &Workload) -> OverheadRow {
    let mut m = w.module();
    rsti_core::inline_leaf_functions(&mut m, 96);
    let mut mb = m.clone();
    rsti_core::optimize_baseline(&mut mb);
    let base = run_cycles(&Image::baseline(&mb));
    let mut cycles = [0u64; 3];
    let mut pct = [0f64; 3];
    let mut sites = 0;
    for (i, mech) in MECHS.iter().enumerate() {
        let mut p = rsti_core::instrument(&m, *mech);
        rsti_core::optimize_program(&mut p);
        if *mech == Mechanism::Stwc {
            sites = p.stats.signs_on_store + p.stats.auths_on_load;
        }
        let c = run_cycles(&Image::from_instrumented(&p));
        cycles[i] = c;
        pct[i] = (c as f64 / base as f64 - 1.0) * 100.0;
    }
    OverheadRow {
        name: w.name.to_string(),
        suite: w.suite,
        base_cycles: base,
        cycles,
        overhead_pct: pct,
        instrumented_sites: sites,
    }
}

/// Measures a whole suite.
pub fn measure_suite(ws: &[Workload]) -> Vec<OverheadRow> {
    ws.iter().map(measure).collect()
}

/// Geometric mean of overhead *ratios* reported back as a percentage
/// (the paper's aggregation).
pub fn geomean_pct(pcts: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0f64, 0u32);
    for p in pcts {
        log_sum += (1.0 + p / 100.0).ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    ((log_sum / n as f64).exp() - 1.0) * 100.0
}

/// Five-number summary + geomean, for the Figure 10 box plots.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Geometric mean of the ratios, as a percentage.
    pub geomean: f64,
    /// Values beyond 1.5×IQR of the quartiles.
    pub outliers: Vec<f64>,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

/// Computes box-plot statistics for a set of overhead percentages.
pub fn box_stats(values: &[f64]) -> BoxStats {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let q1 = percentile(&v, 0.25);
    let q3 = percentile(&v, 0.75);
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    BoxStats {
        min: v.first().copied().unwrap_or(0.0),
        q1,
        median: percentile(&v, 0.5),
        q3,
        max: v.last().copied().unwrap_or(0.0),
        geomean: geomean_pct(v.iter().copied()),
        outliers: v.iter().copied().filter(|&x| x < lo || x > hi).collect(),
    }
}

/// Pearson correlation coefficient (the §6.3.2 instrumentation-count vs
/// overhead analysis).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_computation() {
        // ratios 1.1 and 1.21 → geomean ratio 1.1537... (sqrt(1.331))
        let g = geomean_pct([10.0, 21.0]);
        assert!((g - ((1.1f64 * 1.21).sqrt() - 1.0) * 100.0).abs() < 1e-9);
        assert_eq!(geomean_pct([]), 0.0);
    }

    #[test]
    fn box_stats_basics() {
        let s = box_stats(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.outliers, vec![100.0]);
    }

    #[test]
    fn pearson_on_known_data() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0, 8.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[8.0, 6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_workload_overhead_shape() {
        let w = rsti_workloads::nginx().remove(0);
        let row = measure(&w);
        // STC <= STWC <= STL
        assert!(row.overhead_pct[1] <= row.overhead_pct[0] + 1e-9, "{row:?}");
        assert!(row.overhead_pct[0] <= row.overhead_pct[2] + 1e-9, "{row:?}");
        assert!(row.overhead_pct[0] > 0.0, "NGINX proxy is pointer-active: {row:?}");
    }
}
