//! # rsti-bench — the performance-evaluation harness (paper §6.2–6.3)
//!
//! Regenerates every quantitative artifact of the paper's evaluation from
//! the workload proxies:
//!
//! | artifact | binary | module |
//! |---|---|---|
//! | Figure 9 (per-benchmark overhead + geomeans) | `fig9` | [`reports::Fig9`] |
//! | Figure 10 (box plots) | `fig10` | [`reports::render_fig10`] |
//! | Table 3 (equivalence classes) | `table3` | [`reports::render_table3`] |
//! | §6.2.2 (pointer-to-pointer census) | `pp_census` | [`reports::render_pp_census`] |
//! | §6.3.2 (PARTS comparison) | `parts_compare` | [`reports::render_parts_compare`] |
//!
//! Wall-clock benches (plain timing harness, [`timing`]) live under
//! `benches/`; the `vm_throughput` binary records the interpreter's
//! instructions/second trajectory to `BENCH_vm.json`.

#![warn(missing_docs)]

pub mod overhead;
pub mod reports;
pub mod timing;

pub use overhead::{
    bench_threads, box_stats, geomean_pct, measure, measure_suite, measure_suite_with_threads,
    pearson, BoxStats, MeasureError, OverheadRow, MECHS,
};
pub use reports::{render_fig10, render_parts_compare, render_pp_census, render_table3, Fig9};
