//! VM throughput tracker: measures instructions/second and cycle-model
//! totals over a fixed workload mix, for both execution engines, and
//! records them to `BENCH_vm.json`, so the repo carries a machine-readable
//! perf trajectory across PRs.
//!
//! The mix is the nbench + NGINX proxies — the suites the Fig. 9/10
//! pipeline sweeps 4-5× per workload — executed both uninstrumented and
//! under RSTI-STWC. Cycle totals are deterministic (the cycle model);
//! instructions/second is wall-clock and machine-dependent, which is fine
//! for a trajectory: the recorded pairs in one run come from the same
//! machine. Each engine's throughput is a min-time estimate: the mix runs
//! for several rounds, each workload image keeps its *fastest* round, and
//! the reported rate is total instructions over the sum of per-image
//! minima. On a shared host, interference only ever subtracts throughput,
//! so the per-image minimum is the closest observation of the machine's
//! true rate. Within a round the engines run *paired* — the same image
//! back-to-back on every engine — so an interference patch lands on the
//! same image under both engines and cancels out of the recorded ratio
//! instead of skewing one side.
//!
//! Two engines run the identical mix: the interpreter (`exec=interp`, the
//! historical trajectory) and the closure-threaded compiled engine
//! (`exec=compiled`). Their instruction and cycle totals are asserted
//! equal — the bench doubles as a whole-mix parity check — and the
//! headline `compiled_speedup_vs_interp` ratio is machine-independent.
//!
//! Besides the headline (full-pipeline, `cfg`) trajectory, the JSON
//! carries an `opt_levels` section: the same mix at `none` / `block` /
//! `cfg` under both engines, with executed `aut` counts, so the
//! check-optimizer's dynamic effect is recorded next to the throughput it
//! buys.
//!
//! The telemetry-enabled rounds run under *both* engines (the compiled
//! engine pays a different relative cost: its fast path skips per-op
//! dispatch, so flipping the collector on is proportionally pricier), and
//! an attribution-profiler round pins the profiler's two guarantees on
//! the real mix: inertness (attr-on deterministic totals are asserted
//! bit-identical to attr-off) and a recorded profiler-on cost. A flight
//! recorder round does the same for the violation-forensics ring buffer:
//! record-on deterministic totals must be bit-identical to the default
//! record-off run (the recorder only observes), and the recorder-on cost
//! is recorded beside the attr cost. Every run appends one
//! schema-versioned line to `reports/bench_history.jsonl` — the
//! trajectory log that `rsti report` diffs and CI's regression check
//! reads.

use rsti_core::{Mechanism, OptLevel};
use rsti_vm::{ExecBackend, Image, Status, Vm};
use std::fmt::Write as _;
use std::time::Instant;

/// Interpreter instructions/second measured on this codebase *before* the
/// zero-clone hot-loop rework (per-step `Inst`/`Term` clones, `Vec<u8>`
/// per store, per-frame `HashMap` alloca cache, per-run module deep
/// clone), on the same reference machine that produced the first
/// `BENCH_vm.json`. Kept as the fixed comparison point for the >= 2x
/// acceptance bar; see BENCH_vm.json for the trajectory.
const PRE_CHANGE_INSTS_PER_SEC: f64 = 23_351_000.0;

#[derive(Default)]
struct MixResult {
    insts: u64,
    cycles: u64,
    secs: f64,
    pac_auths: u64,
}

impl MixResult {
    fn ips(&self) -> f64 {
        self.insts as f64 / self.secs
    }
}

/// Builds the full workload-image set (baseline + STWC for every mix
/// workload) at `level` for `exec`, translated and ready to run — image
/// construction, instrumentation, and compiled-engine translation are all
/// one-time costs that must stay outside every timer.
fn build_imgs(level: OptLevel, exec: ExecBackend, attr: bool) -> Vec<Image> {
    let mut imgs = Vec::new();
    let ws: Vec<_> = rsti_workloads::nbench().into_iter().chain(rsti_workloads::nginx()).collect();
    for w in &ws {
        let mut m = w.module();
        rsti_core::inline_leaf_functions(&mut m, 96);
        let mut mb = m.clone();
        rsti_core::optimize_module(&mut mb, level);
        imgs.push(Image::baseline_owned(mb).with_exec(exec));
        let mut p = rsti_core::instrument(&m, Mechanism::Stwc);
        rsti_core::optimize_module(&mut p.module, level);
        imgs.push(Image::from_instrumented_owned(p).with_exec(exec));
    }
    if attr {
        imgs = imgs.into_iter().map(Image::with_attr).collect();
    }
    for img in &imgs {
        img.precompile();
    }
    imgs
}

/// One timed run of one image: elapsed time folds into `best[i]` as a
/// running minimum; deterministic totals accumulate into `out` only when
/// `first` (they repeat exactly every round).
fn time_one(img: &Image, i: usize, best: &mut [f64], out: &mut MixResult, first: bool) {
    let t = Instant::now();
    let mut vm = Vm::new(img);
    vm.set_fuel(200_000_000);
    let r = vm.run();
    let dt = t.elapsed().as_secs_f64();
    assert!(matches!(r.status, Status::Exited(0)), "image {i}: {:?}", r.status);
    best[i] = best[i].min(dt);
    if first {
        out.insts += r.insts;
        out.cycles += r.cycles;
        out.pac_auths += r.pac_auths;
    }
}


/// The bench doubles as a whole-mix parity check: the engines must agree
/// on every deterministic total.
fn assert_mix_parity(interp: &MixResult, compiled: &MixResult, what: &str) {
    assert_eq!(interp.insts, compiled.insts, "{what}: instruction totals diverge");
    assert_eq!(interp.cycles, compiled.cycles, "{what}: cycle-model totals diverge");
    assert_eq!(interp.pac_auths, compiled.pac_auths, "{what}: pac_auth totals diverge");
}

/// Measures the `rsti serve` cache effect end-to-end: the same request
/// cold (fresh server: full parse → lower → instrument → optimize →
/// translate → run) vs warm (cache hit: run only). The request is a
/// big-code/small-run composite — every kernel family at one iteration —
/// so pipeline cost dominates the cold path the way it does for a
/// service's first sight of a module; the warm/cold ratio is then a
/// pipeline-amortization measurement, not a VM-throughput one. Returns
/// `(cold_ms, warm_ms, speedup)`, min-of-N on both sides.
fn measure_serve() -> (f64, f64, f64) {
    use rsti_workloads::kernels as k;
    let mut kernels = Vec::new();
    for c in 0..2 {
        kernels.push(k::list_kernel(&format!("l{c}"), 3, 1));
        kernels.push(k::dispatch_kernel(&format!("d{c}"), 3, 1));
        kernels.push(k::string_kernel(&format!("s{c}"), 4, 1));
        kernels.push(k::numeric_kernel(&format!("n{c}"), 4, 1));
        kernels.push(k::float_kernel(&format!("f{c}"), 3, 1));
        kernels.push(k::graph_kernel(&format!("g{c}"), 3, 1));
        kernels.push(k::server_kernel(&format!("v{c}"), 2, 1));
        kernels.push(k::interp_kernel(&format!("i{c}"), 4, 1));
        kernels.push(k::tree_kernel(&format!("t{c}"), 4, 1));
    }
    let src = k::assemble(&kernels);
    let line = format!(
        "{{\"id\":1,\"cmd\":\"run\",\"source\":{},\"mech\":\"stwc\",\"opt\":\"cfg\",\
         \"exec\":\"compiled\",\"enforce\":\"pac\"}}",
        rsti_telemetry::json_str(&src)
    );
    let mut cold = f64::INFINITY;
    for _ in 0..5 {
        let server = rsti_serve::Server::new(rsti_serve::ServeConfig::default());
        let t = Instant::now();
        let resp = server.handle_line(&line);
        cold = cold.min(t.elapsed().as_secs_f64());
        assert!(resp.contains("\"cache\":\"miss\""), "fresh server must miss: {resp}");
        assert!(resp.contains("\"status\":\"exit 0\""), "{resp}");
    }
    let server = rsti_serve::Server::new(rsti_serve::ServeConfig::default());
    let first = server.handle_line(&line);
    let mut warm = f64::INFINITY;
    let mut warm_resp = String::new();
    for _ in 0..30 {
        let t = Instant::now();
        warm_resp = server.handle_line(&line);
        warm = warm.min(t.elapsed().as_secs_f64());
    }
    assert!(warm_resp.contains("\"cache\":\"hit\""), "{warm_resp}");
    assert_eq!(
        warm_resp.replace("\"cache\":\"hit\"", "\"cache\":\"miss\""),
        first,
        "warm serve responses must be byte-identical to the cold response"
    );
    (cold * 1e3, warm * 1e3, cold / warm)
}

fn main() {
    // Warm up caches/allocator, then measure. The telemetry-disabled mix
    // is the default state and the one the trajectory tracks; the same
    // mix with the collector enabled (no sink) measures the cost of live
    // counting and pins the off-by-default guarantee — the disabled path
    // adds only branch-on-bool no-ops. The states run paired per image
    // (interpreter off, interpreter on, compiled off — same image
    // back-to-back) so machine drift covers every side of each
    // comparison instead of landing entirely on one.
    let tel = rsti_telemetry::global();
    tel.disable();
    let interp_imgs = build_imgs(OptLevel::Cfg, ExecBackend::Interp, false);
    let compiled_imgs = build_imgs(OptLevel::Cfg, ExecBackend::Compiled, false);
    let attr_imgs = build_imgs(OptLevel::Cfg, ExecBackend::Interp, true);
    let rec_imgs: Vec<Image> = build_imgs(OptLevel::Cfg, ExecBackend::Interp, false)
        .into_iter()
        .map(Image::with_record)
        .collect();
    let n = interp_imgs.len();
    let mut scratch = vec![f64::INFINITY; n];
    let mut sink = MixResult::default();
    for i in 0..n {
        time_one(&interp_imgs[i], i, &mut scratch, &mut sink, false);
        time_one(&compiled_imgs[i], i, &mut scratch, &mut sink, false);
    }
    let mut m = MixResult::default();
    let mut t = MixResult::default();
    let mut c = MixResult::default();
    let mut ct = MixResult::default();
    let mut a = MixResult::default();
    let mut rr = MixResult::default();
    let mut bm = vec![f64::INFINITY; n];
    let mut bt = vec![f64::INFINITY; n];
    let mut bc = vec![f64::INFINITY; n];
    let mut bct = vec![f64::INFINITY; n];
    let mut ba = vec![f64::INFINITY; n];
    let mut brr = vec![f64::INFINITY; n];
    for round in 0..10 {
        let first = round == 0;
        for i in 0..n {
            tel.disable();
            time_one(&interp_imgs[i], i, &mut bm, &mut m, first);
            tel.enable();
            time_one(&interp_imgs[i], i, &mut bt, &mut t, first);
            tel.disable();
            time_one(&compiled_imgs[i], i, &mut bc, &mut c, first);
            tel.enable();
            time_one(&compiled_imgs[i], i, &mut bct, &mut ct, first);
            tel.disable();
            time_one(&attr_imgs[i], i, &mut ba, &mut a, first);
            time_one(&rec_imgs[i], i, &mut brr, &mut rr, first);
        }
    }
    tel.disable();
    tel.reset();
    m.secs = bm.iter().sum();
    t.secs = bt.iter().sum();
    c.secs = bc.iter().sum();
    ct.secs = bct.iter().sum();
    a.secs = ba.iter().sum();
    rr.secs = brr.iter().sum();
    assert_mix_parity(&m, &c, "headline mix");
    // The profiler's inertness guarantee, asserted on the real mix: with
    // attribution on, every deterministic total is bit-identical to the
    // profiler-off run — the profiler only observes.
    assert_mix_parity(&m, &a, "attr-on mix (inertness)");
    // Same guarantee for the violation-forensics flight recorder: arming
    // it changes no deterministic total, so the default record-off
    // trajectory numbers are what a never-armed build would produce.
    assert_mix_parity(&m, &rr, "record-on mix (inertness)");
    let ips = m.ips();
    let speedup = ips / PRE_CHANGE_INSTS_PER_SEC;
    let ips_on = t.ips();
    let on_delta_pct = (ips / ips_on - 1.0) * 100.0;
    let cips = c.ips();
    let cspeed = cips / ips;
    let cips_on = ct.ips();
    let con_delta_pct = (cips / cips_on - 1.0) * 100.0;
    let aips = a.ips();
    let attr_delta_pct = (ips / aips - 1.0) * 100.0;
    let rips = rr.ips();
    let record_delta_pct = (ips / rips - 1.0) * 100.0;

    println!("vm_throughput: nbench + NGINX mix, baseline + STWC");
    println!("  instructions executed : {} (one mix pass)", m.insts);
    println!("  best wall time (interp): {:.3} s", m.secs);
    println!("  interp insts/second   : {ips:.0}");
    println!("  compiled insts/second : {cips:.0}  (x{cspeed:.2} vs interp)");
    println!("  cycle-model total     : {}", m.cycles);
    println!("  pre-change insts/sec  : {PRE_CHANGE_INSTS_PER_SEC:.0}  (x{speedup:.2})");
    println!("  telemetry-on insts/s  : {ips_on:.0}  (enabled costs {on_delta_pct:+.2}%)");
    println!("  compiled tel-on i/s   : {cips_on:.0}  (enabled costs {con_delta_pct:+.2}%)");
    println!("  attr-on insts/s       : {aips:.0}  (profiler costs {attr_delta_pct:+.2}%, interp)");
    println!("  record-on insts/s     : {rips:.0}  (recorder costs {record_delta_pct:+.2}%, interp)");

    // The serve-cache amortization headline: one request, cold vs warm.
    let (serve_cold_ms, serve_warm_ms, serve_speedup) = measure_serve();
    println!(
        "  serve cold -> warm    : {serve_cold_ms:.2} ms -> {serve_warm_ms:.3} ms  (x{serve_speedup:.1} via module cache)"
    );
    if serve_speedup < 10.0 {
        println!("  WARNING: serve_warm_speedup {serve_speedup:.1} below the 10x acceptance bar");
    }

    // The optimizer-level ablation on the same mix, under both engines:
    // fewer executed checks ⇒ fewer instructions ⇒ more useful work per
    // second. Engines run paired per image, like the headline, so
    // slow machine drift lands on both sides of each ratio (cycle totals
    // and auth counts are deterministic; insts/sec is indicative).
    let mut levels_json = String::new();
    println!("  per-opt-level (same mix, 8 paired rounds each):");
    for (i, level) in OptLevel::ALL.iter().enumerate() {
        let imgs = build_imgs(*level, ExecBackend::Interp, false);
        let cimgs = build_imgs(*level, ExecBackend::Compiled, false);
        let mut r = MixResult::default();
        let mut rc = MixResult::default();
        let mut br = vec![f64::INFINITY; imgs.len()];
        let mut brc = vec![f64::INFINITY; cimgs.len()];
        for round in 0..8 {
            for j in 0..imgs.len() {
                time_one(&imgs[j], j, &mut br, &mut r, round == 0);
                time_one(&cimgs[j], j, &mut brc, &mut rc, round == 0);
            }
        }
        r.secs = br.iter().sum();
        rc.secs = brc.iter().sum();
        assert_mix_parity(&r, &rc, level.label());
        let (lips, lcips) = (r.ips(), rc.ips());
        let (insts_1, cycles_1, auths_1) = (r.insts, r.cycles, r.pac_auths);
        println!(
            "    {:<6} interp {:>12.0}/s  compiled {:>12.0}/s (x{:.2})  cycles {:>12}  auths {:>9}",
            level.label(),
            lips,
            lcips,
            lcips / lips,
            cycles_1,
            auths_1
        );
        let _ = write!(
            levels_json,
            "{}    {{\"level\": \"{}\", \"insts_per_sec\": {:.0}, \
             \"compiled_insts_per_sec\": {:.0}, \"compiled_speedup\": {:.3}, \
             \"instructions\": {}, \"cycle_model_total\": {}, \"pac_auths\": {}}}",
            if i == 0 { "" } else { ",\n" },
            level.label(),
            lips,
            lcips,
            lcips / lips,
            insts_1,
            cycles_1,
            auths_1
        );
    }

    // Hand-rolled JSON (the workspace is dependency-free by design).
    let json = format!(
        "{{\n  \"bench\": \"vm_throughput\",\n  \"workload_mix\": \"nbench+nginx, baseline+stwc\",\n  \
         \"pre_change_insts_per_sec\": {PRE_CHANGE_INSTS_PER_SEC:.0},\n  \
         \"insts_per_sec\": {ips:.0},\n  \"speedup_vs_pre_change\": {speedup:.3},\n  \
         \"compiled_insts_per_sec\": {cips:.0},\n  \
         \"compiled_speedup_vs_interp\": {cspeed:.3},\n  \
         \"instructions\": {},\n  \"cycle_model_total\": {},\n  \"wall_seconds\": {:.4},\n  \
         \"telemetry_on_insts_per_sec\": {ips_on:.0},\n  \
         \"telemetry_enabled_cost_pct\": {on_delta_pct:.2},\n  \
         \"compiled_telemetry_on_insts_per_sec\": {cips_on:.0},\n  \
         \"compiled_telemetry_cost_pct\": {con_delta_pct:.2},\n  \
         \"attr_on_insts_per_sec\": {aips:.0},\n  \
         \"attr_cost_pct\": {attr_delta_pct:.2},\n  \
         \"record_on_insts_per_sec\": {rips:.0},\n  \
         \"record_cost_pct\": {record_delta_pct:.2},\n  \
         \"serve_cold_ms\": {serve_cold_ms:.3},\n  \
         \"serve_warm_ms\": {serve_warm_ms:.4},\n  \
         \"serve_warm_speedup\": {serve_speedup:.1},\n  \
         \"opt_levels\": [\n{levels_json}\n  ]\n}}\n",
        m.insts, m.cycles, m.secs
    );
    std::fs::write("BENCH_vm.json", &json).expect("write BENCH_vm.json");
    println!("wrote BENCH_vm.json");

    // One schema-versioned line per run appended to the trajectory log —
    // `rsti report` diffs the last two entries, and CI's regression check
    // reads the final line instead of digging through git history.
    let unix_ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entry = format!(
        "{{\"schema\": 1, \"unix_ts\": {unix_ts}, \"bench\": \"vm_throughput\", \
         \"insts_per_sec\": {ips:.0}, \"compiled_insts_per_sec\": {cips:.0}, \
         \"compiled_speedup_vs_interp\": {cspeed:.3}, \
         \"telemetry_enabled_cost_pct\": {on_delta_pct:.2}, \
         \"compiled_telemetry_cost_pct\": {con_delta_pct:.2}, \
         \"attr_on_insts_per_sec\": {aips:.0}, \"attr_cost_pct\": {attr_delta_pct:.2}, \
         \"record_cost_pct\": {record_delta_pct:.2}, \
         \"serve_warm_speedup\": {serve_speedup:.1}, \
         \"instructions\": {}, \"cycle_model_total\": {}, \"pac_auths\": {}}}\n",
        m.insts, m.cycles, m.pac_auths
    );
    std::fs::create_dir_all("reports").expect("create reports/");
    use std::io::Write as _;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("reports/bench_history.jsonl")
        .and_then(|mut f| f.write_all(entry.as_bytes()))
        .expect("append reports/bench_history.jsonl");
    println!("appended reports/bench_history.jsonl");
}
