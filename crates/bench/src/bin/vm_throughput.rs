//! Interpreter throughput tracker: measures instructions/second and
//! cycle-model totals over a fixed workload mix and records them to
//! `BENCH_vm.json`, so the repo carries a machine-readable perf trajectory
//! across PRs.
//!
//! The mix is the nbench + NGINX proxies — the suites the Fig. 9/10
//! pipeline sweeps 4-5× per workload — executed both uninstrumented and
//! under RSTI-STWC. Cycle totals are deterministic (the cycle model);
//! instructions/second is wall-clock and machine-dependent, which is fine
//! for a trajectory: the recorded pre/post pair in one run comes from the
//! same machine.
//!
//! Besides the headline (full-pipeline) trajectory, the JSON carries an
//! `opt_levels` section: the same mix at `none` / `block` / `cfg`, with
//! executed `aut` counts, so the check-optimizer's dynamic effect is
//! recorded next to the throughput it buys.

use rsti_core::{Mechanism, OptLevel};
use rsti_vm::{Image, Status, Vm};
use std::fmt::Write as _;
use std::time::Instant;

/// Interpreter instructions/second measured on this codebase *before* the
/// zero-clone hot-loop rework (per-step `Inst`/`Term` clones, `Vec<u8>`
/// per store, per-frame `HashMap` alloca cache, per-run module deep
/// clone), on the same reference machine that produced the first
/// `BENCH_vm.json`. Kept as the fixed comparison point for the >= 2x
/// acceptance bar; see BENCH_vm.json for the trajectory.
const PRE_CHANGE_INSTS_PER_SEC: f64 = 23_351_000.0;

struct MixResult {
    insts: u64,
    cycles: u64,
    secs: f64,
    pac_auths: u64,
}

fn run_mix(repeats: u32, level: OptLevel) -> MixResult {
    let mut insts = 0u64;
    let mut cycles = 0u64;
    let mut secs = 0f64;
    let mut pac_auths = 0u64;
    let ws: Vec<_> = rsti_workloads::nbench().into_iter().chain(rsti_workloads::nginx()).collect();
    for w in &ws {
        let mut m = w.module();
        rsti_core::inline_leaf_functions(&mut m, 96);
        let mut mb = m.clone();
        rsti_core::optimize_module(&mut mb, level);
        let base_img = Image::baseline_owned(mb);
        let mut p = rsti_core::instrument(&m, Mechanism::Stwc);
        rsti_core::optimize_module(&mut p.module, level);
        let stwc_img = Image::from_instrumented_owned(p);
        for img in [&base_img, &stwc_img] {
            for _ in 0..repeats {
                let t = Instant::now();
                let mut vm = Vm::new(img);
                vm.set_fuel(200_000_000);
                let r = vm.run();
                secs += t.elapsed().as_secs_f64();
                assert!(
                    matches!(r.status, Status::Exited(0)),
                    "{}: {:?}",
                    w.name,
                    r.status
                );
                insts += r.insts;
                cycles += r.cycles;
                pac_auths += r.pac_auths;
            }
        }
    }
    MixResult { insts, cycles, secs, pac_auths }
}

fn main() {
    // Warm up caches/allocator, then measure. The telemetry-disabled mix
    // is the default state and the one the trajectory tracks; the same
    // mix with the collector enabled (no sink) measures the cost of live
    // counting and pins the off-by-default guarantee — the disabled path
    // adds only branch-on-bool no-ops. The two states alternate round by
    // round so slow machine drift cancels out of the comparison instead
    // of landing entirely on one side.
    let tel = rsti_telemetry::global();
    tel.disable();
    run_mix(1, OptLevel::Cfg);
    let mut m = MixResult { insts: 0, cycles: 0, secs: 0.0, pac_auths: 0 };
    let mut t = MixResult { insts: 0, cycles: 0, secs: 0.0, pac_auths: 0 };
    for _ in 0..6 {
        tel.disable();
        let r = run_mix(1, OptLevel::Cfg);
        m.insts += r.insts;
        m.cycles += r.cycles;
        m.secs += r.secs;
        m.pac_auths += r.pac_auths;
        tel.enable();
        let r = run_mix(1, OptLevel::Cfg);
        t.insts += r.insts;
        t.cycles += r.cycles;
        t.secs += r.secs;
    }
    tel.disable();
    tel.reset();
    let ips = m.insts as f64 / m.secs;
    let speedup = ips / PRE_CHANGE_INSTS_PER_SEC;
    let ips_on = t.insts as f64 / t.secs;
    let on_delta_pct = (ips / ips_on - 1.0) * 100.0;

    println!("vm_throughput: nbench + NGINX mix, baseline + STWC");
    println!("  instructions executed : {}", m.insts);
    println!("  wall time             : {:.3} s", m.secs);
    println!("  instructions/second   : {:.0}", ips);
    println!("  cycle-model total     : {}", m.cycles);
    println!("  pre-change insts/sec  : {:.0}  (x{:.2})", PRE_CHANGE_INSTS_PER_SEC, speedup);
    println!("  telemetry-on insts/s  : {:.0}  (enabled costs {:+.2}%)", ips_on, on_delta_pct);

    // The optimizer-level ablation on the same mix: fewer executed checks
    // ⇒ fewer instructions ⇒ more useful work per second. One round per
    // level (cycle totals and auth counts are deterministic; insts/sec is
    // indicative).
    let mut levels_json = String::new();
    println!("  per-opt-level (same mix, 1 round each):");
    for (i, level) in OptLevel::ALL.iter().enumerate() {
        let r = run_mix(1, *level);
        let lips = r.insts as f64 / r.secs;
        println!(
            "    {:<6} insts/sec {:>12.0}  cycles {:>12}  auths {:>9}",
            level.label(),
            lips,
            r.cycles,
            r.pac_auths
        );
        let _ = write!(
            levels_json,
            "{}    {{\"level\": \"{}\", \"insts_per_sec\": {:.0}, \"instructions\": {}, \
             \"cycle_model_total\": {}, \"pac_auths\": {}}}",
            if i == 0 { "" } else { ",\n" },
            level.label(),
            lips,
            r.insts,
            r.cycles,
            r.pac_auths
        );
    }

    // Hand-rolled JSON (the workspace is dependency-free by design).
    let json = format!(
        "{{\n  \"bench\": \"vm_throughput\",\n  \"workload_mix\": \"nbench+nginx, baseline+stwc\",\n  \
         \"pre_change_insts_per_sec\": {PRE_CHANGE_INSTS_PER_SEC:.0},\n  \
         \"insts_per_sec\": {ips:.0},\n  \"speedup_vs_pre_change\": {speedup:.3},\n  \
         \"instructions\": {},\n  \"cycle_model_total\": {},\n  \"wall_seconds\": {:.4},\n  \
         \"telemetry_on_insts_per_sec\": {ips_on:.0},\n  \
         \"telemetry_enabled_cost_pct\": {on_delta_pct:.2},\n  \
         \"opt_levels\": [\n{levels_json}\n  ]\n}}\n",
        m.insts, m.cycles, m.secs
    );
    std::fs::write("BENCH_vm.json", &json).expect("write BENCH_vm.json");
    println!("wrote BENCH_vm.json");
}
