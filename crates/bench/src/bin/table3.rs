//! Regenerates Table 3: SPEC 2006 equivalence-class data.

fn main() {
    print!("{}", rsti_bench::render_table3());
}
