//! Regenerates Figure 9: per-benchmark overhead and suite geomeans.

fn main() {
    let fig9 = rsti_bench::Fig9::measure().expect("every proxy runs cleanly");
    print!("{}", fig9.render());
}
