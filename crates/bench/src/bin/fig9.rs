//! Regenerates Figure 9: per-benchmark overhead and suite geomeans.

fn main() {
    let fig9 = rsti_bench::Fig9::measure();
    print!("{}", fig9.render());
}
