//! Regenerates the §6.3.2 PARTS-vs-RSTI nbench comparison.

fn main() {
    print!("{}", rsti_bench::render_parts_compare());
}
