//! The optimization ablation (§4.7.2 / §6.3.2): overhead with naive
//! instrumentation vs with redundant-authentication elision — the
//! reproduction's stand-in for "intrinsics optimized by the compiler".

use rsti_core::Mechanism;
use rsti_vm::{Image, Status, Vm};

fn cycles(img: &Image) -> u64 {
    let mut vm = Vm::new(img);
    vm.set_fuel(200_000_000);
    let r = vm.run();
    assert!(matches!(r.status, Status::Exited(0)));
    r.cycles
}

fn main() {
    println!(
        "Optimization-pipeline ablation over SPEC2006 proxies\n\
         (STWC overhead %% vs the *unoptimized* baseline at each stage —\n\
         the engineering the paper credits for beating PARTS, §6.3.2):\n"
    );
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9}",
        "BM", "naive", "+inline", "+promote", "+elide"
    );
    for w in rsti_workloads::spec2006() {
        let m0 = w.module();
        let base = cycles(&Image::baseline(&m0)) as f64;
        let pct = |c: u64| (c as f64 / base - 1.0) * 100.0;

        // Stage 0: naive instrumentation.
        let naive = pct(cycles(&Image::from_instrumented(&rsti_core::instrument(
            &m0,
            Mechanism::Stwc,
        ))));
        // Stage 1: + leaf inlining (before the pass, like LTO).
        let mut m1 = m0.clone();
        rsti_core::inline_leaf_functions(&mut m1, 96);
        let s1 = pct(cycles(&Image::from_instrumented(&rsti_core::instrument(
            &m1,
            Mechanism::Stwc,
        ))));
        // Stage 2: + register promotion.
        let mut p2 = rsti_core::instrument(&m1, Mechanism::Stwc);
        rsti_core::optimize::promote_single_store_slots(&mut p2.module);
        rsti_core::optimize::patch_placeholder_types(&mut p2.module);
        let s2 = pct(cycles(&Image::from_instrumented(&p2)));
        // Stage 3: + redundant-auth elision (the full pipeline).
        let mut p3 = rsti_core::instrument(&m1, Mechanism::Stwc);
        rsti_core::optimize_program(&mut p3);
        let s3 = pct(cycles(&Image::from_instrumented(&p3)));

        println!(
            "{:<12} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            w.name, naive, s1, s2, s3
        );
    }
    println!(
        "\nStages: leaf inlining models LTO; promotion keeps authenticated\n\
         pointers in registers (§4.7.2); elision removes same-block\n\
         re-checks. All are sound under the §3 threat model (registers are\n\
         out of the attacker's reach) and differential-tested."
    );
}
