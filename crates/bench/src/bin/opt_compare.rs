//! The optimization ablation (§4.7.2 / §6.3.2): what each optimizer level
//! buys, statically and dynamically.
//!
//! Two tables:
//!
//! 1. The historical staged sweep (naive → +inline → +promote → +full) on
//!    the SPEC2006 proxies — the reproduction's stand-in for "intrinsics
//!    optimized by the compiler".
//! 2. The per-mechanism dynamic-check-reduction table on the loop-heavy
//!    nbench + NGINX mix: executed `aut` counts at `none` / `block` /
//!    `cfg` / `ipo`, per mechanism. This is the acceptance gate for the
//!    optimizer ladder — the process exits non-zero, naming the offending
//!    mechanism/level, if any level fails to *strictly* reduce dynamic
//!    auths vs the one below it (cfg vs block-local, ipo vs cfg), which
//!    is what the CI opt-ablation smoke step checks.
//!
//! The second table is also written to `reports/opt_compare.md`.

use rsti_bench::overhead::{measure_at, MECHS};
use rsti_core::{Mechanism, OptLevel};
use rsti_vm::{Image, Status, Vm};
use std::fmt::Write as _;

fn cycles(img: &Image) -> u64 {
    let mut vm = Vm::new(img);
    vm.set_fuel(200_000_000);
    let r = vm.run();
    assert!(matches!(r.status, Status::Exited(0)));
    r.cycles
}

fn staged_table() {
    println!(
        "Optimization-pipeline ablation over SPEC2006 proxies\n\
         (STWC overhead %% vs the *unoptimized* baseline at each stage —\n\
         the engineering the paper credits for beating PARTS, §6.3.2):\n"
    );
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9}",
        "BM", "naive", "+inline", "+promote", "+full"
    );
    for w in rsti_workloads::spec2006() {
        let m0 = w.module();
        let base = cycles(&Image::baseline(&m0)) as f64;
        let pct = |c: u64| (c as f64 / base - 1.0) * 100.0;

        // Stage 0: naive instrumentation.
        let naive = pct(cycles(&Image::from_instrumented(&rsti_core::instrument(
            &m0,
            Mechanism::Stwc,
        ))));
        // Stage 1: + leaf inlining (before the pass, like LTO).
        let mut m1 = m0.clone();
        rsti_core::inline_leaf_functions(&mut m1, 96);
        let s1 = pct(cycles(&Image::from_instrumented(&rsti_core::instrument(
            &m1,
            Mechanism::Stwc,
        ))));
        // Stage 2: + register promotion.
        let mut p2 = rsti_core::instrument(&m1, Mechanism::Stwc);
        rsti_core::optimize::promote_single_store_slots(&mut p2.module);
        rsti_core::optimize::patch_placeholder_types(&mut p2.module);
        let s2 = pct(cycles(&Image::from_instrumented(&p2)));
        // Stage 3: the full CFG pipeline (elision + hoisting + premods).
        let mut p3 = rsti_core::instrument(&m1, Mechanism::Stwc);
        rsti_core::optimize_program(&mut p3);
        let s3 = pct(cycles(&Image::from_instrumented(&p3)));

        println!(
            "{:<12} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            w.name, naive, s1, s2, s3
        );
    }
    println!(
        "\nStages: leaf inlining models LTO; promotion keeps authenticated\n\
         pointers in registers (§4.7.2); the full pipeline adds block-local\n\
         and dominator-based elision, loop-invariant auth hoisting, and\n\
         precomputed PAC modifiers. All are sound under the §3 threat model\n\
         (registers are out of the attacker's reach) and differential-tested.\n"
    );
}

fn main() {
    staged_table();

    // Per-mechanism dynamic-check reduction on the loop-heavy mix.
    let ws: Vec<_> =
        rsti_workloads::nbench().into_iter().chain(rsti_workloads::nginx()).collect();
    let levels = OptLevel::ALL;

    // totals[level][mech] = (cycles, signs, auths), summed over workloads.
    let mut totals = [[(0u64, 0u64, 0u64); 3]; 4];
    for (li, level) in levels.iter().enumerate() {
        for w in &ws {
            let row = measure_at(w, *level)
                .unwrap_or_else(|e| panic!("opt_compare at {}: {e}", level.label()));
            for (mi, t) in totals[li].iter_mut().enumerate() {
                t.0 += row.cycles[mi];
                t.1 += row.pac_signs[mi];
                t.2 += row.pac_auths[mi];
            }
        }
    }

    let mut md = String::from(
        "# Dynamic check reduction per optimizer level\n\n\
         Loop-heavy mix (nbench + NGINX proxies), executed PAC operation\n\
         counts summed over the suite. `Δauths vs block` is the extra\n\
         reduction the CFG stages (dominator elision, loop hoisting) buy\n\
         over the block-local pipeline; `Δ vs cfg` is the further relative\n\
         reduction the interprocedural level (summary-refined call kills,\n\
         boundary-resign folding, size-budgeted inlining) buys over cfg.\n\n\
         | mechanism | level | cycles | signs | auths | Δauths vs block | Δ vs cfg |\n\
         |---|---|---:|---:|---:|---:|---:|\n",
    );
    println!(
        "Dynamic checks (nbench + NGINX), per mechanism and optimizer level:\n\n\
         {:<6} {:<6} {:>12} {:>10} {:>10} {:>16} {:>10}",
        "mech", "level", "cycles", "signs", "auths", "d-auths vs block", "d vs cfg"
    );
    // (mechanism, failed level, auths, bound it had to be strictly below)
    let mut regressions: Vec<(&str, &str, u64, u64)> = Vec::new();
    for (mi, mech) in MECHS.iter().enumerate() {
        let block_auths = totals[1][mi].2;
        let cfg_auths = totals[2][mi].2;
        for (li, level) in levels.iter().enumerate() {
            let (cyc, signs, auths) = totals[li][mi];
            let delta = if matches!(level, OptLevel::Cfg | OptLevel::Ipo) {
                format!("{:+}", auths as i64 - block_auths as i64)
            } else {
                "-".to_string()
            };
            let vs_cfg = if *level == OptLevel::Ipo {
                format!("{:+.1}%", (auths as f64 / cfg_auths as f64 - 1.0) * 100.0)
            } else {
                "-".to_string()
            };
            println!(
                "{:<6} {:<6} {:>12} {:>10} {:>10} {:>16} {:>10}",
                mech.name(),
                level.label(),
                cyc,
                signs,
                auths,
                delta,
                vs_cfg
            );
            let _ = writeln!(
                md,
                "| {} | {} | {} | {} | {} | {} | {} |",
                mech.name(),
                level.label(),
                cyc,
                signs,
                auths,
                delta,
                vs_cfg
            );
        }
        if cfg_auths >= block_auths {
            regressions.push((mech.name(), "cfg", cfg_auths, block_auths));
        }
        let ipo_auths = totals[3][mi].2;
        if ipo_auths >= cfg_auths {
            regressions.push((mech.name(), "ipo", ipo_auths, cfg_auths));
        }
    }
    for (mech, level, auths, bound) in &regressions {
        println!(
            "REGRESSION: {mech} {level} auths ({auths}) not strictly below \
             the previous level ({bound})"
        );
    }
    let _ = writeln!(
        md,
        "\nGate: each optimizer level must execute strictly fewer auths\n\
         than the one below it (cfg < block, ipo < cfg) for every\n\
         mechanism — status: {}.\n",
        if regressions.is_empty() { "ok" } else { "**FAILED**" }
    );
    match std::fs::create_dir_all("reports")
        .and_then(|()| std::fs::write("reports/opt_compare.md", &md))
    {
        Ok(()) => println!("\nwrote reports/opt_compare.md"),
        Err(e) => println!("\ncannot write reports/opt_compare.md: {e}"),
    }
    if !regressions.is_empty() {
        let names: Vec<String> =
            regressions.iter().map(|(m, l, ..)| format!("{m}/{l}")).collect();
        eprintln!("opt_compare gate failed for: {}", names.join(", "));
        std::process::exit(1);
    }
}
