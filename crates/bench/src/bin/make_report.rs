//! Writes every figure/table reproduction into `reports/` in one shot —
//! the repository's regenerable artifact bundle.

use std::fs;
use std::path::Path;

fn main() {
    let dir = Path::new("reports");
    fs::create_dir_all(dir).expect("create reports/");
    let write = |name: &str, contents: String| {
        let path = dir.join(name);
        fs::write(&path, &contents).expect("write report");
        println!("wrote {} ({} bytes)", path.display(), contents.len());
    };

    // Security evaluation.
    let mut scenarios = rsti_attacks::scenarios::all();
    scenarios.extend(rsti_attacks::scenarios::extras());
    let matrix = rsti_attacks::run_matrix(&scenarios);
    write("table1.txt", rsti_attacks::render_table1(&scenarios, &matrix));
    write("table2.txt", rsti_attacks::render_table2());

    // Analysis tables.
    write("table3.txt", rsti_bench::render_table3());
    write("pp_census.txt", rsti_bench::render_pp_census());

    // Performance figures.
    let fig9 = rsti_bench::Fig9::measure().expect("every proxy runs cleanly");
    write("fig9.txt", fig9.render());
    write("fig10.txt", rsti_bench::render_fig10(&fig9));
    write("parts_compare.txt", rsti_bench::render_parts_compare());
}
