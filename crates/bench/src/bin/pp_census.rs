//! Regenerates the §6.2.2 pointer-to-pointer census.

fn main() {
    print!("{}", rsti_bench::render_pp_census());
}
