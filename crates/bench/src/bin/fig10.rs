//! Regenerates Figure 10: overhead distributions (box-plot statistics).

fn main() {
    let fig9 = rsti_bench::Fig9::measure().expect("every proxy runs cleanly");
    print!("{}", rsti_bench::render_fig10(&fig9));
}
