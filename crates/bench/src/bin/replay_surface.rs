//! Regenerates the §7 replay-surface discussion: per-benchmark
//! equivalence-class sizes, substitutable pairs, the mechanism
//! recommendation, and the cost of the adaptive variant.

use rsti_core::{analyze, instrument, instrument_adaptive, Mechanism, DEFAULT_ECV_THRESHOLD};

fn main() {
    println!(
        "§7 reproduction: replay surface per SPEC2006 proxy and the\n\
         adaptive mechanism choice (paper: \"choosing the mechanism based\n\
         on the variables with the same RSTI-type\")\n"
    );
    println!(
        "{:<12} {:>8} {:>10} {:>8} {:>12} | {:>10} {:>10} {:>10}",
        "BM", "largest", "pairs", "hot", "recommend", "STWC ops", "adapt ops", "STL ops"
    );
    for w in rsti_workloads::spec2006() {
        let m = w.module();
        let a = analyze(&m, Mechanism::Stwc);
        let s = rsti_core::replay_surface(&a, DEFAULT_ECV_THRESHOLD);
        let rec = rsti_core::recommend(&a, DEFAULT_ECV_THRESHOLD);
        let stwc = instrument(&m, Mechanism::Stwc).stats.total_pac_ops();
        let adapt = instrument_adaptive(&m, DEFAULT_ECV_THRESHOLD).stats.total_pac_ops();
        let stl = instrument(&m, Mechanism::Stl).stats.total_pac_ops();
        println!(
            "{:<12} {:>8} {:>10} {:>8} {:>12} | {:>10} {:>10} {:>10}",
            w.name,
            s.largest_class,
            s.substitutable_pairs,
            s.hot_classes,
            rec.name(),
            stwc,
            adapt,
            stl
        );
    }
    println!(
        "\nAdaptive = STWC plus STL-style location binding on classes with\n\
         more than {DEFAULT_ECV_THRESHOLD} members. Location binding tweaks\n\
         the modifiers of existing sign/auth sites, so the static op count\n\
         stays at STWC's — large-class substitution is closed without\n\
         STL's extra argument/return re-signing."
    );
}
