//! Attribution-profiler parity and inertness on the real workload mix.
//!
//! The acceptance bar for the profiler is twofold. First, *parity*: the
//! interpreter and the closure-threaded compiled engine must produce the
//! **identical** attribution profile — per-function cycles/insts/auths,
//! per-site stats, histograms, and folded call-path samples — on the
//! nbench + NGINX mix, because attribution forces the compiled driver onto
//! its per-op slow path where the charge ordering matches the interpreter
//! exactly. Second, *inertness*: with attribution off (the default), runs
//! are bit-identical to what they were before the profiler existed, and
//! turning it on never changes a verdict, an output line, or a
//! deterministic total — it only observes.

use rsti_core::{Mechanism, OptLevel};
use rsti_vm::{ExecBackend, Image, Status, Vm};

/// Baseline + STWC images for every workload in the mix, mirroring the
/// `vm_throughput` image set (same inlining and opt level).
fn mix_images(level: OptLevel) -> Vec<(String, Image)> {
    let mut imgs = Vec::new();
    let ws: Vec<_> = rsti_workloads::nbench().into_iter().chain(rsti_workloads::nginx()).collect();
    for w in &ws {
        let mut m = w.module();
        rsti_core::inline_leaf_functions(&mut m, 96);
        let mut mb = m.clone();
        rsti_core::optimize_module(&mut mb, level);
        imgs.push((format!("{}/baseline", w.name), Image::baseline_owned(mb)));
        let mut p = rsti_core::instrument(&m, Mechanism::Stwc);
        rsti_core::optimize_module(&mut p.module, level);
        imgs.push((format!("{}/stwc", w.name), Image::from_instrumented_owned(p)));
    }
    imgs
}

fn run(img: &Image) -> rsti_vm::ExecResult {
    let mut vm = Vm::new(img);
    vm.set_fuel(200_000_000);
    vm.run()
}

/// Per-function cycles/insts/auths, per-site stats, inclusive histograms,
/// and sampled call paths are identical between `--backend interp` and
/// `--backend compiled` on the full nbench + NGINX mix.
#[test]
fn attr_profiles_identical_across_engines() {
    assert_attr_parity(OptLevel::Cfg);
}

/// The same folded-stack bit-identity under `--opt ipo --attr`: the
/// interprocedural passes (summary kills, resign folding, inlining) remap
/// check-site ids by final-module scan order, so both engines must still
/// agree on every site stat and every sampled call path.
#[test]
fn attr_profiles_identical_across_engines_at_ipo() {
    assert_attr_parity(OptLevel::Ipo);
}

fn assert_attr_parity(level: OptLevel) {
    for (name, img) in mix_images(level) {
        // A small sampling period exercises the sampler on every workload.
        let interp = img.clone().with_attr_sampling(512).with_exec(ExecBackend::Interp);
        let compiled = interp.clone().with_exec(ExecBackend::Compiled);
        compiled.precompile();
        let ri = run(&interp);
        let rc = run(&compiled);
        assert!(matches!(ri.status, Status::Exited(0)), "{name}: {:?}", ri.status);
        assert_eq!(ri.status, rc.status, "{name}: status diverges");
        assert_eq!(ri.cycles, rc.cycles, "{name}: cycle totals diverge");
        assert_eq!(ri.insts, rc.insts, "{name}: instruction totals diverge");
        assert_eq!(ri.pac_auths, rc.pac_auths, "{name}: auth totals diverge");
        let (pi, pc) = (ri.attr.expect("interp attr"), rc.attr.expect("compiled attr"));
        // Spot-check the load-bearing slices first for a readable failure…
        for (fi, fc) in pi.funcs.iter().zip(pc.funcs.iter()) {
            assert_eq!(fi.cycles, fc.cycles, "{name}: func {} cycles", fi.name);
            assert_eq!(fi.insts, fc.insts, "{name}: func {} insts", fi.name);
            assert_eq!(fi.pac_auths, fc.pac_auths, "{name}: func {} auths", fi.name);
        }
        for (si, sc) in pi.sites.iter().zip(pc.sites.iter()) {
            assert_eq!(si, sc, "{name}: site {} diverges", si.site.label());
        }
        // …then require the whole profile equal, folded stacks included.
        assert_eq!(pi, pc, "{name}: attribution profiles diverge");
        assert!(pi.samples > 0, "{name}: sampler never fired");
    }
}

/// Attribution is observation-only: enabling it changes no verdict, no
/// output, and no deterministic total, under either engine.
#[test]
fn attr_is_inert_on_verdicts_and_totals() {
    for (name, img) in mix_images(OptLevel::Cfg) {
        for exec in [ExecBackend::Interp, ExecBackend::Compiled] {
            let off = img.clone().with_exec(exec);
            let on = off.clone().with_attr();
            off.precompile();
            on.precompile();
            let (roff, ron) = (run(&off), run(&on));
            assert!(roff.attr.is_none(), "{name}: attr-off run produced a profile");
            assert!(ron.attr.is_some(), "{name}: attr-on run lost its profile");
            assert_eq!(roff.status, ron.status, "{name}/{exec:?}: status changed");
            assert_eq!(roff.output, ron.output, "{name}/{exec:?}: output changed");
            assert_eq!(roff.cycles, ron.cycles, "{name}/{exec:?}: cycles changed");
            assert_eq!(roff.insts, ron.insts, "{name}/{exec:?}: insts changed");
            assert_eq!(roff.pac_signs, ron.pac_signs, "{name}/{exec:?}: signs changed");
            assert_eq!(roff.pac_auths, ron.pac_auths, "{name}/{exec:?}: auths changed");
            assert_eq!(roff.site_counts, ron.site_counts, "{name}/{exec:?}: site counts changed");
            assert_eq!(roff.audit, ron.audit, "{name}/{exec:?}: audit records changed");
        }
    }
}

/// The flight recorder is observation-only too: arming it on the real mix
/// changes no verdict, no output, and no deterministic total under either
/// engine, and clean runs synthesize no incident.
#[test]
fn recorder_is_inert_on_verdicts_and_totals() {
    for (name, img) in mix_images(OptLevel::Cfg) {
        for exec in [ExecBackend::Interp, ExecBackend::Compiled] {
            let off = img.clone().with_exec(exec);
            let on = off.clone().with_record();
            off.precompile();
            on.precompile();
            let (roff, ron) = (run(&off), run(&on));
            assert!(roff.incident.is_none(), "{name}: unarmed run produced an incident");
            assert!(ron.incident.is_none(), "{name}: clean recorded run produced an incident");
            assert_eq!(roff.status, ron.status, "{name}/{exec:?}: status changed");
            assert_eq!(roff.output, ron.output, "{name}/{exec:?}: output changed");
            assert_eq!(roff.cycles, ron.cycles, "{name}/{exec:?}: cycles changed");
            assert_eq!(roff.insts, ron.insts, "{name}/{exec:?}: insts changed");
            assert_eq!(roff.pac_signs, ron.pac_signs, "{name}/{exec:?}: signs changed");
            assert_eq!(roff.pac_auths, ron.pac_auths, "{name}/{exec:?}: auths changed");
            assert_eq!(roff.site_counts, ron.site_counts, "{name}/{exec:?}: site counts changed");
            assert_eq!(roff.audit, ron.audit, "{name}/{exec:?}: audit records changed");
        }
    }
}

/// The profile's accounting is internally consistent: exclusive
/// per-function cycles and insts sum to the run totals, and per-site auth
/// counts sum to the run's auth total.
#[test]
fn attr_totals_are_conserved() {
    for (name, img) in mix_images(OptLevel::Cfg) {
        let img = img.with_attr().with_exec(ExecBackend::Interp);
        let r = run(&img);
        let p = r.attr.expect("attr profile");
        let fcycles: u64 = p.funcs.iter().map(|f| f.cycles).sum();
        let finsts: u64 = p.funcs.iter().map(|f| f.insts).sum();
        let sauths: u64 = p.sites.iter().map(|s| s.auths).sum();
        assert_eq!(fcycles, r.cycles, "{name}: per-func cycles don't sum to total");
        assert_eq!(finsts, r.insts, "{name}: per-func insts don't sum to total");
        assert_eq!(sauths, r.pac_auths, "{name}: per-site auths don't sum to total");
    }
}
