//! Ablations over the design choices DESIGN.md calls out:
//!
//! * whole-program (LTO-style) analysis vs per-function fact collection —
//!   the paper's §5 argument for running the pass after LTO;
//! * PAC width: TBI (8-bit PAC) vs no-TBI (16-bit PAC) sign/auth cost;
//! * QARMA round count (security margin vs latency).

use rsti_bench::timing::{bench, bench_with_target};
use rsti_pac::{KeyId, PacKeys, PacUnit, Qarma64, VaConfig};
use std::hint::black_box;
use std::time::Duration;

fn main() {
    // Analysis scope.
    let w = rsti_workloads::spec2006()
        .into_iter()
        .find(|w| w.name == "xalancbmk")
        .unwrap();
    let m = w.module();
    bench("ablation/analysis-scope/whole-program", || {
        rsti_core::collect_facts(black_box(&m))
    });
    // Per-unit analysis: re-analyzing the module once per function, as a
    // non-LTO pipeline would (each object file sees only its own slice —
    // we model the repeated work, which is what LTO avoids).
    bench_with_target(
        "ablation/analysis-scope/per-unit-equivalent",
        Duration::from_millis(500),
        || {
            for _ in 0..m.funcs.len().min(8) {
                rsti_core::collect_facts(black_box(&m));
            }
        },
    );

    // PAC width.
    let keys = PacKeys::test_keys();
    for (label, cfg) in
        [("tbi-8bit", VaConfig::paper_default()), ("no-tbi-16bit", VaConfig::no_tbi())]
    {
        let mut unit = PacUnit::new(&keys, cfg);
        bench(&format!("ablation/pac-width/{label}"), || {
            let s = unit.sign(KeyId::Da, black_box(0x7F00_0000_2000), 9);
            unit.auth(KeyId::Da, s, 9).unwrap()
        });
    }

    // QARMA round count.
    for rounds in [4usize, 5, 6, 7] {
        let q = Qarma64::with_rounds(0xAABB_CCDD_EEFF_0011_2233_4455_6677_8899, rounds);
        bench(&format!("ablation/qarma-rounds/{rounds}"), || {
            q.encrypt(black_box(0x7F00_0000_3000), black_box(1))
        });
    }

    // Auth elision.
    {
        use rsti_vm::{Image, Status, Vm};
        let w = rsti_workloads::spec2006()
            .into_iter()
            .find(|w| w.name == "perlbench")
            .unwrap();
        let m = w.module();
        let plain =
            Image::from_instrumented(&rsti_core::instrument(&m, rsti_core::Mechanism::Stwc));
        bench_with_target("ablation/auth-elision/stwc-naive", Duration::from_millis(500), || {
            let r = Vm::new(&plain).run();
            assert!(matches!(r.status, Status::Exited(0)));
            r.cycles
        });
        // Block-local elision only vs the full CFG pipeline (dominator
        // elision + loop hoisting + premods) — the delta the CFG stages buy.
        for (label, level) in [
            ("stwc-block-local", rsti_core::OptLevel::BlockLocal),
            ("stwc-cfg", rsti_core::OptLevel::Cfg),
        ] {
            let mut optp = rsti_core::instrument(&m, rsti_core::Mechanism::Stwc);
            let s = rsti_core::optimize_module(&mut optp.module, level);
            assert!(s.total() > 0);
            let opt = Image::from_instrumented(&optp);
            bench_with_target(
                &format!("ablation/auth-elision/{label}"),
                Duration::from_millis(500),
                || {
                    let r = Vm::new(&opt).run();
                    assert!(matches!(r.status, Status::Exited(0)));
                    r.cycles
                },
            );
        }
    }
}
