//! Ablations over the design choices DESIGN.md calls out:
//!
//! * whole-program (LTO-style) analysis vs per-function fact collection —
//!   the paper's §5 argument for running the pass after LTO;
//! * PAC width: TBI (8-bit PAC) vs no-TBI (16-bit PAC) sign/auth cost;
//! * QARMA round count (security margin vs latency).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsti_pac::{KeyId, PacKeys, PacUnit, Qarma64, VaConfig};
use std::hint::black_box;

fn bench_analysis_scope(c: &mut Criterion) {
    let w = rsti_workloads::spec2006()
        .into_iter()
        .find(|w| w.name == "xalancbmk")
        .unwrap();
    let m = w.module();
    let mut group = c.benchmark_group("ablation/analysis-scope");
    group.bench_function("whole-program", |b| {
        b.iter(|| rsti_core::collect_facts(black_box(&m)))
    });
    // Per-unit analysis: re-analyzing the module once per function, as a
    // non-LTO pipeline would (each object file sees only its own slice —
    // we model the repeated work, which is what LTO avoids).
    group.sample_size(10);
    group.bench_function("per-unit-equivalent", |b| {
        b.iter(|| {
            for _ in 0..m.funcs.len().min(8) {
                rsti_core::collect_facts(black_box(&m));
            }
        })
    });
    group.finish();
}

fn bench_pac_width(c: &mut Criterion) {
    let keys = PacKeys::test_keys();
    let mut group = c.benchmark_group("ablation/pac-width");
    for (label, cfg) in [("tbi-8bit", VaConfig::paper_default()), ("no-tbi-16bit", VaConfig::no_tbi())] {
        let mut unit = PacUnit::new(&keys, cfg);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let s = unit.sign(KeyId::Da, black_box(0x7F00_0000_2000), 9);
                unit.auth(KeyId::Da, s, 9).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_qarma_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/qarma-rounds");
    for rounds in [4usize, 5, 6, 7] {
        let q = Qarma64::with_rounds(0xAABB_CCDD_EEFF_0011_2233_4455_6677_8899, rounds);
        group.bench_function(BenchmarkId::from_parameter(rounds), |b| {
            b.iter(|| q.encrypt(black_box(0x7F00_0000_3000), black_box(1)))
        });
    }
    group.finish();
}

fn bench_auth_elision(c: &mut Criterion) {
    use rsti_vm::{Image, Status, Vm};
    let w = rsti_workloads::spec2006()
        .into_iter()
        .find(|w| w.name == "perlbench")
        .unwrap();
    let m = w.module();
    let mut group = c.benchmark_group("ablation/auth-elision");
    group.sample_size(10);
    let plain = Image::from_instrumented(&rsti_core::instrument(&m, rsti_core::Mechanism::Stwc));
    group.bench_function("stwc-naive", |b| {
        b.iter(|| {
            let r = Vm::new(&plain).run();
            assert!(matches!(r.status, Status::Exited(0)));
            r.cycles
        })
    });
    let mut optp = rsti_core::instrument(&m, rsti_core::Mechanism::Stwc);
    let elided = rsti_core::optimize_program(&mut optp);
    assert!(elided > 0);
    let opt = Image::from_instrumented(&optp);
    group.bench_function("stwc-elided", |b| {
        b.iter(|| {
            let r = Vm::new(&opt).run();
            assert!(matches!(r.status, Status::Exited(0)));
            r.cycles
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_analysis_scope,
    bench_pac_width,
    bench_qarma_rounds,
    bench_auth_elision
);
criterion_main!(benches);
