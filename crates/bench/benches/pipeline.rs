//! Compiler-pipeline throughput: MiniC parse+lower, STI analysis, and the
//! instrumentation pass (the paper's §5 compile-time component).

use rsti_bench::timing::bench;
use rsti_core::Mechanism;
use std::hint::black_box;

fn main() {
    let w = rsti_workloads::spec2006()
        .into_iter()
        .find(|w| w.name == "perlbench")
        .unwrap();
    let src = w.source.clone();
    bench("compile_perlbench_proxy", || rsti_frontend::compile(black_box(&src), "p").unwrap());
    let m = w.module();
    bench("analyze_stwc", || rsti_core::analyze(black_box(&m), Mechanism::Stwc));
    for mech in Mechanism::ALL {
        bench(&format!("instrument_{}", mech.name()), || {
            rsti_core::instrument(black_box(&m), mech)
        });
    }
}
