//! Compiler-pipeline throughput: MiniC parse+lower, STI analysis, and the
//! instrumentation pass (the paper's §5 compile-time component).

use criterion::{criterion_group, criterion_main, Criterion};
use rsti_core::Mechanism;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let w = rsti_workloads::spec2006()
        .into_iter()
        .find(|w| w.name == "perlbench")
        .unwrap();
    let src = w.source.clone();
    c.bench_function("compile_perlbench_proxy", |b| {
        b.iter(|| rsti_frontend::compile(black_box(&src), "p").unwrap())
    });
    let m = w.module();
    c.bench_function("analyze_stwc", |b| {
        b.iter(|| rsti_core::analyze(black_box(&m), Mechanism::Stwc))
    });
    for mech in Mechanism::ALL {
        c.bench_function(&format!("instrument_{}", mech.name()), |b| {
            b.iter(|| rsti_core::instrument(black_box(&m), mech))
        });
    }
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
