//! Microbenchmarks of the PA primitive (the Figure 3 data path): QARMA
//! encryption, pointer signing, and authentication.

use criterion::{criterion_group, criterion_main, Criterion};
use rsti_pac::{KeyId, PacUnit, Qarma64};
use std::hint::black_box;

fn bench_qarma(c: &mut Criterion) {
    let q = Qarma64::new(0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
    c.bench_function("qarma64_encrypt", |b| {
        b.iter(|| q.encrypt(black_box(0x7F00_0000_1234), black_box(0xBEEF)))
    });
    c.bench_function("qarma64_roundtrip", |b| {
        b.iter(|| {
            let e = q.encrypt(black_box(0x7F00_0000_1234), 7);
            q.decrypt(e, 7)
        })
    });
}

fn bench_pac_unit(c: &mut Criterion) {
    let mut u = PacUnit::for_tests();
    c.bench_function("pac_sign", |b| {
        b.iter(|| u.sign(KeyId::Da, black_box(0x7F00_0000_1040), black_box(0x42)))
    });
    let mut u2 = PacUnit::for_tests();
    let signed = u2.sign(KeyId::Da, 0x7F00_0000_1040, 0x42);
    c.bench_function("pac_auth_ok", |b| {
        b.iter(|| u2.auth(KeyId::Da, black_box(signed), black_box(0x42)).unwrap())
    });
}

criterion_group!(benches, bench_qarma, bench_pac_unit);
criterion_main!(benches);
