//! Microbenchmarks of the PA primitive (the Figure 3 data path): QARMA
//! encryption, pointer signing, and authentication.

use rsti_bench::timing::bench;
use rsti_pac::{KeyId, PacUnit, Qarma64};
use std::hint::black_box;

fn main() {
    let q = Qarma64::new(0x0123_4567_89AB_CDEF_0011_2233_4455_6677);
    bench("qarma64_encrypt", || q.encrypt(black_box(0x7F00_0000_1234), black_box(0xBEEF)));
    bench("qarma64_roundtrip", || {
        let e = q.encrypt(black_box(0x7F00_0000_1234), 7);
        q.decrypt(e, 7)
    });

    let mut u = PacUnit::for_tests();
    bench("pac_sign", || u.sign(KeyId::Da, black_box(0x7F00_0000_1040), black_box(0x42)));
    let mut u2 = PacUnit::for_tests();
    let signed = u2.sign(KeyId::Da, 0x7F00_0000_1040, 0x42);
    bench("pac_auth_ok", || u2.auth(KeyId::Da, black_box(signed), black_box(0x42)).unwrap());
}
