//! Wall-clock VM overhead on representative workloads — the Criterion
//! companion to the cycle-model Figure 9 (`cargo run -p rsti-bench --bin
//! fig9`). One group per benchmark; baseline vs each mechanism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsti_core::Mechanism;
use rsti_vm::{Image, Status, Vm};

fn bench_workloads(c: &mut Criterion) {
    let names = ["perlbench", "mcf", "lbm", "xalancbmk"];
    for name in names {
        let w = rsti_workloads::spec2006()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let m = w.module();
        let mut group = c.benchmark_group(format!("fig9/{name}"));
        group.sample_size(10);
        let base_img = Image::baseline(&m);
        group.bench_function(BenchmarkId::from_parameter("baseline"), |b| {
            b.iter(|| {
                let r = Vm::new(&base_img).run();
                assert!(matches!(r.status, Status::Exited(0)));
                r.cycles
            })
        });
        for mech in [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl] {
            let img = Image::from_instrumented(&rsti_core::instrument(&m, mech));
            group.bench_function(BenchmarkId::from_parameter(mech.name()), |b| {
                b.iter(|| {
                    let r = Vm::new(&img).run();
                    assert!(matches!(r.status, Status::Exited(0)));
                    r.cycles
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
