//! Wall-clock VM overhead on representative workloads — the wall-clock
//! companion to the cycle-model Figure 9 (`cargo run -p rsti-bench --bin
//! fig9`). One group per benchmark; baseline vs each mechanism.

use rsti_bench::timing::bench_with_target;
use rsti_core::Mechanism;
use rsti_vm::{Image, Status, Vm};
use std::time::Duration;

fn main() {
    let names = ["perlbench", "mcf", "lbm", "xalancbmk"];
    for name in names {
        let w = rsti_workloads::spec2006()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let m = w.module();
        let base_img = Image::baseline(&m);
        bench_with_target(&format!("fig9/{name}/baseline"), Duration::from_millis(500), || {
            let r = Vm::new(&base_img).run();
            assert!(matches!(r.status, Status::Exited(0)));
            r.cycles
        });
        for mech in [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl] {
            let img = Image::from_instrumented(&rsti_core::instrument(&m, mech));
            bench_with_target(
                &format!("fig9/{name}/{}", mech.name()),
                Duration::from_millis(500),
                || {
                    let r = Vm::new(&img).run();
                    assert!(matches!(r.status, Status::Exited(0)));
                    r.cycles
                },
            );
        }
    }
}
