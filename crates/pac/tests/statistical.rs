//! Statistical properties of the PAC primitive: the defense's strength
//! rests on PACs being uniformly distributed and key-separated.

use rsti_pac::{KeyId, PacKeys, PacUnit, VaConfig};

/// PAC values over sequential pointers must cover the 8-bit space roughly
/// uniformly (no bucket pathologically hot or cold).
#[test]
fn pac_distribution_is_roughly_uniform() {
    let mut u = PacUnit::for_tests();
    let n = 4096u64;
    let mut buckets = [0u32; 256];
    for i in 0..n {
        let p = 0x7F00_0000_0000 + i * 16;
        let pac = u.config().pac_of(u.sign(KeyId::Da, p, 7));
        buckets[pac as usize] += 1;
    }
    let expected = (n / 256) as f64; // 16 per bucket
    let max = *buckets.iter().max().unwrap() as f64;
    let min = *buckets.iter().min().unwrap() as f64;
    // Loose 6-sigma-ish band for a binomial(4096, 1/256).
    assert!(max < expected + 6.0 * expected.sqrt() + 6.0, "hot bucket: {max}");
    assert!(min > 0.0, "some PAC value never occurs in 4096 samples");
}

/// Changing a single *modifier* bit flips the PAC about half the time per
/// output bit — no linear structure an attacker could exploit to transfer
/// a PAC between RSTI-types.
#[test]
fn modifier_avalanche_into_pac_field() {
    let u = PacUnit::for_tests();
    let p = 0x7F00_0000_4000u64;
    let mut changed = 0u32;
    let trials = 64 * 8;
    for bit in 0..64 {
        let a = u.compute_pac(KeyId::Da, p, 0x1234_5678);
        let b = u.compute_pac(KeyId::Da, p, 0x1234_5678 ^ (1 << bit));
        changed += (a ^ b).count_ones();
    }
    // Expected flips: 64 trials * 4 bits (half of 8). Allow a wide band.
    let ratio = changed as f64 / trials as f64;
    assert!(
        (0.3..=0.7).contains(&ratio),
        "modifier avalanche ratio {ratio} outside [0.3, 0.7]"
    );
}

/// The five key registers are fully separated: the same (pointer,
/// modifier) yields unrelated PACs under each key.
#[test]
fn keys_are_pairwise_separated() {
    let u = PacUnit::for_tests();
    let keys = [KeyId::Ia, KeyId::Ib, KeyId::Da, KeyId::Db, KeyId::Ga];
    // One collision among 10 pairs on an 8-bit PAC is plausible; check a
    // batch of pointers and require most to differ for every pair.
    for (i, &a) in keys.iter().enumerate() {
        for &b in &keys[i + 1..] {
            let mut same = 0;
            for k in 0..64u64 {
                let p = 0x7F00_0000_8000 + k * 32;
                if u.compute_pac(a, p, 1) == u.compute_pac(b, p, 1) {
                    same += 1;
                }
            }
            assert!(same < 8, "{a:?} vs {b:?}: {same}/64 PACs collide");
        }
    }
}

/// Poisoned pointers are non-canonical under both VA configurations, so a
/// failed authentication can never silently produce a dereferenceable
/// address.
#[test]
fn poison_is_never_canonical() {
    for cfg in [VaConfig::paper_default(), VaConfig::no_tbi()] {
        for i in 0..512u64 {
            let p = i * 0x1_0000 + 0x40;
            assert!(
                !cfg.is_canonical(cfg.poison(p)),
                "poisoned {p:#x} stayed canonical under {cfg:?}"
            );
        }
    }
}

/// Fresh random key banks produce different PACs for identical inputs —
/// per-process keys make offline PAC dictionaries useless.
#[test]
fn random_key_banks_differ() {
    let mut rng = rsti_rng::Rng64::seed_from_u64(1);
    let k1 = PacKeys::random(&mut rng);
    let k2 = PacKeys::random(&mut rng);
    let u1 = PacUnit::new(&k1, VaConfig::paper_default());
    let u2 = PacUnit::new(&k2, VaConfig::paper_default());
    let mut same = 0;
    for i in 0..64u64 {
        let p = 0x7F00_0000_0000 + i * 8;
        if u1.compute_pac(KeyId::Da, p, 5) == u2.compute_pac(KeyId::Da, p, 5) {
            same += 1;
        }
    }
    assert!(same < 8, "{same}/64 PACs identical across key banks");
}
