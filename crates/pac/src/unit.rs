//! The PA "functional unit": sign / authenticate / strip, wired to the key
//! bank and the VA layout. This is the software stand-in for the `pac*`,
//! `aut*`, and `xpac*` instructions the RSTI-instrumented binary executes.

use crate::keys::{KeyId, PacKeys};
use crate::pointer::VaConfig;
use crate::qarma::{tweak_schedule, Qarma64, TweakSchedule};
use std::cell::Cell;
use std::fmt;

/// Error produced by a failed authentication.
///
/// Carries the *poisoned* pointer: real hardware does not fault inside
/// `aut`, it hands back a non-canonical pointer that faults on first use.
/// Callers that model the architecture precisely (the VM) propagate the
/// poisoned value; tests can assert on the failure directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthFailure {
    /// The pointer with its top two PAC bits flipped.
    pub poisoned: u64,
    /// The PAC found on the pointer.
    pub found_pac: u64,
    /// The PAC that would have been correct for the supplied modifier.
    pub expected_pac: u64,
}

impl fmt::Display for AuthFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pointer authentication failed: found PAC {:#x}, expected {:#x}",
            self.found_pac, self.expected_pac
        )
    }
}

impl std::error::Error for AuthFailure {}

/// A PA unit: one key bank + one VA configuration + the PAC cipher.
#[derive(Debug, Clone)]
pub struct PacUnit {
    cfg: VaConfig,
    ciphers: [Qarma64; 5],
    /// Direct-mapped memo of recent modifiers' round-tweak schedules.
    /// RSTI modifiers are type/scope IDs drawn from a small set that
    /// repeats across long runs of sign/auth operations (and sign/auth
    /// streams interleave two or three of them), so the LFSR expansion
    /// usually runs once per modifier rather than once per operation.
    /// Key-independent (the schedule is a function of the tweak alone),
    /// hence shared across the five key banks. `Cell`s keep `compute_pac`
    /// callable through `&self`; the unit is per-VM and never shared
    /// across threads.
    sched: [Cell<(u64, TweakSchedule)>; 8],
    /// Direct-mapped memo of recent full PAC results, keyed by
    /// `(key, canonical pointer, modifier)`. A signed pointer is usually
    /// authenticated with the *same* triple moments later (store → load →
    /// `aut`), and loop-carried pointers re-sign the same triple every
    /// iteration — both turn the 14-round cipher into a table hit. Pure
    /// memoisation of a deterministic function; misses just recompute.
    pacs: [Cell<(u64, u64, u64, u64)>; 64],
    /// Number of `pac` operations executed (performance counters).
    pub sign_count: u64,
    /// Number of `aut` operations executed.
    pub auth_count: u64,
    /// Number of `aut` operations that failed.
    pub fail_count: u64,
    /// Unit-local telemetry: QARMA invocations and memo hit/miss counts.
    /// Plain `Cell`s (the unit is per-VM, never shared across threads) so
    /// the hot `compute_pac` path pays increments, not atomics; the VM
    /// flushes them into the global collector once per run.
    stats: PacUnitStats,
}

/// Memoisation-effectiveness counters for one [`PacUnit`].
#[derive(Debug, Clone, Default)]
pub struct PacUnitStats {
    /// Full 14-round QARMA cipher invocations (= PAC memo misses).
    pub qarma_calls: Cell<u64>,
    /// Full-PAC memo hits (cipher skipped entirely).
    pub pac_memo_hits: Cell<u64>,
    /// Tweak-schedule memo hits.
    pub sched_memo_hits: Cell<u64>,
    /// Tweak-schedule memo misses (LFSR expansions run).
    pub sched_memo_misses: Cell<u64>,
}

impl PacUnit {
    /// Builds a unit from a key bank and layout.
    pub fn new(keys: &PacKeys, cfg: VaConfig) -> Self {
        let mk = |id: KeyId| Qarma64::new(keys.key(id));
        PacUnit {
            cfg,
            ciphers: [mk(KeyId::Ia), mk(KeyId::Ib), mk(KeyId::Da), mk(KeyId::Db), mk(KeyId::Ga)],
            sched: std::array::from_fn(|_| Cell::new((0, tweak_schedule(0)))),
            // Key code `u64::MAX` is not a valid bank index, so fresh
            // slots can never produce a false hit.
            pacs: std::array::from_fn(|_| Cell::new((u64::MAX, 0, 0, 0))),
            sign_count: 0,
            auth_count: 0,
            fail_count: 0,
            stats: PacUnitStats::default(),
        }
    }

    /// The unit's memo/cipher counters.
    pub fn unit_stats(&self) -> &PacUnitStats {
        &self.stats
    }

    /// Adds the unit's counters into the global telemetry collector (one
    /// branch and no work while telemetry is disabled). The VM calls this
    /// once per finished run.
    pub fn flush_telemetry(&self) {
        let tel = rsti_telemetry::global();
        if !tel.is_enabled() {
            return;
        }
        use rsti_telemetry::CounterId;
        tel.add(CounterId::QarmaCalls, self.stats.qarma_calls.get());
        tel.add(CounterId::PacMemoHits, self.stats.pac_memo_hits.get());
        tel.add(CounterId::SchedMemoHits, self.stats.sched_memo_hits.get());
        tel.add(CounterId::SchedMemoMisses, self.stats.sched_memo_misses.get());
    }

    /// A unit with the fixed test key bank and the paper's VA layout.
    pub fn for_tests() -> Self {
        Self::new(&PacKeys::test_keys(), VaConfig::paper_default())
    }

    /// The VA layout in force.
    pub fn config(&self) -> VaConfig {
        self.cfg
    }

    fn key_index(key: KeyId) -> usize {
        match key {
            KeyId::Ia => 0,
            KeyId::Ib => 1,
            KeyId::Da => 2,
            KeyId::Db => 3,
            KeyId::Ga => 4,
        }
    }

    fn cipher(&self, key: KeyId) -> &Qarma64 {
        &self.ciphers[Self::key_index(key)]
    }

    /// Computes the PAC for a canonical pointer + modifier, truncated to
    /// the PAC field width. The TBI byte takes no part in the computation
    /// (hardware excludes ignored bits).
    pub fn compute_pac(&self, key: KeyId, ptr: u64, modifier: u64) -> u64 {
        let canon = self.cfg.canonical(ptr);
        let ki = Self::key_index(key) as u64;
        let h = (canon ^ modifier.rotate_left(17) ^ ki).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let pac_slot = &self.pacs[(h >> 58) as usize];
        let (ck, cc, cm, cp) = pac_slot.get();
        if ck == ki && cc == canon && cm == modifier {
            self.stats.pac_memo_hits.set(self.stats.pac_memo_hits.get() + 1);
            return cp;
        }
        self.stats.qarma_calls.set(self.stats.qarma_calls.get() + 1);
        let slot = &self.sched[(modifier ^ (modifier >> 3)) as usize & 7];
        let (cached_tweak, mut ts) = slot.get();
        if cached_tweak != modifier {
            self.stats.sched_memo_misses.set(self.stats.sched_memo_misses.get() + 1);
            ts = tweak_schedule(modifier);
            slot.set((modifier, ts));
        } else {
            self.stats.sched_memo_hits.set(self.stats.sched_memo_hits.get() + 1);
        }
        let pac = self.cfg.truncate_pac(self.cipher(key).encrypt_with_schedule(canon, &ts));
        pac_slot.set((ki, canon, modifier, pac));
        pac
    }

    /// `pac` — signs `ptr` with `modifier`, inserting the PAC into the
    /// unused top bits. Any pre-existing PAC bits are replaced; the TBI
    /// tag byte is preserved.
    pub fn sign(&mut self, key: KeyId, ptr: u64, modifier: u64) -> u64 {
        self.sign_count += 1;
        let pac = self.compute_pac(key, ptr, modifier);
        self.cfg.with_pac(ptr, pac)
    }

    /// `aut` — authenticates `ptr` against `modifier`.
    ///
    /// # Errors
    /// Returns [`AuthFailure`] (with the poisoned pointer the hardware
    /// would produce) when the PAC does not match.
    pub fn auth(&mut self, key: KeyId, ptr: u64, modifier: u64) -> Result<u64, AuthFailure> {
        self.auth_count += 1;
        let expected = self.compute_pac(key, ptr, modifier);
        let found = self.cfg.pac_of(ptr);
        if found == expected {
            // PAC removed; address restored to canonical (TBI byte kept).
            Ok((ptr & !self.cfg.pac_mask()) | (self.cfg.canonical(ptr) & self.cfg.pac_mask()))
        } else {
            self.fail_count += 1;
            Err(AuthFailure { poisoned: self.cfg.poison(ptr), found_pac: found, expected_pac: expected })
        }
    }

    /// `xpac` — strips the PAC without authenticating (used before calls
    /// into uninstrumented libraries).
    pub fn strip(&self, ptr: u64) -> u64 {
        ptr & !self.cfg.pac_mask()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_then_auth_roundtrips() {
        let mut u = PacUnit::for_tests();
        let p = 0x0000_7F00_0000_1040u64;
        let s = u.sign(KeyId::Da, p, 0x1234);
        assert_ne!(s, p, "PAC should be non-zero for this input");
        let back = u.auth(KeyId::Da, s, 0x1234).unwrap();
        assert_eq!(back, p);
        assert_eq!(u.sign_count, 1);
        assert_eq!(u.auth_count, 1);
        assert_eq!(u.fail_count, 0);
    }

    #[test]
    fn wrong_modifier_fails_and_poisons() {
        let mut u = PacUnit::for_tests();
        let p = 0x0000_7F00_0000_1040u64;
        let s = u.sign(KeyId::Da, p, 0x1234);
        let err = u.auth(KeyId::Da, s, 0x1235).unwrap_err();
        assert!(!u.config().is_canonical(err.poisoned));
        assert_ne!(err.poisoned, s);
        assert_eq!(u.fail_count, 1);
    }

    #[test]
    fn wrong_key_fails() {
        let mut u = PacUnit::for_tests();
        let p = 0x0000_7F00_0000_2000u64;
        let s = u.sign(KeyId::Da, p, 7);
        assert!(u.auth(KeyId::Db, s, 7).is_err());
    }

    #[test]
    fn unsigned_pointer_usually_fails_auth() {
        // An unsigned (PAC = 0) pointer only authenticates when the true
        // PAC happens to be zero: probability 2^-8 with TBI. Check a batch.
        let mut u = PacUnit::for_tests();
        let fails = (0..256u64)
            .filter(|i| u.auth(KeyId::Da, 0x7F00_0000_0000 + i * 16, 99).is_err())
            .count();
        assert!(fails >= 250, "only {fails}/256 unsigned pointers failed");
    }

    #[test]
    fn strip_removes_pac_without_checking() {
        let mut u = PacUnit::for_tests();
        let p = 0x0000_7F00_0000_3000u64;
        let s = u.sign(KeyId::Da, p, 1);
        assert_eq!(u.strip(s), p);
    }

    #[test]
    fn tbi_tag_survives_signing() {
        let mut u = PacUnit::for_tests();
        let p = 0x0000_7F00_0000_4000u64;
        let tagged = u.config().with_tbi_tag(p, 0x42);
        let s = u.sign(KeyId::Da, tagged, 5);
        assert_eq!(u.config().tbi_tag(s), 0x42);
        // The PAC must not depend on the tag byte.
        let s2 = u.sign(KeyId::Da, p, 5);
        assert_eq!(u.config().pac_of(s), u.config().pac_of(s2));
    }

    #[test]
    fn signing_twice_with_different_modifiers_changes_pac() {
        let mut u = PacUnit::for_tests();
        let p = 0x0000_7F00_0000_5000u64;
        let a = u.sign(KeyId::Da, p, 100);
        let b = u.sign(KeyId::Da, p, 200);
        assert_ne!(u.config().pac_of(a), u.config().pac_of(b));
    }
}
