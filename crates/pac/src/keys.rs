//! The five PA key registers.
//!
//! ARMv8.3 defines five 128-bit keys, banked in system registers that only
//! EL1 (the kernel) can write: two instruction keys (`APIAKey`, `APIBKey`),
//! two data keys (`APDAKey`, `APDBKey`), and the generic key (`APGAKey`).
//! The RSTI threat model (§3) trusts the kernel to generate, manage, and
//! store them — the user-level attacker can never read them. The VM
//! enforces that by keeping [`PacKeys`] outside the attacker-addressable
//! memory space.

use rsti_rng::Rng64;

/// Identifies one of the five key registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyId {
    /// Instruction key A.
    Ia,
    /// Instruction key B.
    Ib,
    /// Data key A (RSTI's data-pointer key; `pacda`/`autda`).
    Da,
    /// Data key B.
    Db,
    /// Generic key (`pacga`).
    Ga,
}

impl KeyId {
    /// All key ids, in register order.
    pub const ALL: [KeyId; 5] = [KeyId::Ia, KeyId::Ib, KeyId::Da, KeyId::Db, KeyId::Ga];
}

/// A full bank of PA keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacKeys {
    ia: u128,
    ib: u128,
    da: u128,
    db: u128,
    ga: u128,
}

impl PacKeys {
    /// Generates a fresh random key bank (what the kernel does at `exec`).
    pub fn random(rng: &mut Rng64) -> Self {
        PacKeys {
            ia: rng.next_u128(),
            ib: rng.next_u128(),
            da: rng.next_u128(),
            db: rng.next_u128(),
            ga: rng.next_u128(),
        }
    }

    /// A fixed, documented key bank for reproducible tests and benches.
    /// Real deployments must use [`PacKeys::random`].
    pub fn test_keys() -> Self {
        PacKeys {
            ia: 0x0011_2233_4455_6677_8899_AABB_CCDD_EEFF,
            ib: 0x1122_3344_5566_7788_99AA_BBCC_DDEE_FF00,
            da: 0x2233_4455_6677_8899_AABB_CCDD_EEFF_0011,
            db: 0x3344_5566_7788_99AA_BBCC_DDEE_FF00_1122,
            ga: 0x4455_6677_8899_AABB_CCDD_EEFF_0011_2233,
        }
    }

    /// The 128-bit key behind a register id.
    pub fn key(&self, id: KeyId) -> u128 {
        match id {
            KeyId::Ia => self.ia,
            KeyId::Ib => self.ib,
            KeyId::Da => self.da,
            KeyId::Db => self.db,
            KeyId::Ga => self.ga,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_keys_are_distinct_across_registers() {
        let mut rng = Rng64::seed_from_u64(7);
        let k = PacKeys::random(&mut rng);
        let all: Vec<u128> = KeyId::ALL.iter().map(|&id| k.key(id)).collect();
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn test_keys_are_stable() {
        assert_eq!(PacKeys::test_keys(), PacKeys::test_keys());
        assert_ne!(PacKeys::test_keys().key(KeyId::Da), PacKeys::test_keys().key(KeyId::Db));
    }
}
