//! A QARMA-64-structured tweakable block cipher.
//!
//! ARMv8.3 Pointer Authentication computes PACs with a tweakable block
//! cipher — the architecture suggests QARMA-64 (Avanzi, 2017), taking the
//! 64-bit pointer as the plaintext and the 64-bit modifier as the tweak,
//! under a 128-bit key. The RSTI paper treats this primitive as a black box
//! ("Cryptographic Hash (e.g., QARMA)", Figure 3); what matters to the
//! defense is that the mapping `(pointer, modifier, key) → PAC` is
//! unpredictable without the key.
//!
//! This module implements a cipher with QARMA's architecture — a
//! reflection construction over a 4×4 state of 4-bit cells with
//! whitening keys, a MIDORI-style cell shuffle, an involutory almost-MDS
//! `MixColumns` over cell rotations, a 4-bit S-box, and an LFSR-updated
//! tweak schedule. We do **not** claim bit-exact conformance with the
//! published QARMA test vectors (see DESIGN.md); instead the tests pin down
//! the properties PA relies on: invertibility, and strong diffusion from
//! key, tweak, and plaintext (avalanche ≈ 32 of 64 bits).

/// Number of forward (and backward) rounds. QARMA-64 is specified with
/// r = 7 for its full-strength variant; we default to the same.
pub const DEFAULT_ROUNDS: usize = 7;

/// The 4-bit S-box σ₁ from the QARMA family (a permutation of 0..=15).
const SBOX: [u8; 16] = [
    0xA, 0xD, 0xE, 0x6, 0xF, 0x7, 0x3, 0x5, 0x9, 0x8, 0x0, 0xC, 0xB, 0x1, 0x2, 0x4,
];

/// τ — the MIDORI cell shuffle used by QARMA.
const CELL_PERM: [usize; 16] = [0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2];

/// h — the tweak-cell permutation.
const TWEAK_PERM: [usize; 16] = [6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11];

/// Cells of the tweak updated by the LFSR ω each round.
const LFSR_CELLS: [usize; 8] = [0, 1, 3, 4, 8, 11, 13, 14];

/// Round constants (from the digits of π, as QARMA specifies).
const ROUND_CONSTS: [u64; 8] = [
    0x0000000000000000,
    0x13198A2E03707344,
    0xA4093822299F31D0,
    0x082EFA98EC4E6C89,
    0x452821E638D01377,
    0xBE5466CF34E90C6C,
    0x3F84D5B5B5470917,
    0x9216D5D98979FB1B,
];

#[inline]
const fn inv_perm(p: &[usize; 16]) -> [usize; 16] {
    let mut inv = [0usize; 16];
    let mut i = 0;
    while i < 16 {
        inv[p[i]] = i;
        i += 1;
    }
    inv
}

/// τ⁻¹, folded to a constant so the shuffle unrolls to fixed shifts.
const INV_CELL_PERM: [usize; 16] = inv_perm(&CELL_PERM);

#[inline]
fn get_cell(x: u64, i: usize) -> u8 {
    // Cell 0 is the most significant nibble, as in the QARMA spec.
    ((x >> (60 - 4 * i)) & 0xF) as u8
}

#[inline]
fn set_cell(x: &mut u64, i: usize, v: u8) {
    let shift = 60 - 4 * i;
    *x = (*x & !(0xFu64 << shift)) | ((v as u64 & 0xF) << shift);
}

#[allow(dead_code)] // reference for the byte-pair form
#[inline]
fn sub_cells(x: u64, sbox: &[u8; 16]) -> u64 {
    // Substitute each nibble in place, accumulating with OR into a fresh
    // word (cell order is irrelevant, so iterate by shift).
    let mut out = 0u64;
    let mut sh = 0;
    while sh < 64 {
        out |= (sbox[((x >> sh) & 0xF) as usize] as u64) << sh;
        sh += 4;
    }
    out
}

/// A nibble S-box expanded to act on byte pairs: `t[hi·16+lo] =
/// sbox[hi]·16 + sbox[lo]`, halving the lookups per substitution layer.
const fn expand_sbox(sbox: &[u8; 16]) -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut b = 0;
    while b < 256 {
        t[b] = (sbox[b >> 4] << 4) | sbox[b & 0xF];
        b += 1;
    }
    t
}

/// The byte-pair form of [`sub_cells`]: 8 table lookups per word.
#[inline]
fn sub_bytes(x: u64, table: &[u8; 256]) -> u64 {
    let mut out = 0u64;
    let mut sh = 0;
    while sh < 64 {
        out |= (table[((x >> sh) & 0xFF) as usize] as u64) << sh;
        sh += 8;
    }
    out
}

/// σ₁⁻¹ as a nibble table.
const INV_SBOX: [u8; 16] = {
    let mut inv = [0u8; 16];
    let mut i = 0;
    while i < 16 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// The full forward-round linear layer: τ then M (what a full round
/// applies between the round-key XOR and the S-box).
const fn ms_of(x: u64) -> u64 {
    mix_columns(shuffle_cells(x, &CELL_PERM))
}

/// The full backward-round linear layer: M then τ⁻¹.
const fn sim_of(x: u64) -> u64 {
    shuffle_cells(mix_columns(x), &INV_CELL_PERM)
}

/// Builds the per-byte fused tables: entry `[i][b]` is `linear(place(
/// subst(b), byte i))`, so one XOR-accumulating pass over the 8 bytes of a
/// word applies substitution + the whole linear layer at once (both are
/// nibble-local / GF(2)-linear, so contributions XOR together).
const fn fuse_tables(subst: &[u8; 16], forward: bool) -> [[u64; 256]; 8] {
    let s2 = expand_sbox(subst);
    let mut t = [[0u64; 256]; 8];
    let mut i = 0;
    while i < 8 {
        let mut b = 0;
        while b < 256 {
            let placed = (s2[b] as u64) << (8 * i);
            t[i][b] = if forward { ms_of(placed) } else { sim_of(placed) };
            b += 1;
        }
        i += 1;
    }
    t
}

/// σ₁ then τ then M, fused per byte — one forward round's non-XOR work.
static FWD_TAB: [[u64; 256]; 8] = fuse_tables(&SBOX, true);

/// σ₁⁻¹ then M then τ⁻¹, fused per byte — one backward round's non-XOR
/// work.
static BWD_TAB: [[u64; 256]; 8] = fuse_tables(&INV_SBOX, false);

/// Applies a fused table: 8 u64 lookups XOR-accumulated.
#[inline]
fn tab8(x: u64, t: &[[u64; 256]; 8]) -> u64 {
    let mut out = 0u64;
    let mut i = 0;
    while i < 8 {
        out ^= t[i][((x >> (8 * i)) & 0xFF) as usize];
        i += 1;
    }
    out
}

#[inline]
const fn shuffle_cells(x: u64, perm: &[usize; 16]) -> u64 {
    // cell i of the output comes from cell perm[i] of the input
    let mut out = 0u64;
    let mut i = 0;
    while i < 16 {
        out |= ((x >> (60 - 4 * perm[i])) & 0xF) << (60 - 4 * i);
        i += 1;
    }
    out
}

/// ρ on every cell at once: rotate each 4-bit cell of the word left by 1.
#[inline]
const fn rotc1(x: u64) -> u64 {
    ((x << 1) & 0xEEEE_EEEE_EEEE_EEEE) | ((x >> 3) & 0x1111_1111_1111_1111)
}

/// ρ² on every cell at once: rotate each 4-bit cell left by 2.
#[inline]
const fn rotc2(x: u64) -> u64 {
    ((x << 2) & 0xCCCC_CCCC_CCCC_CCCC) | ((x >> 2) & 0x3333_3333_3333_3333)
}

/// The involutory almost-MDS matrix M = circ(0, ρ, ρ², ρ) acting on each
/// column of the 4×4 cell state; ρ is rotation of a cell by one bit.
/// Being involutory (M = M⁻¹) is what lets the reflection construction
/// share code between the two halves.
///
/// Computed word-parallel: rows of the state are the 16-bit lanes of the
/// word (row 0 most significant) and columns are nibble positions within a
/// lane, so each output row is an XOR of cell-rotated input rows —
/// `out[r] = Σ_k M[r][k]·in[k]` with the rotations applied to the whole
/// word up front.
const fn mix_columns(x: u64) -> u64 {
    let a = rotc1(x);
    let b = rotc2(x);
    let ar = [(a >> 48) as u16, (a >> 32) as u16, (a >> 16) as u16, a as u16];
    let br = [(b >> 48) as u16, (b >> 32) as u16, (b >> 16) as u16, b as u16];
    // circ(0, ρ, ρ², ρ): row r pulls ρ·in[r±1] and ρ²·in[r+2].
    let o0 = ar[1] ^ br[2] ^ ar[3];
    let o1 = ar[0] ^ ar[2] ^ br[3];
    let o2 = br[0] ^ ar[1] ^ ar[3];
    let o3 = ar[0] ^ br[1] ^ ar[2];
    ((o0 as u64) << 48) | ((o1 as u64) << 32) | ((o2 as u64) << 16) | o3 as u64
}

/// ω — the one-bit LFSR applied to selected tweak cells:
/// (b3,b2,b1,b0) → (b0 ^ b3, b3, b2, b1).
#[cfg_attr(not(test), allow(dead_code))] // reference for the word-parallel form
#[inline]
fn lfsr(v: u8) -> u8 {
    ((v >> 1) | (((v & 1) ^ ((v >> 3) & 1)) << 3)) & 0xF
}

#[cfg_attr(not(test), allow(dead_code))] // exercised by the schedule-inversion test
#[inline]
fn lfsr_inv(v: u8) -> u8 {
    let b3 = (v >> 3) & 1;
    let b2 = (v >> 2) & 1; // old b3
    let b0_new = b3 ^ b2;
    ((v << 1) | b0_new) & 0xF
}

/// Nibble mask selecting the [`LFSR_CELLS`] positions.
const LFSR_MASK: u64 = {
    let mut m = 0u64;
    let mut j = 0;
    while j < LFSR_CELLS.len() {
        m |= 0xF << (60 - 4 * LFSR_CELLS[j]);
        j += 1;
    }
    m
};

fn tweak_forward(t: u64) -> u64 {
    let t = shuffle_cells(t, &TWEAK_PERM);
    // ω applied to every cell word-parallel, then blended onto the
    // LFSR-selected cells only.
    let lo = t & 0x1111_1111_1111_1111;
    let lf = ((t >> 1) & 0x7777_7777_7777_7777) | ((lo ^ ((t >> 3) & 0x1111_1111_1111_1111)) << 3);
    (t & !LFSR_MASK) | (lf & LFSR_MASK)
}

/// A tweak expanded into its per-round schedule (all 8 entries populated;
/// a cipher with fewer rounds uses a prefix). Key-independent — ω and h
/// touch only the tweak — so one schedule serves every key bank, and
/// callers signing many pointers under one modifier (RSTI's type/scope IDs
/// repeat heavily) can hoist it out of the per-pointer loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TweakSchedule {
    /// Round tweaks `ω^r(h^r(t))`, as the backward half consumes them.
    raw: [u64; 8],
    /// The same tweaks pushed through the forward linear layer (τ then M),
    /// so a forward round folds its tweak in *after* the fused table pass.
    ms: [u64; 8],
}

/// Expands `tweak` into a [`TweakSchedule`].
pub fn tweak_schedule(tweak: u64) -> TweakSchedule {
    let mut raw = [0u64; 8];
    let mut ms = [0u64; 8];
    let mut t = tweak;
    for r in 0..8 {
        raw[r] = t;
        ms[r] = ms_of(t);
        t = tweak_forward(t);
    }
    TweakSchedule { raw, ms }
}

#[cfg_attr(not(test), allow(dead_code))] // exercised by the schedule-inversion test
fn tweak_backward(mut t: u64) -> u64 {
    for &c in &LFSR_CELLS {
        let v = lfsr_inv(get_cell(t, c));
        set_cell(&mut t, c, v);
    }
    let inv = inv_perm(&TWEAK_PERM);
    shuffle_cells(t, &inv)
}

/// A QARMA-64-structured tweakable block cipher instance.
///
/// Constructed from a 128-bit key split into a whitening key `w0` and a
/// core key `k0` (with derived `w1`, `k1` per the QARMA key specialisation).
#[derive(Debug, Clone)]
pub struct Qarma64 {
    w0: u64,
    w1: u64,
    rounds: usize,
    /// σ₁ and σ₁⁻¹ expanded to byte-pair tables ([`expand_sbox`]).
    sbox2: [u8; 256],
    inv_sbox2: [u8; 256],
    /// Per-round key material `k0 ^ rc[r]`, and the same pushed through
    /// the forward linear layer — so each round's key/constant folding is
    /// one XOR against the cached tweak schedule.
    k0rc: [u64; 8],
    ms_k0rc: [u64; 8],
    /// The reflector, collapsed: with our involutory per-column matrix the
    /// whole centre (`τ, M, ⊕k1, M, τ⁻¹`) reduces to `⊕ τ⁻¹(M(k1))`
    /// because `M` and `τ` are GF(2)-linear and `M² = id`.
    refl_k: u64,
}

impl Qarma64 {
    /// Creates a cipher from a 128-bit key with the default round count.
    pub fn new(key: u128) -> Self {
        Self::with_rounds(key, DEFAULT_ROUNDS)
    }

    /// Creates a cipher with an explicit round count (1..=8).
    ///
    /// # Panics
    /// Panics when `rounds` is 0 or exceeds the round-constant table.
    pub fn with_rounds(key: u128, rounds: usize) -> Self {
        assert!(rounds >= 1 && rounds <= ROUND_CONSTS.len(), "1..=8 rounds");
        let w0 = (key >> 64) as u64;
        let k0 = key as u64;
        // QARMA key specialisation: w1 = (w0 >>> 1) ^ (w0 >> 63),
        // k1 = k0 for the non-reflector rounds.
        let w1 = w0.rotate_right(1) ^ (w0 >> 63);
        let k1 = k0;
        let mut k0rc = [0u64; 8];
        let mut ms_k0rc = [0u64; 8];
        for r in 0..8 {
            k0rc[r] = k0 ^ ROUND_CONSTS[r];
            ms_k0rc[r] = ms_of(k0rc[r]);
        }
        Qarma64 {
            w0,
            w1,
            rounds,
            sbox2: expand_sbox(&SBOX),
            inv_sbox2: expand_sbox(&INV_SBOX),
            k0rc,
            ms_k0rc,
            refl_k: sim_of(k1),
        }
    }

    /// The whitening-free core: forward rounds, reflector, backward
    /// rounds. Shared by encrypt and decrypt — the reflection construction
    /// makes the core its own inverse modulo the whitening-key swap.
    ///
    /// Forward rounds keep the *pre-substitution* state `t`: a full round
    /// `t ↦ σ(M(τ(σ(t) ⊕ K)))` re-associates (σ is nibble-local, M∘τ is
    /// linear) into one fused-table pass [`FWD_TAB`] plus an XOR of the
    /// pre-transformed round key `M(τ(K))`, deferring the final σ to a
    /// single [`sub_bytes`] before the reflector. Backward rounds fuse
    /// σ⁻¹, M, τ⁻¹ the same way through [`BWD_TAB`].
    #[inline]
    fn core(&self, block: u64, ts: &TweakSchedule) -> u64 {
        let mut t = block ^ self.k0rc[0] ^ ts.raw[0];
        for r in 1..self.rounds {
            t = tab8(t, &FWD_TAB) ^ self.ms_k0rc[r] ^ ts.ms[r];
        }
        let mut s = sub_bytes(t, &self.sbox2);
        s ^= self.refl_k; // the collapsed reflector
        for r in (1..self.rounds).rev() {
            s = tab8(s, &BWD_TAB) ^ self.k0rc[r] ^ ts.raw[r];
        }
        sub_bytes(s, &self.inv_sbox2) ^ self.k0rc[0] ^ ts.raw[0]
    }

    /// Encrypts `block` under `tweak`.
    pub fn encrypt(&self, block: u64, tweak: u64) -> u64 {
        self.encrypt_with_schedule(block, &tweak_schedule(tweak))
    }

    /// Encrypts `block` under a precomputed [`tweak_schedule`] — the hot
    /// path when many pointers share one modifier.
    pub fn encrypt_with_schedule(&self, block: u64, ts: &TweakSchedule) -> u64 {
        self.core(block ^ self.w0, ts) ^ self.w1
    }

    /// Decrypts `block` under `tweak` (exact inverse of
    /// [`Qarma64::encrypt`]).
    pub fn decrypt(&self, block: u64, tweak: u64) -> u64 {
        self.decrypt_with_schedule(block, &tweak_schedule(tweak))
    }

    /// Decrypts `block` under a precomputed [`tweak_schedule`].
    pub fn decrypt_with_schedule(&self, block: u64, ts: &TweakSchedule) -> u64 {
        self.core(block ^ self.w1, ts) ^ self.w0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> Qarma64 {
        Qarma64::new(0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210)
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 16];
        for &v in &SBOX {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn cell_roundtrip() {
        let mut x = 0u64;
        set_cell(&mut x, 0, 0xA);
        set_cell(&mut x, 15, 0x5);
        assert_eq!(get_cell(x, 0), 0xA);
        assert_eq!(get_cell(x, 15), 0x5);
        assert_eq!(x, 0xA000_0000_0000_0005);
    }

    #[test]
    fn mix_columns_is_involutory() {
        for x in [0u64, 1, 0xDEAD_BEEF_CAFE_F00D, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(mix_columns(mix_columns(x)), x, "x={x:#x}");
        }
    }

    #[test]
    fn lfsr_inverts() {
        for v in 0u8..16 {
            assert_eq!(lfsr_inv(lfsr(v)), v);
            assert_eq!(lfsr(lfsr_inv(v)), v);
        }
    }

    #[test]
    fn tweak_schedule_inverts() {
        for t in [0u64, 0x1111_2222_3333_4444, u64::MAX] {
            assert_eq!(tweak_backward(tweak_forward(t)), t);
        }
    }

    /// The word-parallel kernels must match the per-cell reference forms
    /// bit-exactly (they are pure layout rewrites, not spec changes).
    #[test]
    fn word_parallel_matches_per_cell_reference() {
        fn rot4(v: u8, r: u32) -> u8 {
            if r == 0 { v } else { ((v << r) | (v >> (4 - r))) & 0xF }
        }
        fn mix_columns_ref(x: u64) -> u64 {
            const ROTS: [[u32; 4]; 4] =
                [[4, 1, 2, 1], [1, 4, 1, 2], [2, 1, 4, 1], [1, 2, 1, 4]];
            let mut out = 0u64;
            for col in 0..4 {
                for (row, rots) in ROTS.iter().enumerate() {
                    let mut acc = 0u8;
                    for (k, &r) in rots.iter().enumerate() {
                        if r < 4 {
                            acc ^= rot4(get_cell(x, 4 * k + col), r);
                        }
                    }
                    set_cell(&mut out, 4 * row + col, acc);
                }
            }
            out
        }
        fn tweak_forward_ref(mut t: u64) -> u64 {
            t = shuffle_cells(t, &TWEAK_PERM);
            for &c in &LFSR_CELLS {
                let v = lfsr(get_cell(t, c));
                set_cell(&mut t, c, v);
            }
            t
        }
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..512 {
            assert_eq!(mix_columns(x), mix_columns_ref(x), "mix_columns x={x:#x}");
            assert_eq!(tweak_forward(x), tweak_forward_ref(x), "tweak x={x:#x}");
            x = x.wrapping_mul(0xD129_0249_2749_2481).wrapping_add(1).rotate_left(17);
        }
    }

    /// Known-answer vectors captured from the original (un-fused,
    /// per-cell) implementation: the table-fusion rewrite must be
    /// bit-exact, or every stored PAC in the ecosystem would change.
    #[test]
    fn known_answers_match_reference_implementation() {
        let c = cipher();
        for (p, t, want) in [
            (0u64, 0u64, 0x2344cb139bd0ea49u64),
            (0xFFFF_0000_1234_5678, 42, 0xf9a20b353dfa13e3),
            (u64::MAX, u64::MAX, 0xd51f7661e967bddf),
            (0x0000_7FFF_DEAD_0010, 0x9E37_79B9_7F4A_7C15, 0x11c54ee18f1afe96),
        ] {
            assert_eq!(c.encrypt(p, t), want, "p={p:#x} t={t:#x}");
        }
        for (r, want) in [
            (4usize, 0xfa252d029b68d6e7u64),
            (5, 0xf0f6f96c0bf8eb6f),
            (6, 0xbc7902dfc9c9e39f),
            (7, 0xc2434f752e43323b),
        ] {
            let c = Qarma64::with_rounds(0xAABB_CCDD_EEFF_0011_2233_4455_6677_8899, r);
            assert_eq!(c.encrypt(0x7F00_0000_3000, 1), want, "rounds={r}");
        }
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let c = cipher();
        for (p, t) in [
            (0u64, 0u64),
            (0xFFFF_0000_1234_5678, 42),
            (u64::MAX, u64::MAX),
            (0x0000_7FFF_DEAD_0010, 0x9E37_79B9_7F4A_7C15),
        ] {
            let e = c.encrypt(p, t);
            assert_eq!(c.decrypt(e, t), p, "p={p:#x} t={t:#x}");
        }
    }

    #[test]
    fn different_tweaks_differ() {
        let c = cipher();
        let p = 0x0000_7FFF_0000_1000;
        assert_ne!(c.encrypt(p, 1), c.encrypt(p, 2));
    }

    #[test]
    fn different_keys_differ() {
        let a = Qarma64::new(1);
        let b = Qarma64::new(2);
        assert_ne!(a.encrypt(0x1234, 0), b.encrypt(0x1234, 0));
    }

    /// Avalanche: flipping one plaintext/tweak/key bit should flip ~half
    /// the output bits. We accept a generous 20..=44 window per flip.
    #[test]
    fn avalanche() {
        let c = cipher();
        let p = 0x0000_7FFF_4242_4242u64;
        let t = 0xABCD_EF01_2345_6789u64;
        let base = c.encrypt(p, t);
        let mut worst = 64u32;
        for bit in 0..64 {
            let d = (c.encrypt(p ^ (1 << bit), t) ^ base).count_ones();
            worst = worst.min(d);
            assert!((20..=44).contains(&d), "plaintext bit {bit}: {d} bits flipped");
            let d = (c.encrypt(p, t ^ (1 << bit)) ^ base).count_ones();
            assert!((20..=44).contains(&d), "tweak bit {bit}: {d} bits flipped");
        }
        assert!(worst >= 20);
    }
}
