//! A QARMA-64-structured tweakable block cipher.
//!
//! ARMv8.3 Pointer Authentication computes PACs with a tweakable block
//! cipher — the architecture suggests QARMA-64 (Avanzi, 2017), taking the
//! 64-bit pointer as the plaintext and the 64-bit modifier as the tweak,
//! under a 128-bit key. The RSTI paper treats this primitive as a black box
//! ("Cryptographic Hash (e.g., QARMA)", Figure 3); what matters to the
//! defense is that the mapping `(pointer, modifier, key) → PAC` is
//! unpredictable without the key.
//!
//! This module implements a cipher with QARMA's architecture — a
//! reflection construction over a 4×4 state of 4-bit cells with
//! whitening keys, a MIDORI-style cell shuffle, an involutory almost-MDS
//! `MixColumns` over cell rotations, a 4-bit S-box, and an LFSR-updated
//! tweak schedule. We do **not** claim bit-exact conformance with the
//! published QARMA test vectors (see DESIGN.md); instead the tests pin down
//! the properties PA relies on: invertibility, and strong diffusion from
//! key, tweak, and plaintext (avalanche ≈ 32 of 64 bits).

/// Number of forward (and backward) rounds. QARMA-64 is specified with
/// r = 7 for its full-strength variant; we default to the same.
pub const DEFAULT_ROUNDS: usize = 7;

/// The 4-bit S-box σ₁ from the QARMA family (a permutation of 0..=15).
const SBOX: [u8; 16] = [
    0xA, 0xD, 0xE, 0x6, 0xF, 0x7, 0x3, 0x5, 0x9, 0x8, 0x0, 0xC, 0xB, 0x1, 0x2, 0x4,
];

/// τ — the MIDORI cell shuffle used by QARMA.
const CELL_PERM: [usize; 16] = [0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2];

/// h — the tweak-cell permutation.
const TWEAK_PERM: [usize; 16] = [6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11];

/// Cells of the tweak updated by the LFSR ω each round.
const LFSR_CELLS: [usize; 8] = [0, 1, 3, 4, 8, 11, 13, 14];

/// Round constants (from the digits of π, as QARMA specifies).
const ROUND_CONSTS: [u64; 8] = [
    0x0000000000000000,
    0x13198A2E03707344,
    0xA4093822299F31D0,
    0x082EFA98EC4E6C89,
    0x452821E638D01377,
    0xBE5466CF34E90C6C,
    0x3F84D5B5B5470917,
    0x9216D5D98979FB1B,
];

#[inline]
fn inv_perm(p: &[usize; 16]) -> [usize; 16] {
    let mut inv = [0usize; 16];
    for (i, &x) in p.iter().enumerate() {
        inv[x] = i;
    }
    inv
}

#[inline]
fn get_cell(x: u64, i: usize) -> u8 {
    // Cell 0 is the most significant nibble, as in the QARMA spec.
    ((x >> (60 - 4 * i)) & 0xF) as u8
}

#[inline]
fn set_cell(x: &mut u64, i: usize, v: u8) {
    let shift = 60 - 4 * i;
    *x = (*x & !(0xFu64 << shift)) | ((v as u64 & 0xF) << shift);
}

#[inline]
fn sub_cells(x: u64, sbox: &[u8; 16]) -> u64 {
    let mut out = 0u64;
    for i in 0..16 {
        set_cell(&mut out, i, sbox[get_cell(x, i) as usize]);
    }
    out
}

#[inline]
fn shuffle_cells(x: u64, perm: &[usize; 16]) -> u64 {
    // cell i of the output comes from cell perm[i] of the input
    let mut out = 0u64;
    for (i, &src) in perm.iter().enumerate() {
        set_cell(&mut out, i, get_cell(x, src));
    }
    out
}

/// Rotate a 4-bit cell left by `r`.
#[inline]
fn rot4(v: u8, r: u32) -> u8 {
    if r == 0 {
        v
    } else {
        ((v << r) | (v >> (4 - r))) & 0xF
    }
}

/// The involutory almost-MDS matrix M = circ(0, ρ, ρ², ρ) acting on each
/// column of the 4×4 cell state; ρ is rotation of a cell by one bit.
/// Being involutory (M = M⁻¹) is what lets the reflection construction
/// share code between the two halves.
fn mix_columns(x: u64) -> u64 {
    const ROTS: [[u32; 4]; 4] = [
        // row-by-row rotation amounts of circ(0,1,2,1); 4 means "zero cell"
        [4, 1, 2, 1],
        [1, 4, 1, 2],
        [2, 1, 4, 1],
        [1, 2, 1, 4],
    ];
    let mut out = 0u64;
    for col in 0..4 {
        for row in 0..4 {
            let mut acc = 0u8;
            for k in 0..4 {
                let r = ROTS[row][k];
                if r < 4 {
                    acc ^= rot4(get_cell(x, 4 * k + col), r);
                }
            }
            set_cell(&mut out, 4 * row + col, acc);
        }
    }
    out
}

/// ω — the one-bit LFSR applied to selected tweak cells:
/// (b3,b2,b1,b0) → (b0 ^ b3, b3, b2, b1).
#[inline]
fn lfsr(v: u8) -> u8 {
    ((v >> 1) | (((v & 1) ^ ((v >> 3) & 1)) << 3)) & 0xF
}

#[cfg_attr(not(test), allow(dead_code))] // exercised by the schedule-inversion test
#[inline]
fn lfsr_inv(v: u8) -> u8 {
    let b3 = (v >> 3) & 1;
    let b2 = (v >> 2) & 1; // old b3
    let b0_new = b3 ^ b2;
    ((v << 1) | b0_new) & 0xF
}

fn tweak_forward(mut t: u64) -> u64 {
    t = shuffle_cells(t, &TWEAK_PERM);
    for &c in &LFSR_CELLS {
        let v = lfsr(get_cell(t, c));
        set_cell(&mut t, c, v);
    }
    t
}

#[cfg_attr(not(test), allow(dead_code))] // exercised by the schedule-inversion test
fn tweak_backward(mut t: u64) -> u64 {
    for &c in &LFSR_CELLS {
        let v = lfsr_inv(get_cell(t, c));
        set_cell(&mut t, c, v);
    }
    let inv = inv_perm(&TWEAK_PERM);
    shuffle_cells(t, &inv)
}

/// A QARMA-64-structured tweakable block cipher instance.
///
/// Constructed from a 128-bit key split into a whitening key `w0` and a
/// core key `k0` (with derived `w1`, `k1` per the QARMA key specialisation).
#[derive(Debug, Clone)]
pub struct Qarma64 {
    w0: u64,
    w1: u64,
    k0: u64,
    k1: u64,
    rounds: usize,
    inv_sbox: [u8; 16],
    inv_cell_perm: [usize; 16],
}

impl Qarma64 {
    /// Creates a cipher from a 128-bit key with the default round count.
    pub fn new(key: u128) -> Self {
        Self::with_rounds(key, DEFAULT_ROUNDS)
    }

    /// Creates a cipher with an explicit round count (1..=8).
    ///
    /// # Panics
    /// Panics when `rounds` is 0 or exceeds the round-constant table.
    pub fn with_rounds(key: u128, rounds: usize) -> Self {
        assert!(rounds >= 1 && rounds <= ROUND_CONSTS.len(), "1..=8 rounds");
        let w0 = (key >> 64) as u64;
        let k0 = key as u64;
        // QARMA key specialisation: w1 = (w0 >>> 1) ^ (w0 >> 63),
        // k1 = k0 for the non-reflector rounds.
        let w1 = w0.rotate_right(1) ^ (w0 >> 63);
        let k1 = k0;
        let mut inv_sbox = [0u8; 16];
        for (i, &s) in SBOX.iter().enumerate() {
            inv_sbox[s as usize] = i as u8;
        }
        Qarma64 {
            w0,
            w1,
            k0,
            k1,
            rounds,
            inv_sbox,
            inv_cell_perm: inv_perm(&CELL_PERM),
        }
    }

    fn forward_round(&self, mut s: u64, tweak: u64, rc: u64, full: bool) -> u64 {
        s ^= self.k0 ^ tweak ^ rc;
        if full {
            s = shuffle_cells(s, &CELL_PERM);
            s = mix_columns(s);
        }
        sub_cells(s, &SBOX)
    }

    fn backward_round(&self, mut s: u64, tweak: u64, rc: u64, full: bool) -> u64 {
        s = sub_cells(s, &self.inv_sbox);
        if full {
            s = mix_columns(s); // involutory
            s = shuffle_cells(s, &self.inv_cell_perm);
        }
        s ^ self.k0 ^ tweak ^ rc
    }

    /// The central reflector: a keyed involution.
    fn reflector(&self, mut s: u64) -> u64 {
        s = shuffle_cells(s, &CELL_PERM);
        s = mix_columns(s);
        s ^= self.k1;
        s = mix_columns(s);
        s = shuffle_cells(s, &self.inv_cell_perm);
        s
    }

    /// Encrypts `block` under `tweak`.
    pub fn encrypt(&self, block: u64, tweak: u64) -> u64 {
        let mut s = block ^ self.w0;
        let mut t = tweak;
        let mut tweaks = [0u64; 8];
        for r in 0..self.rounds {
            s = self.forward_round(s, t, ROUND_CONSTS[r], r != 0);
            tweaks[r] = t;
            t = tweak_forward(t);
        }
        s = self.reflector(s);
        for r in (0..self.rounds).rev() {
            s = self.backward_round(s, tweaks[r], ROUND_CONSTS[r], r != 0);
        }
        s ^ self.w1
    }

    /// Decrypts `block` under `tweak` (exact inverse of
    /// [`Qarma64::encrypt`]).
    pub fn decrypt(&self, block: u64, tweak: u64) -> u64 {
        let mut s = block ^ self.w1;
        let mut t = tweak;
        let mut tweaks = [0u64; 8];
        for r in 0..self.rounds {
            tweaks[r] = t;
            t = tweak_forward(t);
        }
        // Undo the backward half (it ran r = rounds-1 .. 0), so redo its
        // inverse in the opposite order.
        for r in 0..self.rounds {
            s = self.forward_round(s, tweaks[r], ROUND_CONSTS[r], r != 0);
        }
        s = self.reflector(s); // involution
        for r in (0..self.rounds).rev() {
            s = self.backward_round(s, tweaks[r], ROUND_CONSTS[r], r != 0);
        }
        s ^ self.w0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> Qarma64 {
        Qarma64::new(0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210)
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 16];
        for &v in &SBOX {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn cell_roundtrip() {
        let mut x = 0u64;
        set_cell(&mut x, 0, 0xA);
        set_cell(&mut x, 15, 0x5);
        assert_eq!(get_cell(x, 0), 0xA);
        assert_eq!(get_cell(x, 15), 0x5);
        assert_eq!(x, 0xA000_0000_0000_0005);
    }

    #[test]
    fn mix_columns_is_involutory() {
        for x in [0u64, 1, 0xDEAD_BEEF_CAFE_F00D, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(mix_columns(mix_columns(x)), x, "x={x:#x}");
        }
    }

    #[test]
    fn lfsr_inverts() {
        for v in 0u8..16 {
            assert_eq!(lfsr_inv(lfsr(v)), v);
            assert_eq!(lfsr(lfsr_inv(v)), v);
        }
    }

    #[test]
    fn tweak_schedule_inverts() {
        for t in [0u64, 0x1111_2222_3333_4444, u64::MAX] {
            assert_eq!(tweak_backward(tweak_forward(t)), t);
        }
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let c = cipher();
        for (p, t) in [
            (0u64, 0u64),
            (0xFFFF_0000_1234_5678, 42),
            (u64::MAX, u64::MAX),
            (0x0000_7FFF_DEAD_0010, 0x9E37_79B9_7F4A_7C15),
        ] {
            let e = c.encrypt(p, t);
            assert_eq!(c.decrypt(e, t), p, "p={p:#x} t={t:#x}");
        }
    }

    #[test]
    fn different_tweaks_differ() {
        let c = cipher();
        let p = 0x0000_7FFF_0000_1000;
        assert_ne!(c.encrypt(p, 1), c.encrypt(p, 2));
    }

    #[test]
    fn different_keys_differ() {
        let a = Qarma64::new(1);
        let b = Qarma64::new(2);
        assert_ne!(a.encrypt(0x1234, 0), b.encrypt(0x1234, 0));
    }

    /// Avalanche: flipping one plaintext/tweak/key bit should flip ~half
    /// the output bits. We accept a generous 20..=44 window per flip.
    #[test]
    fn avalanche() {
        let c = cipher();
        let p = 0x0000_7FFF_4242_4242u64;
        let t = 0xABCD_EF01_2345_6789u64;
        let base = c.encrypt(p, t);
        let mut worst = 64u32;
        for bit in 0..64 {
            let d = (c.encrypt(p ^ (1 << bit), t) ^ base).count_ones();
            worst = worst.min(d);
            assert!((20..=44).contains(&d), "plaintext bit {bit}: {d} bits flipped");
            let d = (c.encrypt(p, t ^ (1 << bit)) ^ base).count_ones();
            assert!((20..=44).contains(&d), "tweak bit {bit}: {d} bits flipped");
        }
        assert!(worst >= 20);
    }
}
