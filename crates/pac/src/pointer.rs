//! Virtual-address layout: where the PAC lives inside a pointer.
//!
//! With a 48-bit user virtual address space, bits 48..63 of a canonical
//! user pointer are zero. PA packs the PAC into those unused bits. When
//! Top Byte Ignore (TBI) is enabled — as RSTI requires for the
//! pointer-to-pointer Compact Equivalent tag (§4.7.7) — the top byte
//! (bits 56..63) is ignored by address translation and stays available for
//! software tags, leaving bits 48..55 for the PAC.
//!
//! Authentication failure does not fault immediately on ARM: the `aut`
//! instruction *poisons* the pointer by flipping its top two PAC bits, so
//! the first dereference of the non-canonical pointer traps. We model the
//! same two-step behaviour (the paper: "the top two bits of the pointer are
//! flipped, causing the pointer to be unusable").

/// Address-space geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaConfig {
    /// Number of translated VA bits (canonical user addresses fit below
    /// `1 << va_bits`).
    pub va_bits: u32,
    /// Whether Top Byte Ignore is enabled (frees bits 56..63 for tags, at
    /// the cost of PAC width).
    pub tbi: bool,
}

impl VaConfig {
    /// The configuration the paper's prototype runs with: 48-bit VA and
    /// TBI enabled (needed by the pointer-to-pointer mechanism).
    pub const fn paper_default() -> Self {
        VaConfig { va_bits: 48, tbi: true }
    }

    /// 48-bit VA without TBI (wider PAC, no tag byte).
    pub const fn no_tbi() -> Self {
        VaConfig { va_bits: 48, tbi: false }
    }

    /// Lowest bit of the PAC field.
    pub const fn pac_shift(&self) -> u32 {
        self.va_bits
    }

    /// Number of PAC bits.
    pub const fn pac_bits(&self) -> u32 {
        let top = if self.tbi { 56 } else { 64 };
        top - self.va_bits
    }

    /// Bit mask covering the PAC field.
    pub const fn pac_mask(&self) -> u64 {
        ((1u64 << self.pac_bits()) - 1) << self.pac_shift()
    }

    /// Bit mask covering the translated address bits.
    pub const fn addr_mask(&self) -> u64 {
        (1u64 << self.va_bits) - 1
    }

    /// Bit mask covering the TBI tag byte (zero when TBI is off).
    pub const fn tbi_mask(&self) -> u64 {
        if self.tbi {
            0xFF00_0000_0000_0000
        } else {
            0
        }
    }

    /// The canonical (PAC-free, tag-free) form of a pointer.
    pub const fn canonical(&self, ptr: u64) -> u64 {
        ptr & self.addr_mask()
    }

    /// Whether `ptr` is a canonical user address (no PAC, no poison bits).
    /// The TBI byte is ignored, as the hardware would.
    pub const fn is_canonical(&self, ptr: u64) -> bool {
        ptr & self.pac_mask() == 0 && (self.tbi || ptr & 0xFF00_0000_0000_0000 == 0)
    }

    /// Inserts `pac` (already truncated) into the PAC field of `ptr`.
    pub const fn with_pac(&self, ptr: u64, pac: u64) -> u64 {
        (ptr & !self.pac_mask()) | ((pac << self.pac_shift()) & self.pac_mask())
    }

    /// Extracts the PAC field of `ptr`.
    pub const fn pac_of(&self, ptr: u64) -> u64 {
        (ptr & self.pac_mask()) >> self.pac_shift()
    }

    /// Truncates a 64-bit cipher output into the PAC field width.
    pub const fn truncate_pac(&self, full: u64) -> u64 {
        full & ((1u64 << self.pac_bits()) - 1)
    }

    /// Poisons a pointer the way a failed `aut` does: flips the top two
    /// bits of the PAC field, guaranteeing a non-canonical address.
    pub const fn poison(&self, ptr: u64) -> u64 {
        let top = self.pac_shift() + self.pac_bits() - 1;
        ptr ^ (0b11u64 << (top - 1))
    }

    /// Reads the TBI tag byte.
    pub const fn tbi_tag(&self, ptr: u64) -> u8 {
        ((ptr & self.tbi_mask()) >> 56) as u8
    }

    /// Writes the TBI tag byte (no-op mask when TBI is off).
    pub const fn with_tbi_tag(&self, ptr: u64, tag: u8) -> u64 {
        (ptr & !self.tbi_mask()) | (((tag as u64) << 56) & self.tbi_mask())
    }

    /// Clears the TBI tag byte.
    pub const fn clear_tbi(&self, ptr: u64) -> u64 {
        ptr & !self.tbi_mask()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: VaConfig = VaConfig::paper_default();

    #[test]
    fn field_geometry_with_tbi() {
        assert_eq!(CFG.pac_bits(), 8);
        assert_eq!(CFG.pac_shift(), 48);
        assert_eq!(CFG.pac_mask(), 0x00FF_0000_0000_0000);
        assert_eq!(CFG.tbi_mask(), 0xFF00_0000_0000_0000);
    }

    #[test]
    fn field_geometry_without_tbi() {
        let cfg = VaConfig::no_tbi();
        assert_eq!(cfg.pac_bits(), 16);
        assert_eq!(cfg.pac_mask(), 0xFFFF_0000_0000_0000);
        assert_eq!(cfg.tbi_mask(), 0);
    }

    #[test]
    fn pac_insert_extract_roundtrip() {
        let p = 0x0000_7FFF_1234_5678u64;
        let s = CFG.with_pac(p, 0xAB);
        assert_eq!(CFG.pac_of(s), 0xAB);
        assert_eq!(CFG.canonical(s), p);
        assert!(!CFG.is_canonical(s));
        assert!(CFG.is_canonical(p));
    }

    #[test]
    fn poison_makes_noncanonical_and_differs() {
        let p = 0x0000_7FFF_0000_0010u64;
        let signed = CFG.with_pac(p, 0x00); // PAC happens to be zero
        let bad = CFG.poison(signed);
        assert_ne!(bad, signed);
        assert!(!CFG.is_canonical(bad));
        // Poison flips exactly two bits at the top of the PAC field.
        assert_eq!((bad ^ signed).count_ones(), 2);
    }

    #[test]
    fn tbi_tagging() {
        let p = 0x0000_7FFF_0000_0010u64;
        let t = CFG.with_tbi_tag(p, 0x5A);
        assert_eq!(CFG.tbi_tag(t), 0x5A);
        assert_eq!(CFG.clear_tbi(t), p);
        // Tagging does not disturb the address or PAC fields.
        assert_eq!(CFG.canonical(t), p);
        // With TBI on, a tagged pointer still counts as canonical.
        assert!(CFG.is_canonical(t));
    }
}
