//! # rsti-pac — a software model of ARMv8.3 Pointer Authentication
//!
//! The RSTI paper enforces Scope-Type Integrity with the `pac*`/`aut*`
//! instructions of ARMv8.3-A (paper §2.4, Figure 3). Reproducing that off
//! PAC-capable hardware requires a functional model of the PA data path,
//! which this crate provides:
//!
//! * [`qarma::Qarma64`] — a QARMA-64-structured tweakable block cipher,
//!   the keyed primitive behind PAC computation;
//! * [`keys::PacKeys`] — the five banked key registers, generated and held
//!   by the trusted kernel (the attacker can never read them);
//! * [`pointer::VaConfig`] — the 48-bit VA layout, the PAC bit-field, Top
//!   Byte Ignore, and the poisoned-pointer encoding of `aut` failure;
//! * [`unit::PacUnit`] — the sign/auth/strip operations with performance
//!   counters.
//!
//! # Example
//!
//! ```
//! use rsti_pac::{PacUnit, KeyId};
//!
//! let mut pa = PacUnit::for_tests();
//! let ptr = 0x0000_7F00_0000_1000u64;
//! let signed = pa.sign(KeyId::Da, ptr, /*modifier=*/0xC0FFEE);
//! assert_eq!(pa.auth(KeyId::Da, signed, 0xC0FFEE).unwrap(), ptr);
//! assert!(pa.auth(KeyId::Da, signed, 0xBAD).is_err());
//! ```

#![warn(missing_docs)]

pub mod keys;
pub mod pointer;
pub mod qarma;
pub mod unit;

pub use keys::{KeyId, PacKeys};
pub use pointer::VaConfig;
pub use qarma::Qarma64;
pub use unit::{AuthFailure, PacUnit, PacUnitStats};
