//! Check-site enumeration: the stable site → function/source mapping the
//! attribution profiler keys on.
//!
//! A *check site* is one PAC-family instruction in the final (instrumented
//! and optimized) module — a `pac`/`aut`/`xpac` or a `pp_*` runtime call.
//! [`check_sites`] enumerates them in deterministic `(function, block,
//! instruction)` order over the module, so a site's index in the returned
//! table is a stable identity both VM engines agree on: the interpreter
//! resolves it by position lookup, the closure-threaded compiler bakes the
//! same index into each compiled op (it walks functions/blocks/insts in
//! exactly this order). Because the table is computed *after*
//! instrument/optimize, it survives every pass by construction — elided or
//! hoisted sites simply aren't in it, and the instrumentation pass already
//! propagates the source `DebugLoc` of the protected load/store onto the
//! PAC instruction it inserts, which is where [`CheckSite::line`] comes
//! from.
//!
//! The same scan-order rule is the **id stability contract** for the
//! interprocedural level: `--opt ipo` inlining splices callee bodies into
//! callers *before* this table is built, so an inlined check's id is the
//! caller-relative scan position of its spliced copy — deterministic for a
//! given (source, mechanism, level) triple — while its `line` keeps the
//! callee's source provenance (`remap_inst` copies `DebugLoc`s verbatim).
//! Ids are **not** stable across optimization levels (elision changes the
//! set); they are stable across engines, runs, and processes at a fixed
//! level, which is what `--attr` attribution and incident lineage key on.
//! Property-tested in `crate::ipo` (`check_site_ids_stable_under_ipo_inlining`)
//! and, for cross-engine folded-stack bit-identity on the real mix, in the
//! bench crate's `attr_parity` suite.

use rsti_ir::{Inst, Module, PacSite};

/// One PAC-family instruction in the final module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckSite {
    /// Dense site index: position in [`check_sites`] order.
    pub id: u32,
    /// Index of the containing function in `module.funcs`.
    pub func: u32,
    /// Containing function's symbol name.
    pub func_name: String,
    /// Basic-block index within the function.
    pub block: u32,
    /// Instruction index within the block.
    pub inst: u32,
    /// Opcode kind: `pac_sign`, `pac_auth`, `pac_strip`, `pp_add`,
    /// `pp_sign`, `pp_add_tbi`, or `pp_auth`.
    pub kind: &'static str,
    /// Instrumentation-site class for sign/auth ops (`on_store`,
    /// `on_load`, ...); empty for strips and `pp_*` calls.
    pub site: &'static str,
    /// Source line of the protected access (0 when debug info is absent).
    pub line: u32,
}

impl CheckSite {
    /// `func_name:bbB:I` — the stable human label used in reports.
    pub fn label(&self) -> String {
        format!("{}:bb{}:{}", self.func_name, self.block, self.inst)
    }
}

/// Stable serialized name of a [`PacSite`] class (matches the audit-record
/// vocabulary).
pub fn pac_site_name(site: PacSite) -> &'static str {
    match site {
        PacSite::OnStore => "on_store",
        PacSite::OnLoad => "on_load",
        PacSite::CastResign => "cast_resign",
        PacSite::ArgResign => "arg_resign",
        PacSite::ExternalStrip => "external_strip",
        PacSite::NewPointer => "new_pointer",
    }
}

/// Classifies one instruction as a check site, returning `(kind, site)`.
pub fn check_kind(inst: &Inst) -> Option<(&'static str, &'static str)> {
    match inst {
        Inst::PacSign { site, .. } => Some(("pac_sign", pac_site_name(*site))),
        Inst::PacAuth { site, .. } => Some(("pac_auth", pac_site_name(*site))),
        Inst::PacStrip { .. } => Some(("pac_strip", "")),
        Inst::PpAdd { .. } => Some(("pp_add", "")),
        Inst::PpSign { .. } => Some(("pp_sign", "")),
        Inst::PpAddTbi { .. } => Some(("pp_add_tbi", "")),
        Inst::PpAuth { .. } => Some(("pp_auth", "")),
        _ => None,
    }
}

/// Enumerates every check site in the module, in deterministic
/// `(function, block, instruction)` order.
pub fn check_sites(module: &Module) -> Vec<CheckSite> {
    let mut sites = Vec::new();
    for (fi, func) in module.funcs.iter().enumerate() {
        for (bi, block) in func.blocks.iter().enumerate() {
            for (ii, node) in block.insts.iter().enumerate() {
                if let Some((kind, site)) = check_kind(&node.inst) {
                    sites.push(CheckSite {
                        id: sites.len() as u32,
                        func: fi as u32,
                        func_name: func.name.clone(),
                        block: bi as u32,
                        inst: ii as u32,
                        kind,
                        site,
                        line: node.loc.as_ref().map_or(0, |l| l.line),
                    });
                }
            }
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{instrument, Mechanism};
    use rsti_frontend::compile;

    fn instrumented(src: &str, mech: Mechanism) -> Module {
        let module = compile(src, "sites_test").expect("compile");
        instrument(&module, mech).module
    }

    const SRC: &str = r#"
        int g;
        int use_ptr(int* p) { return *p; }
        int main() {
            int x = 7;
            int* p = &x;
            return use_ptr(p) + g;
        }
    "#;

    #[test]
    fn sites_enumerate_in_func_block_inst_order() {
        let m = instrumented(SRC, Mechanism::Stwc);
        let sites = check_sites(&m);
        assert!(!sites.is_empty(), "instrumented module has no check sites");
        // Dense ids, sorted by (func, block, inst).
        for (i, s) in sites.iter().enumerate() {
            assert_eq!(s.id as usize, i);
        }
        let keys: Vec<(u32, u32, u32)> = sites.iter().map(|s| (s.func, s.block, s.inst)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "sites out of scan order");
        // Every site points at a real PAC-family instruction.
        for s in &sites {
            let node = &m.funcs[s.func as usize].blocks[s.block as usize].insts[s.inst as usize];
            assert!(check_kind(&node.inst).is_some(), "site {} is not a check", s.label());
            assert_eq!(m.funcs[s.func as usize].name, s.func_name);
        }
    }

    #[test]
    fn sites_carry_source_lines_from_instrumentation() {
        let m = instrumented(SRC, Mechanism::Stwc);
        let sites = check_sites(&m);
        assert!(
            sites.iter().any(|s| s.line > 0),
            "no site inherited a source line: {:?}",
            sites.iter().map(CheckSite::label).collect::<Vec<_>>()
        );
        assert!(sites.iter().any(|s| s.kind == "pac_auth" || s.kind == "pac_sign"));
    }

    #[test]
    fn site_table_is_deterministic() {
        let a = check_sites(&instrumented(SRC, Mechanism::Stl));
        let b = check_sites(&instrumented(SRC, Mechanism::Stl));
        assert_eq!(a, b);
    }
}
