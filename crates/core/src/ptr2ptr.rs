//! Pointer-to-pointer handling (§4.7.7, Figure 7).
//!
//! When a double pointer is cast and passed as a function argument, the
//! original type is lost to the callee — `foo2(void** pp2)` cannot know the
//! argument was really a `struct node**`. RSTI preserves the original type
//! by assigning it a **Compact Equivalent** (CE): an 8-bit tag placed in
//! the pointer's Top-Byte-Ignore byte that maps, through a read-only
//! metadata store, to the **Full Equivalent** (FE) — the original
//! RSTI-type's modifier.
//!
//! This module finds the sites that need the mechanism (a *rare* case — the
//! paper counts 25 out of 7,489 double-pointer sites in SPEC 2006, §6.2.2)
//! and assigns CEs. The instrumentation pass then wraps those arguments in
//! `pp_add` / `pp_sign` / `pp_add_tbi`, and the loads of the receiving
//! parameters in `pp_auth`.

use crate::sti::StiAnalysis;
use crate::storage::{operand_type, root_of_value, DefMap};
use rsti_ir::{FuncId, Inst, Module, Type, TypeId, VarId};
use std::collections::HashMap;

/// The double-pointer census for a module (reproduces §6.2.2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PpCensus {
    /// All sites where a pointer-to-pointer value is passed as an argument
    /// or loaded from memory.
    pub total_sites: usize,
    /// The subset where the original type is lost (cast + passed as an
    /// argument) and the CE/FE mechanism is required.
    pub lost_type_sites: usize,
}

/// A site needing CE/FE instrumentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PpSite {
    /// Function containing the call.
    pub func: FuncId,
    /// Argument index within the call.
    pub arg_index: usize,
    /// The original (pre-cast) double-pointer type — the Full Equivalent.
    pub original_ty: TypeId,
    /// The assigned Compact Equivalent tag (1..=255; 0 means untagged).
    pub ce: u8,
    /// Modifier of the original type's RSTI class (the FE payload).
    pub fe_modifier: u64,
    /// The callee parameter receiving the tagged pointer.
    pub callee_param: Option<VarId>,
}

/// The CE/FE assignment for a module under one mechanism's analysis.
#[derive(Debug, Clone, Default)]
pub struct PpPlan {
    /// Sites needing instrumentation.
    pub sites: Vec<PpSite>,
    /// CE tag → FE modifier (the table `pp_add` populates).
    pub ce_table: HashMap<u8, u64>,
    /// Callee parameters that receive tagged double pointers; their loads
    /// must use `pp_auth`.
    pub tagged_params: Vec<VarId>,
    /// The census counts.
    pub census: PpCensus,
}

fn ptr_depth(m: &Module, ty: TypeId) -> u32 {
    m.types.ptr_depth(ty)
}

/// Scans the module for double-pointer sites and assigns CEs for the
/// lost-type subset.
///
/// A site *loses* the original type when the pre-cast static type of the
/// argument is a depth ≥ 2 pointer and the callee's parameter type differs
/// (e.g. `struct node**` passed as `void**` / `void*`). Only those sites
/// need the CE/FE indirection; everything else is statically resolvable
/// from the IR (§4.7.7 "Usage").
pub fn plan_pp(m: &Module, analysis: &StiAnalysis) -> PpPlan {
    let mut plan = PpPlan::default();
    let mut next_ce: u8 = 1;
    let mut ce_of_ty: HashMap<TypeId, u8> = HashMap::new();

    for (fid, f) in m.funcs() {
        if f.is_external {
            continue;
        }
        let defs = DefMap::new(f);
        for node in f.insts() {
            match &node.inst {
                Inst::Load { ty, .. } if ptr_depth(m, *ty) >= 2 => {
                    plan.census.total_sites += 1;
                }
                Inst::Call { callee, args, .. } => {
                    let callee_f = m.func(*callee);
                    for (i, a) in args.iter().enumerate() {
                        let aty = operand_type(m, f, a);
                        let root = root_of_value(m, f, &defs, a);
                        let orig_ty = root.root_ty.unwrap_or(aty);
                        if ptr_depth(m, aty).max(ptr_depth(m, orig_ty)) < 2 {
                            continue;
                        }
                        plan.census.total_sites += 1;
                        // Lost type: cast on the path AND the static types
                        // disagree AND the original was a double pointer.
                        let lost =
                            root.casted && orig_ty != aty && ptr_depth(m, orig_ty) >= 2;
                        if !lost || callee_f.is_external {
                            continue;
                        }
                        plan.census.lost_type_sites += 1;
                        let ce = *ce_of_ty.entry(orig_ty).or_insert_with(|| {
                            let ce = next_ce;
                            // 8 bits: at most 255 distinct lost types
                            // (§4.7.7 "only 256 types can be used").
                            next_ce = next_ce.saturating_add(1);
                            ce
                        });
                        // FE = the modifier of the anonymous storage class
                        // of the original pointee type (what the pointer
                        // will be authenticated against on use).
                        let fe_modifier = fe_modifier_for(m, analysis, orig_ty);
                        plan.ce_table.insert(ce, fe_modifier);
                        let callee_param =
                            callee_f.params.get(i).and_then(|(_, v)| *v);
                        if let Some(v) = callee_param {
                            if !plan.tagged_params.contains(&v) {
                                plan.tagged_params.push(v);
                            }
                        }
                        plan.sites.push(PpSite {
                            func: fid,
                            arg_index: i,
                            original_ty: orig_ty,
                            ce,
                            fe_modifier,
                            callee_param,
                        });
                    }
                }
                _ => {}
            }
        }
    }
    plan
}

/// The Full-Equivalent modifier for an original double-pointer type: a
/// stable hash of the type spelling, shared between the signing caller and
/// the authenticating callee. (The paper stores the internal LLVM type id;
/// ours is the type display hash, equally opaque to an attacker who cannot
/// read the metadata store.)
pub fn fe_modifier_for(m: &Module, analysis: &StiAnalysis, orig_ty: TypeId) -> u64 {
    let mut h: u64 = 0x9E3779B97F4A7C15;
    for b in m.types.display(orig_ty).bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^= analysis.mechanism as u64;
    h
}

/// Whether a type is a "universal" double pointer (`void**`, `char**`) —
/// a parameter of this type that receives tagged arguments authenticates
/// through `pp_auth`.
pub fn is_universal_double_ptr(m: &Module, ty: TypeId) -> bool {
    match m.types.get(ty) {
        Type::Ptr(p) => match m.types.get(*p) {
            Type::Ptr(q) => matches!(m.types.get(*q), Type::Void | Type::I8),
            Type::Void => false,
            _ => false,
        },
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sti::{analyze, Mechanism};
    use rsti_frontend::compile;

    /// Figure 7 of the paper: `foo1` keeps the type, `foo2` loses it.
    const FIG7: &str = r#"
        struct node { int key; struct node* next; };
        void foo1(struct node** pp1) { }
        void foo2(void** pp2) { }
        int main() {
            struct node* p = (struct node*) malloc(sizeof(struct node));
            foo1(&p);
            foo2((void**) &p);
            return 0;
        }
    "#;

    #[test]
    fn fig7_only_the_lost_type_site_gets_a_ce() {
        let m = compile(FIG7, "fig7").unwrap();
        let a = analyze(&m, Mechanism::Stwc);
        let plan = plan_pp(&m, &a);
        assert_eq!(plan.census.lost_type_sites, 1, "{plan:?}");
        assert!(plan.census.total_sites >= 2, "both calls pass double pointers");
        let site = &plan.sites[0];
        assert_eq!(m.types.display(site.original_ty), "struct node**");
        assert_eq!(site.ce, 1);
        assert_eq!(plan.ce_table[&1], site.fe_modifier);
        // The callee's pp2 parameter must authenticate via pp_auth.
        assert_eq!(plan.tagged_params.len(), 1);
    }

    #[test]
    fn same_original_type_shares_a_ce() {
        let src = r#"
            struct node { int key; };
            void sink(void** pp) { }
            int main() {
                struct node* a = null;
                struct node* b = null;
                sink((void**) &a);
                sink((void**) &b);
                return 0;
            }
        "#;
        let m = compile(src, "t").unwrap();
        let a = analyze(&m, Mechanism::Stwc);
        let plan = plan_pp(&m, &a);
        assert_eq!(plan.census.lost_type_sites, 2);
        assert_eq!(plan.sites[0].ce, plan.sites[1].ce, "one CE per original type");
        assert_eq!(plan.ce_table.len(), 1);
    }

    #[test]
    fn plain_double_pointer_passing_needs_no_ce() {
        let src = r#"
            void ok(int** pp) { **pp = 1; }
            int main() {
                int x = 0;
                int* p = &x;
                ok(&p);
                return x;
            }
        "#;
        let m = compile(src, "t").unwrap();
        let a = analyze(&m, Mechanism::Stwc);
        let plan = plan_pp(&m, &a);
        assert_eq!(plan.census.lost_type_sites, 0);
        assert!(plan.census.total_sites >= 1);
    }

    #[test]
    fn universal_double_ptr_detection() {
        let mut m = rsti_ir::Module::new("t");
        let vp = m.types.void_ptr();
        let vpp = m.types.ptr(vp);
        assert!(is_universal_double_ptr(&m, vpp));
        let i32t = m.types.i32();
        let ip = m.types.ptr(i32t);
        let ipp = m.types.ptr(ip);
        assert!(!is_universal_double_ptr(&m, ipp));
        assert!(!is_universal_double_ptr(&m, vp));
    }
}
