//! Interprocedural check optimization — the `--opt ipo` level.
//!
//! The paper's pipeline runs in the LTO phase over the combined module
//! (§5), so its optimizer sees *every* call boundary. The intraprocedural
//! levels ([`crate::optimize::OptLevel::Cfg`] and below) must instead
//! assume the worst at each `Call`: any memory could have changed, any
//! boundary re-sign might face a foreign signing domain. This module
//! supplies the three whole-program facts that remove those assumptions:
//!
//! 1. **Per-function effect summaries** ([`FuncSummary`]), computed
//!    bottom-up over the SCC condensation of [`rsti_ir::CallGraph`]: which
//!    named globals a function (transitively) writes, whether it writes
//!    through any pointer it did not allocate itself (`writes_unknown`),
//!    and whether it frees heap memory (`frees` — under the MAC-table
//!    backend a `free` is a metadata change, so it invalidates more than a
//!    data write would). Stores through a function's *own* allocas are
//!    invisible to callers: a callee frame is fresh memory no caller fact
//!    can alias. The dataflow elision then kills only what the callee can
//!    actually clobber ([`IpoAnalysis`] feeds `kill_of`).
//! 2. **Internal-boundary resign folding**
//!    ([`fold_boundary_resigns`]): instrumentation models the
//!    callee-boundary re-signing cost as an adjacent `PacSign`→`PacAuth`
//!    round-trip under one `(key, modifier)` — an exact identity on the
//!    in-register value, applied sign-first, so it can never trap. At the
//!    whole-program level a direct call to a *defined* callee is a
//!    boundary between two scopes of the same signing domain, which is
//!    exactly the boundary the paper's LTO build erases; the pair folds
//!    away. External and indirect boundaries keep their re-signs.
//! 3. **Size-budgeted post-instrumentation inlining**
//!    ([`inline_small_functions`]): small non-recursive callees splice
//!    into their callers, removing the call boundary entirely; the spilled
//!    argument chains this exposes are then cleaned up by the sign→store
//!    forwarding in the second dataflow pass (`elide_auths_dataflow_ipo`).
//!
//! Everything here is gated on behaviour being bit-identical to the lower
//! levels — the fuzz oracle runs the full mechanism × level × engine
//! matrix — which drives the conservatisms documented on each pass.

use rsti_ir::{CallGraph, Inst, Module, Operand, PacSite, Terminator, ValueId};
use std::collections::{BTreeSet, HashMap};

/// Instruction budget for the post-instrumentation inliner, in
/// *instrumented* IR instructions. Twice the pre-instrumentation leaf
/// budget (`inline_leaf_functions(m, 96)` in the pipeline drivers), since
/// instrumentation roughly doubles a pointer-heavy body.
pub const IPO_INLINE_BUDGET: usize = 192;

/// Per-caller growth cap for the inliner: once a caller's body exceeds
/// this many instructions, no further sites in it are inlined.
const CALLER_GROWTH_CAP: usize = 4096;

/// What one function (transitively) does to memory visible from a caller.
/// The lattice is three independent monotone facts; the summary of an SCC
/// is the union over its members, which is the fixpoint in one pass
/// because effects only accumulate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncSummary {
    /// Named globals written, directly or via callees.
    pub writes_globals: BTreeSet<u32>,
    /// Whether the function may write through a pointer whose target is
    /// statically unknown (a loaded/received pointer, or anything an
    /// indirect call or external callee might do).
    pub writes_unknown: bool,
    /// Whether the function may free heap memory (a MAC-table effect:
    /// entry removal invalidates facts about any heap location).
    pub frees: bool,
}

impl FuncSummary {
    fn union(&mut self, other: &FuncSummary) {
        self.writes_globals.extend(other.writes_globals.iter().copied());
        self.writes_unknown |= other.writes_unknown;
        self.frees |= other.frees;
    }

    /// Whether a call to this function kills strictly less than the
    /// intraprocedural `AllButNonEscaped` assumption.
    fn is_refinement(&self) -> bool {
        !self.frees && !self.writes_unknown
    }
}

/// The interprocedural context the `--opt ipo` pipeline threads through
/// the dataflow stages.
pub struct IpoAnalysis {
    /// One summary per module function, indexed by `FuncId`.
    pub summaries: Vec<FuncSummary>,
    /// Static direct-call sites whose kill the summaries refined below
    /// `AllButNonEscaped` (the `summary_kill_refinements` counter).
    pub refined_call_sites: usize,
}

impl IpoAnalysis {
    /// Computes summaries bottom-up over the call-graph condensation and
    /// counts the call sites they refine.
    pub fn build(m: &Module) -> IpoAnalysis {
        let cg = CallGraph::new(m);
        let summaries = summarize(m, &cg);
        let refined_call_sites = m
            .funcs
            .iter()
            .filter(|f| !f.is_external)
            .flat_map(|f| f.insts())
            .filter(|n| {
                matches!(&n.inst, Inst::Call { callee, .. }
                    if summaries[callee.0 as usize].is_refinement())
            })
            .count();
        IpoAnalysis { summaries, refined_call_sites }
    }
}

/// Local effects of one body plus the union of its sub-component callees'
/// summaries. Intra-SCC callees are skipped here; the per-SCC union in
/// [`summarize`] covers them.
fn local_effects(
    f: &rsti_ir::Function,
    scc_of: &[u32],
    my_scc: u32,
    summaries: &[FuncSummary],
) -> FuncSummary {
    let mut s = FuncSummary::default();
    if f.is_external {
        // No body to inspect. (The reproduction's externals only log an
        // event, but the summary models the general contract.)
        s.writes_unknown = true;
        return s;
    }
    // A function's own allocas: stores through them are frame-local and
    // invisible to any caller fact.
    let own_allocas: std::collections::HashSet<ValueId> = f
        .insts()
        .filter_map(|n| match &n.inst {
            Inst::Alloca { result, .. } => Some(*result),
            _ => None,
        })
        .collect();
    for node in f.insts() {
        match &node.inst {
            Inst::Store { ptr, .. } => match ptr {
                Operand::GlobalAddr(g, _) => {
                    s.writes_globals.insert(g.0);
                }
                Operand::Value(v) if own_allocas.contains(v) => {}
                _ => s.writes_unknown = true,
            },
            Inst::Free { .. } => s.frees = true,
            Inst::CallIndirect { .. } => {
                // Unknown target: could write or free anything.
                s.writes_unknown = true;
                s.frees = true;
            }
            Inst::Call { callee, .. } => {
                let ci = callee.0 as usize;
                if scc_of[ci] != my_scc {
                    // Bottom-up order guarantees this is already final.
                    s.union(&summaries[ci]);
                }
            }
            _ => {}
        }
    }
    s
}

/// Bottom-up summary computation: [`CallGraph::sccs`] is emitted
/// callees-first, so by the time a component is summarized every
/// out-of-component callee summary is final; the component-wide union then
/// resolves intra-component (recursive) calls in one step.
fn summarize(m: &Module, cg: &CallGraph) -> Vec<FuncSummary> {
    let mut summaries = vec![FuncSummary::default(); m.funcs.len()];
    for scc_idx in cg.bottom_up() {
        let comp = &cg.sccs[scc_idx];
        let mut s = FuncSummary::default();
        for &fid in comp {
            let local = local_effects(
                &m.funcs[fid.0 as usize],
                &cg.scc_of,
                scc_idx as u32,
                &summaries,
            );
            s.union(&local);
        }
        for &fid in comp {
            summaries[fid.0 as usize] = s.clone();
        }
    }
    summaries
}

/// Folds boundary re-sign round-trips at known-internal boundaries.
///
/// Instrumentation emits every boundary re-sign as an *adjacent*
/// `PacSign`→`PacAuth` pair under the same `(key, modifier, loc)` whose
/// auth consumes exactly the sign's result: `auth(sign(x))` is `x`
/// bit-for-bit, and — the sign being applied first to the in-register
/// value — the auth can never trap, corrupted memory or not. The pair is
/// pure modeled cost. It is *kept* where the boundary partner is outside
/// the static module view (indirect calls, external callees: the re-sign
/// models crossing into an unknown signing context) and folded where
/// whole-program knowledge proves both sides internal:
///
/// * arguments of a direct call to a defined callee, and
/// * `Ret` re-signs of any defined function except the entry (`main`'s
///   return value leaves the instrumented world; every other return lands
///   at an in-module call site — including indirect ones, whose *callees*
///   are by construction in-module).
///
/// Cast-model round-trips (`PacSite::CastResign` with an unused auth
/// result) are left alone: they price the mechanism's cast discipline,
/// not a call boundary, and removing them would distort the mechanism
/// comparison. The use-count checks below skip them automatically.
///
/// Returns the number of pairs folded (each removes one dynamic sign and
/// one dynamic auth per execution).
pub fn fold_boundary_resigns(m: &mut Module) -> usize {
    let mut folded = 0;
    let externals: Vec<bool> = m.funcs.iter().map(|f| f.is_external).collect();
    for f in &mut m.funcs {
        if f.is_external || f.blocks.is_empty() {
            continue;
        }
        let is_entry = f.name == "main";
        // One fold per iteration, recounting uses each time: folds change
        // use counts, and bodies are small enough that simplicity wins.
        loop {
            let mut use_count: HashMap<ValueId, usize> = HashMap::new();
            for blk in &f.blocks {
                for node in &blk.insts {
                    for op in node.inst.operands() {
                        if let Operand::Value(v) = op {
                            *use_count.entry(*v).or_default() += 1;
                        }
                    }
                    if let Inst::PacSign { loc: Some(Operand::Value(v)), .. }
                    | Inst::PacAuth { loc: Some(Operand::Value(v)), .. } = &node.inst
                    {
                        *use_count.entry(*v).or_default() += 1;
                    }
                }
                match &blk.term {
                    Terminator::CondBr { cond: Operand::Value(v), .. }
                    | Terminator::Ret(Some(Operand::Value(v))) => {
                        *use_count.entry(*v).or_default() += 1;
                    }
                    _ => {}
                }
            }

            let mut action: Option<(usize, usize, Consumer)> = None;
            'scan: for (bi, blk) in f.blocks.iter().enumerate() {
                for (ii, node) in blk.insts.iter().enumerate() {
                    let Inst::PacSign {
                        result: s_res,
                        key: s_key,
                        modifier: s_mod,
                        loc: s_loc,
                        site: s_site,
                        ..
                    } = &node.inst
                    else {
                        continue;
                    };
                    if !matches!(s_site, PacSite::ArgResign | PacSite::CastResign) {
                        continue;
                    }
                    let Some(Inst::PacAuth {
                        result: a_res,
                        value: Operand::Value(a_val),
                        key: a_key,
                        modifier: a_mod,
                        loc: a_loc,
                        ..
                    }) = blk.insts.get(ii + 1).map(|n| &n.inst)
                    else {
                        continue;
                    };
                    if a_val != s_res
                        || a_key != s_key
                        || a_mod != s_mod
                        || a_loc != s_loc
                        || use_count.get(s_res).copied().unwrap_or(0) != 1
                    {
                        continue;
                    }
                    if let Some(c) =
                        find_internal_consumer(f, *a_res, &use_count, &externals, is_entry)
                    {
                        action = Some((bi, ii, c));
                        break 'scan;
                    }
                }
            }
            let Some((bi, ii, consumer)) = action else { break };
            let (s_val, a_res) = match (&f.blocks[bi].insts[ii].inst, &f.blocks[bi].insts[ii + 1].inst)
            {
                (Inst::PacSign { value, .. }, Inst::PacAuth { result, .. }) => {
                    (value.clone(), *result)
                }
                _ => unreachable!("action points at a sign/auth pair"),
            };
            match consumer {
                Consumer::CallArgs(cb, ci) => {
                    if let Inst::Call { args, .. } = &mut f.blocks[cb].insts[ci].inst {
                        for a in args {
                            if matches!(a, Operand::Value(v) if *v == a_res) {
                                *a = s_val.clone();
                            }
                        }
                    }
                }
                Consumer::Ret(rb) => {
                    f.blocks[rb].term = Terminator::Ret(Some(s_val.clone()));
                }
            }
            f.blocks[bi].insts.drain(ii..ii + 2);
            folded += 1;
        }
    }
    debug_assert!(
        rsti_ir::verify_module(m).is_ok(),
        "resign folding broke the module: {:?}",
        rsti_ir::verify_module(m).err()
    );
    folded
}

/// Where a foldable pair's authenticated value goes.
enum Consumer {
    /// All uses are arguments of the direct call at (block, index).
    CallArgs(usize, usize),
    /// The single use is the `Ret` operand of the block.
    Ret(usize),
}

/// Finds the unique internal consumer of `a_res`, if its every use is (a)
/// arguments of one direct call to a defined callee, or (b) the operand of
/// one `Ret` in a non-entry function. Returns `None` when uses are spread
/// across instructions, feed an external/indirect boundary, or include a
/// `loc` (modifier metadata must keep its operand).
fn find_internal_consumer(
    f: &rsti_ir::Function,
    a_res: ValueId,
    use_count: &HashMap<ValueId, usize>,
    externals: &[bool],
    is_entry: bool,
) -> Option<Consumer> {
    let total = use_count.get(&a_res).copied().unwrap_or(0);
    if total == 0 {
        return None; // cast-model pair: result deliberately unused
    }
    for (bi, blk) in f.blocks.iter().enumerate() {
        for (ii, node) in blk.insts.iter().enumerate() {
            let uses_here = node
                .inst
                .operands()
                .iter()
                .filter(|op| matches!(op, Operand::Value(v) if *v == a_res))
                .count();
            let loc_use = matches!(
                &node.inst,
                Inst::PacSign { loc: Some(Operand::Value(v)), .. }
                | Inst::PacAuth { loc: Some(Operand::Value(v)), .. } if *v == a_res
            );
            if uses_here == 0 && !loc_use {
                continue;
            }
            if loc_use {
                return None;
            }
            return match &node.inst {
                Inst::Call { callee, .. }
                    if !externals[callee.0 as usize] && uses_here == total =>
                {
                    Some(Consumer::CallArgs(bi, ii))
                }
                _ => None,
            };
        }
        if matches!(&blk.term, Terminator::Ret(Some(Operand::Value(v))) if *v == a_res) {
            return (!is_entry && total == 1).then_some(Consumer::Ret(bi));
        }
    }
    None
}

/// Size-budgeted inlining of small non-recursive callees, run *after*
/// instrumentation (the paper's LTO phase inlines the runtime library into
/// instrumented code the same way). Processing is bottom-up over the call
/// graph, so a callee is fully inlined into before its own callers are
/// considered.
///
/// The candidate rules are driven by one requirement: bit-identical
/// behaviour to the non-inlined module under both engines, traps included.
///
/// * **Module gate** — no recursive SCC and no indirect call anywhere.
///   Inlining grows the caller's frame; with recursion (or cycles hidden
///   behind indirect calls) the peak stack depth is input-dependent, and
///   a grown frame could move a deep run's `StackOverflow` point. With an
///   acyclic fully-static call graph the peak stack is statically bounded
///   and far from the limit.
/// * **Callee allocas must be non-escaped** — an escaping slot address
///   could be observed (via `&local` pointer comparisons) to have one
///   address per *call* before inlining but one per *caller frame* after.
/// * **Callee allocas must be store-initialized in their own block before
///   any other use** — the VM zeroes a frame slot once per frame
///   activation, so an inlined body re-entered in a loop would otherwise
///   read the previous iteration's values where a fresh callee frame read
///   zeros.
///
/// Returns the number of call sites inlined.
pub fn inline_small_functions(m: &mut Module, budget: usize) -> usize {
    let cg = CallGraph::new(m);
    if cg.scc_recursive.iter().any(|&r| r) || cg.has_indirect.iter().any(|&h| h) {
        return 0;
    }
    let inlinable: Vec<bool> = m.funcs.iter().map(|f| callee_inlinable(f)).collect();
    let mut inlined = 0usize;

    for scc_idx in cg.bottom_up() {
        // Acyclic graph: every component is a singleton.
        let caller_idx = cg.sccs[scc_idx][0].0 as usize;
        if m.funcs[caller_idx].is_external {
            continue;
        }
        loop {
            if m.funcs[caller_idx].inst_count() > CALLER_GROWTH_CAP {
                break;
            }
            let site = {
                let f = &m.funcs[caller_idx];
                let mut found = None;
                'scan: for (bi, blk) in f.blocks.iter().enumerate() {
                    for (ii, node) in blk.insts.iter().enumerate() {
                        if let Inst::Call { callee, .. } = &node.inst {
                            let ci = callee.0 as usize;
                            if inlinable[ci] && m.funcs[ci].inst_count() <= budget {
                                found = Some((bi, ii));
                                break 'scan;
                            }
                        }
                    }
                }
                found
            };
            let Some((bi, ii)) = site else { break };
            crate::optimize::splice_call_site(m, caller_idx, bi, ii);
            inlined += 1;
        }
    }
    debug_assert!(
        rsti_ir::verify_module(m).is_ok(),
        "ipo inliner broke the module: {:?}",
        rsti_ir::verify_module(m).err()
    );
    inlined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::instrument;
    use crate::optimize::{optimize_module, OptLevel};
    use crate::sti::Mechanism;
    use rsti_frontend::compile;

    fn count_insts(m: &Module, pred: fn(&Inst) -> bool) -> usize {
        m.funcs.iter().flat_map(|f| f.insts()).filter(|n| pred(&n.inst)).count()
    }

    fn auths(m: &Module) -> usize {
        count_insts(m, |i| matches!(i, Inst::PacAuth { .. }))
    }

    #[test]
    fn summaries_classify_writers_frees_and_purity() {
        let src = r#"
            int g;
            int h;
            void write_g() { g = 1; }
            long pure_add(long x) { return x + x; }
            void write_through(int* p) { *p = 1; }
            void free_it(int* p) { free(p); }
            void calls_writer() { write_g(); }
            int main() {
                int* p = (int*) malloc(4);
                write_g();
                write_through(p);
                free_it((int*) malloc(4));
                calls_writer();
                return (int) pure_add((long) g + (long) h);
            }
        "#;
        let m = compile(src, "t").unwrap();
        let a = IpoAnalysis::build(&m);
        let by_name = |n: &str| {
            &a.summaries[m.func_by_name(n).unwrap().0 as usize]
        };
        let wg = by_name("write_g");
        assert_eq!(wg.writes_globals.len(), 1, "{wg:?}");
        assert!(!wg.writes_unknown && !wg.frees, "{wg:?}");
        let pure = by_name("pure_add");
        assert_eq!(pure, &FuncSummary::default(), "param spill is frame-local");
        assert!(by_name("write_through").writes_unknown);
        assert!(by_name("free_it").frees);
        // Transitive: the wrapper inherits the writer's global set.
        assert_eq!(by_name("calls_writer"), wg);
        // main: unions everything.
        assert!(by_name("main").frees && by_name("main").writes_unknown);
        // write_g and pure_add call sites refine; write_through/free_it don't.
        assert!(a.refined_call_sites >= 3, "{}", a.refined_call_sites);
    }

    #[test]
    fn recursive_component_unions_member_effects() {
        // Self-recursion: the intra-component call is skipped during the
        // local scan and resolved by the component union; the wrapper then
        // inherits the final summary transitively.
        let src = r#"
            int g;
            long down(long n) { g = 1; if (n > 0) { return down(n - 1) + 1; } return 0; }
            void wrap(long n) { down(n); }
            int main() { wrap(4); return g; }
        "#;
        let m = compile(src, "t").unwrap();
        let cg = CallGraph::new(&m);
        assert!(cg.is_recursive(m.func_by_name("down").unwrap()));
        let a = IpoAnalysis::build(&m);
        let down = &a.summaries[m.func_by_name("down").unwrap().0 as usize];
        let wrap = &a.summaries[m.func_by_name("wrap").unwrap().0 as usize];
        assert_eq!(down, wrap, "wrapper inherits the cycle's summary");
        assert_eq!(down.writes_globals.len(), 1);
        assert!(!down.writes_unknown && !down.frees);
    }

    #[test]
    fn summary_kill_lets_global_facts_survive_pure_calls() {
        // `burn` is recursive, so the inliner stands down and the call
        // stays — the elision across it can only come from the summary
        // (its empty effect set) refining the call kill. The global slot
        // is stored on both arms, so mem2reg leaves it alone, and the
        // re-auth sits at a join, out of block-local reach.
        let src = r#"
            int* gp;
            int sink;
            long burn(long n) { if (n <= 0) { return 0; } return burn(n - 1) + 1; }
            int main() {
                gp = (int*) malloc(4);
                if (sink > 0) { gp = (int*) malloc(8); }
                int a = *gp;
                if (sink > 1) { sink = (int) burn(3); }
                return a + *gp;
            }
        "#;
        let m = compile(src, "t").unwrap();
        let mut cfg = instrument(&m, Mechanism::Stwc);
        let s_cfg = optimize_module(&mut cfg.module, OptLevel::Cfg);
        let mut ipo = instrument(&m, Mechanism::Stwc);
        let s_ipo = optimize_module(&mut ipo.module, OptLevel::Ipo);
        assert_eq!(s_ipo.inlined, 0, "recursion must disable the inliner");
        assert!(s_ipo.refined >= 1, "{s_ipo:?}");
        assert!(
            s_ipo.elided_ipo > 0,
            "summary kill must unlock the join re-auth: {s_ipo:?}"
        );
        assert!(auths(&ipo.module) < auths(&cfg.module), "{s_cfg:?} {s_ipo:?}");
        rsti_ir::verify_module(&ipo.module).unwrap();
    }

    #[test]
    fn folds_internal_boundary_resign_roundtrips() {
        // STL re-signs pointer arguments at every direct call; with the
        // callee defined in-module, the adjacent sign→auth is an identity.
        let src = r#"
            void poke(int* p) { *p = 1; }
            int main() {
                int* p = (int*) malloc(4);
                poke(p);
                return *p;
            }
        "#;
        let m = compile(src, "t").unwrap();
        let mut p = instrument(&m, Mechanism::Stl);
        let (signs0, auths0) = (
            count_insts(&p.module, |i| matches!(i, Inst::PacSign { .. })),
            auths(&p.module),
        );
        let folded = fold_boundary_resigns(&mut p.module);
        assert!(folded > 0, "STL arg re-sign must fold");
        assert_eq!(
            count_insts(&p.module, |i| matches!(i, Inst::PacSign { .. })),
            signs0 - folded
        );
        assert_eq!(auths(&p.module), auths0 - folded);
        rsti_ir::verify_module(&p.module).unwrap();
    }

    #[test]
    fn external_boundaries_keep_their_resigns() {
        // `print_int` is external: the boundary partner is outside the
        // signing domain, so nothing at that call may fold.
        let src = r#"
            int main() {
                int* p = (int*) malloc(4);
                *p = 7;
                print_int((long) *p);
                return 0;
            }
        "#;
        let m = compile(src, "t").unwrap();
        let mut p = instrument(&m, Mechanism::Stl);
        let before = auths(&p.module);
        let _ = fold_boundary_resigns(&mut p.module);
        // Folding may fire elsewhere, but the external call's strip path
        // stays intact and the module stays well-formed.
        assert!(auths(&p.module) <= before);
        rsti_ir::verify_module(&p.module).unwrap();
    }

    #[test]
    fn ipo_inliner_splices_small_defined_callees() {
        let src = r#"
            long square(long x) { return x * x; }
            int main() {
                long acc = 0;
                for (int i = 0; i < 4; i = i + 1) { acc = acc + square(i); }
                return (int) acc;
            }
        "#;
        let m = compile(src, "t").unwrap();
        let mut p = instrument(&m, Mechanism::Stwc);
        let n = inline_small_functions(&mut p.module, IPO_INLINE_BUDGET);
        assert!(n >= 1, "square must inline");
        let main = p.module.func_by_name("main").unwrap();
        assert!(
            p.module.func(main).insts().all(|nd| !matches!(nd.inst, Inst::Call { .. })),
            "no direct calls left in main"
        );
        rsti_ir::verify_module(&p.module).unwrap();
    }

    #[test]
    fn ipo_inliner_stands_down_on_recursion() {
        let src = r#"
            long fact(long n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
            int main() { return (int) fact(5); }
        "#;
        let m = compile(src, "t").unwrap();
        let mut p = instrument(&m, Mechanism::Stwc);
        assert_eq!(inline_small_functions(&mut p.module, IPO_INLINE_BUDGET), 0);
    }

    #[test]
    fn ipo_inliner_rejects_conditionally_initialized_locals() {
        // `x` is stored on only one arm; a fresh callee frame reads zero
        // on the other, but an inlined re-execution would read the last
        // iteration's value. The init-before-use gate must reject it.
        let src = r#"
            int g;
            long risky() { long x; if (g > 0) { x = 1; } return x; }
            int main() {
                long acc = 0;
                for (int i = 0; i < 3; i = i + 1) { acc = acc + risky(); }
                return (int) acc;
            }
        "#;
        let m = compile(src, "t").unwrap();
        let mut p = instrument(&m, Mechanism::Stwc);
        assert_eq!(inline_small_functions(&mut p.module, IPO_INLINE_BUDGET), 0);
    }

    #[test]
    fn store_forwarding_elides_the_reload_auth() {
        // `gp = p` stores a freshly signed pointer; `return *gp` reloads
        // it in a dominated block. The keys differ (p's class vs gp's
        // class), so no plain auth fact covers the reload — only the
        // sign→store forwarding in the ipo dataflow pass can elide it.
        let src = r#"
            int sink;
            int* gp;
            int main() {
                int* p = (int*) malloc(4);
                gp = p;
                if (sink > 0) { sink = 1; }
                return *gp;
            }
        "#;
        let m = compile(src, "t").unwrap();
        for mech in [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl] {
            let mut cfg = instrument(&m, mech);
            optimize_module(&mut cfg.module, OptLevel::Cfg);
            let mut ipo = instrument(&m, mech);
            let s = optimize_module(&mut ipo.module, OptLevel::Ipo);
            assert!(
                s.elided_ipo > 0,
                "{mech:?}: forwarded store must elide the reload auth: {s:?}"
            );
            assert!(auths(&ipo.module) < auths(&cfg.module), "{mech:?}");
            rsti_ir::verify_module(&ipo.module).unwrap();
        }
    }

    /// The check-site id stability contract under `--opt ipo`: site ids
    /// are assigned by `(function, block, instruction)` scan order over
    /// the *final* module, so two runs of the identical pipeline produce
    /// the identical table — dense ids, same labels, same lines — and the
    /// spliced copies of an inlined callee's checks are attributed under
    /// the caller while retaining the callee's source-line provenance.
    #[test]
    fn check_site_ids_stable_under_ipo_inlining() {
        let src = "\nlong deref(long* p) { return *p; }\nint main() {\n    long x = 7;\n    long acc = 0;\n    for (int i = 0; i < 3; i = i + 1) { acc = acc + deref(&x); }\n    return (int) acc;\n}\n";
        for mech in [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl] {
            let build = || {
                let m = compile(src, "t").unwrap();
                let mut p = instrument(&m, mech);
                let s = optimize_module(&mut p.module, OptLevel::Ipo);
                (s, p.module)
            };
            let (s1, m1) = build();
            let (s2, m2) = build();
            assert_eq!(s1, s2, "{mech:?}: pipeline must be deterministic");
            let (t1, t2) = (crate::sites::check_sites(&m1), crate::sites::check_sites(&m2));
            assert_eq!(t1, t2, "{mech:?}: site tables must be identical");
            for (i, site) in t1.iter().enumerate() {
                assert_eq!(site.id as usize, i, "{mech:?}: ids must stay dense");
            }
            if s1.inlined > 0 {
                // `*p` sits on source line 2; after inlining, a check with
                // that provenance must live under main.
                assert!(
                    t1.iter().any(|s| s.func_name == "main" && s.line == 2),
                    "{mech:?}: inlined check lost its callee line: {:?}",
                    t1.iter()
                        .map(|s| (s.func_name.clone(), s.line))
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn ipo_level_total_never_below_cfg() {
        // On every workload-shaped program the ipo pipeline must be at
        // least as strong as cfg, statically.
        let src = r#"
            int g;
            long helper(long x) { return x + 1; }
            int main() {
                long acc = 0;
                for (int i = 0; i < 8; i = i + 1) { acc = helper(acc); }
                g = (int) acc;
                return g;
            }
        "#;
        let m = compile(src, "t").unwrap();
        for mech in [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl, Mechanism::Parts] {
            let mut cfg = instrument(&m, mech);
            optimize_module(&mut cfg.module, OptLevel::Cfg);
            let mut ipo = instrument(&m, mech);
            optimize_module(&mut ipo.module, OptLevel::Ipo);
            assert!(auths(&ipo.module) <= auths(&cfg.module), "{mech:?}");
            rsti_ir::verify_module(&ipo.module).unwrap();
        }
    }
}

/// Per-callee inlinability: defined, and every alloca non-escaped and
/// store-initialized before use (see [`inline_small_functions`]).
fn callee_inlinable(f: &rsti_ir::Function) -> bool {
    if f.is_external || f.blocks.is_empty() {
        return false;
    }
    let census = crate::optimize::alias_census(f);
    if census.allocas.len() != census.non_escaped.len() {
        return false;
    }
    // Every alloca must be the target of a Store, in its own block, before
    // any other use of it (PacSign/PacAuth `loc` operands are modifier
    // metadata, not reads, and may precede the store).
    for blk in &f.blocks {
        let mut uninitialized: Vec<ValueId> = Vec::new();
        for node in &blk.insts {
            match &node.inst {
                Inst::Alloca { result, .. } => uninitialized.push(*result),
                Inst::Store { value, ptr } => {
                    if let Operand::Value(v) = value {
                        if uninitialized.contains(v) {
                            return false;
                        }
                    }
                    if let Operand::Value(v) = ptr {
                        uninitialized.retain(|u| u != v);
                    }
                }
                other => {
                    let loc_only = match other {
                        Inst::PacSign { value, .. } | Inst::PacAuth { value, .. } => {
                            // The loc operand is benign; the value operand
                            // is a real use.
                            !matches!(value, Operand::Value(v) if uninitialized.contains(v))
                        }
                        _ => false,
                    };
                    if !loc_only {
                        for op in other.operands() {
                            if let Operand::Value(v) = op {
                                if uninitialized.contains(v) {
                                    return false;
                                }
                            }
                        }
                    }
                }
            }
        }
        if !uninitialized.is_empty() {
            return false;
        }
    }
    true
}
