//! # rsti-core — Scope-Type Integrity and the RSTI instrumentation pass
//!
//! This crate is the reproduction of the paper's contribution: the STI
//! policy analysis and the three Runtime Scope-Type Integrity enforcement
//! mechanisms, plus the PARTS baseline the paper compares against.
//!
//! * [`storage`] — resolving which variable a pointer access touches;
//! * [`sti`] — fact collection (type / scope / permission), escape
//!   widening, and RSTI-type construction per mechanism (paper §4.4–4.6);
//! * [`equivalence`] — the Table 3 analytics (NT/RT/NV/ECV/ECT);
//! * [`ptr2ptr`] — the Compact/Full Equivalent plan for lost-type double
//!   pointers (§4.7.7, Figure 7);
//! * [`mod@instrument`] — the pass inserting `pac`/`aut`/`xpac`/`pp_*`
//!   operations into the IR (§4.7).
//!
//! # Example
//!
//! ```
//! use rsti_core::{instrument, Mechanism};
//!
//! let m = rsti_frontend::compile(r#"
//!     int main() {
//!         int* p = (int*) malloc(sizeof(int));
//!         *p = 7;
//!         return *p;
//!     }
//! "#, "demo").unwrap();
//! let prog = instrument(&m, Mechanism::Stwc);
//! assert!(prog.stats.signs_on_store >= 1); // the store of p is signed
//! ```

#![warn(missing_docs)]

pub mod equivalence;
pub mod ipo;
pub mod optimize;
pub mod replay;
pub mod instrument;
pub mod ptr2ptr;
pub mod sites;
pub mod sti;
pub mod storage;

pub use equivalence::{equivalence_stats, EquivalenceStats};
pub use ipo::{
    fold_boundary_resigns, inline_small_functions, FuncSummary, IpoAnalysis, IPO_INLINE_BUDGET,
};
pub use instrument::{instrument, instrument_adaptive, GlobalSign, InstrumentStats, InstrumentedProgram};
pub use optimize::{
    compact_values, inline_leaf_functions, optimize_baseline, optimize_module, optimize_program,
    optimize_program_at, OptLevel, OptSummary,
};
pub use replay::{recommend, replay_surface, ReplaySurface, DEFAULT_ECV_THRESHOLD};
pub use ptr2ptr::{plan_pp, PpCensus, PpPlan, PpSite};
pub use sites::{check_kind, check_sites, pac_site_name, CheckSite};
pub use sti::{analyze, collect_facts, Mechanism, PointerVar, RstiClass, StiAnalysis, StiFacts};
pub use storage::{storage_of_addr, DefMap, StorageKey};
