//! Storage keys: identifying *which variable* a pointer load/store touches.
//!
//! The paper's pass knows, for every instrumented load/store, which source
//! variable is being accessed — "every load/store has this LLVM metadata"
//! (§4.4). We recover the same fact by walking the definition chain of the
//! address operand back to its root: an `alloca` (local/param), a global, a
//! struct-field GEP, or — for accesses through a loaded pointer, where no
//! named variable is statically known — the *declared type* of the storage,
//! which is exactly what the IR gives the LLVM pass in that case.

use rsti_ir::{
    FuncId, Function, Inst, Operand, StructId, TypeId, Module, ValueId, VarId,
};
use std::collections::HashMap;

/// Identifies the storage a pointer access touches. This is the unit the
/// STI analysis assigns RSTI-types to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StorageKey {
    /// A named variable (local, parameter, or global) with debug info.
    Var(VarId),
    /// A struct field (field-sensitive analysis, §4.7.4).
    Field(StructId, u32),
    /// Anonymous storage reached through a pointer: all the IR knows is the
    /// declared type of what is stored there.
    TypeOf(TypeId),
}

/// Per-function map from value to its defining instruction, for def-chain
/// walks.
pub struct DefMap<'f> {
    defs: HashMap<ValueId, &'f Inst>,
}

impl<'f> DefMap<'f> {
    /// Builds the def map of a function.
    pub fn new(f: &'f Function) -> Self {
        let mut defs = HashMap::new();
        for node in f.insts() {
            if let Some(r) = node.inst.result() {
                defs.insert(r, &node.inst);
            }
        }
        DefMap { defs }
    }

    /// The defining instruction of `v`, if `v` is not a parameter.
    pub fn def(&self, v: ValueId) -> Option<&'f Inst> {
        self.defs.get(&v).copied()
    }
}

/// Resolves the storage key for an *address* operand (the `ptr` of a
/// load/store). `m` supplies global debug info; `f` the function.
pub fn storage_of_addr(
    m: &Module,
    f: &Function,
    defs: &DefMap<'_>,
    addr: &Operand,
) -> StorageKey {
    match addr {
        Operand::GlobalAddr(gid, _) => StorageKey::Var(m.global(*gid).var),
        Operand::Value(v) => storage_of_value_addr(m, f, defs, *v, 0),
        // Constant addresses (null, function addresses, strings) are not
        // variable storage; classify by pointee type.
        other => anon_of_operand(m, f, other),
    }
}

fn anon_of_operand(m: &Module, f: &Function, op: &Operand) -> StorageKey {
    let ty = operand_type(m, f, op);
    StorageKey::TypeOf(m.types.pointee(ty).unwrap_or(ty))
}

/// Type of an operand in the context of `f`.
pub fn operand_type(_m: &Module, f: &Function, op: &Operand) -> TypeId {
    match op {
        Operand::Value(v) => f.value_type(*v),
        Operand::ConstInt(_, t)
        | Operand::ConstFloat(_, t)
        | Operand::Null(t)
        | Operand::FuncAddr(_, t)
        | Operand::GlobalAddr(_, t)
        | Operand::Str(_, t) => *t,
    }
}

fn storage_of_value_addr(
    m: &Module,
    f: &Function,
    defs: &DefMap<'_>,
    v: ValueId,
    depth: u32,
) -> StorageKey {
    if depth > 64 {
        // Defensive: cyclic chains cannot occur in verified IR, but never
        // loop unboundedly.
        return StorageKey::TypeOf(f.value_type(v));
    }
    let Some(inst) = defs.def(v) else {
        // A parameter used directly as an address: anonymous storage typed
        // by its pointee.
        let ty = f.value_type(v);
        return StorageKey::TypeOf(m.types.pointee(ty).unwrap_or(ty));
    };
    match inst {
        Inst::Alloca { var: Some(var), .. } => StorageKey::Var(*var),
        Inst::Alloca { ty, var: None, .. } => StorageKey::TypeOf(*ty),
        Inst::FieldAddr { struct_id, field, .. } => {
            StorageKey::Field(*struct_id, *field as u32)
        }
        Inst::IndexAddr { base, .. } => match base {
            Operand::Value(b) => storage_of_value_addr(m, f, defs, *b, depth + 1),
            other => storage_of_addr(m, f, defs, other),
        },
        Inst::BitCast { value, .. } => match value {
            Operand::Value(b) => storage_of_value_addr(m, f, defs, *b, depth + 1),
            other => storage_of_addr(m, f, defs, other),
        },
        Inst::PacAuth { value, .. } | Inst::PacSign { value, .. } | Inst::PacStrip { value, .. } => {
            match value {
                Operand::Value(b) => storage_of_value_addr(m, f, defs, *b, depth + 1),
                other => storage_of_addr(m, f, defs, other),
            }
        }
        // Address arrived through a load (e.g. `*pp` used as an address),
        // a call result, or malloc: anonymous storage of the pointee type.
        _ => {
            let ty = f.value_type(v);
            StorageKey::TypeOf(m.types.pointee(ty).unwrap_or(ty))
        }
    }
}

/// Resolves the *root variable* a pointer **value** (not address) was last
/// loaded from, together with whether a pointer cast lies on the def chain.
/// Used for the flow graph (scope analysis) and for cast/argument
/// instrumentation decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueRoot {
    /// The storage the value was read from, when statically known.
    pub key: Option<StorageKey>,
    /// Static type of the storage the value was read from.
    pub root_ty: Option<TypeId>,
    /// Whether a `BitCast` lies between the root and this value.
    pub casted: bool,
    /// `true` when the value is the *address of* the rooted storage
    /// (`&p`), rather than the value loaded from it. An escaping address
    /// means the storage becomes reachable anonymously, which demotes the
    /// variable into its type's anonymous class (see `rsti-core::sti`).
    pub is_address: bool,
}

/// Computes the [`ValueRoot`] of a pointer value operand.
pub fn root_of_value(
    m: &Module,
    f: &Function,
    defs: &DefMap<'_>,
    op: &Operand,
) -> ValueRoot {
    match op {
        Operand::Value(v) => root_of_value_id(m, f, defs, *v, false, 0),
        other => root_of_const_operand(m, other, false),
    }
}

/// Root of a constant operand. `&g` on a global is an address-of exactly
/// like `&x` on a local: the storage escapes and accesses through the
/// aliasing pointer can only be checked against the type-level class, so
/// the global must be demoted the same way (missing this signs stores to
/// the global with its own class while aliased loads authenticate against
/// the anonymous class — a false PAC trap on benign programs).
fn root_of_const_operand(m: &Module, op: &Operand, casted: bool) -> ValueRoot {
    match op {
        Operand::GlobalAddr(gid, ty) => ValueRoot {
            key: Some(StorageKey::Var(m.global(*gid).var)),
            root_ty: Some(*ty),
            casted,
            is_address: true,
        },
        // Other constants (null, ints, function addresses, strings) have no
        // variable storage root.
        _ => ValueRoot { key: None, root_ty: None, casted, is_address: false },
    }
}

fn root_of_value_id(
    m: &Module,
    f: &Function,
    defs: &DefMap<'_>,
    v: ValueId,
    casted: bool,
    depth: u32,
) -> ValueRoot {
    if depth > 64 {
        return ValueRoot { key: None, root_ty: None, casted, is_address: false };
    }
    let Some(inst) = defs.def(v) else {
        // Parameter value: its root is the parameter variable itself.
        for (pv, var) in &f.params {
            if *pv == v {
                if let Some(var) = var {
                    return ValueRoot {
                        key: Some(StorageKey::Var(*var)),
                        root_ty: Some(f.value_type(v)),
                        casted,
                        is_address: false,
                    };
                }
            }
        }
        return ValueRoot { key: None, root_ty: None, casted, is_address: false };
    };
    match inst {
        Inst::Load { ptr, ty, .. } => {
            let key = storage_of_addr(m, f, defs, ptr);
            ValueRoot { key: Some(key), root_ty: Some(*ty), casted, is_address: false }
        }
        Inst::BitCast { value, .. } => match value {
            Operand::Value(b) => root_of_value_id(m, f, defs, *b, true, depth + 1),
            other => root_of_const_operand(m, other, true),
        },
        Inst::PacAuth { value, .. } | Inst::PacSign { value, .. } => match value {
            Operand::Value(b) => root_of_value_id(m, f, defs, *b, casted, depth + 1),
            other => root_of_const_operand(m, other, casted),
        },
        Inst::IndexAddr { base: Operand::Value(b), .. } => {
            root_of_value_id(m, f, defs, *b, casted, depth + 1)
        }
        Inst::IndexAddr { base, .. } => root_of_const_operand(m, base, casted),
        // &local, &global, &field: the value *is* the address of that
        // storage — root it there so `&p` passed around links p's class.
        Inst::Alloca { var: Some(var), .. } => ValueRoot {
            key: Some(StorageKey::Var(*var)),
            root_ty: Some(f.value_type(v)),
            casted,
            is_address: true,
        },
        Inst::FieldAddr { struct_id, field, .. } => ValueRoot {
            key: Some(StorageKey::Field(*struct_id, *field as u32)),
            root_ty: Some(f.value_type(v)),
            casted,
            is_address: true,
        },
        _ => ValueRoot { key: None, root_ty: None, casted, is_address: false },
    }
}

/// Convenience: the storage key of a function id (used to look up callee
/// parameter variables).
pub fn param_keys(m: &Module, fid: FuncId) -> Vec<Option<StorageKey>> {
    m.func(fid)
        .params
        .iter()
        .map(|(_, var)| var.map(StorageKey::Var))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsti_frontend::compile;

    #[test]
    fn resolves_local_global_field_and_anon() {
        let m = compile(
            r#"
            struct ctx { void* data; };
            int* g;
            void f(struct ctx* c, int** pp) {
                int* local = null;
                local = *pp;       // store to Var(local); load through pp -> anon
                c->data = local;   // store to Field(ctx,data)
                g = local;         // store to Var(g)
            }
            int main() { return 0; }
        "#,
            "t",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let defs = DefMap::new(f);

        let mut seen_var_local = false;
        let mut seen_field = false;
        let mut seen_global = false;
        let mut seen_anon = false;
        for node in f.insts() {
            match &node.inst {
                Inst::Store { ptr, .. } => match storage_of_addr(&m, f, &defs, ptr) {
                    StorageKey::Var(v) => {
                        let name = &m.var(v).name;
                        if name == "local" {
                            seen_var_local = true;
                        }
                        if name == "g" {
                            seen_global = true;
                        }
                    }
                    StorageKey::Field(sid, idx) => {
                        let def = m.types.struct_def(sid);
                        assert_eq!(def.name, "ctx");
                        assert_eq!(def.fields[idx as usize].name, "data");
                        seen_field = true;
                    }
                    StorageKey::TypeOf(_) => {}
                },
                Inst::Load { ptr, .. } => {
                    if let StorageKey::TypeOf(t) = storage_of_addr(&m, f, &defs, ptr) {
                        // load of *pp goes through anonymous int* storage
                        if m.types.display(t) == "int*" {
                            seen_anon = true;
                        }
                    }
                }
                _ => {}
            }
        }
        assert!(seen_var_local && seen_field && seen_global && seen_anon);
    }

    #[test]
    fn value_roots_track_casts() {
        let m = compile(
            r#"
            void take(void* v) {}
            int main() {
                int* p = null;
                take(p);
                return 0;
            }
        "#,
            "t",
        )
        .unwrap();
        let fid = m.func_by_name("main").unwrap();
        let f = m.func(fid);
        let defs = DefMap::new(f);
        let call = f
            .insts()
            .find_map(|n| match &n.inst {
                Inst::Call { args, .. } => Some(args[0].clone()),
                _ => None,
            })
            .unwrap();
        let root = root_of_value(&m, f, &defs, &call);
        assert!(root.casted, "implicit int*->void* conversion is a cast");
        match root.key {
            Some(StorageKey::Var(v)) => assert_eq!(m.var(v).name, "p"),
            other => panic!("unexpected root {other:?}"),
        }
    }
}
