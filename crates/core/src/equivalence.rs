//! Equivalence-class analytics — the quantities behind Table 3.
//!
//! * **NT** — number of distinct basic pointer types among a program's
//!   pointer variables;
//! * **RT** — number of RSTI-types a mechanism enforces;
//! * **NV** — total number of pointer variables;
//! * **ECV** — Equivalence Class of Variable: variables sharing one
//!   RSTI-type (the substitution surface an attacker has);
//! * **ECT** — Equivalence Class of Type: basic types sharing one
//!   RSTI-type (always 1 for STWC; >1 possible for STC).

use crate::sti::{analyze, basic_type_count, Mechanism, StiAnalysis};
use rsti_ir::Module;

/// The Table 3 row for one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceStats {
    /// Program name.
    pub name: String,
    /// NT: distinct basic pointer types.
    pub nt: usize,
    /// RT under RSTI-STC.
    pub rt_stc: usize,
    /// RT under RSTI-STWC.
    pub rt_stwc: usize,
    /// RT under RSTI-STL (equals NV by construction).
    pub rt_stl: usize,
    /// NV: total pointer variables.
    pub nv: usize,
    /// Largest ECV under STC.
    pub ecv_stc: usize,
    /// Largest ECV under STWC.
    pub ecv_stwc: usize,
    /// Largest ECT under STC.
    pub ect_stc: usize,
    /// Largest ECT under STWC (1 by construction).
    pub ect_stwc: usize,
}

/// Largest member count over classes.
pub fn largest_ecv(a: &StiAnalysis) -> usize {
    a.classes.iter().map(|c| c.members.len()).max().unwrap_or(0)
}

/// Largest basic-type count over classes.
pub fn largest_ect(a: &StiAnalysis) -> usize {
    a.classes.iter().map(|c| c.types.len()).max().unwrap_or(0)
}

/// Computes the full Table 3 row for a module.
pub fn equivalence_stats(m: &Module) -> EquivalenceStats {
    let stwc = analyze(m, Mechanism::Stwc);
    let stc = analyze(m, Mechanism::Stc);
    let stl = analyze(m, Mechanism::Stl);
    EquivalenceStats {
        name: m.name.clone(),
        nt: basic_type_count(&stwc.facts),
        rt_stc: stc.classes.len(),
        rt_stwc: stwc.classes.len(),
        rt_stl: stl.classes.len(),
        nv: stwc.facts.vars.len(),
        ecv_stc: largest_ecv(&stc),
        ecv_stwc: largest_ecv(&stwc),
        ect_stc: largest_ect(&stc),
        ect_stwc: largest_ect(&stwc),
    }
}

impl EquivalenceStats {
    /// Checks the structural invariants the paper's Table 3 exhibits.
    /// Returns a violation description, or `None` when all hold.
    ///
    /// Two of the paper's equalities — ECT(STWC) = 1 and RT(STL) = NV —
    /// hold *exactly* only on alias-free programs: when a pointer
    /// variable's address escapes (`&p` passed on) or a double pointer
    /// loses its type (§4.7.7), the variable must share a class with its
    /// type-level storage in every mechanism (see `sti::StiFacts::
    /// forced_unions`), which can merge a handful of classes. The checked
    /// invariants are therefore the order relations, plus the equalities
    /// in their relaxed (≤) form.
    pub fn invariant_violation(&self) -> Option<String> {
        if self.nv == 0 {
            // A program with no pointer variables (pure numeric kernels)
            // vacuously satisfies every invariant.
            return None;
        }
        if self.rt_stwc < self.rt_stc {
            return Some(format!(
                "RT(STWC)={} must be >= RT(STC)={}",
                self.rt_stwc, self.rt_stc
            ));
        }
        if self.rt_stl < self.rt_stwc {
            return Some("RT(STL) must be >= RT(STWC)".into());
        }
        if self.rt_stl > self.nv {
            return Some(format!(
                "RT(STL)={} must not exceed NV={}",
                self.rt_stl, self.nv
            ));
        }
        if self.ecv_stc < self.ecv_stwc {
            return Some("largest ECV(STC) must be >= largest ECV(STWC)".into());
        }
        if self.ect_stc < self.ect_stwc {
            return Some("largest ECT(STC) must be >= largest ECT(STWC)".into());
        }
        None
    }

    /// The strict paper equalities (ECT(STWC)=1, RT(STL)=NV); true only
    /// for alias-free programs.
    pub fn strict_equalities_hold(&self) -> bool {
        self.nv == 0 || (self.ect_stwc == 1 && self.rt_stl == self.nv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsti_frontend::compile;

    #[test]
    fn table3_invariants_hold_on_a_mixed_program() {
        let src = r#"
            struct conn { char* buf; void (*handler)(struct conn* c); int fd; };
            char* g_banner = "x";
            void handle(struct conn* c) { c->fd = c->fd + 1; }
            void dispatch(struct conn* c) {
                void* raw = (void*) c;
                struct conn* back = (struct conn*) raw;
                back->handler = handle;
                back->handler(back);
            }
            int main() {
                struct conn* c = (struct conn*) malloc(sizeof(struct conn));
                c->buf = g_banner;
                dispatch(c);
                const char* note = "n";
                return 0;
            }
        "#;
        let m = compile(src, "mixed").unwrap();
        let s = equivalence_stats(&m);
        assert_eq!(s.invariant_violation(), None, "{s:?}");
        assert!(s.nt >= 3, "at least conn*, char*, void*: {s:?}");
        assert!(s.nv > s.nt, "more variables than types: {s:?}");
        // RSTI refines the type system: more RSTI-types than basic types.
        assert!(s.rt_stwc >= s.nt, "{s:?}");
    }

    #[test]
    fn stl_always_has_singleton_classes() {
        let m = compile(
            "int main() { int* a = null; int* b = null; void* c = null; return 0; }",
            "t",
        )
        .unwrap();
        let s = equivalence_stats(&m);
        assert_eq!(s.rt_stl, s.nv);
        assert_eq!(s.ect_stwc, 1);
    }
}
