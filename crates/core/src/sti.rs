//! Scope-Type Integrity analysis: collecting the programmer's-intent facts
//! and building RSTI-types for each defense mechanism.
//!
//! The pipeline is (paper §4.4–4.8):
//!
//! 1. **Fact collection** — every pointer-typed storage unit (local, param,
//!    global, struct field, or anonymous through-pointer storage) becomes a
//!    [`PointerVar`] carrying its basic type, declaration scope, and
//!    permission, straight from the frontend's debug metadata.
//! 2. **Flow graph** — undirected edges connect variables whose values flow
//!    into one another (stores and argument passing), each edge tagged with
//!    whether a pointer cast lies on the path. This stands in for the
//!    paper's whole-program LTO view (§5).
//! 3. **Scope widening** — a variable that escapes (its value reaches a
//!    same-typed variable elsewhere) has its scope widened to the functions
//!    its value travels through, reproducing the paper's escaping-variable
//!    rule (§4.5) and the Figure 5a table exactly.
//! 4. **RSTI-type construction** per mechanism (§4.6, §4.8):
//!    * **STWC** groups variables by (type, scope set, permission);
//!    * **STC** additionally merges groups connected by casts (compatible
//!      types);
//!    * **STL** gives every variable its own RSTI-type and mixes the
//!      pointer's location into the modifier at runtime;
//!    * **PARTS** (baseline, Liljestrand et al.) groups by basic type
//!      alone.

use crate::storage::{operand_type, root_of_value, storage_of_addr, DefMap, StorageKey};
use rsti_ir::{Inst, Module, Scope, Type, TypeId, VarKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The RSTI enforcement mechanisms (plus the PARTS baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Scope-Type Without Combining — the paper's primary mechanism.
    Stwc,
    /// Scope-Type with Combining — compatible (cast-related) types merged.
    Stc,
    /// Scope-Type with Location — strictest; modifier mixes `&p`.
    Stl,
    /// The PARTS baseline: modifier is the basic pointer type only.
    Parts,
}

impl Mechanism {
    /// All mechanisms, in the order the paper reports them.
    pub const ALL: [Mechanism; 4] =
        [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl, Mechanism::Parts];

    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            Mechanism::Stwc => "RSTI-STWC",
            Mechanism::Stc => "RSTI-STC",
            Mechanism::Stl => "RSTI-STL",
            Mechanism::Parts => "PARTS",
        }
    }

    /// Whether the runtime modifier mixes the pointer's location.
    pub fn uses_location(&self) -> bool {
        matches!(self, Mechanism::Stl)
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One pointer-typed storage unit and its programmer's-intent facts.
#[derive(Debug, Clone)]
pub struct PointerVar {
    /// Identity.
    pub key: StorageKey,
    /// Declared basic type.
    pub ty: TypeId,
    /// Permission: `true` unless declared `const`.
    pub writable: bool,
    /// Declaration scope (`None` for anonymous storage).
    pub decl_scope: Option<Scope>,
    /// Scopes the variable is used in (loads/stores of its storage).
    pub use_scopes: BTreeSet<Scope>,
    /// Widened scope set (decl + use + escape widening) — the STI scope.
    pub scopes: BTreeSet<Scope>,
    /// Report name.
    pub name: String,
    /// Whether the stored pointer is a code (function) pointer.
    pub is_code_ptr: bool,
}

/// A flow edge between two pointer variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEdge {
    /// Endpoint variable indices (into [`StiFacts::vars`]).
    pub a: usize,
    /// Second endpoint.
    pub b: usize,
    /// Whether a pointer cast lies on the value path.
    pub casted: bool,
}

/// The collected STI facts for a module.
#[derive(Debug, Clone)]
pub struct StiFacts {
    /// All pointer variables.
    pub vars: Vec<PointerVar>,
    /// Key → index into `vars`.
    pub index: HashMap<StorageKey, usize>,
    /// Variable flow edges.
    pub edges: Vec<FlowEdge>,
    /// Pairs of variables that MUST share a class under every mechanism:
    /// an address-escaped variable and its type's anonymous storage. Once
    /// `&p` escapes, `p`'s slot is reachable through plain pointers, so
    /// accesses through aliases can only be checked against the type-level
    /// class — the same constraint the LLVM prototype faces.
    pub forced_unions: Vec<(usize, usize)>,
}

impl StiFacts {
    /// Index of a key, if it denotes pointer storage.
    pub fn var_of(&self, key: StorageKey) -> Option<usize> {
        self.index.get(&key).copied()
    }
}

/// An RSTI-type: an equivalence class of pointer variables sharing one PAC
/// modifier.
#[derive(Debug, Clone)]
pub struct RstiClass {
    /// Basic types in the class (singleton except under STC).
    pub types: BTreeSet<TypeId>,
    /// The STI scope set of the class.
    pub scopes: BTreeSet<Scope>,
    /// Permission.
    pub writable: bool,
    /// Member variable indices (into [`StiFacts::vars`]).
    pub members: Vec<usize>,
    /// The 64-bit PAC modifier derived from the class facts.
    pub modifier: u64,
    /// Whether members hold code pointers (selects the `Ia` key).
    pub code_ptr: bool,
}

/// The full analysis result for one mechanism.
#[derive(Debug, Clone)]
pub struct StiAnalysis {
    /// Mechanism analyzed for.
    pub mechanism: Mechanism,
    /// The classes (RSTI-types).
    pub classes: Vec<RstiClass>,
    /// Variable index → class index.
    pub class_of_var: Vec<usize>,
    /// The underlying facts.
    pub facts: StiFacts,
}

impl StiAnalysis {
    /// The class a storage key belongs to, if it is pointer storage.
    pub fn class_of(&self, key: StorageKey) -> Option<&RstiClass> {
        let vi = self.facts.var_of(key)?;
        Some(&self.classes[self.class_of_var[vi]])
    }

    /// The modifier for a storage key (pointer storage only).
    pub fn modifier_of(&self, key: StorageKey) -> Option<u64> {
        self.class_of(key).map(|c| c.modifier)
    }
}

/// FNV-1a, the stable hash behind modifiers (the paper uses internal LLVM
/// type ids; any deterministic injection into 64 bits serves).
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn scope_name(m: &Module, s: Scope) -> String {
    match s {
        Scope::Function(i) => m.funcs[i as usize].name.clone(),
        Scope::Struct(sid) => format!("struct {}", m.types.struct_def(sid).name),
        Scope::Module => "<module>".into(),
        Scope::External => "<external>".into(),
    }
}

/// Collects pointer variables and the flow graph for a module.
pub fn collect_facts(m: &Module) -> StiFacts {
    let _span = rsti_telemetry::global().span(rsti_telemetry::Phase::CollectFacts);
    let mut facts = StiFacts {
        vars: Vec::new(),
        index: HashMap::new(),
        edges: Vec::new(),
        forced_unions: Vec::new(),
    };

    let add_var = |facts: &mut StiFacts,
                       key: StorageKey,
                       ty: TypeId,
                       writable: bool,
                       decl: Option<Scope>,
                       name: String,
                       code: bool| {
        if facts.index.contains_key(&key) {
            return;
        }
        let idx = facts.vars.len();
        facts.index.insert(key, idx);
        facts.vars.push(PointerVar {
            key,
            ty,
            writable,
            decl_scope: decl,
            use_scopes: BTreeSet::new(),
            scopes: BTreeSet::new(),
            name,
            is_code_ptr: code,
        });
    };

    // Named variables (locals, params, globals) with pointer types.
    for (i, v) in m.vars.iter().enumerate() {
        if m.types.is_ptr(v.ty) && v.kind != VarKind::Field {
            add_var(
                &mut facts,
                StorageKey::Var(rsti_ir::VarId(i as u32)),
                v.ty,
                !v.is_const,
                Some(v.scope),
                v.name.clone(),
                m.types.is_func_ptr(v.ty),
            );
        }
    }
    // Struct fields with pointer types: scope includes the composite type
    // itself (§4.7.4).
    for (sid, def) in m.types.structs() {
        for (fi, fd) in def.fields.iter().enumerate() {
            if m.types.is_ptr(fd.ty) {
                add_var(
                    &mut facts,
                    StorageKey::Field(sid, fi as u32),
                    fd.ty,
                    !fd.is_const,
                    Some(Scope::Struct(sid)),
                    format!("{}.{}", def.name, fd.name),
                    m.types.is_func_ptr(fd.ty),
                );
            }
        }
    }

    // Walk bodies: record use scopes, anonymous storage, and flow edges.
    for (fid, f) in m.funcs() {
        if f.is_external {
            continue;
        }
        let fscope = Scope::Function(fid.0);
        let defs = DefMap::new(f);

        let mut touch = |facts: &mut StiFacts, key: StorageKey, ty: TypeId, scope: Scope| {
            if !facts.index.contains_key(&key) {
                if let StorageKey::TypeOf(t) = key {
                    let name = format!("<*{}>", m.types.display(t));
                    let code = m.types.is_func_ptr(ty);
                    add_var(facts, key, ty, true, None, name, code);
                } else {
                    return;
                }
            }
            if let Some(&i) = facts.index.get(&key) {
                facts.vars[i].use_scopes.insert(scope);
            }
        };

        for node in f.insts() {
            let scope = node.loc.map(|l| l.scope).unwrap_or(fscope);
            match &node.inst {
                Inst::Store { value, ptr } => {
                    let vty = operand_type(m, f, value);
                    if !m.types.is_ptr(vty) {
                        continue;
                    }
                    let dst = storage_of_addr(m, f, &defs, ptr);
                    touch(&mut facts, dst, vty, scope);
                    let root = root_of_value(m, f, &defs, value);
                    if let Some(src) = root.key {
                        touch(&mut facts, src, root.root_ty.unwrap_or(vty), scope);
                        add_edge(&mut facts, src, dst, root.casted);
                        if root.is_address {
                            address_escape(m, &mut facts, &mut touch, root, vty, scope);
                        }
                    }
                }
                Inst::Load { ptr, ty, .. } => {
                    if !m.types.is_ptr(*ty) {
                        continue;
                    }
                    let key = storage_of_addr(m, f, &defs, ptr);
                    touch(&mut facts, key, *ty, scope);
                }
                Inst::Call { callee, args, .. } => {
                    let callee_f = m.func(*callee);
                    if callee_f.is_external {
                        continue;
                    }
                    for (i, a) in args.iter().enumerate() {
                        let aty = operand_type(m, f, a);
                        if !m.types.is_ptr(aty) {
                            continue;
                        }
                        let Some((_, Some(pvar))) = callee_f.params.get(i) else {
                            continue;
                        };
                        let dst = StorageKey::Var(*pvar);
                        let root = root_of_value(m, f, &defs, a);
                        if let Some(src) = root.key {
                            add_edge(&mut facts, src, dst, root.casted);
                            if root.is_address {
                                address_escape(m, &mut facts, &mut touch, root, aty, scope);
                            }
                            // Lost-type double-pointer site (§4.7.7): the
                            // callee will access the inner pointer through
                            // its own (universal) view, so the two content
                            // classes must be compatible in every
                            // mechanism. The double pointer itself is
                            // protected separately by the CE/FE runtime.
                            let orig_ty = root.root_ty.unwrap_or(aty);
                            if root.casted
                                && orig_ty != aty
                                && m.types.ptr_depth(orig_ty) >= 2
                                && m.types.ptr_depth(aty) >= 2
                            {
                                let oc = m.types.pointee(orig_ty).expect("depth>=2");
                                let ac = m.types.pointee(aty).expect("depth>=2");
                                let (ka, kb) =
                                    (StorageKey::TypeOf(oc), StorageKey::TypeOf(ac));
                                touch(&mut facts, ka, oc, scope);
                                touch(&mut facts, kb, ac, scope);
                                if let (Some(&ia), Some(&ib)) =
                                    (facts.index.get(&ka), facts.index.get(&kb))
                                {
                                    if ia != ib
                                        && !facts.forced_unions.contains(&(ia, ib))
                                    {
                                        facts.forced_unions.push((ia, ib));
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Scope computation: decl ∪ use, then same-type escape widening.
    for v in &mut facts.vars {
        v.scopes = v.use_scopes.clone();
        if let Some(d) = v.decl_scope {
            v.scopes.insert(d);
        }
    }
    widen_scopes(&mut facts);
    facts
}

/// Handles an escaping address-of: the pointed-to storage becomes
/// reachable anonymously, so it must share a class with `TypeOf(content)`
/// — and, when the address escaped through a cast (`(void**)&p`), with the
/// content type of the *viewed* pointer too, since consumers will load
/// through that view (§4.7.7's lost-type aliasing, whether the consumer is
/// a callee or — after inlining — the very same function).
fn address_escape(
    m: &Module,
    facts: &mut StiFacts,
    touch: &mut impl FnMut(&mut StiFacts, StorageKey, TypeId, Scope),
    root: crate::storage::ValueRoot,
    viewed_ty: TypeId,
    scope: Scope,
) {
    let (Some(key), Some(addr_ty)) = (root.key, root.root_ty) else {
        return;
    };
    let Some(content) = m.types.pointee(addr_ty) else {
        return;
    };
    if !m.types.is_ptr(content) {
        return; // only pointer-holding storage matters to STI
    }
    let mut union_with = |facts: &mut StiFacts, anon_ty: TypeId| {
        let anon = StorageKey::TypeOf(anon_ty);
        touch(facts, anon, anon_ty, scope);
        let (Some(&a), Some(&b)) = (facts.index.get(&key), facts.index.get(&anon)) else {
            return;
        };
        if a != b && !facts.forced_unions.contains(&(a, b)) {
            facts.forced_unions.push((a, b));
        }
        add_edge(facts, key, anon, false);
    };
    union_with(facts, content);
    // Cast view: `(T2**) &p` makes `p`'s slot readable as T2*.
    if root.casted {
        if let Some(viewed_content) = m.types.pointee(viewed_ty) {
            if m.types.is_ptr(viewed_content) && viewed_content != content {
                union_with(facts, viewed_content);
            }
        }
    }
}

fn add_edge(facts: &mut StiFacts, a: StorageKey, b: StorageKey, casted: bool) {
    let (Some(&ai), Some(&bi)) = (facts.index.get(&a), facts.index.get(&b)) else {
        return;
    };
    if ai == bi {
        return;
    }
    if !facts
        .edges
        .iter()
        .any(|e| (e.a == ai && e.b == bi || e.a == bi && e.b == ai) && e.casted == casted)
    {
        facts.edges.push(FlowEdge { a: ai, b: bi, casted });
    }
}

/// Escape widening: when a variable's value flows (possibly through casts
/// and intermediate variables) to *another variable of the same basic
/// type*, both — and the intermediaries — belong to the same dynamic
/// extent, so each same-typed variable's scope widens to the declaration
/// scopes of the whole flow component. A type with only one variable in the
/// component keeps its narrow scope. This reproduces the paper's Figure 5a
/// table: `ctx*` pointers get scope {main, foo, bar, foo2}, while the lone
/// `void*` parameter keeps scope {foo2}.
fn widen_scopes(facts: &mut StiFacts) {
    let n = facts.vars.len();
    let mut uf = UnionFind::new(n);
    for e in &facts.edges {
        uf.union(e.a, e.b);
    }
    // component → decl scopes of all members, and type-count per component.
    let mut comp_scopes: HashMap<usize, BTreeSet<Scope>> = HashMap::new();
    let mut comp_type_count: HashMap<(usize, TypeId), usize> = HashMap::new();
    for i in 0..n {
        let c = uf.find(i);
        if let Some(d) = facts.vars[i].decl_scope {
            comp_scopes.entry(c).or_default().insert(d);
        }
        *comp_type_count.entry((c, facts.vars[i].ty)).or_insert(0) += 1;
    }
    for i in 0..n {
        let c = uf.find(i);
        let ty = facts.vars[i].ty;
        if comp_type_count.get(&(c, ty)).copied().unwrap_or(0) >= 2 {
            if let Some(ws) = comp_scopes.get(&c) {
                facts.vars[i].scopes.extend(ws.iter().copied());
            }
        }
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n).collect() }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Runs the full analysis for a mechanism.
pub fn analyze(m: &Module, mechanism: Mechanism) -> StiAnalysis {
    let facts = collect_facts(m);
    let tel = rsti_telemetry::global();
    let _span = tel.span(rsti_telemetry::Phase::Analyze);
    let a = build_classes(m, facts, mechanism);
    use rsti_telemetry::CounterId;
    let id = match mechanism {
        Mechanism::Stwc => CounterId::ClassesStwc,
        Mechanism::Stc => CounterId::ClassesStc,
        Mechanism::Stl => CounterId::ClassesStl,
        Mechanism::Parts => CounterId::ClassesParts,
    };
    tel.add(id, a.classes.len() as u64);
    a
}

fn build_classes(m: &Module, facts: StiFacts, mechanism: Mechanism) -> StiAnalysis {
    let n = facts.vars.len();
    let mut class_of_var = vec![0usize; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();

    match mechanism {
        Mechanism::Stl => {
            // One class per variable.
            for (i, c) in class_of_var.iter_mut().enumerate() {
                *c = groups.len();
                groups.push(vec![i]);
            }
        }
        Mechanism::Parts => {
            // Basic type only.
            let mut by_ty: BTreeMap<TypeId, usize> = BTreeMap::new();
            for (i, c) in class_of_var.iter_mut().enumerate() {
                let g = *by_ty.entry(facts.vars[i].ty).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                *c = g;
                groups[g].push(i);
            }
        }
        Mechanism::Stwc | Mechanism::Stc => {
            // Group by (type, scope set, permission).
            let mut by_key: BTreeMap<(TypeId, Vec<Scope>, bool), usize> = BTreeMap::new();
            for (i, c) in class_of_var.iter_mut().enumerate() {
                let v = &facts.vars[i];
                let key = (v.ty, v.scopes.iter().copied().collect::<Vec<_>>(), v.writable);
                let g = *by_key.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                *c = g;
                groups[g].push(i);
            }
        }
    }

    // Cross-class merges: STC combines cast-compatible classes; every
    // mechanism honours the forced (address-escape) unions.
    let mut pairs: Vec<(usize, usize)> = facts.forced_unions.clone();
    if mechanism == Mechanism::Stc {
        for e in &facts.edges {
            if e.casted {
                pairs.push((e.a, e.b));
            }
        }
    }
    if !pairs.is_empty() {
        let mut uf = UnionFind::new(groups.len());
        for (a, b) in pairs {
            uf.union(class_of_var[a], class_of_var[b]);
        }
        let mut remap: HashMap<usize, usize> = HashMap::new();
        let mut merged: Vec<Vec<usize>> = Vec::new();
        for (gi, g) in groups.iter().enumerate() {
            let root = uf.find(gi);
            let slot = *remap.entry(root).or_insert_with(|| {
                merged.push(Vec::new());
                merged.len() - 1
            });
            merged[slot].extend(g.iter().copied());
        }
        groups = merged;
        for (gi, g) in groups.iter().enumerate() {
            for &v in g {
                class_of_var[v] = gi;
            }
        }
    }

    // Materialize classes with modifiers.
    let mut classes = Vec::with_capacity(groups.len());
    for g in &groups {
        let mut types = BTreeSet::new();
        let mut scopes = BTreeSet::new();
        let mut writable = false;
        let mut code_ptr = false;
        for &vi in g {
            let v = &facts.vars[vi];
            types.insert(v.ty);
            scopes.extend(v.scopes.iter().copied());
            writable |= v.writable;
            code_ptr |= v.is_code_ptr;
        }
        let mut desc = format!("{mechanism}|");
        for t in &types {
            desc.push_str(&m.types.display(*t));
            desc.push(';');
        }
        desc.push('|');
        // PARTS ignores scope and permission in the modifier.
        if mechanism != Mechanism::Parts {
            for s in &scopes {
                desc.push_str(&scope_name(m, *s));
                desc.push(';');
            }
            desc.push('|');
            desc.push(if writable { 'W' } else { 'R' });
        }
        // STL keys each variable separately: two same-fact variables must
        // not share even the static part of the modifier (the location is
        // mixed in on top at runtime).
        if mechanism == Mechanism::Stl {
            for &vi in g {
                desc.push('|');
                desc.push_str(&facts.vars[vi].name);
                desc.push_str(&format!("#{vi}"));
            }
        }
        let modifier = fnv1a(desc.as_bytes());
        classes.push(RstiClass {
            types,
            scopes,
            writable,
            members: g.clone(),
            modifier,
            code_ptr,
        });
    }

    StiAnalysis { mechanism, classes, class_of_var, facts }
}

/// Count of distinct *basic pointer types* among a module's pointer
/// variables — the "NT" column of Table 3.
pub fn basic_type_count(facts: &StiFacts) -> usize {
    facts.vars.iter().map(|v| v.ty).collect::<BTreeSet<_>>().len()
}

/// Whether a type is a "universal pointer" (`void*` / `char*`), treated
/// like any other type by RSTI (§4.7.3) but interesting to report.
pub fn is_universal_ptr(m: &Module, ty: TypeId) -> bool {
    match m.types.get(ty) {
        Type::Ptr(p) => matches!(m.types.get(*p), Type::Void | Type::I8),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsti_frontend::compile;

    /// The paper's Figure 5 program, in MiniC.
    const FIG5: &str = r#"
        struct ctx { void (*send_file)(int x); };
        void foo(struct ctx* c) { }
        void bar(struct ctx* c) { }
        void foo2(void* v_ctx) {
            foo((struct ctx*) v_ctx);
            bar((struct ctx*) v_ctx);
        }
        int main() {
            struct ctx* c = (struct ctx*) malloc(sizeof(struct ctx));
            const void* v_const = malloc(1);
            foo2((void*) c);
            return 0;
        }
    "#;

    fn names(m: &Module, facts: &StiFacts, idxs: &[usize]) -> Vec<String> {
        let mut v: Vec<String> = idxs.iter().map(|&i| facts.vars[i].name.clone()).collect();
        v.sort();
        let _ = m;
        v
    }

    fn scope_names(m: &Module, scopes: &BTreeSet<Scope>) -> BTreeSet<String> {
        scopes.iter().map(|&s| scope_name(m, s)).collect()
    }

    #[test]
    fn fig5a_stwc_builds_three_named_classes() {
        let m = compile(FIG5, "fig5").unwrap();
        let a = analyze(&m, Mechanism::Stwc);
        // Classes containing the named variables from the paper's table.
        let c_cls = a.class_of(key_of(&a, "c")).unwrap();
        let vctx_cls = a.class_of(key_of(&a, "v_ctx")).unwrap();
        let vconst_cls = a.class_of(key_of(&a, "v_const")).unwrap();

        // M1: ctx* with scope {main, foo, bar, foo2}, R/W.
        assert_eq!(c_cls.types.len(), 1);
        assert_eq!(m.types.display(*c_cls.types.iter().next().unwrap()), "struct ctx*");
        assert_eq!(
            scope_names(&m, &c_cls.scopes),
            ["main", "foo", "bar", "foo2"].iter().map(|s| s.to_string()).collect()
        );
        assert!(c_cls.writable);
        // The two ctx* params of foo and bar share M1 with c.
        assert!(names(&m, &a.facts, &c_cls.members).contains(&"c".to_string()));
        assert!(
            c_cls.members.len() >= 3,
            "c plus the foo/bar params: {:?}",
            names(&m, &a.facts, &c_cls.members)
        );

        // M2: void* with scope {foo2}, R/W.
        assert_eq!(scope_names(&m, &vctx_cls.scopes), ["foo2".to_string()].into());
        assert!(vctx_cls.writable);

        // M3: void* with scope {main}, read-only.
        assert_eq!(scope_names(&m, &vconst_cls.scopes), ["main".to_string()].into());
        assert!(!vconst_cls.writable);

        // Three distinct modifiers.
        let mods = [c_cls.modifier, vctx_cls.modifier, vconst_cls.modifier];
        assert_eq!(mods.iter().collect::<BTreeSet<_>>().len(), 3);
    }

    #[test]
    fn fig5b_stc_merges_cast_compatible_types() {
        let m = compile(FIG5, "fig5").unwrap();
        let a = analyze(&m, Mechanism::Stc);
        let c_cls = a.class_of(key_of(&a, "c")).unwrap();
        let vctx_cls = a.class_of(key_of(&a, "v_ctx")).unwrap();
        let vconst_cls = a.class_of(key_of(&a, "v_const")).unwrap();
        // ctx* and void* combined into one RSTI-type...
        assert_eq!(c_cls.modifier, vctx_cls.modifier);
        let tys: BTreeSet<String> =
            c_cls.types.iter().map(|t| m.types.display(*t)).collect();
        assert!(tys.contains("struct ctx*") && tys.contains("void*"));
        // ...but the const void* stays separate (M2 in Figure 5b).
        assert_ne!(c_cls.modifier, vconst_cls.modifier);
    }

    #[test]
    fn fig5c_stl_gives_every_variable_its_own_class() {
        let m = compile(FIG5, "fig5").unwrap();
        let a = analyze(&m, Mechanism::Stl);
        for cls in &a.classes {
            assert_eq!(cls.members.len(), 1, "STL classes are singletons");
        }
        // c, v_ctx, v_const, foo's c, bar's c all distinct (paper's M1–M5,
        // modulo the struct field and anonymous storage also present).
        let keys = ["c", "v_ctx", "v_const"];
        let mods: BTreeSet<u64> = keys
            .iter()
            .map(|n| a.modifier_of(key_of(&a, n)).unwrap())
            .collect();
        assert_eq!(mods.len(), 3);
    }

    #[test]
    fn fig8_merging_table() {
        let src = r#"
            void foo() {
                void* p1;
                void* p2;
                int* p3;
                int x = 0;
                p3 = &x;
                p1 = (void*) p3;
                p2 = p1;
            }
            int main() { foo(); return 0; }
        "#;
        let m = compile(src, "fig8").unwrap();

        // STWC: p1 and p2 share a class (same scope-type); p3 separate.
        let a = analyze(&m, Mechanism::Stwc);
        let (p1, p2, p3) = (
            a.modifier_of(key_of(&a, "p1")).unwrap(),
            a.modifier_of(key_of(&a, "p2")).unwrap(),
            a.modifier_of(key_of(&a, "p3")).unwrap(),
        );
        assert_eq!(p1, p2, "STWC merges p1 and p2");
        assert_ne!(p1, p3, "STWC does not merge p1 and p3");

        // STC: all three merge through the cast.
        let a = analyze(&m, Mechanism::Stc);
        let (p1, p2, p3) = (
            a.modifier_of(key_of(&a, "p1")).unwrap(),
            a.modifier_of(key_of(&a, "p2")).unwrap(),
            a.modifier_of(key_of(&a, "p3")).unwrap(),
        );
        assert_eq!(p1, p2);
        assert_eq!(p1, p3, "STC merges across the cast");

        // STL: nothing merges.
        let a = analyze(&m, Mechanism::Stl);
        let (p1, p2, p3) = (
            a.modifier_of(key_of(&a, "p1")).unwrap(),
            a.modifier_of(key_of(&a, "p2")).unwrap(),
            a.modifier_of(key_of(&a, "p3")).unwrap(),
        );
        assert_ne!(p1, p2);
        assert_ne!(p1, p3);
        assert_ne!(p2, p3);
    }

    #[test]
    fn fig6_composite_field_scope_includes_struct_and_user() {
        let src = r#"
            void hello_func() { print_str("Hello!"); }
            struct node { int key; int (*fp)(); struct node* next; };
            int main() {
                struct node* ptr = (struct node*) malloc(sizeof(struct node));
                ptr->fp = hello_func;
                ptr->fp();
                return 0;
            }
        "#;
        let m = compile(src, "fig6").unwrap();
        let a = analyze(&m, Mechanism::Stwc);
        let sid = m.types.struct_by_name("node").unwrap();
        let def = m.types.struct_def(sid);
        let fp_idx = def.field_index("fp").unwrap() as u32;
        let cls = a.class_of(StorageKey::Field(sid, fp_idx)).unwrap();
        let sn = scope_names(&m, &cls.scopes);
        assert!(sn.contains("struct node"), "composite type is part of the scope: {sn:?}");
        assert!(sn.contains("main"), "using function is part of the scope: {sn:?}");
        assert!(cls.code_ptr, "fp holds a code pointer");
    }

    #[test]
    fn parts_groups_by_type_only() {
        let m = compile(FIG5, "fig5").unwrap();
        let a = analyze(&m, Mechanism::Parts);
        // v_ctx (void*, foo2, RW) and v_const (void*, main, R) — different
        // scope-type facts, but PARTS lumps them together.
        assert_eq!(
            a.modifier_of(key_of(&a, "v_ctx")).unwrap(),
            a.modifier_of(key_of(&a, "v_const")).unwrap(),
            "PARTS cannot distinguish same-basic-type pointers"
        );
        // RSTI-STWC can.
        let b = analyze(&m, Mechanism::Stwc);
        assert_ne!(
            b.modifier_of(key_of(&b, "v_ctx")).unwrap(),
            b.modifier_of(key_of(&b, "v_const")).unwrap()
        );
    }

    #[test]
    fn modifiers_are_deterministic() {
        let m = compile(FIG5, "fig5").unwrap();
        let a1 = analyze(&m, Mechanism::Stwc);
        let a2 = analyze(&m, Mechanism::Stwc);
        for (x, y) in a1.classes.iter().zip(a2.classes.iter()) {
            assert_eq!(x.modifier, y.modifier);
        }
    }

    /// Finds the storage key of a named variable.
    fn key_of(a: &StiAnalysis, name: &str) -> StorageKey {
        a.facts
            .vars
            .iter()
            .find(|v| v.name == name)
            .unwrap_or_else(|| panic!("no pointer var `{name}`"))
            .key
    }

    /// Found by differential fuzzing (tests/corpus/global_addr_escape.mc):
    /// `&g` on a *global* pointer variable must demote `g` into its type's
    /// anonymous class exactly like `&local` does. Before the fix,
    /// `root_of_value` returned no root for `Operand::GlobalAddr`, so the
    /// store `saved = &x` signed with `saved`'s own class while the callee's
    /// `*pp` load authenticated against `TypeOf(long*)` — a false PAC trap
    /// on a benign program.
    #[test]
    fn address_escaped_global_joins_its_anonymous_type_class() {
        let src = r#"
            long* saved;
            void bump(long** pp) {
                if (*pp != null) { **pp = **pp + 1; }
            }
            int main() {
                long x = 5;
                saved = &x;
                bump(&saved);
                return 0;
            }
        "#;
        let m = compile(src, "t").unwrap();
        let saved_ty = m
            .vars
            .iter()
            .find(|v| v.name == "saved")
            .expect("saved has a VarInfo")
            .ty;
        for mech in Mechanism::ALL {
            let a = analyze(&m, mech);
            let saved = a.modifier_of(key_of(&a, "saved")).unwrap();
            let anon = a
                .modifier_of(StorageKey::TypeOf(saved_ty))
                .expect("anonymous long* storage exists");
            assert_eq!(
                saved, anon,
                "{mech}: address-escaped global must share the anonymous class"
            );
        }
    }
}
