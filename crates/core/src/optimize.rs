//! Redundant-authentication elision — the optimization story behind the
//! paper's numbers, made explicit.
//!
//! The paper credits its low overhead to the compiler being allowed to
//! optimize the PA instrumentation: "The LLVM pointer authentication
//! intrinsics allow authentication to happen without spilling to memory,
//! due to them being optimized in the compiler ... the authenticated
//! address is always in a register" (§4.7.2), and the PARTS comparison
//! attributes the 19.5%-vs-1.54% gap to exactly this (§6.3.2).
//!
//! Our MiniC lowering is -O0-style (every local in a slot), so the same
//! pointer slot is often loaded — and re-authenticated — several times in
//! a straight line. This pass removes the provably redundant re-checks:
//! within one basic block, if slot `P` was loaded and authenticated under
//! modifier `M`, a later identical load+auth pair can reuse the earlier
//! authenticated value, as long as nothing in between could have changed
//! memory (stores, calls, frees).
//!
//! Like keeping authenticated pointers in registers on real hardware,
//! elision trades a *narrower re-check window* for speed: corruption that
//! lands between the first check and an elided one goes unnoticed until
//! the value is next reloaded. That is precisely the paper's register
//! residency semantics — registers are outside the §3 threat model.

use rsti_ir::{Inst, InstNode, Module, Operand, ValueId};
use std::collections::HashMap;

/// Runs elision over every function; returns the number of authentication
/// operations removed.
pub fn elide_redundant_auths(m: &mut Module) -> usize {
    let mut elided = 0;
    for f in &mut m.funcs {
        if f.is_external {
            continue;
        }
        for blk in &mut f.blocks {
            elided += elide_block(&mut blk.insts);
        }
    }
    // NB: the module holds placeholder types until
    // `patch_placeholder_types` runs; `optimize_program` verifies after.
    elided
}

/// Cache key: the address operand must be *syntactically identical* (same
/// value id or same constant) — a conservative alias-free guarantee.
#[derive(PartialEq, Eq, Hash, Clone)]
enum SlotKey {
    Value(ValueId),
    Global(u32),
}

fn slot_key(op: &Operand) -> Option<SlotKey> {
    match op {
        Operand::Value(v) => Some(SlotKey::Value(*v)),
        Operand::GlobalAddr(g, _) => Some(SlotKey::Global(g.0)),
        _ => None,
    }
}

fn elide_block(insts: &mut Vec<InstNode>) -> usize {
    // (slot, modifier, key) → the authenticated result value.
    let mut cache: HashMap<(SlotKey, u64, rsti_ir::PacKey), ValueId> = HashMap::new();
    // Loads awaiting their PacAuth: raw result → slot key.
    let mut pending_loads: HashMap<ValueId, SlotKey> = HashMap::new();
    let mut elided = 0;

    let out: Vec<InstNode> = insts
        .drain(..)
        .map(|node| {
            let new_inst = match &node.inst {
                Inst::Load { result, ptr, ty } => {
                    if let Some(k) = slot_key(ptr) {
                        pending_loads.insert(*result, k);
                    }
                    Inst::Load { result: *result, ptr: ptr.clone(), ty: *ty }
                }
                // STL modifiers depend on the location operand, but eliding
                // is still sound: the slot-key match guarantees the same
                // slot, hence the same location, hence the same modifier.
                Inst::PacAuth { result, value: Operand::Value(raw), key, modifier, .. } => {
                    match pending_loads.remove(raw) {
                        Some(slot) => {
                            let cache_key = (slot, *modifier, *key);
                            if let Some(&prev) = cache.get(&cache_key) {
                                elided += 1;
                                // Reuse the previously authenticated value:
                                // a register-to-register copy.
                                Inst::BitCast {
                                    result: *result,
                                    value: prev.into(),
                                    to: auth_result_ty_placeholder(),
                                }
                            } else {
                                cache.insert(cache_key, *result);
                                node.inst.clone()
                            }
                        }
                        None => node.inst.clone(),
                    }
                }
                // Anything that can write memory invalidates the cache.
                Inst::Store { .. }
                | Inst::Call { .. }
                | Inst::CallIndirect { .. }
                | Inst::Free { .. }
                | Inst::Malloc { .. } => {
                    cache.clear();
                    node.inst.clone()
                }
                _ => node.inst.clone(),
            };
            InstNode { inst: new_inst, loc: node.loc }
        })
        .collect();
    *insts = out;
    elided
}

// The BitCast `to` type is cosmetic at runtime (the VM copies the value);
// for the verifier it must be a pointer type. We patch it up in a second
// pass because the correct type is the result register's declared type.
fn auth_result_ty_placeholder() -> rsti_ir::TypeId {
    rsti_ir::TypeId(u32::MAX)
}

/// Fixes the placeholder types left by [`elide_redundant_auths`] using the
/// function's value-type table. Exposed separately for testability;
/// [`optimize_program`] runs both.
pub fn patch_placeholder_types(m: &mut Module) {
    for f in &mut m.funcs {
        let types = f.value_types.clone();
        for blk in &mut f.blocks {
            for node in &mut blk.insts {
                if let Inst::BitCast { result, to, .. } = &mut node.inst {
                    if *to == auth_result_ty_placeholder() {
                        *to = types[result.0 as usize];
                    }
                }
            }
        }
    }
}

/// Register promotion of single-store pointer slots — the reproduction's
/// mem2reg. A slot qualifies when it is an entry-block `alloca` of pointer
/// type whose address is used *only* as the direct target of exactly one
/// entry-block store (the param spill / initializer) and of loads. The
/// pointer is then loaded-and-authenticated once, right after the store,
/// and every later load+auth pair becomes a register copy — exactly the
/// "authenticated address is always in a register" behaviour the paper's
/// O2 pipeline exhibits (§4.7.2).
///
/// Returns the number of load(+auth) sites promoted to copies.
pub fn promote_single_store_slots(m: &mut Module) -> usize {
    let mut promoted = 0;
    let types = &m.types;
    for f in &mut m.funcs {
        if f.is_external || f.blocks.is_empty() {
            continue;
        }
        promoted += promote_in_function(types, f);
    }
    promoted
}

fn promote_in_function(types: &rsti_ir::TypeTable, f: &mut rsti_ir::Function) -> usize {
    use std::collections::{HashMap as Map, HashSet};

    // 1. Usage census over the original body.
    #[derive(Default)]
    struct Usage {
        stores: Vec<(usize, usize)>, // (block, index) of Store { ptr = slot }
        loads: usize,
        other: bool,
        in_entry_alloca: bool,
    }
    let mut usage: Map<ValueId, Usage> = Map::new();

    for (bi, blk) in f.blocks.iter().enumerate() {
        for (ii, node) in blk.insts.iter().enumerate() {
            match &node.inst {
                Inst::Alloca { result, .. } => {
                    let u = usage.entry(*result).or_default();
                    u.in_entry_alloca = bi == 0;
                }
                Inst::Store { value, ptr } => {
                    if let Operand::Value(v) = ptr {
                        usage.entry(*v).or_default().stores.push((bi, ii));
                    }
                    if let Operand::Value(v) = value {
                        usage.entry(*v).or_default().other = true;
                    }
                }
                Inst::Load { ptr, .. } => {
                    if let Operand::Value(v) = ptr {
                        usage.entry(*v).or_default().loads += 1;
                    }
                }
                other => {
                    for op in other.operands() {
                        if let Operand::Value(v) = op {
                            usage.entry(*v).or_default().other = true;
                        }
                    }
                }
            }
        }
        // Terminator operands count as "other" uses.
        if let rsti_ir::Terminator::CondBr { cond: Operand::Value(v), .. } = &blk.term {
            usage.entry(*v).or_default().other = true;
        }
        if let rsti_ir::Terminator::Ret(Some(Operand::Value(v))) = &blk.term {
            usage.entry(*v).or_default().other = true;
        }
    }

    let candidates: HashSet<ValueId> = usage
        .iter()
        .filter(|(_, u)| {
            u.in_entry_alloca
                && !u.other
                && u.stores.len() == 1
                && u.stores[0].0 == 0
                && u.loads >= 2
        })
        .map(|(v, _)| *v)
        .collect();
    if candidates.is_empty() {
        return 0;
    }

    // 2. Per-candidate: is every entry-block load after the store? And is
    // there an auth following each load (instrumented) or not (baseline)?
    let mut rewrite: Map<ValueId, (usize, usize)> = Map::new(); // slot -> store pos
    for &slot in &candidates {
        let (sb, si) = usage[&slot].stores[0];
        debug_assert_eq!(sb, 0);
        let mut ok = true;
        for (ii, node) in f.blocks[0].insts.iter().enumerate() {
            if let Inst::Load { ptr: Operand::Value(v), .. } = &node.inst {
                if *v == slot && ii < si {
                    ok = false;
                }
            }
        }
        if ok {
            rewrite.insert(slot, (sb, si));
        }
    }
    if rewrite.is_empty() {
        return 0;
    }

    // 3. Rewrite. For each promoted slot, find the modifier/key from the
    // first load's following auth (if any), insert the canonical
    // load(+auth) right after the store, then convert every load(+auth)
    // of the slot into copies.
    let mut promoted = 0usize;
    let mut fresh = {
        let mut next = f.value_types.len() as u32;
        move |tys: &mut Vec<rsti_ir::TypeId>, ty: rsti_ir::TypeId| {
            let id = ValueId(next);
            next += 1;
            tys.push(ty);
            id
        }
    };

    // Descending store order: insertions into the entry block must not
    // shift the recorded positions of slots processed later.
    let mut order: Vec<(ValueId, usize)> =
        rewrite.iter().map(|(&v, &(_, i))| (v, i)).collect();
    order.sort_by_key(|e| std::cmp::Reverse(e.1));
    for (slot, store_idx) in order {
        // Find one auth template + the load type.
        let mut load_ty = None;
        let mut auth_template = None;
        let mut load_results: HashSet<ValueId> = HashSet::new();
        for blk in &f.blocks {
            for (ii, node) in blk.insts.iter().enumerate() {
                if let Inst::Load { result, ptr: Operand::Value(v), ty } = &node.inst {
                    if *v == slot {
                        load_ty = Some(*ty);
                        load_results.insert(*result);
                        // Auth directly consuming this load?
                        if let Some(Inst::PacAuth { key, modifier, loc, site, .. }) =
                            blk.insts.get(ii + 1).map(|n| &n.inst)
                        {
                            auth_template = Some((*key, *modifier, loc.clone(), *site));
                        }
                        if let Some(Inst::PpAuth { .. }) =
                            blk.insts.get(ii + 1).map(|n| &n.inst)
                        {
                            // pp-authenticated slots are left alone: their
                            // tags must be revalidated per load.
                            auth_template = None;
                            load_results.clear();
                        }
                    }
                }
            }
        }
        let Some(load_ty) = load_ty else { continue };
        if load_results.is_empty() {
            continue;
        }
        // Only promote pointer-typed content (what instrumentation cares
        // about; scalar slots are cheap anyway).
        // `load_ty` pointer-ness is checked by the caller's type table via
        // the auth presence; without an auth (baseline) we still promote.

        // Insert canonical load (+ auth) after the store.
        let loc_of_store = f.blocks[0].insts[store_idx].loc;
        let raw = fresh(&mut f.value_types, load_ty);
        let mut insert_at = store_idx + 1;
        f.blocks[0].insts.insert(
            insert_at,
            InstNode {
                inst: Inst::Load { result: raw, ptr: slot.into(), ty: load_ty },
                loc: loc_of_store,
            },
        );
        insert_at += 1;
        let canonical = if let Some((key, modifier, loc, site)) = &auth_template {
            let authed = fresh(&mut f.value_types, load_ty);
            f.blocks[0].insts.insert(
                insert_at,
                InstNode {
                    inst: Inst::PacAuth {
                        result: authed,
                        value: raw.into(),
                        key: *key,
                        modifier: *modifier,
                        loc: loc.clone(),
                        site: *site,
                    },
                    loc: loc_of_store,
                },
            );
            authed
        } else {
            raw
        };

        // Convert all original load(+auth) pairs of this slot to copies.
        // Pointers copy via `bitcast`, scalars via `convert` — both are
        // 1-cycle register moves in the VM; the distinction only keeps the
        // verifier's type rules happy.
        let is_ptr = types.is_ptr(load_ty);
        let copy = |result: ValueId| {
            if is_ptr {
                Inst::BitCast { result, value: canonical.into(), to: load_ty }
            } else {
                Inst::Convert { result, value: canonical.into(), to: load_ty }
            }
        };
        for blk in &mut f.blocks {
            for node in &mut blk.insts {
                match &node.inst {
                    Inst::Load { result, ptr: Operand::Value(v), .. }
                        if *v == slot && *result != raw =>
                    {
                        node.inst = copy(*result);
                        promoted += 1;
                    }
                    Inst::PacAuth { result, value: Operand::Value(rv), .. }
                        if load_results.contains(rv) =>
                    {
                        node.inst = copy(*result);
                    }
                    _ => {}
                }
            }
        }
    }
    promoted
}

/// The full optimization pipeline over an instrumented module. Returns
/// the number of removed/promoted authentication sites.
pub fn optimize_program(p: &mut crate::instrument::InstrumentedProgram) -> usize {
    let tel = rsti_telemetry::global();
    let _span = tel.span(rsti_telemetry::Phase::Optimize);
    let a = promote_single_store_slots(&mut p.module);
    let b = elide_redundant_auths(&mut p.module);
    patch_placeholder_types(&mut p.module);
    debug_assert!(
        rsti_ir::verify_module(&p.module).is_ok(),
        "{:?}",
        rsti_ir::verify_module(&p.module).err()
    );
    tel.add(rsti_telemetry::CounterId::AuthsElided, (a + b) as u64);
    a + b
}

/// Baseline counterpart: promotes the same slots in an *uninstrumented*
/// module so overhead comparisons stay fair (both sides get mem2reg).
pub fn optimize_baseline(m: &mut Module) -> usize {
    let a = promote_single_store_slots(m);
    let b = elide_redundant_auths(m);
    patch_placeholder_types(m);
    debug_assert!(rsti_ir::verify_module(m).is_ok());
    a + b
}

/// Leaf-function inlining — the LTO/O2 component of the paper's pipeline
/// (§5: the pass runs in the LTO phase over the combined module, with the
/// runtime library inlined; §6.3.2 credits "LTO and -O2 optimizations"
/// for the gap to PARTS).
///
/// A callee qualifies when it is defined, is not the caller, contains no
/// calls of its own (leaf), and is at most `max_insts` instructions.
/// Every qualifying direct call site is replaced by a spliced copy of the
/// callee's body. Run **before** instrumentation, like LLVM's inliner runs
/// before the RSTI pass: argument-passing boundaries disappear, so STL has
/// nothing to re-sign there — exactly the effect O2 inlining has on the
/// paper's numbers.
///
/// Returns the number of call sites inlined.
pub fn inline_leaf_functions(m: &mut Module, max_insts: usize) -> usize {
    use rsti_ir::{BasicBlock, BlockId, Terminator};

    fn is_leaf(f: &rsti_ir::Function) -> bool {
        !f.is_external
            && !f.blocks.is_empty()
            && f.insts().all(|n| {
                !matches!(n.inst, Inst::Call { .. } | Inst::CallIndirect { .. })
            })
    }

    let leafs: Vec<bool> = m.funcs.iter().map(is_leaf).collect();
    let sizes: Vec<usize> = m.funcs.iter().map(|f| f.inst_count()).collect();
    let mut inlined = 0usize;

    for caller_idx in 0..m.funcs.len() {
        if m.funcs[caller_idx].is_external {
            continue;
        }
        // Find one inlinable call site at a time; repeat until none left
        // (inlined leaf bodies introduce no new calls).
        loop {
            let site = {
                let f = &m.funcs[caller_idx];
                let mut found = None;
                'scan: for (bi, blk) in f.blocks.iter().enumerate() {
                    for (ii, node) in blk.insts.iter().enumerate() {
                        if let Inst::Call { callee, .. } = &node.inst {
                            let ci = callee.0 as usize;
                            if ci != caller_idx && leafs[ci] && sizes[ci] <= max_insts {
                                found = Some((bi, ii));
                                break 'scan;
                            }
                        }
                    }
                }
                found
            };
            let Some((bi, ii)) = site else { break };

            // Clone what we need from the callee before mutating the caller.
            let (callee_id, result, args) = {
                let node = &m.funcs[caller_idx].blocks[bi].insts[ii];
                match &node.inst {
                    Inst::Call { result, callee, args } => {
                        (*callee, *result, args.clone())
                    }
                    _ => unreachable!("site points at a call"),
                }
            };
            let callee = m.funcs[callee_id.0 as usize].clone();
            let caller = &mut m.funcs[caller_idx];

            // Value remap: callee params -> arg operands; everything else
            // gets fresh caller ids.
            let value_base = caller.value_types.len() as u32;
            let mut param_map: std::collections::HashMap<ValueId, Operand> =
                std::collections::HashMap::new();
            for (i, (pv, _)) in callee.params.iter().enumerate() {
                param_map.insert(*pv, args[i].clone());
            }
            let remap_val = |v: ValueId, param_map: &std::collections::HashMap<ValueId, Operand>| -> Operand {
                param_map
                    .get(&v)
                    .cloned()
                    .unwrap_or(Operand::Value(ValueId(value_base + v.0)))
            };
            // Extend the caller's value table with the callee's (params
            // included; their slots go unused).
            caller.value_types.extend(callee.value_types.iter().copied());

            let block_base = caller.blocks.len() as u32;
            // The continuation receives everything after the call plus the
            // original terminator.
            let cont_id = BlockId(block_base + callee.blocks.len() as u32);
            let call_blk = &mut caller.blocks[bi];
            let tail: Vec<InstNode> = call_blk.insts.split_off(ii + 1);
            call_blk.insts.pop(); // drop the call itself
            let cont = BasicBlock {
                insts: tail,
                term: std::mem::replace(&mut call_blk.term, Terminator::Br(BlockId(block_base))),
                term_loc: call_blk.term_loc,
            };

            // Splice callee blocks, remapping operands, block ids, and
            // turning returns into copies + branches to the continuation.
            let ret_ty = callee.sig.ret;
            for (cbi, cblk) in callee.blocks.iter().enumerate() {
                let mut nb = BasicBlock::new();
                for node in &cblk.insts {
                    let mut inst = node.inst.clone();
                    remap_inst(&mut inst, value_base, &param_map, &remap_val);
                    nb.insts.push(InstNode { inst, loc: node.loc });
                }
                nb.term_loc = cblk.term_loc;
                nb.term = match &cblk.term {
                    Terminator::Br(b) => Terminator::Br(BlockId(block_base + b.0)),
                    Terminator::CondBr { cond, then_bb, else_bb } => {
                        let mut c = cond.clone();
                        remap_operand(&mut c, value_base, &param_map);
                        Terminator::CondBr {
                            cond: c,
                            then_bb: BlockId(block_base + then_bb.0),
                            else_bb: BlockId(block_base + else_bb.0),
                        }
                    }
                    Terminator::Ret(v) => {
                        if let (Some(res), Some(v)) = (result, v) {
                            let mut rv = v.clone();
                            remap_operand(&mut rv, value_base, &param_map);
                            let copy = if m.types.is_ptr(ret_ty) {
                                Inst::BitCast { result: res, value: rv, to: ret_ty }
                            } else {
                                Inst::Convert { result: res, value: rv, to: ret_ty }
                            };
                            nb.insts.push(InstNode { inst: copy, loc: cblk.term_loc });
                        }
                        Terminator::Br(cont_id)
                    }
                    Terminator::Unreachable => Terminator::Unreachable,
                };
                caller.blocks.push(nb);
                let _ = cbi;
            }
            caller.blocks.push(cont);
            inlined += 1;
        }
    }
    debug_assert!(
        rsti_ir::verify_module(m).is_ok(),
        "inliner broke the module: {:?}",
        rsti_ir::verify_module(m).err()
    );
    inlined
}

fn remap_operand(
    op: &mut Operand,
    value_base: u32,
    param_map: &std::collections::HashMap<ValueId, Operand>,
) {
    if let Operand::Value(v) = op {
        if let Some(repl) = param_map.get(v) {
            *op = repl.clone();
        } else {
            *op = Operand::Value(ValueId(value_base + v.0));
        }
    }
}

fn remap_inst(
    inst: &mut Inst,
    value_base: u32,
    param_map: &std::collections::HashMap<ValueId, Operand>,
    _remap_val: &dyn Fn(ValueId, &std::collections::HashMap<ValueId, Operand>) -> Operand,
) {
    // Results always become fresh caller values (params are never results).
    let remap_result = |r: &mut ValueId| *r = ValueId(value_base + r.0);
    match inst {
        Inst::Alloca { result, .. } => remap_result(result),
        Inst::Load { result, ptr, .. } => {
            remap_result(result);
            remap_operand(ptr, value_base, param_map);
        }
        Inst::Store { value, ptr } => {
            remap_operand(value, value_base, param_map);
            remap_operand(ptr, value_base, param_map);
        }
        Inst::FieldAddr { result, base, .. } => {
            remap_result(result);
            remap_operand(base, value_base, param_map);
        }
        Inst::IndexAddr { result, base, index, .. } => {
            remap_result(result);
            remap_operand(base, value_base, param_map);
            remap_operand(index, value_base, param_map);
        }
        Inst::BitCast { result, value, .. } | Inst::Convert { result, value, .. } => {
            remap_result(result);
            remap_operand(value, value_base, param_map);
        }
        Inst::Bin { result, lhs, rhs, .. } => {
            remap_result(result);
            remap_operand(lhs, value_base, param_map);
            remap_operand(rhs, value_base, param_map);
        }
        Inst::Cmp { result, lhs, rhs, .. } => {
            remap_result(result);
            remap_operand(lhs, value_base, param_map);
            remap_operand(rhs, value_base, param_map);
        }
        Inst::Malloc { result, size, .. } => {
            remap_result(result);
            remap_operand(size, value_base, param_map);
        }
        Inst::Free { ptr } => remap_operand(ptr, value_base, param_map),
        Inst::PrintInt { value } => remap_operand(value, value_base, param_map),
        Inst::PrintStr { .. } | Inst::PpAdd { .. } => {}
        Inst::PacSign { result, value, loc, .. } | Inst::PacAuth { result, value, loc, .. } => {
            remap_result(result);
            remap_operand(value, value_base, param_map);
            if let Some(l) = loc {
                remap_operand(l, value_base, param_map);
            }
        }
        Inst::PacStrip { result, value }
        | Inst::PpSign { result, value, .. }
        | Inst::PpAddTbi { result, value, .. }
        | Inst::PpAuth { result, value, .. } => {
            remap_result(result);
            remap_operand(value, value_base, param_map);
        }
        // Leaf callees contain no calls by construction.
        Inst::Call { .. } | Inst::CallIndirect { .. } => {
            unreachable!("leaf callee contains a call")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::instrument;
    use crate::sti::Mechanism;
    use rsti_frontend::compile;

    const REPEATY: &str = r#"
        struct s { long a; long b; };
        int main() {
            struct s* p = (struct s*) malloc(sizeof(struct s));
            // Three reads of `p` in a row: two re-auths are redundant.
            p->a = 1;
            long x = p->a + p->b;
            long y = p->b + p->a;
            return (int) (x + y);
        }
    "#;

    #[test]
    fn elides_some_auths_and_stays_well_formed() {
        let m = compile(REPEATY, "t").unwrap();
        let mut p = instrument(&m, Mechanism::Stwc);
        let before = count_auths(&p.module);
        let elided = optimize_program(&mut p);
        let after = count_auths(&p.module);
        assert!(elided > 0, "expected redundancy in {REPEATY}");
        assert!(after < before, "auths must shrink: {before} -> {after}");
        rsti_ir::verify_module(&p.module).unwrap();
    }

    #[test]
    fn stores_invalidate_the_cache() {
        let src = r#"
            int main() {
                int* p = (int*) malloc(4);
                int* q = p;      // load p (auth), store q
                *q = 5;
                int* r = p;      // p reloaded AFTER a store: must re-auth
                return *r;
            }
        "#;
        let m = compile(src, "t").unwrap();
        let mut p = instrument(&m, Mechanism::Stwc);
        optimize_program(&mut p);
        // Behaviour must be unchanged.
        rsti_ir::verify_module(&p.module).unwrap();
    }

    #[test]
    fn inliner_splices_leaf_calls() {
        let src = r#"
            long square(long x) { return x * x; }
            long twice(long x) { return x + x; }
            int main() {
                long acc = 0;
                for (int i = 0; i < 4; i = i + 1) {
                    acc = acc + square(i) + twice(i);
                }
                print_int(acc);
                return (int) acc;
            }
        "#;
        let mut m = compile(src, "t").unwrap();
        let n = inline_leaf_functions(&mut m, 32);
        assert_eq!(n, 2, "both leaf calls inlined");
        let main = m.func_by_name("main").unwrap();
        assert!(
            m.func(main)
                .insts()
                .all(|node| !matches!(node.inst, Inst::Call { .. })),
            "no direct calls remain in main"
        );
        rsti_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn inliner_skips_recursion_and_big_functions() {
        let src = r#"
            long fact(long n) {
                if (n <= 1) { return 1; }
                return n * fact(n - 1);
            }
            int main() { return (int) fact(5); }
        "#;
        let mut m = compile(src, "t").unwrap();
        assert_eq!(inline_leaf_functions(&mut m, 32), 0, "recursive callee kept");
    }

    fn count_auths(m: &rsti_ir::Module) -> usize {
        m.funcs
            .iter()
            .flat_map(|f| f.insts())
            .filter(|n| matches!(n.inst, rsti_ir::Inst::PacAuth { .. }))
            .count()
    }
}
