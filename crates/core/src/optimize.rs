//! The check optimizer — the optimization story behind the paper's
//! numbers, made explicit.
//!
//! The paper credits its low overhead to the compiler being allowed to
//! optimize the PA instrumentation: "The LLVM pointer authentication
//! intrinsics allow authentication to happen without spilling to memory,
//! due to them being optimized in the compiler ... the authenticated
//! address is always in a register" (§4.7.2), and the PARTS comparison
//! attributes the 19.5%-vs-1.54% gap to exactly this (§6.3.2).
//!
//! Our MiniC lowering is -O0-style (every local in a slot), so the same
//! pointer slot is often loaded — and re-authenticated — several times.
//! One [`OptLevel`]-driven pipeline removes the provably redundant
//! re-checks:
//!
//! * [`OptLevel::BlockLocal`] — single-store slot promotion (mem2reg)
//!   plus a per-block available-auth cache: if slot `P` was loaded and
//!   authenticated under modifier `M`, a later identical load+auth pair in
//!   the same block reuses the earlier authenticated value, as long as
//!   nothing in between could have changed memory (any store, call, free).
//! * [`OptLevel::Cfg`] — adds the CFG-aware stages built on `rsti-ir`'s
//!   dominator tree and loop forest: (1) **dominator-based elision** — the
//!   per-block cache generalized to "available authentications" propagated
//!   as a forward dataflow (meet = intersection over predecessors, reuse
//!   gated on the defining block dominating the use) with *refined*
//!   kill-sets: a store through an alloca's own address kills only that
//!   slot, and calls/unknown stores cannot touch a slot whose address
//!   never escaped; (2) **loop-invariant auth hoisting** — a header-
//!   resident load+auth pair of a loop-invariant slot the loop never
//!   writes moves to the loop preheader, so a hot loop pays one check per
//!   entry instead of one per iteration (the header runs at least once
//!   whenever the preheader does, so behaviour — traps included — is
//!   preserved even for zero-trip loops); (3) **precomputed PAC
//!   modifiers** — an STL location-mix (`M ^ &p`, Fig. 5c) whose location
//!   is a global folds to a plain modifier at optimize time, because the
//!   loader's global layout is deterministic
//!   ([`rsti_ir::Module::global_addresses`]), letting the VM skip
//!   per-execution modifier derivation.
//!
//! Like keeping authenticated pointers in registers on real hardware,
//! elision and hoisting trade a *narrower re-check window* for speed:
//! corruption that lands between the first check and an elided one goes
//! unnoticed until the value is next reloaded. That is precisely the
//! paper's register-residency semantics — registers (and therefore the
//! longer-lived authenticated values this pass creates) are outside the
//! §3 threat model, which grants the attacker arbitrary *memory* writes
//! only. Program outputs stay bit-identical across all levels for every
//! mechanism; `verify_module` holds after every stage boundary.

use rsti_ir::{
    BlockId, Cfg, DomTree, Inst, InstNode, LoopForest, Module, Operand, PacKey, Terminator,
    ValueId,
};
use std::collections::{HashMap, HashSet};

/// Runs elision over every function; returns the number of authentication
/// operations removed.
pub fn elide_redundant_auths(m: &mut Module) -> usize {
    let mut elided = 0;
    for f in &mut m.funcs {
        if f.is_external {
            continue;
        }
        for blk in &mut f.blocks {
            elided += elide_block(&mut blk.insts);
        }
    }
    // NB: the module holds placeholder types until
    // `patch_placeholder_types` runs; `optimize_program` verifies after.
    elided
}

/// Cache key: the address operand must be *syntactically identical* (same
/// value id or same constant) — a conservative alias-free guarantee.
#[derive(PartialEq, Eq, Hash, Clone)]
enum SlotKey {
    Value(ValueId),
    Global(u32),
}

fn slot_key(op: &Operand) -> Option<SlotKey> {
    match op {
        Operand::Value(v) => Some(SlotKey::Value(*v)),
        Operand::GlobalAddr(g, _) => Some(SlotKey::Global(g.0)),
        _ => None,
    }
}

fn elide_block(insts: &mut Vec<InstNode>) -> usize {
    // (slot, modifier, key) → the authenticated result value.
    let mut cache: HashMap<(SlotKey, u64, rsti_ir::PacKey), ValueId> = HashMap::new();
    // Loads awaiting their PacAuth: raw result → slot key.
    let mut pending_loads: HashMap<ValueId, SlotKey> = HashMap::new();
    let mut elided = 0;

    let out: Vec<InstNode> = insts
        .drain(..)
        .map(|node| {
            let new_inst = match &node.inst {
                Inst::Load { result, ptr, ty } => {
                    if let Some(k) = slot_key(ptr) {
                        pending_loads.insert(*result, k);
                    }
                    Inst::Load { result: *result, ptr: ptr.clone(), ty: *ty }
                }
                // STL modifiers depend on the location operand, but eliding
                // is still sound: the slot-key match guarantees the same
                // slot, hence the same location, hence the same modifier.
                Inst::PacAuth { result, value: Operand::Value(raw), key, modifier, .. } => {
                    match pending_loads.remove(raw) {
                        Some(slot) => {
                            let cache_key = (slot, *modifier, *key);
                            if let Some(&prev) = cache.get(&cache_key) {
                                elided += 1;
                                // Reuse the previously authenticated value:
                                // a register-to-register copy.
                                Inst::BitCast {
                                    result: *result,
                                    value: prev.into(),
                                    to: auth_result_ty_placeholder(),
                                }
                            } else {
                                cache.insert(cache_key, *result);
                                node.inst.clone()
                            }
                        }
                        None => node.inst.clone(),
                    }
                }
                // Anything that can write memory invalidates the cache.
                Inst::Store { .. }
                | Inst::Call { .. }
                | Inst::CallIndirect { .. }
                | Inst::Free { .. }
                | Inst::Malloc { .. } => {
                    cache.clear();
                    node.inst.clone()
                }
                _ => node.inst.clone(),
            };
            InstNode { inst: new_inst, loc: node.loc }
        })
        .collect();
    *insts = out;
    elided
}

// The BitCast `to` type is cosmetic at runtime (the VM copies the value);
// for the verifier it must be a pointer type. We patch it up in a second
// pass because the correct type is the result register's declared type.
fn auth_result_ty_placeholder() -> rsti_ir::TypeId {
    rsti_ir::TypeId(u32::MAX)
}

/// Fixes the placeholder types left by [`elide_redundant_auths`] using the
/// function's value-type table. Exposed separately for testability;
/// [`optimize_program`] runs both.
pub fn patch_placeholder_types(m: &mut Module) {
    for f in &mut m.funcs {
        let types = f.value_types.clone();
        for blk in &mut f.blocks {
            for node in &mut blk.insts {
                if let Inst::BitCast { result, to, .. } = &mut node.inst {
                    if *to == auth_result_ty_placeholder() {
                        *to = types[result.0 as usize];
                    }
                }
            }
        }
    }
}

/// Register promotion of single-store pointer slots — the reproduction's
/// mem2reg. A slot qualifies when it is an entry-block `alloca` of pointer
/// type whose address is used *only* as the direct target of exactly one
/// entry-block store (the param spill / initializer) and of loads. The
/// pointer is then loaded-and-authenticated once, right after the store,
/// and every later load+auth pair becomes a register copy — exactly the
/// "authenticated address is always in a register" behaviour the paper's
/// O2 pipeline exhibits (§4.7.2).
///
/// Returns the number of load(+auth) sites promoted to copies.
pub fn promote_single_store_slots(m: &mut Module) -> usize {
    let mut promoted = 0;
    let types = &m.types;
    for f in &mut m.funcs {
        if f.is_external || f.blocks.is_empty() {
            continue;
        }
        promoted += promote_in_function(types, f);
    }
    promoted
}

fn promote_in_function(types: &rsti_ir::TypeTable, f: &mut rsti_ir::Function) -> usize {
    use std::collections::{HashMap as Map, HashSet};

    // 1. Usage census over the original body.
    #[derive(Default)]
    struct Usage {
        stores: Vec<(usize, usize)>, // (block, index) of Store { ptr = slot }
        loads: usize,
        other: bool,
        in_entry_alloca: bool,
    }
    let mut usage: Map<ValueId, Usage> = Map::new();

    for (bi, blk) in f.blocks.iter().enumerate() {
        for (ii, node) in blk.insts.iter().enumerate() {
            match &node.inst {
                Inst::Alloca { result, .. } => {
                    let u = usage.entry(*result).or_default();
                    u.in_entry_alloca = bi == 0;
                }
                Inst::Store { value, ptr } => {
                    if let Operand::Value(v) = ptr {
                        usage.entry(*v).or_default().stores.push((bi, ii));
                    }
                    if let Operand::Value(v) = value {
                        usage.entry(*v).or_default().other = true;
                    }
                }
                Inst::Load { ptr, .. } => {
                    if let Operand::Value(v) = ptr {
                        usage.entry(*v).or_default().loads += 1;
                    }
                }
                other => {
                    for op in other.operands() {
                        if let Operand::Value(v) = op {
                            usage.entry(*v).or_default().other = true;
                        }
                    }
                }
            }
        }
        // Terminator operands count as "other" uses.
        if let rsti_ir::Terminator::CondBr { cond: Operand::Value(v), .. } = &blk.term {
            usage.entry(*v).or_default().other = true;
        }
        if let rsti_ir::Terminator::Ret(Some(Operand::Value(v))) = &blk.term {
            usage.entry(*v).or_default().other = true;
        }
    }

    let candidates: HashSet<ValueId> = usage
        .iter()
        .filter(|(_, u)| {
            u.in_entry_alloca
                && !u.other
                && u.stores.len() == 1
                && u.stores[0].0 == 0
                && u.loads >= 2
        })
        .map(|(v, _)| *v)
        .collect();
    if candidates.is_empty() {
        return 0;
    }

    // 2. Per-candidate: is every entry-block load after the store? And is
    // there an auth following each load (instrumented) or not (baseline)?
    let mut rewrite: Map<ValueId, (usize, usize)> = Map::new(); // slot -> store pos
    for &slot in &candidates {
        let (sb, si) = usage[&slot].stores[0];
        debug_assert_eq!(sb, 0);
        let mut ok = true;
        for (ii, node) in f.blocks[0].insts.iter().enumerate() {
            if let Inst::Load { ptr: Operand::Value(v), .. } = &node.inst {
                if *v == slot && ii < si {
                    ok = false;
                }
            }
        }
        if ok {
            rewrite.insert(slot, (sb, si));
        }
    }
    if rewrite.is_empty() {
        return 0;
    }

    // 3. Rewrite. For each promoted slot, find the modifier/key from the
    // first load's following auth (if any), insert the canonical
    // load(+auth) right after the store, then convert every load(+auth)
    // of the slot into copies.
    let mut promoted = 0usize;
    let mut fresh = {
        let mut next = f.value_types.len() as u32;
        move |tys: &mut Vec<rsti_ir::TypeId>, ty: rsti_ir::TypeId| {
            let id = ValueId(next);
            next += 1;
            tys.push(ty);
            id
        }
    };

    // Descending store order: insertions into the entry block must not
    // shift the recorded positions of slots processed later.
    let mut order: Vec<(ValueId, usize)> =
        rewrite.iter().map(|(&v, &(_, i))| (v, i)).collect();
    order.sort_by_key(|e| std::cmp::Reverse(e.1));
    for (slot, store_idx) in order {
        // Find one auth template + the load type.
        let mut load_ty = None;
        let mut auth_template = None;
        let mut load_results: HashSet<ValueId> = HashSet::new();
        for blk in &f.blocks {
            for (ii, node) in blk.insts.iter().enumerate() {
                if let Inst::Load { result, ptr: Operand::Value(v), ty } = &node.inst {
                    if *v == slot {
                        load_ty = Some(*ty);
                        load_results.insert(*result);
                        // Auth directly consuming this load?
                        if let Some(Inst::PacAuth { key, modifier, loc, site, .. }) =
                            blk.insts.get(ii + 1).map(|n| &n.inst)
                        {
                            auth_template = Some((*key, *modifier, loc.clone(), *site));
                        }
                        if let Some(Inst::PpAuth { .. }) =
                            blk.insts.get(ii + 1).map(|n| &n.inst)
                        {
                            // pp-authenticated slots are left alone: their
                            // tags must be revalidated per load.
                            auth_template = None;
                            load_results.clear();
                        }
                    }
                }
            }
        }
        let Some(load_ty) = load_ty else { continue };
        if load_results.is_empty() {
            continue;
        }
        // Only promote pointer-typed content (what instrumentation cares
        // about; scalar slots are cheap anyway).
        // `load_ty` pointer-ness is checked by the caller's type table via
        // the auth presence; without an auth (baseline) we still promote.

        // Insert canonical load (+ auth) after the store.
        let loc_of_store = f.blocks[0].insts[store_idx].loc;
        let raw = fresh(&mut f.value_types, load_ty);
        let mut insert_at = store_idx + 1;
        f.blocks[0].insts.insert(
            insert_at,
            InstNode {
                inst: Inst::Load { result: raw, ptr: slot.into(), ty: load_ty },
                loc: loc_of_store,
            },
        );
        insert_at += 1;
        let canonical = if let Some((key, modifier, loc, site)) = &auth_template {
            let authed = fresh(&mut f.value_types, load_ty);
            f.blocks[0].insts.insert(
                insert_at,
                InstNode {
                    inst: Inst::PacAuth {
                        result: authed,
                        value: raw.into(),
                        key: *key,
                        modifier: *modifier,
                        loc: loc.clone(),
                        site: *site,
                    },
                    loc: loc_of_store,
                },
            );
            authed
        } else {
            raw
        };

        // Convert all original load(+auth) pairs of this slot to copies.
        // Pointers copy via `bitcast`, scalars via `convert` — both are
        // 1-cycle register moves in the VM; the distinction only keeps the
        // verifier's type rules happy.
        let is_ptr = types.is_ptr(load_ty);
        let copy = |result: ValueId| {
            if is_ptr {
                Inst::BitCast { result, value: canonical.into(), to: load_ty }
            } else {
                Inst::Convert { result, value: canonical.into(), to: load_ty }
            }
        };
        for blk in &mut f.blocks {
            for node in &mut blk.insts {
                match &node.inst {
                    Inst::Load { result, ptr: Operand::Value(v), .. }
                        if *v == slot && *result != raw =>
                    {
                        node.inst = copy(*result);
                        promoted += 1;
                    }
                    Inst::PacAuth { result, value: Operand::Value(rv), .. }
                        if load_results.contains(rv) =>
                    {
                        node.inst = copy(*result);
                    }
                    _ => {}
                }
            }
        }
    }
    promoted
}

// ---------------------------------------------------------------------------
// CFG-aware stages (OptLevel::Cfg)
// ---------------------------------------------------------------------------

/// Per-function alias census: which values are allocas, which of those
/// never escape, and where every value is defined.
///
/// An alloca's address *escapes* the moment it is used as anything other
/// than the direct pointer of a `load`/`store` — stored somewhere, passed
/// to a call, offset by a GEP, bitcast, compared, returned. A PAC
/// instruction's `loc` operand is the one exception: STL mixes the address
/// into the modifier as metadata, which creates no capability to reach the
/// slot. The payoff: no call, free, or store through an unknown pointer
/// can possibly write a non-escaped slot, so available-auth facts about it
/// survive those kills.
pub(crate) struct AliasCensus {
    pub(crate) allocas: HashSet<ValueId>,
    pub(crate) non_escaped: HashSet<ValueId>,
    /// Defining block per value; `None` for params and never-defined ids
    /// (both behave as "defined at entry").
    def_block: Vec<Option<BlockId>>,
}

pub(crate) fn alias_census(f: &rsti_ir::Function) -> AliasCensus {
    let mut allocas = HashSet::new();
    let mut escaped = HashSet::new();
    let mut def_block = vec![None; f.value_types.len()];
    for (bi, blk) in f.blocks.iter().enumerate() {
        for node in &blk.insts {
            if let Some(r) = node.inst.result() {
                def_block[r.0 as usize] = Some(BlockId(bi as u32));
            }
            let mut escape = |op: &Operand| {
                if let Operand::Value(v) = op {
                    escaped.insert(*v);
                }
            };
            match &node.inst {
                Inst::Alloca { result, .. } => {
                    allocas.insert(*result);
                }
                Inst::Load { .. } => {} // ptr use is benign
                Inst::Store { value, .. } => escape(value), // ptr use is benign
                Inst::PacSign { value, .. } | Inst::PacAuth { value, .. } => {
                    escape(value); // loc use is benign (modifier metadata)
                }
                other => {
                    for op in other.operands() {
                        escape(op);
                    }
                }
            }
        }
        match &blk.term {
            rsti_ir::Terminator::CondBr { cond: Operand::Value(v), .. } => {
                escaped.insert(*v);
            }
            rsti_ir::Terminator::Ret(Some(Operand::Value(v))) => {
                escaped.insert(*v);
            }
            _ => {}
        }
    }
    let non_escaped = allocas.difference(&escaped).copied().collect();
    AliasCensus { allocas, non_escaped, def_block }
}

/// What a memory-writing instruction invalidates, under the refined alias
/// rules. `SlotKey::Value` slots that are non-escaped allocas are immune
/// to everything except a store through their own address and `free`.
enum Kill<'a> {
    /// No memory written.
    None,
    /// Exactly one slot (store through a non-escaped alloca's address).
    OneSlot(SlotKey),
    /// One slot plus every interior-pointer fact (store through an escaped
    /// alloca's address: GEPs derived from it may alias its storage).
    SlotAndInteriors(SlotKey),
    /// One global plus every interior-pointer fact (interior pointers may
    /// point into the global).
    GlobalAndInteriors(u32),
    /// A summarized call: the named globals die, and so does every
    /// interior-pointer fact (an interior pointer may point into one of
    /// those globals). Every caller *slot* survives, escaped or not: a
    /// callee with `writes_unknown == false` never stores through a
    /// pointer it received or loaded, so it cannot reach any caller
    /// alloca — its only writes land in its own fresh frame and in the
    /// listed globals.
    Globals(&'a std::collections::BTreeSet<u32>),
    /// Everything except non-escaped alloca slots (calls, stores through
    /// unknown pointers).
    AllButNonEscaped,
    /// Everything (`free`: under the MAC-table backend a metadata change,
    /// not just a data write, so no fact survives it).
    All,
}

fn kill_of<'a>(
    inst: &Inst,
    census: &AliasCensus,
    ipo: Option<&'a [crate::ipo::FuncSummary]>,
) -> Kill<'a> {
    match inst {
        Inst::Store { ptr, .. } => match slot_key(ptr) {
            Some(k @ SlotKey::Value(v)) if census.non_escaped.contains(&v) => Kill::OneSlot(k),
            Some(k @ SlotKey::Value(v)) if census.allocas.contains(&v) => {
                Kill::SlotAndInteriors(k)
            }
            Some(SlotKey::Global(g)) => Kill::GlobalAndInteriors(g),
            _ => Kill::AllButNonEscaped,
        },
        // A direct call with an interprocedural summary kills only what
        // the callee (transitively) can write. `frees` is *stronger* than
        // the intraprocedural rule — a heap release invalidates MAC-table
        // state just like a local `free`, which `AllButNonEscaped` would
        // understate — but the ipo dataflow runs as a second pass after
        // the plain one, so stricter kills here can only decline to add
        // elisions, never undo cfg's.
        Inst::Call { callee, .. } => match ipo.map(|s| &s[callee.0 as usize]) {
            Some(s) if s.frees => Kill::All,
            Some(s) if s.writes_unknown => Kill::AllButNonEscaped,
            Some(s) if s.writes_globals.is_empty() => Kill::None,
            Some(s) => Kill::Globals(&s.writes_globals),
            None => Kill::AllButNonEscaped,
        },
        Inst::CallIndirect { .. } => Kill::AllButNonEscaped,
        Inst::Free { .. } => Kill::All,
        // Malloc returns fresh, never-before-visible memory: no fact can
        // refer to it yet.
        _ => Kill::None,
    }
}

/// Whether a fact about `slot` survives `kill`.
fn fact_survives(slot: &SlotKey, kill: &Kill<'_>, census: &AliasCensus) -> bool {
    let is_interior = |s: &SlotKey| match s {
        SlotKey::Value(v) => !census.allocas.contains(v),
        SlotKey::Global(_) => false,
    };
    match kill {
        Kill::None => true,
        Kill::OneSlot(k) => slot != k,
        Kill::SlotAndInteriors(k) => slot != k && !is_interior(slot),
        Kill::GlobalAndInteriors(g) => {
            !matches!(slot, SlotKey::Global(x) if x == g) && !is_interior(slot)
        }
        Kill::Globals(gs) => match slot {
            SlotKey::Value(v) => census.allocas.contains(v),
            SlotKey::Global(g) => !gs.contains(g),
        },
        Kill::AllButNonEscaped => {
            matches!(slot, SlotKey::Value(v) if census.non_escaped.contains(v))
        }
        Kill::All => false,
    }
}

/// An "available authentication": the slot/modifier/key triple is mapped to
/// the authenticated value and the block that defined it.
type FactKey = (SlotKey, u64, PacKey);
type FactMap = HashMap<FactKey, (ValueId, BlockId)>;

fn meet_preds(out: &[Option<FactMap>], cfg: &Cfg, b: BlockId) -> Option<FactMap> {
    let mut acc: Option<FactMap> = None;
    for &p in &cfg.preds[b.0 as usize] {
        if !cfg.is_reachable(p) {
            continue;
        }
        match (&mut acc, &out[p.0 as usize]) {
            (_, None) => {} // unprocessed pred = ⊤, identity of the meet
            (None, Some(m)) => acc = Some(m.clone()),
            (Some(a), Some(m)) => {
                a.retain(|k, v| m.get(k) == Some(v));
            }
        }
    }
    acc.or_else(|| {
        // Entry (or a block whose preds are all unprocessed): nothing is
        // available at the entry; stay ⊤ elsewhere until a pred resolves.
        if cfg.preds[b.0 as usize].is_empty() {
            Some(FactMap::new())
        } else {
            None
        }
    })
}

/// One block's transfer function: adjacent load+auth pairs generate facts,
/// memory writes kill them per the refined rules. When `rewrite` is set,
/// an auth whose fact is already available — and whose defining block
/// dominates this one — is replaced with a register copy. Returns the
/// number of auths elided.
///
/// With `forward` set (the ipo pass), facts are *also* seeded by
/// sign→store chains: a `Store` whose value is the result of a same-block
/// `PacSign` under `(key, modifier)` records that the slot now holds
/// exactly `sign(v)` — so a later load+auth of that slot under the same
/// class yields `v` and can be elided to a copy of the sign's input.
/// This is what makes call-boundary spill/reload chains (and every
/// `p = q; use *p` store-then-reload idiom) free: the auth after the
/// reload is the inverse of the sign before the store. Soundness is the
/// same narrowed re-check window as every other elision — corruption
/// landing in the slot between the store and the reload goes unverified
/// until the next non-elided check — and the kill rules guard everything
/// else: any intervening write that could alias the slot erases the fact.
fn transfer_block(
    blk: &mut rsti_ir::BasicBlock,
    b: BlockId,
    facts: &mut FactMap,
    census: &AliasCensus,
    dom: &DomTree,
    ipo: Option<&[crate::ipo::FuncSummary]>,
    forward: bool,
    rewrite: bool,
) -> usize {
    let mut elided = 0;
    // Same-block PacSign results: sign result → (input value, key, mod).
    let mut pending_signs: HashMap<ValueId, (ValueId, PacKey, u64)> = HashMap::new();
    for i in 0..blk.insts.len() {
        // Adjacent load+auth pair? (Instrumentation always emits them
        // adjacent; the MAC-table backend depends on the same adjacency.)
        let pair = match &blk.insts[i].inst {
            Inst::Load { result, ptr, .. } => match blk.insts.get(i + 1).map(|n| &n.inst) {
                Some(Inst::PacAuth { result: ar, value: Operand::Value(raw), key, modifier, .. })
                    if raw == result =>
                {
                    slot_key(ptr).map(|s| (s, *modifier, *key, *ar))
                }
                _ => None,
            },
            _ => None,
        };
        if let Some((slot, modifier, key, auth_result)) = pair {
            let fk = (slot, modifier, key);
            match facts.get(&fk) {
                Some(&(prev, def_b)) if rewrite && dom.dominates(def_b, b) => {
                    blk.insts[i + 1].inst = Inst::BitCast {
                        result: auth_result,
                        value: prev.into(),
                        to: auth_result_ty_placeholder(),
                    };
                    elided += 1;
                }
                Some(_) => {} // analysis pass: fact already available
                None => {
                    facts.insert(fk, (auth_result, b));
                }
            }
            continue;
        }
        if forward {
            if let Inst::PacSign { result, value: Operand::Value(v), key, modifier, .. } =
                &blk.insts[i].inst
            {
                pending_signs.insert(*result, (*v, *key, *modifier));
            }
        }
        match kill_of(&blk.insts[i].inst, census, ipo) {
            Kill::None => {}
            kill => facts.retain(|(slot, _, _), _| fact_survives(slot, &kill, census)),
        }
        if forward {
            // Seed *after* the store's own kill: the slot now provably
            // holds the freshly signed value. The sign and the future
            // reload's auth share the slot's storage class, so matching
            // (slot, modifier, key) suffices — same argument as the
            // load-pair facts above (slot match ⇒ same STL location).
            if let Inst::Store { value: Operand::Value(sv), ptr } = &blk.insts[i].inst {
                if let (Some(&(orig, key, modifier)), Some(slot)) =
                    (pending_signs.get(sv), slot_key(ptr))
                {
                    facts.insert((slot, modifier, key), (orig, b));
                }
            }
        }
    }
    elided
}

/// Stage 1 of the CFG pipeline: dominator-based redundant-auth
/// elimination. Forward "available authentications" dataflow over the CFG
/// (optimistic iteration to the greatest fixpoint, meet = intersection),
/// then a rewrite pass that replaces re-authentications whose fact arrives
/// on every path — and whose definition dominates the use, so the
/// authenticated register is live — with register copies.
///
/// Returns the number of auths elided. Leaves placeholder types for
/// [`patch_placeholder_types`].
pub fn elide_auths_dataflow(m: &mut Module) -> usize {
    elide_auths_dataflow_inner(m, None, false)
}

/// The interprocedural variant of [`elide_auths_dataflow`], run as the
/// second dataflow pass at [`OptLevel::Ipo`]: direct-call kill sets are
/// refined by the callee summaries, and facts are additionally seeded by
/// sign→store chains (see [`transfer_block`]). Because it runs after the
/// plain pass, everything it elides is elision the summaries or the
/// store-forwarding earned — the returned count is exactly the
/// interprocedural contribution.
pub fn elide_auths_dataflow_ipo(m: &mut Module, summaries: &[crate::ipo::FuncSummary]) -> usize {
    elide_auths_dataflow_inner(m, Some(summaries), true)
}

fn elide_auths_dataflow_inner(
    m: &mut Module,
    ipo: Option<&[crate::ipo::FuncSummary]>,
    forward: bool,
) -> usize {
    let mut elided = 0;
    for f in &mut m.funcs {
        if f.is_external || f.blocks.is_empty() {
            continue;
        }
        let cfg = Cfg::new(f);
        let dom = DomTree::new(&cfg);
        let census = alias_census(f);

        // Fixpoint: OUT[b] = transfer(meet(preds)). `None` = not yet
        // computed (⊤): back-edge predecessors start optimistic so facts
        // can circulate through loops, then shrink to the fixpoint.
        let mut out: Vec<Option<FactMap>> = vec![None; f.blocks.len()];
        loop {
            let mut changed = false;
            for &b in &cfg.rpo {
                let Some(mut facts) = meet_preds(&out, &cfg, b) else { continue };
                transfer_block(
                    &mut f.blocks[b.0 as usize],
                    b,
                    &mut facts,
                    &census,
                    &dom,
                    ipo,
                    forward,
                    false,
                );
                let slot = &mut out[b.0 as usize];
                if slot.as_ref() != Some(&facts) {
                    *slot = Some(facts);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Rewrite with the converged IN sets.
        for &b in &cfg.rpo {
            let Some(mut facts) = meet_preds(&out, &cfg, b) else { continue };
            elided += transfer_block(
                &mut f.blocks[b.0 as usize],
                b,
                &mut facts,
                &census,
                &dom,
                ipo,
                forward,
                true,
            );
        }
    }
    elided
}

/// Operand invariance w.r.t. a loop: constants and addresses are
/// invariant; a value is invariant when it is defined outside the loop
/// (params count as entry-defined).
fn operand_invariant(
    op: &Operand,
    l: &rsti_ir::NaturalLoop,
    census: &AliasCensus,
) -> bool {
    match op {
        Operand::Value(v) => match census.def_block.get(v.0 as usize).copied().flatten() {
            Some(b) => !l.contains(b),
            None => true,
        },
        _ => true,
    }
}

/// Instructions that may run *after* a hoisted pair instead of before it:
/// no memory write, no trap, no observable output. Everything the frontend
/// puts ahead of a condition's pointer loads in a loop header qualifies.
fn is_reorder_safe(inst: &Inst) -> bool {
    match inst {
        Inst::BitCast { .. } | Inst::Convert { .. } | Inst::Cmp { .. } => true,
        Inst::Bin { op, .. } => {
            !matches!(op, rsti_ir::BinOp::Div | rsti_ir::BinOp::Rem)
        }
        Inst::PacSign { .. } | Inst::PacStrip { .. } => true,
        _ => false,
    }
}

/// Stage 2 of the CFG pipeline: loop-invariant auth hoisting. A
/// load+authenticate pair in a loop *header* whose address (and STL
/// location) is loop-invariant, whose slot the loop never writes, and
/// which is preceded only by reorder-safe instructions moves to the loop's
/// preheader.
///
/// Guaranteed-execution reasoning: the header runs on every loop entry —
/// including zero-trip entries — exactly once before the preheader could
/// matter, and (the loop body never writing the slot) every in-loop
/// re-execution of the pair is identical to the first. Moving the first
/// execution one edge earlier therefore preserves behaviour bit-for-bit,
/// traps included; what changes is that iterations 2..N re-use the
/// authenticated register. The header trivially dominates every loop exit,
/// so this is the "block dominates all exits" hoisting condition
/// specialized to the one placement that is also zero-trip-safe.
///
/// Irreducible CFGs (never produced by structured MiniC, conceivable in
/// hand-built IR) make the loop forest bail out and the function is left
/// untouched. Returns the number of pairs hoisted.
pub fn hoist_loop_auths(m: &mut Module) -> usize {
    hoist_loop_auths_with(m, None)
}

/// [`hoist_loop_auths`] with optional interprocedural summaries: at
/// [`OptLevel::Ipo`] a loop body containing a call to a summarized-clean
/// callee no longer pins its header pairs in place.
pub fn hoist_loop_auths_with(
    m: &mut Module,
    ipo: Option<&[crate::ipo::FuncSummary]>,
) -> usize {
    let mut hoisted = 0;
    for f in &mut m.funcs {
        if f.is_external || f.blocks.is_empty() {
            continue;
        }
        let cfg = Cfg::new(f);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        if forest.irreducible || forest.loops.is_empty() {
            continue;
        }
        // The entry block has an implicit function-entry edge no preheader
        // can capture; a loop headed there is not hoistable.
        if forest.loops.iter().all(|l| l.header == BlockId(0)) {
            continue;
        }
        rsti_ir::insert_preheaders(f, &forest);

        // Re-analyze the new shape: every header now has a dedicated
        // preheader as its single out-of-loop predecessor.
        let cfg = Cfg::new(f);
        let dom = DomTree::new(&cfg);
        let forest = LoopForest::new(&cfg, &dom);
        let census = alias_census(f);
        for l in &forest.loops {
            if l.header == BlockId(0) {
                continue;
            }
            let entries: Vec<BlockId> = cfg.preds[l.header.0 as usize]
                .iter()
                .copied()
                .filter(|p| !l.contains(*p))
                .collect();
            let [ph] = entries[..] else { continue };
            if cfg.succs[ph.0 as usize] != [l.header] {
                continue;
            }
            while let Some(li) = find_hoistable_pair(f, l, &census, ipo) {
                let auth = f.blocks[l.header.0 as usize].insts.remove(li + 1);
                let load = f.blocks[l.header.0 as usize].insts.remove(li);
                let phb = &mut f.blocks[ph.0 as usize];
                phb.insts.push(load);
                phb.insts.push(auth);
                hoisted += 1;
            }
        }
    }
    hoisted
}

/// Finds the first header-resident load+auth pair that satisfies every
/// hoisting condition; returns its index.
fn find_hoistable_pair(
    f: &rsti_ir::Function,
    l: &rsti_ir::NaturalLoop,
    census: &AliasCensus,
    ipo: Option<&[crate::ipo::FuncSummary]>,
) -> Option<usize> {
    let header = &f.blocks[l.header.0 as usize];
    for (i, node) in header.insts.iter().enumerate() {
        if !is_reorder_safe(&node.inst)
            && !matches!(node.inst, Inst::Load { .. })
        {
            return None; // a kill/trap/output point: nothing past it moves
        }
        let Inst::Load { result, ptr, .. } = &node.inst else { continue };
        let Some(Inst::PacAuth { value: Operand::Value(raw), loc, .. }) =
            header.insts.get(i + 1).map(|n| &n.inst)
        else {
            // A bare load is reorder-safe only when it cannot trap: a load
            // straight off an alloca's own address (frame storage is
            // always mapped). Anything else could fault, and the hoisted
            // auth must not run ahead of a fault.
            if matches!(ptr, Operand::Value(v) if census.allocas.contains(v)) {
                continue;
            }
            return None;
        };
        if raw != result {
            return None;
        }
        let slot = slot_key(ptr)?;
        let invariant = operand_invariant(ptr, l, census)
            && loc.as_ref().is_none_or(|lo| operand_invariant(lo, l, census));
        if !invariant {
            return None;
        }
        // The loop must never write the slot (pair instructions themselves
        // are loads/auths, not kills).
        let never_killed = l.blocks.iter().all(|&b| {
            f.blocks[b.0 as usize]
                .insts
                .iter()
                .all(|n| fact_survives(&slot, &kill_of(&n.inst, census, ipo), census))
        });
        if never_killed {
            return Some(i);
        }
        return None;
    }
    None
}

/// Stage 3 of the CFG pipeline: precomputed PAC modifiers. An STL
/// location-mix whose `loc` is a global (or null) resolves statically:
/// the loader's global layout is deterministic
/// ([`rsti_ir::Module::global_addresses`] — the same function the VM
/// uses), so `M ^ canonical(&g)` folds into the instruction's immediate
/// modifier and `loc` drops to `None`. The VM's check path then skips
/// per-execution modifier derivation (and its modeled `eor` surcharge)
/// for these sites. Returns the number of modifiers folded.
pub fn precompute_pac_modifiers(m: &mut Module) -> usize {
    let gaddrs = m.global_addresses();
    let va = rsti_pac::VaConfig::paper_default();
    let mut folded = 0;
    for f in &mut m.funcs {
        for blk in &mut f.blocks {
            for node in &mut blk.insts {
                let (Inst::PacSign { modifier, loc, .. } | Inst::PacAuth { modifier, loc, .. }) =
                    &mut node.inst
                else {
                    continue;
                };
                match loc {
                    Some(Operand::GlobalAddr(g, _)) => {
                        *modifier ^= va.canonical(gaddrs[g.0 as usize]);
                        *loc = None;
                        folded += 1;
                    }
                    Some(Operand::Null(_)) => {
                        // canonical(0) == 0: the mix is the identity.
                        *loc = None;
                        folded += 1;
                    }
                    _ => {}
                }
            }
        }
    }
    folded
}

// ---------------------------------------------------------------------------
// The OptLevel-driven pipeline
// ---------------------------------------------------------------------------

/// Optimization level for the check-optimizer pipeline. One knob drives
/// the CLI (`--opt`), the bench binaries, and the fuzz oracle matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// Run the instrumented program exactly as the pass emitted it.
    None,
    /// Single-store slot promotion + per-block redundant-auth elision
    /// (the pre-CFG optimizer).
    BlockLocal,
    /// BlockLocal plus the CFG-aware stages: dominator-based elision,
    /// loop-invariant auth hoisting, precomputed PAC modifiers.
    Cfg,
    /// Cfg plus the interprocedural stages built on the call graph
    /// ([`rsti_ir::CallGraph`]): internal-boundary resign folding,
    /// size-budgeted inlining of small non-recursive callees, and a second
    /// dataflow pass with summary-refined call kills plus sign→store
    /// forwarding (see [`crate::ipo`]).
    Ipo,
}

impl OptLevel {
    /// All levels, weakest first.
    pub const ALL: [OptLevel; 4] =
        [OptLevel::None, OptLevel::BlockLocal, OptLevel::Cfg, OptLevel::Ipo];

    /// Short stable label (`none` / `block` / `cfg` / `ipo`) for tables,
    /// configs, and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::None => "none",
            OptLevel::BlockLocal => "block",
            OptLevel::Cfg => "cfg",
            OptLevel::Ipo => "ipo",
        }
    }

    /// Parses a level name as accepted by `rsti --opt`.
    ///
    /// # Errors
    /// Returns a message listing the accepted names.
    pub fn parse(s: &str) -> Result<OptLevel, String> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "none" | "0" => OptLevel::None,
            "block" | "block-local" | "blocklocal" | "1" => OptLevel::BlockLocal,
            "cfg" | "2" => OptLevel::Cfg,
            "ipo" | "3" => OptLevel::Ipo,
            other => return Err(format!("unknown opt level `{other}` (none|block|cfg|ipo)")),
        })
    }
}

/// What one pipeline run removed, per stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptSummary {
    /// Load(+auth) sites promoted to copies by mem2reg.
    pub promoted: usize,
    /// Auths elided by the per-block cache.
    pub elided_block: usize,
    /// Load(+auth) pairs hoisted to loop preheaders.
    pub hoisted: usize,
    /// Auths elided by the CFG dataflow stage.
    pub elided_dom: usize,
    /// STL modifiers folded to immediates.
    pub premods: usize,
    /// Dead value ids dropped by the final renumbering.
    pub compacted: usize,
    /// Sign→auth round-trips folded at known-internal call boundaries
    /// (ipo only; each fold removes one sign and one auth).
    pub resigns_folded: usize,
    /// Call sites inlined by the post-instrumentation inliner (ipo only).
    pub inlined: usize,
    /// Auths elided by the second, summary-refined dataflow pass (ipo
    /// only).
    pub elided_ipo: usize,
    /// Static call sites whose kill set the callee summaries weakened
    /// below the intraprocedural `AllButNonEscaped` default (ipo only).
    pub refined: usize,
}

impl OptSummary {
    /// Total check sites removed (modifier folds excluded — those sites
    /// still check, they just derive nothing at runtime).
    pub fn total(&self) -> usize {
        self.promoted
            + self.elided_block
            + self.hoisted
            + self.elided_dom
            + self.resigns_folded
            + self.elided_ipo
    }
}

/// Dense value-id renumbering — the post-optimize hook both execution
/// engines size their per-frame state from. The elision stages delete
/// instructions but leave their `ValueId`s allocated, so `value_types`
/// keeps a slot for every removed auth in every frame: the interpreter's
/// register file and the compiled engine's operand-slot tables stay as
/// wide as the *unoptimized* function. Compaction renumbers the surviving
/// values densely (order-preserving, so diffs stay readable) and shrinks
/// the type table to match.
///
/// A function holding an out-of-range value reference is left untouched:
/// such references never come from the frontend, and renumbering a
/// malformed function would change *which* reference dangles.
///
/// Returns the number of value slots dropped across the module.
pub fn compact_values(m: &mut Module) -> usize {
    fn remap_v(v: &mut ValueId, remap: &[u32]) {
        v.0 = remap[v.0 as usize];
    }
    fn remap_op(op: &mut Operand, remap: &[u32]) {
        if let Operand::Value(v) = op {
            remap_v(v, remap);
        }
    }
    fn remap_inst(inst: &mut Inst, remap: &[u32]) {
        match inst {
            Inst::Alloca { result, .. } => remap_v(result, remap),
            Inst::Load { result, ptr, .. } => {
                remap_v(result, remap);
                remap_op(ptr, remap);
            }
            Inst::Store { value, ptr } => {
                remap_op(value, remap);
                remap_op(ptr, remap);
            }
            Inst::FieldAddr { result, base, .. } => {
                remap_v(result, remap);
                remap_op(base, remap);
            }
            Inst::IndexAddr { result, base, index, .. } => {
                remap_v(result, remap);
                remap_op(base, remap);
                remap_op(index, remap);
            }
            Inst::BitCast { result, value, .. } | Inst::Convert { result, value, .. } => {
                remap_v(result, remap);
                remap_op(value, remap);
            }
            Inst::Bin { result, lhs, rhs, .. } | Inst::Cmp { result, lhs, rhs, .. } => {
                remap_v(result, remap);
                remap_op(lhs, remap);
                remap_op(rhs, remap);
            }
            Inst::Call { result, args, .. } => {
                if let Some(r) = result {
                    remap_v(r, remap);
                }
                for a in args {
                    remap_op(a, remap);
                }
            }
            Inst::CallIndirect { result, callee, args, .. } => {
                if let Some(r) = result {
                    remap_v(r, remap);
                }
                remap_op(callee, remap);
                for a in args {
                    remap_op(a, remap);
                }
            }
            Inst::Malloc { result, size, .. } => {
                remap_v(result, remap);
                remap_op(size, remap);
            }
            Inst::Free { ptr } => remap_op(ptr, remap),
            Inst::PrintInt { value } => remap_op(value, remap),
            Inst::PrintStr { .. } | Inst::PpAdd { .. } => {}
            Inst::PacSign { result, value, loc, .. }
            | Inst::PacAuth { result, value, loc, .. } => {
                remap_v(result, remap);
                remap_op(value, remap);
                if let Some(l) = loc {
                    remap_op(l, remap);
                }
            }
            Inst::PacStrip { result, value }
            | Inst::PpSign { result, value, .. }
            | Inst::PpAddTbi { result, value, .. }
            | Inst::PpAuth { result, value, .. } => {
                remap_v(result, remap);
                remap_op(value, remap);
            }
        }
    }

    let mut dropped = 0usize;
    'funcs: for f in &mut m.funcs {
        if f.is_external {
            continue;
        }
        let n = f.value_types.len();
        let mut used = vec![false; n];
        {
            let mut mark = |v: ValueId| match used.get_mut(v.0 as usize) {
                Some(u) => {
                    *u = true;
                    true
                }
                None => false,
            };
            for (pv, _) in &f.params {
                if !mark(*pv) {
                    continue 'funcs;
                }
            }
            for b in &f.blocks {
                for node in &b.insts {
                    if let Some(r) = node.inst.result() {
                        if !mark(r) {
                            continue 'funcs;
                        }
                    }
                    for op in node.inst.operands() {
                        if let Operand::Value(v) = op {
                            if !mark(*v) {
                                continue 'funcs;
                            }
                        }
                    }
                }
                let term_value = match &b.term {
                    Terminator::CondBr { cond: Operand::Value(v), .. } => Some(*v),
                    Terminator::Ret(Some(Operand::Value(v))) => Some(*v),
                    _ => None,
                };
                if let Some(v) = term_value {
                    if !mark(v) {
                        continue 'funcs;
                    }
                }
            }
        }
        let live = used.iter().filter(|&&u| u).count();
        if live == n {
            continue;
        }
        let mut remap = vec![u32::MAX; n];
        let mut new_types = Vec::with_capacity(live);
        for (i, &u) in used.iter().enumerate() {
            if u {
                remap[i] = new_types.len() as u32;
                new_types.push(f.value_types[i]);
            }
        }
        for (pv, _) in &mut f.params {
            remap_v(pv, &remap);
        }
        for b in &mut f.blocks {
            for node in &mut b.insts {
                remap_inst(&mut node.inst, &remap);
            }
            match &mut b.term {
                Terminator::CondBr { cond, .. } => remap_op(cond, &remap),
                Terminator::Ret(Some(op)) => remap_op(op, &remap),
                _ => {}
            }
        }
        f.value_types = new_types;
        dropped += n - live;
    }
    dropped
}

fn verify_stage(m: &Module, stage: &str) {
    debug_assert!(
        rsti_ir::verify_module(m).is_ok(),
        "optimizer stage `{stage}` broke the module: {:?}",
        rsti_ir::verify_module(m).err()
    );
    let _ = (m, stage);
}

/// The one configurable pipeline over any module — instrumented or
/// baseline (on a baseline module the auth-specific stages are no-ops and
/// mem2reg/hoisting still apply, keeping overhead comparisons fair).
/// `verify_module` holds after every stage boundary (checked in debug
/// builds here and by the fuzz oracle's verifier oracle in release).
pub fn optimize_module(m: &mut Module, level: OptLevel) -> OptSummary {
    let mut s = OptSummary::default();
    if level == OptLevel::None {
        return s;
    }
    if level == OptLevel::Ipo {
        // Whole-module shape changes come first, so every later stage —
        // including summary construction — sees the final call structure.
        s.resigns_folded = crate::ipo::fold_boundary_resigns(m);
        verify_stage(m, "resign-fold");
        s.inlined = crate::ipo::inline_small_functions(m, crate::ipo::IPO_INLINE_BUDGET);
        verify_stage(m, "ipo-inline");
    }
    s.promoted = promote_single_store_slots(m);
    s.elided_block = elide_redundant_auths(m);
    patch_placeholder_types(m);
    verify_stage(m, "block-local");
    if matches!(level, OptLevel::Cfg | OptLevel::Ipo) {
        let ipo_env = (level == OptLevel::Ipo).then(|| crate::ipo::IpoAnalysis::build(m));
        let summaries = ipo_env.as_ref().map(|a| a.summaries.as_slice());
        s.hoisted = hoist_loop_auths_with(m, summaries);
        verify_stage(m, "hoist");
        s.elided_dom = elide_auths_dataflow(m);
        patch_placeholder_types(m);
        verify_stage(m, "dataflow");
        if let Some(a) = &ipo_env {
            s.elided_ipo = elide_auths_dataflow_ipo(m, &a.summaries);
            patch_placeholder_types(m);
            verify_stage(m, "ipo-dataflow");
            s.refined = a.refined_call_sites;
        }
        s.premods = precompute_pac_modifiers(m);
        verify_stage(m, "premod");
    }
    s.compacted = compact_values(m);
    verify_stage(m, "compact");
    s
}

/// [`optimize_module`] over an instrumented program, with the telemetry
/// span and per-stage counters.
pub fn optimize_program_at(
    p: &mut crate::instrument::InstrumentedProgram,
    level: OptLevel,
) -> OptSummary {
    let tel = rsti_telemetry::global();
    let _span = tel.span(rsti_telemetry::Phase::Optimize);
    let s = optimize_module(&mut p.module, level);
    tel.add(
        rsti_telemetry::CounterId::AuthsElidedBlock,
        (s.promoted + s.elided_block) as u64,
    );
    tel.add(rsti_telemetry::CounterId::AuthsElidedDom, s.elided_dom as u64);
    tel.add(rsti_telemetry::CounterId::AuthsHoisted, s.hoisted as u64);
    tel.add(rsti_telemetry::CounterId::ModifiersPrecomputed, s.premods as u64);
    tel.add(
        rsti_telemetry::CounterId::AuthsElidedIpo,
        (s.elided_ipo + s.resigns_folded) as u64,
    );
    tel.add(rsti_telemetry::CounterId::CallsInlined, s.inlined as u64);
    tel.add(
        rsti_telemetry::CounterId::SummaryKillRefinements,
        s.refined as u64,
    );
    s
}

/// Compatibility entry point: the full pipeline at [`OptLevel::Cfg`].
/// Returns the number of removed/promoted authentication sites.
pub fn optimize_program(p: &mut crate::instrument::InstrumentedProgram) -> usize {
    optimize_program_at(p, OptLevel::Cfg).total()
}

/// Compatibility entry point for *uninstrumented* modules: the full
/// pipeline at [`OptLevel::Cfg`], so overhead comparisons stay fair (both
/// sides get mem2reg and hoisting).
pub fn optimize_baseline(m: &mut Module) -> usize {
    optimize_module(m, OptLevel::Cfg).total()
}

/// Leaf-function inlining — the LTO/O2 component of the paper's pipeline
/// (§5: the pass runs in the LTO phase over the combined module, with the
/// runtime library inlined; §6.3.2 credits "LTO and -O2 optimizations"
/// for the gap to PARTS).
///
/// A callee qualifies when it is defined, is not the caller, contains no
/// calls of its own (leaf), and is at most `max_insts` instructions.
/// Every qualifying direct call site is replaced by a spliced copy of the
/// callee's body. Run **before** instrumentation, like LLVM's inliner runs
/// before the RSTI pass: argument-passing boundaries disappear, so STL has
/// nothing to re-sign there — exactly the effect O2 inlining has on the
/// paper's numbers.
///
/// Returns the number of call sites inlined.
pub fn inline_leaf_functions(m: &mut Module, max_insts: usize) -> usize {
    fn is_leaf(f: &rsti_ir::Function) -> bool {
        !f.is_external
            && !f.blocks.is_empty()
            && f.insts().all(|n| {
                !matches!(n.inst, Inst::Call { .. } | Inst::CallIndirect { .. })
            })
    }

    let leafs: Vec<bool> = m.funcs.iter().map(is_leaf).collect();
    let sizes: Vec<usize> = m.funcs.iter().map(|f| f.inst_count()).collect();
    let mut inlined = 0usize;

    for caller_idx in 0..m.funcs.len() {
        if m.funcs[caller_idx].is_external {
            continue;
        }
        // Find one inlinable call site at a time; repeat until none left
        // (inlined leaf bodies introduce no new calls).
        loop {
            let site = {
                let f = &m.funcs[caller_idx];
                let mut found = None;
                'scan: for (bi, blk) in f.blocks.iter().enumerate() {
                    for (ii, node) in blk.insts.iter().enumerate() {
                        if let Inst::Call { callee, .. } = &node.inst {
                            let ci = callee.0 as usize;
                            if ci != caller_idx && leafs[ci] && sizes[ci] <= max_insts {
                                found = Some((bi, ii));
                                break 'scan;
                            }
                        }
                    }
                }
                found
            };
            let Some((bi, ii)) = site else { break };
            splice_call_site(m, caller_idx, bi, ii);
            inlined += 1;
        }
    }
    debug_assert!(
        rsti_ir::verify_module(m).is_ok(),
        "inliner broke the module: {:?}",
        rsti_ir::verify_module(m).err()
    );
    inlined
}

/// Replaces the direct call at `(caller_idx, bi, ii)` with a spliced copy
/// of the callee's body. Shared by the pre-instrumentation leaf inliner
/// and the post-instrumentation ipo inliner; the callee may itself contain
/// calls ([`remap_inst`] remaps them like any other instruction).
pub(crate) fn splice_call_site(m: &mut Module, caller_idx: usize, bi: usize, ii: usize) {
    use rsti_ir::{BasicBlock, Terminator};

    // Clone what we need from the callee before mutating the caller.
    let (callee_id, result, args) = {
        let node = &m.funcs[caller_idx].blocks[bi].insts[ii];
        match &node.inst {
            Inst::Call { result, callee, args } => (*callee, *result, args.clone()),
            _ => unreachable!("site points at a call"),
        }
    };
    let callee = m.funcs[callee_id.0 as usize].clone();
    let caller = &mut m.funcs[caller_idx];

    // Value remap: callee params -> arg operands; everything else
    // gets fresh caller ids.
    let value_base = caller.value_types.len() as u32;
    let mut param_map: std::collections::HashMap<ValueId, Operand> =
        std::collections::HashMap::new();
    for (i, (pv, _)) in callee.params.iter().enumerate() {
        param_map.insert(*pv, args[i].clone());
    }
    // Extend the caller's value table with the callee's (params
    // included; their slots go unused).
    caller.value_types.extend(callee.value_types.iter().copied());

    let block_base = caller.blocks.len() as u32;
    // The continuation receives everything after the call plus the
    // original terminator.
    let cont_id = BlockId(block_base + callee.blocks.len() as u32);
    let call_blk = &mut caller.blocks[bi];
    let tail: Vec<InstNode> = call_blk.insts.split_off(ii + 1);
    call_blk.insts.pop(); // drop the call itself
    let cont = BasicBlock {
        insts: tail,
        term: std::mem::replace(&mut call_blk.term, Terminator::Br(BlockId(block_base))),
        term_loc: call_blk.term_loc,
    };

    // Splice callee blocks, remapping operands, block ids, and
    // turning returns into copies + branches to the continuation.
    let ret_ty = callee.sig.ret;
    for cblk in &callee.blocks {
        let mut nb = BasicBlock::new();
        for node in &cblk.insts {
            let mut inst = node.inst.clone();
            remap_inst(&mut inst, value_base, &param_map);
            nb.insts.push(InstNode { inst, loc: node.loc });
        }
        nb.term_loc = cblk.term_loc;
        nb.term = match &cblk.term {
            Terminator::Br(b) => Terminator::Br(BlockId(block_base + b.0)),
            Terminator::CondBr { cond, then_bb, else_bb } => {
                let mut c = cond.clone();
                remap_operand(&mut c, value_base, &param_map);
                Terminator::CondBr {
                    cond: c,
                    then_bb: BlockId(block_base + then_bb.0),
                    else_bb: BlockId(block_base + else_bb.0),
                }
            }
            Terminator::Ret(v) => {
                if let (Some(res), Some(v)) = (result, v) {
                    let mut rv = v.clone();
                    remap_operand(&mut rv, value_base, &param_map);
                    let copy = if m.types.is_ptr(ret_ty) {
                        Inst::BitCast { result: res, value: rv, to: ret_ty }
                    } else {
                        Inst::Convert { result: res, value: rv, to: ret_ty }
                    };
                    nb.insts.push(InstNode { inst: copy, loc: cblk.term_loc });
                }
                Terminator::Br(cont_id)
            }
            Terminator::Unreachable => Terminator::Unreachable,
        };
        caller.blocks.push(nb);
    }
    caller.blocks.push(cont);
}

fn remap_operand(
    op: &mut Operand,
    value_base: u32,
    param_map: &std::collections::HashMap<ValueId, Operand>,
) {
    if let Operand::Value(v) = op {
        if let Some(repl) = param_map.get(v) {
            *op = repl.clone();
        } else {
            *op = Operand::Value(ValueId(value_base + v.0));
        }
    }
}

fn remap_inst(
    inst: &mut Inst,
    value_base: u32,
    param_map: &std::collections::HashMap<ValueId, Operand>,
) {
    // Results always become fresh caller values (params are never results).
    let remap_result = |r: &mut ValueId| *r = ValueId(value_base + r.0);
    match inst {
        Inst::Alloca { result, .. } => remap_result(result),
        Inst::Load { result, ptr, .. } => {
            remap_result(result);
            remap_operand(ptr, value_base, param_map);
        }
        Inst::Store { value, ptr } => {
            remap_operand(value, value_base, param_map);
            remap_operand(ptr, value_base, param_map);
        }
        Inst::FieldAddr { result, base, .. } => {
            remap_result(result);
            remap_operand(base, value_base, param_map);
        }
        Inst::IndexAddr { result, base, index, .. } => {
            remap_result(result);
            remap_operand(base, value_base, param_map);
            remap_operand(index, value_base, param_map);
        }
        Inst::BitCast { result, value, .. } | Inst::Convert { result, value, .. } => {
            remap_result(result);
            remap_operand(value, value_base, param_map);
        }
        Inst::Bin { result, lhs, rhs, .. } => {
            remap_result(result);
            remap_operand(lhs, value_base, param_map);
            remap_operand(rhs, value_base, param_map);
        }
        Inst::Cmp { result, lhs, rhs, .. } => {
            remap_result(result);
            remap_operand(lhs, value_base, param_map);
            remap_operand(rhs, value_base, param_map);
        }
        Inst::Malloc { result, size, .. } => {
            remap_result(result);
            remap_operand(size, value_base, param_map);
        }
        Inst::Free { ptr } => remap_operand(ptr, value_base, param_map),
        Inst::PrintInt { value } => remap_operand(value, value_base, param_map),
        Inst::PrintStr { .. } | Inst::PpAdd { .. } => {}
        Inst::PacSign { result, value, loc, .. } | Inst::PacAuth { result, value, loc, .. } => {
            remap_result(result);
            remap_operand(value, value_base, param_map);
            if let Some(l) = loc {
                remap_operand(l, value_base, param_map);
            }
        }
        Inst::PacStrip { result, value }
        | Inst::PpSign { result, value, .. }
        | Inst::PpAddTbi { result, value, .. }
        | Inst::PpAuth { result, value, .. } => {
            remap_result(result);
            remap_operand(value, value_base, param_map);
        }
        // Callees with calls of their own (the ipo inliner's candidates):
        // `FuncId`s are module-level and survive the splice untouched.
        Inst::Call { result, args, .. } => {
            if let Some(r) = result {
                remap_result(r);
            }
            for a in args {
                remap_operand(a, value_base, param_map);
            }
        }
        Inst::CallIndirect { result, callee, args, .. } => {
            if let Some(r) = result {
                remap_result(r);
            }
            remap_operand(callee, value_base, param_map);
            for a in args {
                remap_operand(a, value_base, param_map);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::instrument;
    use crate::sti::Mechanism;
    use rsti_frontend::compile;

    const REPEATY: &str = r#"
        struct s { long a; long b; };
        int main() {
            struct s* p = (struct s*) malloc(sizeof(struct s));
            // Three reads of `p` in a row: two re-auths are redundant.
            p->a = 1;
            long x = p->a + p->b;
            long y = p->b + p->a;
            return (int) (x + y);
        }
    "#;

    #[test]
    fn elides_some_auths_and_stays_well_formed() {
        let m = compile(REPEATY, "t").unwrap();
        let mut p = instrument(&m, Mechanism::Stwc);
        let before = count_auths(&p.module);
        let elided = optimize_program(&mut p);
        let after = count_auths(&p.module);
        assert!(elided > 0, "expected redundancy in {REPEATY}");
        assert!(after < before, "auths must shrink: {before} -> {after}");
        rsti_ir::verify_module(&p.module).unwrap();
    }

    #[test]
    fn stores_invalidate_the_cache() {
        let src = r#"
            int main() {
                int* p = (int*) malloc(4);
                int* q = p;      // load p (auth), store q
                *q = 5;
                int* r = p;      // p reloaded AFTER a store: must re-auth
                return *r;
            }
        "#;
        let m = compile(src, "t").unwrap();
        let mut p = instrument(&m, Mechanism::Stwc);
        optimize_program(&mut p);
        // Behaviour must be unchanged.
        rsti_ir::verify_module(&p.module).unwrap();
    }

    #[test]
    fn inliner_splices_leaf_calls() {
        let src = r#"
            long square(long x) { return x * x; }
            long twice(long x) { return x + x; }
            int main() {
                long acc = 0;
                for (int i = 0; i < 4; i = i + 1) {
                    acc = acc + square(i) + twice(i);
                }
                print_int(acc);
                return (int) acc;
            }
        "#;
        let mut m = compile(src, "t").unwrap();
        let n = inline_leaf_functions(&mut m, 32);
        assert_eq!(n, 2, "both leaf calls inlined");
        let main = m.func_by_name("main").unwrap();
        assert!(
            m.func(main)
                .insts()
                .all(|node| !matches!(node.inst, Inst::Call { .. })),
            "no direct calls remain in main"
        );
        rsti_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn inliner_skips_recursion_and_big_functions() {
        let src = r#"
            long fact(long n) {
                if (n <= 1) { return 1; }
                return n * fact(n - 1);
            }
            int main() { return (int) fact(5); }
        "#;
        let mut m = compile(src, "t").unwrap();
        assert_eq!(inline_leaf_functions(&mut m, 32), 0, "recursive callee kept");
    }

    fn count_auths(m: &rsti_ir::Module) -> usize {
        m.funcs
            .iter()
            .flat_map(|f| f.insts())
            .filter(|n| matches!(n.inst, rsti_ir::Inst::PacAuth { .. }))
            .count()
    }

    /// Instrument `src` and run the pipeline at `level`.
    fn opt_at(src: &str, mech: Mechanism, level: OptLevel) -> (OptSummary, rsti_ir::Module) {
        let m = compile(src, "t").unwrap();
        let mut p = instrument(&m, mech);
        let s = optimize_module(&mut p.module, level);
        rsti_ir::verify_module(&p.module).unwrap();
        (s, p.module)
    }

    // `p` is stored twice (once conditionally) so mem2reg leaves the slot
    // alone and the CFG stages are what's under test.
    fn diamond_src(killer: &str) -> String {
        format!(
            r#"
            int sink;
            int main() {{
                int* p = (int*) malloc(4);
                if (sink > 0) {{ p = (int*) malloc(8); }}
                *p = 1;
                if (sink > 1) {{ {killer} }}
                return *p;
            }}
            "#
        )
    }

    #[test]
    fn cfg_elides_cross_block_reauths() {
        let src = diamond_src("sink = 2;");
        let (sb, mb) = opt_at(&src, Mechanism::Stwc, OptLevel::BlockLocal);
        let (sc, mc) = opt_at(&src, Mechanism::Stwc, OptLevel::Cfg);
        assert!(sc.elided_dom > 0, "join re-auth should elide: {sc:?}");
        assert!(
            count_auths(&mc) < count_auths(&mb),
            "cfg must remove auths block-local cannot: {} vs {}",
            count_auths(&mc),
            count_auths(&mb)
        );
        let _ = sb;
    }

    /// The satellite property: dominator elision never propagates a fact
    /// across a block that stores to the slot, calls, or frees. Each killer
    /// variant must elide nothing beyond block-local; the kill-free control
    /// must elide the join's re-auth.
    #[test]
    fn elision_never_crosses_store_call_free() {
        // A store to an unrelated *global* is not a kill for a private
        // stack slot — the control shows the fact flowing.
        let (control, _) = opt_at(&diamond_src("sink = 2;"), Mechanism::Stwc, OptLevel::Cfg);
        assert!(control.elided_dom > 0, "control must elide: {control:?}");

        // Store to the slot itself.
        let (s, _) = opt_at(
            &diamond_src("p = (int*) malloc(4);"),
            Mechanism::Stwc,
            OptLevel::Cfg,
        );
        assert_eq!(s.elided_dom, 0, "store must kill the fact: {s:?}");

        // A call to a function that could reach the (escaped) slot.
        let src = format!(
            "void poke(int** q) {{ }}\n{}",
            diamond_src("poke(&p);")
        );
        let (s, _) = opt_at(&src, Mechanism::Stwc, OptLevel::Cfg);
        assert_eq!(s.elided_dom, 0, "call must kill escaped-slot facts: {s:?}");

        // A free: under the MAC backend a metadata change, kills everything.
        let (s, _) = opt_at(
            &diamond_src("free((int*) malloc(4));"),
            Mechanism::Stwc,
            OptLevel::Cfg,
        );
        assert_eq!(s.elided_dom, 0, "free must kill all facts: {s:?}");
    }

    #[test]
    fn hoists_loop_invariant_header_auth() {
        let src = r#"
            int sink;
            int main() {
                int* p = (int*) malloc(4);
                if (sink > 0) { p = (int*) malloc(4); }
                *p = 0;
                int i = 0;
                while (*p < 10) {
                    *p = *p + 1;
                    i = i + 1;
                }
                return i;
            }
        "#;
        for mech in [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl] {
            let (s, m) = opt_at(src, mech, OptLevel::Cfg);
            assert!(s.hoisted >= 1, "{mech:?}: header pair must hoist: {s:?}");
            rsti_ir::verify_module(&m).unwrap();
        }
    }

    #[test]
    fn loop_body_store_to_slot_blocks_hoisting() {
        // The loop rebinds `p` itself, so its auth is not invariant.
        let src = r#"
            int sink;
            int main() {
                int* p = (int*) malloc(4);
                if (sink > 0) { p = (int*) malloc(4); }
                *p = 0;
                int i = 0;
                while (*p < 10) {
                    p = (int*) malloc(4);
                    *p = i;
                    i = i + 1;
                }
                return i;
            }
        "#;
        let (s, m) = opt_at(src, Mechanism::Stwc, OptLevel::Cfg);
        assert_eq!(s.hoisted, 0, "rebound slot must not hoist: {s:?}");
        rsti_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn precomputes_global_stl_modifiers() {
        let src = r#"
            int* gp;
            int main() {
                gp = (int*) malloc(4);
                *gp = 3;
                return *gp;
            }
        "#;
        let (s, m) = opt_at(src, Mechanism::Stl, OptLevel::Cfg);
        assert!(s.premods > 0, "global STL sites must fold: {s:?}");
        for f in &m.funcs {
            for n in f.insts() {
                if let Inst::PacSign { loc: Some(l), .. } | Inst::PacAuth { loc: Some(l), .. } =
                    &n.inst
                {
                    assert!(
                        !matches!(l, Operand::GlobalAddr(..) | Operand::Null(_)),
                        "static loc survived premod: {:?}",
                        n.inst
                    );
                }
            }
        }
    }

    #[test]
    fn opt_level_labels_roundtrip() {
        for lv in OptLevel::ALL {
            assert_eq!(OptLevel::parse(lv.label()), Ok(lv));
        }
        assert!(OptLevel::parse("turbo").is_err());
    }

    #[test]
    fn optimize_module_none_is_identity() {
        let m = compile(REPEATY, "t").unwrap();
        let mut p = instrument(&m, Mechanism::Stwc);
        let before = count_auths(&p.module);
        let s = optimize_module(&mut p.module, OptLevel::None);
        assert_eq!(s, OptSummary::default());
        assert_eq!(count_auths(&p.module), before);
    }
}
