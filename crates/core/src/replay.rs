//! Replay-surface analysis and adaptive hardening — the paper's §7
//! discussion ("Possibility of replay attacks") made executable.
//!
//! STC and STWC leave a residual attack surface: pointers sharing one
//! RSTI-type can be substituted for each other ("an attacker wanting to
//! abuse perlbench under RSTI-STWC would have to choose gadgets that are
//! confined to the 82 equivalent variables"). This module quantifies that
//! surface — the number of substitutable ordered pairs per class — and
//! implements the paper's proposed mitigation: *choose the mechanism per
//! RSTI-type*, applying STL's location binding only to classes whose
//! equivalence class exceeds a threshold ("STL can be used \[for
//! xalancbmk's 122-variable class\]; RSTI-STWC can be used when the
//! number of variables with the same RSTI-type is smaller, such as mcf").

use crate::sti::{Mechanism, StiAnalysis};

/// The measured replay surface of an analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySurface {
    /// Mechanism the analysis was built for.
    pub mechanism: Mechanism,
    /// Number of RSTI-types.
    pub classes: usize,
    /// Members of the largest class (the paper's "equivalent variables").
    pub largest_class: usize,
    /// Total substitutable unordered pairs: Σ over classes of n·(n−1)/2.
    /// Zero means no in-class substitution is possible at all (STL).
    pub substitutable_pairs: usize,
    /// Classes whose size exceeds the recommendation threshold.
    pub hot_classes: usize,
}

/// Default class-size threshold above which location binding is
/// recommended. With ≤ 4 equivalent variables an attacker has at most 6
/// substitution pairs per class — the paper's mcf-like "smaller" regime.
pub const DEFAULT_ECV_THRESHOLD: usize = 4;

/// Computes the replay surface of an analysis.
pub fn replay_surface(a: &StiAnalysis, threshold: usize) -> ReplaySurface {
    let mut pairs = 0usize;
    let mut largest = 0usize;
    let mut hot = 0usize;
    for c in &a.classes {
        let n = c.members.len();
        largest = largest.max(n);
        pairs += n * (n - 1) / 2;
        if n > threshold {
            hot += 1;
        }
    }
    ReplaySurface {
        mechanism: a.mechanism,
        classes: a.classes.len(),
        largest_class: largest,
        substitutable_pairs: pairs,
        hot_classes: hot,
    }
}

/// The paper's per-program mechanism recommendation: STL when a large
/// equivalence class exists, STWC otherwise.
pub fn recommend(a: &StiAnalysis, threshold: usize) -> Mechanism {
    if replay_surface(a, threshold).hot_classes > 0 {
        Mechanism::Stl
    } else {
        Mechanism::Stwc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sti::analyze;
    use rsti_frontend::compile;

    /// Many same-fact pointers in one scope → one big class → STL
    /// recommended. Few → STWC suffices.
    #[test]
    fn recommendation_follows_class_size() {
        let big = compile(
            r#"
            struct s { long v; };
            struct s* a; struct s* b; struct s* c; struct s* d;
            struct s* e; struct s* f;
            void touch() {
                a = (struct s*) malloc(8); b = a; c = a; d = a; e = a; f = a;
            }
            int main() { touch(); return 0; }
        "#,
            "big",
        )
        .unwrap();
        let a = analyze(&big, Mechanism::Stwc);
        let s = replay_surface(&a, DEFAULT_ECV_THRESHOLD);
        assert!(s.largest_class > DEFAULT_ECV_THRESHOLD, "{s:?}");
        assert_eq!(recommend(&a, DEFAULT_ECV_THRESHOLD), Mechanism::Stl);

        let small = compile(
            r#"
            int* narrow;
            void take() { narrow = (int*) malloc(4); }
            int main() { take(); return 0; }
        "#,
            "small",
        )
        .unwrap();
        let a = analyze(&small, Mechanism::Stwc);
        assert_eq!(recommend(&a, DEFAULT_ECV_THRESHOLD), Mechanism::Stwc);
    }

    #[test]
    fn stl_has_zero_substitutable_pairs_absent_aliasing() {
        let m = compile(
            "int main() { int* p = null; int* q = null; void* r = null; return 0; }",
            "t",
        )
        .unwrap();
        let a = analyze(&m, Mechanism::Stl);
        let s = replay_surface(&a, DEFAULT_ECV_THRESHOLD);
        assert_eq!(s.substitutable_pairs, 0, "{s:?}");
        // And STWC on the same program has some (p/q share facts).
        let a = analyze(&m, Mechanism::Stwc);
        assert!(replay_surface(&a, DEFAULT_ECV_THRESHOLD).substitutable_pairs > 0);
    }

    #[test]
    fn surface_ordering() {
        let m = compile(
            r#"
            struct a { long x; };
            struct a* p1; struct a* p2;
            void* q1; void* q2;
            void wire() {
                p1 = (struct a*) malloc(8);
                p2 = p1;
                q1 = (void*) p1;
                q2 = q1;
            }
            int main() { wire(); return 0; }
        "#,
            "t",
        )
        .unwrap();
        let surf = |mech| {
            replay_surface(&analyze(&m, mech), DEFAULT_ECV_THRESHOLD).substitutable_pairs
        };
        let (stl, stwc, stc, parts) = (
            surf(Mechanism::Stl),
            surf(Mechanism::Stwc),
            surf(Mechanism::Stc),
            surf(Mechanism::Parts),
        );
        assert!(stl <= stwc, "stl={stl} stwc={stwc}");
        assert!(stwc <= stc, "stwc={stwc} stc={stc}");
        // PARTS ignores scope/permission, so it is never finer than STWC;
        // STC and PARTS are *incomparable*: combining across casts can make
        // STC's classes larger than PARTS' per-type ones — the very caveat
        // the paper raises ("the size of the RSTI-type may be large due to
        // combining", Table 2).
        assert!(stwc <= parts, "stwc={stwc} parts={parts}");
        assert!(stc >= stwc && parts >= stwc, "stc={stc} parts={parts}");
    }
}
