//! The RSTI instrumentation pass.
//!
//! Rewrites a module so that every pointer load/store is guarded by PA
//! (§4.7):
//!
//! * **on-store signing** — a pointer value is signed with its storage's
//!   RSTI-type modifier immediately before the store, so pointers at rest
//!   in memory always carry a PAC;
//! * **on-load authentication** — a pointer is authenticated right after
//!   the load with the same modifier; a corrupted or substituted pointer
//!   poisons and the first use traps ("the authenticated address is always
//!   in a register", §4.7.2 — registers are outside the attacker's reach);
//! * **cast / argument re-signing** — STWC re-signs pointer arguments that
//!   were cast (§4.6); STL re-signs *every* pointer argument because the
//!   location changes; STC needs neither (compatible classes are merged);
//! * **external-call stripping** — PACs are stripped before pointers enter
//!   uninstrumented code (§7);
//! * **pointer-to-pointer CE/FE** — lost-type double-pointer arguments are
//!   wrapped in `pp_add`/`pp_sign`/`pp_add_tbi`, and the receiving
//!   parameter's loads use `pp_auth` (§4.7.7);
//! * **static initializers** — pointer-typed globals initialized with
//!   function or string addresses are recorded so the loader (the VM)
//!   signs them before `main` runs.

use crate::ptr2ptr::{plan_pp, PpPlan};
use crate::sti::{analyze, Mechanism, StiAnalysis};
use crate::storage::{operand_type, root_of_value, storage_of_addr, DefMap, StorageKey};
use rsti_ir::{
    BasicBlock, GlobalId, GlobalInit, Inst, InstNode, Module, PacKey, PacSite,
    TypeId, ValueId, VarId,
};

/// Instrumentation-site counters (per module). These are the quantities
/// the paper correlates with overhead (§6.3.2: Pearson 0.75–0.8 between
/// instrumented load/stores and slowdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrumentStats {
    /// On-store signs inserted.
    pub signs_on_store: usize,
    /// On-load authentications inserted.
    pub auths_on_load: usize,
    /// STWC cast-boundary re-sign pairs (each pair = 1 auth + 1 sign).
    pub cast_resigns: usize,
    /// STL argument re-sign pairs.
    pub arg_resigns: usize,
    /// PAC strips before external calls.
    pub strips: usize,
    /// `pp_add`/`pp_sign`/`pp_add_tbi` triples inserted.
    pub pp_signs: usize,
    /// `pp_auth` loads inserted.
    pub pp_auths: usize,
}

impl InstrumentStats {
    /// Total PA operations inserted (the cost driver).
    pub fn total_pac_ops(&self) -> usize {
        self.signs_on_store
            + self.auths_on_load
            + 2 * self.cast_resigns
            + 2 * self.arg_resigns
            + self.strips
            + 3 * self.pp_signs
            + self.pp_auths
    }
}

/// Load-time signing directive for a pointer-typed global with a non-zero
/// initializer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalSign {
    /// The global to sign.
    pub global: GlobalId,
    /// Key to sign with.
    pub key: PacKey,
    /// Static modifier.
    pub modifier: u64,
    /// Whether to XOR the global's own address into the modifier (STL).
    pub mix_location: bool,
}

/// An instrumented program: the rewritten module plus everything the
/// runtime needs.
#[derive(Debug, Clone)]
pub struct InstrumentedProgram {
    /// The rewritten module.
    pub module: Module,
    /// Mechanism used.
    pub mechanism: Mechanism,
    /// The analysis the instrumentation was derived from (computed on the
    /// original module; storage keys remain valid).
    pub analysis: StiAnalysis,
    /// The pointer-to-pointer plan.
    pub pp_plan: PpPlan,
    /// Site counters.
    pub stats: InstrumentStats,
    /// Globals the loader must sign before `main`.
    pub global_signing: Vec<GlobalSign>,
}

/// When the runtime modifier mixes the slot address (`&p`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LocPolicy {
    /// Never (STC, STWC, PARTS).
    Never,
    /// Every site (STL).
    Always,
    /// Only storage whose RSTI-type has more members than the threshold —
    /// the paper's §7 adaptive proposal.
    ClassesLargerThan(usize),
}

impl LocPolicy {
    fn applies(&self, analysis: &StiAnalysis, key: StorageKey) -> bool {
        match self {
            LocPolicy::Never => false,
            LocPolicy::Always => true,
            LocPolicy::ClassesLargerThan(t) => analysis
                .class_of(key)
                .map(|c| c.members.len() > *t)
                .unwrap_or(false),
        }
    }
}

/// Fallback modifier for storage with no analysis class (should not occur
/// in practice; kept total for robustness).
fn fallback_modifier(m: &Module, ty: TypeId) -> u64 {
    let mut h: u64 = 0x2545F4914F6CDD1D;
    for b in m.types.display(ty).bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Instruments `m` under `mechanism`. The input module must not already be
/// instrumented.
pub fn instrument(m: &Module, mechanism: Mechanism) -> InstrumentedProgram {
    let analysis = analyze(m, mechanism);
    let pp_plan = if mechanism == Mechanism::Parts {
        PpPlan::default()
    } else {
        plan_pp(m, &analysis)
    };
    let loc_policy = if mechanism.uses_location() {
        LocPolicy::Always
    } else {
        LocPolicy::Never
    };
    finish_instrument(m, mechanism, analysis, pp_plan, loc_policy)
}

/// The paper's §7 adaptive variant: STWC everywhere, plus STL-style
/// location binding for storage whose equivalence class exceeds
/// `ecv_threshold` members (e.g. xalancbmk's 122-variable class).
/// Costs sit between STWC and STL; large-class substitution is closed.
pub fn instrument_adaptive(m: &Module, ecv_threshold: usize) -> InstrumentedProgram {
    let analysis = analyze(m, Mechanism::Stwc);
    let pp_plan = plan_pp(m, &analysis);
    finish_instrument(
        m,
        Mechanism::Stwc,
        analysis,
        pp_plan,
        LocPolicy::ClassesLargerThan(ecv_threshold),
    )
}

fn finish_instrument(
    m: &Module,
    mechanism: Mechanism,
    analysis: StiAnalysis,
    pp_plan: PpPlan,
    loc_policy: LocPolicy,
) -> InstrumentedProgram {
    let tel = rsti_telemetry::global();
    let _span = tel.span(rsti_telemetry::Phase::Instrument);
    let mut out = m.clone();
    let mut stats = InstrumentStats::default();

    for (fid, _) in m.funcs() {
        if m.func(fid).is_external {
            continue;
        }
        let rewritten =
            rewrite_function(m, fid, mechanism, &analysis, &pp_plan, loc_policy, &mut stats);
        out.funcs[fid.0 as usize] = rewritten;
    }

    // Static pointer initializers must be signed at load time.
    let mut global_signing = Vec::new();
    for (gi, g) in m.globals.iter().enumerate() {
        let gid = GlobalId(gi as u32);
        if !m.types.is_ptr(g.ty) {
            continue;
        }
        if matches!(g.init, GlobalInit::FuncAddr(_) | GlobalInit::Str(_)) {
            let key = StorageKey::Var(g.var);
            let (modifier, code) = match analysis.class_of(key) {
                Some(c) => (c.modifier, c.code_ptr),
                None => (fallback_modifier(m, g.ty), m.types.is_func_ptr(g.ty)),
            };
            global_signing.push(GlobalSign {
                global: gid,
                key: if code { PacKey::Ia } else { PacKey::Da },
                modifier,
                mix_location: loc_policy.applies(&analysis, key),
            });
        }
    }

    debug_assert!(
        rsti_ir::verify_module(&out).is_ok(),
        "instrumentation produced ill-formed IR: {:#?}",
        rsti_ir::verify_module(&out).err()
    );

    use rsti_telemetry::CounterId;
    tel.add(CounterId::SignsInserted, (stats.signs_on_store + stats.cast_resigns
        + stats.arg_resigns + stats.pp_signs) as u64);
    tel.add(CounterId::AuthsInserted, (stats.auths_on_load + stats.cast_resigns
        + stats.arg_resigns + stats.pp_auths) as u64);
    tel.add(CounterId::StripsInserted, stats.strips as u64);
    tel.add(CounterId::PpSitesInserted, (stats.pp_signs + stats.pp_auths) as u64);

    InstrumentedProgram { module: out, mechanism, analysis, pp_plan, stats, global_signing }
}

/// The (key, modifier, is-code) triple for a storage key.
fn class_info(
    m: &Module,
    analysis: &StiAnalysis,
    key: StorageKey,
    ty: TypeId,
) -> (PacKey, u64) {
    match analysis.class_of(key) {
        Some(c) => (if c.code_ptr { PacKey::Ia } else { PacKey::Da }, c.modifier),
        None => (
            if m.types.is_func_ptr(ty) { PacKey::Ia } else { PacKey::Da },
            fallback_modifier(m, ty),
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn rewrite_function(
    m: &Module,
    fid: rsti_ir::FuncId,
    mechanism: Mechanism,
    analysis: &StiAnalysis,
    pp_plan: &PpPlan,
    loc_policy: LocPolicy,
    stats: &mut InstrumentStats,
) -> rsti_ir::Function {
    let f = m.func(fid);
    let defs = DefMap::new(f);
    let mut new_f = f.clone();

    // Fresh values extend the cloned function's table.
    let mut next_value = new_f.value_types.len() as u32;
    let mut fresh = |tys: &mut Vec<TypeId>, ty: TypeId| {
        let id = ValueId(next_value);
        next_value += 1;
        tys.push(ty);
        id
    };

    let tagged_param_key = |v: VarId| pp_plan.tagged_params.contains(&v);

    for (bi, blk) in f.blocks.iter().enumerate() {
        let mut out = BasicBlock::new();
        out.term = blk.term.clone();
        out.term_loc = blk.term_loc;

        for node in &blk.insts {
            let loc = node.loc;
            match &node.inst {
                Inst::Store { value, ptr } => {
                    let vty = operand_type(m, f, value);
                    if !m.types.is_ptr(vty) {
                        out.insts.push(node.clone());
                        continue;
                    }
                    let key = storage_of_addr(m, f, &defs, ptr);
                    // Spill of a tagged universal double-pointer parameter:
                    // the value arrives already pp-signed and tagged; store
                    // it untouched so the tag survives in memory.
                    if let StorageKey::Var(v) = key {
                        if tagged_param_key(v) {
                            let root = root_of_value(m, f, &defs, value);
                            if root.key == Some(key) && !root.casted {
                                out.insts.push(node.clone());
                                continue;
                            }
                        }
                    }
                    let (pac_key, modifier) = class_info(m, analysis, key, vty);
                    let use_loc = loc_policy.applies(analysis, key);
                    let signed = fresh(&mut new_f.value_types, vty);
                    out.insts.push(InstNode {
                        inst: Inst::PacSign {
                            result: signed,
                            value: value.clone(),
                            key: pac_key,
                            modifier,
                            loc: use_loc.then(|| ptr.clone()),
                            site: PacSite::OnStore,
                        },
                        loc,
                    });
                    stats.signs_on_store += 1;
                    out.insts.push(InstNode {
                        inst: Inst::Store { value: signed.into(), ptr: ptr.clone() },
                        loc,
                    });
                }
                Inst::Load { result, ptr, ty } => {
                    if !m.types.is_ptr(*ty) {
                        out.insts.push(node.clone());
                        continue;
                    }
                    let key = storage_of_addr(m, f, &defs, ptr);
                    let raw = fresh(&mut new_f.value_types, *ty);
                    out.insts.push(InstNode {
                        inst: Inst::Load { result: raw, ptr: ptr.clone(), ty: *ty },
                        loc,
                    });
                    if let StorageKey::Var(v) = key {
                        if tagged_param_key(v) {
                            out.insts.push(InstNode {
                                inst: Inst::PpAuth {
                                    result: *result,
                                    value: raw.into(),
                                    key: PacKey::Da,
                                },
                                loc,
                            });
                            stats.pp_auths += 1;
                            continue;
                        }
                    }
                    let (pac_key, modifier) = class_info(m, analysis, key, *ty);
                    let use_loc = loc_policy.applies(analysis, key);
                    out.insts.push(InstNode {
                        inst: Inst::PacAuth {
                            result: *result,
                            value: raw.into(),
                            key: pac_key,
                            modifier,
                            loc: use_loc.then(|| ptr.clone()),
                            site: PacSite::OnLoad,
                        },
                        loc,
                    });
                    stats.auths_on_load += 1;
                }
                Inst::BitCast { result, value, to } => {
                    out.insts.push(node.clone());
                    // §4.6: STWC "authenticates and re-signs pointers when
                    // casts happen"; STL does too (plus location). STC
                    // merged the classes, so the cast is free; PARTS only
                    // knows the element type and does nothing either.
                    let is_const = !matches!(value, rsti_ir::Operand::Value(_));
                    if matches!(mechanism, Mechanism::Stwc | Mechanism::Stl)
                        && m.types.is_ptr(*to)
                        && !is_const
                    {
                        let (pac_key, modifier) =
                            (PacKey::Da, fallback_modifier(m, *to));
                        let signed = fresh(&mut new_f.value_types, *to);
                        out.insts.push(InstNode {
                            inst: Inst::PacSign {
                                result: signed,
                                value: (*result).into(),
                                key: pac_key,
                                modifier,
                                loc: None,
                                site: PacSite::CastResign,
                            },
                            loc,
                        });
                        let authed = fresh(&mut new_f.value_types, *to);
                        out.insts.push(InstNode {
                            inst: Inst::PacAuth {
                                result: authed,
                                value: signed.into(),
                                key: pac_key,
                                modifier,
                                loc: None,
                                site: PacSite::CastResign,
                            },
                            loc,
                        });
                        stats.cast_resigns += 1;
                        // Later uses still read the original result id; the
                        // round-trip models the re-signing cost without
                        // rewiring the dataflow (its output equals its
                        // input on the clean in-register value).
                        let _ = authed;
                    }
                }
                Inst::Call { result, callee, args } => {
                    let callee_f = m.func(*callee);
                    let mut new_args = Vec::with_capacity(args.len());
                    for (i, a) in args.iter().enumerate() {
                        let aty = operand_type(m, f, a);
                        if !m.types.is_ptr(aty) {
                            new_args.push(a.clone());
                            continue;
                        }
                        if callee_f.is_external {
                            // §7: strip before entering uninstrumented code.
                            let stripped = fresh(&mut new_f.value_types, aty);
                            out.insts.push(InstNode {
                                inst: Inst::PacStrip { result: stripped, value: a.clone() },
                                loc,
                            });
                            stats.strips += 1;
                            new_args.push(stripped.into());
                            continue;
                        }
                        let root = root_of_value(m, f, &defs, a);
                        let orig_ty = root.root_ty.unwrap_or(aty);
                        let lost = root.casted
                            && orig_ty != aty
                            && m.types.ptr_depth(orig_ty) >= 2
                            && mechanism != Mechanism::Parts;
                        if lost {
                            // Figure 7 sequence: pp_add, pp_sign, pp_add_tbi.
                            if let Some(site) = pp_plan
                                .sites
                                .iter()
                                .find(|s| s.func == fid && s.original_ty == orig_ty)
                            {
                                out.insts.push(InstNode {
                                    inst: Inst::PpAdd {
                                        ce: site.ce,
                                        fe_modifier: site.fe_modifier,
                                    },
                                    loc,
                                });
                                let signed = fresh(&mut new_f.value_types, aty);
                                out.insts.push(InstNode {
                                    inst: Inst::PpSign {
                                        result: signed,
                                        value: a.clone(),
                                        ce: site.ce,
                                        key: PacKey::Da,
                                    },
                                    loc,
                                });
                                let tagged = fresh(&mut new_f.value_types, aty);
                                out.insts.push(InstNode {
                                    inst: Inst::PpAddTbi {
                                        result: tagged,
                                        value: signed.into(),
                                        ce: site.ce,
                                    },
                                    loc,
                                });
                                stats.pp_signs += 1;
                                new_args.push(tagged.into());
                                continue;
                            }
                        }
                        // Boundary re-signing: STWC on casted args; STL on
                        // every pointer arg (the location changes).
                        let resign = match mechanism {
                            Mechanism::Stwc => root.casted,
                            Mechanism::Stl => true,
                            Mechanism::Stc | Mechanism::Parts => false,
                        };
                        if resign {
                            let pkey = callee_f
                                .params
                                .get(i)
                                .and_then(|(_, v)| *v)
                                .map(StorageKey::Var);
                            let (pac_key, modifier) = match pkey {
                                Some(k) => class_info(m, analysis, k, aty),
                                None => (PacKey::Da, fallback_modifier(m, aty)),
                            };
                            let site = if mechanism == Mechanism::Stl && !root.casted {
                                PacSite::ArgResign
                            } else {
                                PacSite::CastResign
                            };
                            let signed = fresh(&mut new_f.value_types, aty);
                            out.insts.push(InstNode {
                                inst: Inst::PacSign {
                                    result: signed,
                                    value: a.clone(),
                                    key: pac_key,
                                    modifier,
                                    loc: None,
                                    site,
                                },
                                loc,
                            });
                            let authed = fresh(&mut new_f.value_types, aty);
                            out.insts.push(InstNode {
                                inst: Inst::PacAuth {
                                    result: authed,
                                    value: signed.into(),
                                    key: pac_key,
                                    modifier,
                                    loc: None,
                                    site,
                                },
                                loc,
                            });
                            if site == PacSite::ArgResign {
                                stats.arg_resigns += 1;
                            } else {
                                stats.cast_resigns += 1;
                            }
                            new_args.push(authed.into());
                            continue;
                        }
                        new_args.push(a.clone());
                    }
                    out.insts.push(InstNode {
                        inst: Inst::Call { result: *result, callee: *callee, args: new_args },
                        loc,
                    });
                }
                Inst::CallIndirect { result, callee, args, sig } => {
                    let mut new_args = Vec::with_capacity(args.len());
                    for a in args.iter() {
                        let aty = operand_type(m, f, a);
                        let resign = m.types.is_ptr(aty)
                            && match mechanism {
                                Mechanism::Stl => true,
                                Mechanism::Stwc => {
                                    root_of_value(m, f, &defs, a).casted
                                }
                                _ => false,
                            };
                        if !resign {
                            new_args.push(a.clone());
                            continue;
                        }
                        // The callee is dynamic: bind to the argument's
                        // static-type class (all the compiler can know).
                        let (pac_key, modifier) = (PacKey::Da, fallback_modifier(m, aty));
                        let signed = fresh(&mut new_f.value_types, aty);
                        out.insts.push(InstNode {
                            inst: Inst::PacSign {
                                result: signed,
                                value: a.clone(),
                                key: pac_key,
                                modifier,
                                loc: None,
                                site: PacSite::ArgResign,
                            },
                            loc,
                        });
                        let authed = fresh(&mut new_f.value_types, aty);
                        out.insts.push(InstNode {
                            inst: Inst::PacAuth {
                                result: authed,
                                value: signed.into(),
                                key: pac_key,
                                modifier,
                                loc: None,
                                site: PacSite::ArgResign,
                            },
                            loc,
                        });
                        stats.arg_resigns += 1;
                        new_args.push(authed.into());
                    }
                    out.insts.push(InstNode {
                        inst: Inst::CallIndirect {
                            result: *result,
                            callee: callee.clone(),
                            sig: sig.clone(),
                            args: new_args,
                        },
                        loc,
                    });
                }
                _ => out.insts.push(node.clone()),
            }
        }
        // STL: a returned pointer changes location (callee frame → caller),
        // so it is re-signed at the boundary like an argument (§4.6).
        if mechanism == Mechanism::Stl {
            if let rsti_ir::Terminator::Ret(Some(op)) = &blk.term {
                let rty = operand_type(m, f, op);
                if m.types.is_ptr(rty) {
                    let modifier = fallback_modifier(m, rty);
                    let signed = fresh(&mut new_f.value_types, rty);
                    out.insts.push(InstNode {
                        inst: Inst::PacSign {
                            result: signed,
                            value: op.clone(),
                            key: PacKey::Da,
                            modifier,
                            loc: None,
                            site: PacSite::ArgResign,
                        },
                        loc: blk.term_loc,
                    });
                    let authed = fresh(&mut new_f.value_types, rty);
                    out.insts.push(InstNode {
                        inst: Inst::PacAuth {
                            result: authed,
                            value: signed.into(),
                            key: PacKey::Da,
                            modifier,
                            loc: None,
                            site: PacSite::ArgResign,
                        },
                        loc: blk.term_loc,
                    });
                    stats.arg_resigns += 1;
                    out.term = rsti_ir::Terminator::Ret(Some(authed.into()));
                }
            }
        }
        new_f.blocks[bi] = out;
    }
    new_f
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsti_frontend::compile;
    use rsti_ir::{Inst, Operand};

    const PROG: &str = r#"
        struct ctx { void (*send_file)(int x); };
        void foo(struct ctx* c) { }
        void baz(struct ctx* c) { foo(c); }
        void foo2(void* v_ctx) { foo((struct ctx*) v_ctx); }
        int main() {
            struct ctx* c = (struct ctx*) malloc(sizeof(struct ctx));
            foo2((void*) c);
            baz(c);
            return 0;
        }
    "#;

    #[test]
    fn all_pointer_stores_signed_and_loads_authed() {
        let m = compile(PROG, "p").unwrap();
        let p = instrument(&m, Mechanism::Stwc);
        // Every pointer store in the instrumented module is preceded by a
        // PacSign whose result feeds the store.
        for (_, f) in p.module.funcs() {
            let mut prev: Option<&Inst> = None;
            for n in f.insts() {
                if let Inst::Store { value, .. } = &n.inst {
                    let vty = match value {
                        Operand::Value(v) => f.value_type(*v),
                        Operand::ConstInt(_, t) | Operand::Null(t) => *t,
                        _ => continue,
                    };
                    if p.module.types.is_ptr(vty) {
                        assert!(
                            matches!(prev, Some(Inst::PacSign { .. })),
                            "unsigned pointer store in {}",
                            f.name
                        );
                    }
                }
                prev = Some(&n.inst);
            }
        }
        assert!(p.stats.signs_on_store > 0);
        assert!(p.stats.auths_on_load > 0);
        rsti_ir::verify_module(&p.module).unwrap();
    }

    #[test]
    fn mechanism_cost_ordering_matches_paper() {
        let m = compile(PROG, "p").unwrap();
        let stc = instrument(&m, Mechanism::Stc).stats.total_pac_ops();
        let stwc = instrument(&m, Mechanism::Stwc).stats.total_pac_ops();
        let stl = instrument(&m, Mechanism::Stl).stats.total_pac_ops();
        assert!(stc <= stwc, "STC ({stc}) must not exceed STWC ({stwc})");
        assert!(stwc < stl, "STWC ({stwc}) must be cheaper than STL ({stl})");
    }

    #[test]
    fn stwc_resigns_cast_arguments_stl_resigns_all() {
        let m = compile(PROG, "p").unwrap();
        let stwc = instrument(&m, Mechanism::Stwc);
        assert!(stwc.stats.cast_resigns > 0, "{:?}", stwc.stats);
        assert_eq!(stwc.stats.arg_resigns, 0);
        let stc = instrument(&m, Mechanism::Stc);
        assert_eq!(stc.stats.cast_resigns, 0, "{:?}", stc.stats);
        let stl = instrument(&m, Mechanism::Stl);
        assert!(stl.stats.arg_resigns + stl.stats.cast_resigns > stwc.stats.cast_resigns);
    }

    #[test]
    fn stl_loads_carry_location_operands() {
        let m = compile(PROG, "p").unwrap();
        let p = instrument(&m, Mechanism::Stl);
        let mut found = false;
        for (_, f) in p.module.funcs() {
            for n in f.insts() {
                if let Inst::PacAuth { loc: Some(_), .. } = n.inst {
                    found = true;
                }
            }
        }
        assert!(found, "STL must mix &p into modifiers");
        // STWC must not.
        let p = instrument(&m, Mechanism::Stwc);
        for (_, f) in p.module.funcs() {
            for n in f.insts() {
                if let Inst::PacAuth { loc, site, .. } = &n.inst {
                    assert!(loc.is_none(), "unexpected location in STWC at {site:?}");
                }
            }
        }
    }

    #[test]
    fn external_calls_strip_pointer_args() {
        let src = r#"
            extern void syslog(char* msg);
            int main() {
                char* s = "x";
                syslog(s);
                return 0;
            }
        "#;
        let m = compile(src, "p").unwrap();
        let p = instrument(&m, Mechanism::Stwc);
        assert_eq!(p.stats.strips, 1);
        let main = p.module.func_by_name("main").unwrap();
        assert!(p
            .module
            .func(main)
            .insts()
            .any(|n| matches!(n.inst, Inst::PacStrip { .. })));
    }

    #[test]
    fn lost_type_double_pointer_args_get_pp_instrumentation() {
        let src = r#"
            struct node { int key; }
            ;
            void sink(void** pp) {
                void* inner = *pp;
            }
            int main() {
                struct node* p = (struct node*) malloc(sizeof(struct node));
                sink((void**) &p);
                return 0;
            }
        "#;
        let m = compile(src, "p").unwrap();
        let p = instrument(&m, Mechanism::Stwc);
        assert_eq!(p.stats.pp_signs, 1, "{:?}", p.stats);
        assert!(p.stats.pp_auths >= 1, "{:?}", p.stats);
        let main = p.module.func_by_name("main").unwrap();
        let seq: Vec<&Inst> = p.module.func(main).insts().map(|n| &n.inst).collect();
        let add = seq.iter().position(|i| matches!(i, Inst::PpAdd { .. })).unwrap();
        let sgn = seq.iter().position(|i| matches!(i, Inst::PpSign { .. })).unwrap();
        let tbi = seq.iter().position(|i| matches!(i, Inst::PpAddTbi { .. })).unwrap();
        assert!(add < sgn && sgn < tbi, "Figure 7 ordering: pp_add, pp_sign, pp_add_tbi");
    }

    #[test]
    fn globals_with_code_pointer_initializers_are_load_signed() {
        let src = r#"
            void handler() { }
            void (*g_hook)() = handler;
            int main() {
                g_hook();
                return 0;
            }
        "#;
        let m = compile(src, "p").unwrap();
        let p = instrument(&m, Mechanism::Stwc);
        assert_eq!(p.global_signing.len(), 1);
        assert_eq!(p.global_signing[0].key, PacKey::Ia, "code pointers use the I-key");
        assert!(!p.global_signing[0].mix_location);
        let p = instrument(&m, Mechanism::Stl);
        assert!(p.global_signing[0].mix_location, "STL mixes the global's address");
    }

    #[test]
    fn parts_baseline_skips_pp_and_resigns() {
        let m = compile(PROG, "p").unwrap();
        let p = instrument(&m, Mechanism::Parts);
        assert_eq!(p.stats.cast_resigns, 0);
        assert_eq!(p.stats.arg_resigns, 0);
        assert_eq!(p.stats.pp_signs, 0);
        assert!(p.stats.signs_on_store > 0, "PARTS still signs data pointers");
    }

    #[test]
    fn adaptive_cost_sits_between_stwc_and_stl() {
        let m = compile(PROG, "p").unwrap();
        let stwc = instrument(&m, Mechanism::Stwc).stats.total_pac_ops();
        let stl = instrument(&m, Mechanism::Stl).stats.total_pac_ops();
        // Threshold 0: every class is "hot" → every site gets a location,
        // but arg re-signing stays STWC-shaped, so cost <= STL.
        let adaptive = instrument_adaptive(&m, 0).stats.total_pac_ops();
        assert!(adaptive >= stwc, "adaptive {adaptive} < stwc {stwc}");
        assert!(adaptive <= stl, "adaptive {adaptive} > stl {stl}");
        // A huge threshold degenerates to plain STWC.
        let lax = instrument_adaptive(&m, usize::MAX).stats.total_pac_ops();
        assert_eq!(lax, stwc);
    }

    #[test]
    fn adaptive_binds_location_only_on_hot_classes() {
        // Six same-fact globals form one hot class; a lone pointer stays
        // location-free.
        let src = r#"
            struct s { long v; };
            struct s* a; struct s* b; struct s* c;
            struct s* d; struct s* e; struct s* f;
            int* lone;
            void touch() {
                a = (struct s*) malloc(8); b = a; c = a; d = a; e = a; f = a;
                lone = (int*) malloc(4);
            }
            int main() { touch(); return 0; }
        "#;
        let m = compile(src, "p").unwrap();
        let p = instrument_adaptive(&m, 4);
        let mut with_loc = 0;
        let mut without_loc = 0;
        for (_, f) in p.module.funcs() {
            for n in f.insts() {
                if let Inst::PacSign { loc, site: PacSite::OnStore, .. } = &n.inst {
                    if loc.is_some() {
                        with_loc += 1;
                    } else {
                        without_loc += 1;
                    }
                }
            }
        }
        assert!(with_loc >= 6, "hot-class stores bind the location: {with_loc}");
        assert!(without_loc >= 1, "the lone pointer stays plain: {without_loc}");
    }

    #[test]
    fn instrumented_modules_always_verify() {
        for mech in Mechanism::ALL {
            let m = compile(PROG, "p").unwrap();
            let p = instrument(&m, mech);
            rsti_ir::verify_module(&p.module)
                .unwrap_or_else(|e| panic!("{mech}: {e:?}"));
        }
    }
}
