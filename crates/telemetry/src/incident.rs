//! Violation forensics: structured incident reports.
//!
//! When the VM's flight recorder is armed (`Image::with_record`, the CLI's
//! `--record` flag, or `rsti explain`) and an RSTI detection trap fires, the
//! engine synthesizes one [`Incident`]: the failing check site, the
//! expected-vs-presented modifier and key, the *sign-site lineage* of the
//! authenticated value (the last sign event that produced exactly the bits
//! being authenticated), a scope-lifetime timeline, and the last-K window of
//! pointer-lifecycle events leading up to the trap.
//!
//! Everything here is plain resolved data — function names, check-site
//! labels, key letters — so the type has no dependency on the VM or IR
//! crates and both execution engines can be diffed for bit-identical
//! incidents (the same discipline the attribution profiler established:
//! `Incident` derives `PartialEq` and rides on `ExecResult`).
//!
//! Serialization is hand-rolled (the workspace is dependency-free); the
//! field names are a public contract pinned by golden tests below.

use crate::json_str;

/// One pointer-lifecycle event captured by the VM's flight recorder,
/// fully resolved (names instead of ids) for export.
///
/// `kind` is one of the closed event taxonomy: `sign`, `auth`, `auth_fail`,
/// `strip`, `load`, `store`, `free`, `scope_enter`, `scope_exit`,
/// `attacker_write`.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentEvent {
    /// Model-cycle timestamp (deterministic; identical across engines).
    pub cycle: u64,
    /// Event kind from the closed taxonomy.
    pub kind: String,
    /// Function the event executed in (entered/exited function for scope
    /// events).
    pub func: String,
    /// Check-site label (`func:bbN:i`) for PAC-family events; empty for
    /// events with no check site (loads, stores, scope transitions).
    pub site: String,
    /// Memory address involved (slot for load/store, block base for free,
    /// target for attacker writes; 0 when not applicable).
    pub addr: u64,
    /// The pointer value as the event saw it (signed bits for sign/auth
    /// under PAC-in-pointer; raw bits otherwise; 0 when not applicable).
    pub value: u64,
    /// PAC modifier used by sign/auth events (0 otherwise).
    pub modifier: u64,
    /// PAC key letter (`ia`, `ib`, `da`, `db`, `ga`) for sign/auth events;
    /// empty otherwise.
    pub key: String,
}

impl IncidentEvent {
    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cycle\":{},\"kind\":{},\"func\":{},\"site\":{},\"addr\":\"{:#x}\",\
             \"value\":\"{:#018x}\",\"modifier\":\"{:#018x}\",\"key\":{}}}",
            self.cycle,
            json_str(&self.kind),
            json_str(&self.func),
            json_str(&self.site),
            self.addr,
            self.value,
            self.modifier,
            json_str(&self.key),
        )
    }

    /// One human-readable line for the report's event window.
    pub fn render_line(&self) -> String {
        let mut line = format!("cycle {:>8}  {:<13} {}", self.cycle, self.kind, self.func);
        if !self.site.is_empty() {
            line.push_str(&format!("  site {}", self.site));
        }
        if self.addr != 0 {
            line.push_str(&format!("  addr {:#x}", self.addr));
        }
        if self.value != 0 {
            line.push_str(&format!("  value {:#018x}", self.value));
        }
        if self.modifier != 0 {
            line.push_str(&format!("  modifier {:#018x}", self.modifier));
        }
        if !self.key.is_empty() {
            line.push_str(&format!("  key {}", self.key));
        }
        line
    }
}

/// The sign-site lineage of an authenticated value: the most recent `sign`
/// event whose produced bits are exactly the bits the failing check
/// authenticated. Present for replay/substitution attacks (the signature is
/// genuine, minted elsewhere); absent for raw overwrites (the value was
/// never signed).
#[derive(Debug, Clone, PartialEq)]
pub struct SignLineage {
    /// Check-site label of the signing instruction.
    pub site: String,
    /// Function the sign executed in.
    pub func: String,
    /// Model cycle of the sign.
    pub cycle: u64,
    /// Modifier the signer used — the *expected* modifier at the failing
    /// check when the mechanisms agree on scope-type identity.
    pub modifier: u64,
    /// Key the signer used.
    pub key: String,
}

impl SignLineage {
    fn to_json(&self) -> String {
        format!(
            "{{\"site\":{},\"func\":{},\"cycle\":{},\"modifier\":\"{:#018x}\",\"key\":{}}}",
            json_str(&self.site),
            json_str(&self.func),
            self.cycle,
            self.modifier,
            json_str(&self.key),
        )
    }
}

/// Current incident schema version (bumped on any field change).
pub const INCIDENT_SCHEMA: u32 = 1;

/// A structured violation incident: one RSTI detection trap explained.
///
/// Synthesized by the VM (either engine) at the first detection trap of a
/// recorded run; deterministic and bit-identical between the interpreter
/// and the compiled backend.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Schema version ([`INCIDENT_SCHEMA`]).
    pub schema: u32,
    /// Mechanism in force (`RSTI-STWC`, `RSTI-STC`, `RSTI-STL`, `PARTS`).
    pub mechanism: String,
    /// Enforcement backend (`pac_in_pointer` or `mac_table`).
    pub enforcement: String,
    /// Trap class: `pac_auth_failure` or `pp_auth_failure`.
    pub trap: String,
    /// Model cycle at which the trap fired.
    pub cycle: u64,
    /// Function the failing check executed in.
    pub func: String,
    /// Source line of the failing check (0 when absent).
    pub line: u32,
    /// Label of the failing check site (`func:bbN:i`; empty when the
    /// failing operation carries no site id).
    pub check_site: String,
    /// The faulting instruction (`pac.auth`, `pp.auth`, `pp.sign`,
    /// `pp.add`).
    pub check_kind: String,
    /// Instrumentation-site kind that fired (`on_load`, `on_store`,
    /// `cast_resign`, `arg_resign`, `pp_metadata`, ...).
    pub pac_site: String,
    /// The modifier the failing check presented.
    pub presented_modifier: u64,
    /// The key the failing check used.
    pub presented_key: String,
    /// The value the failing check authenticated (as loaded).
    pub presented_value: u64,
    /// PAC bits found in the presented value (0 for MAC-table misses).
    pub found_pac: u64,
    /// PAC bits a genuine signature would carry here.
    pub expected_pac: u64,
    /// Sign-site lineage of the presented value, when the recorder's
    /// window contains a sign event that produced those exact bits.
    pub lineage: Option<SignLineage>,
    /// Scope-lifetime timeline: the `scope_enter`/`scope_exit`/`free`
    /// events from the recorded window, in order.
    pub scope_timeline: Vec<IncidentEvent>,
    /// The full last-K event window, oldest first (the trap's `auth_fail`
    /// event is last).
    pub window: Vec<IncidentEvent>,
    /// Events that fell off the bounded ring before the trap.
    pub dropped_events: u64,
    /// Free-form detail copied from the audit record.
    pub detail: String,
}

impl Incident {
    /// Serializes the incident as one JSON object (no trailing newline).
    /// Field names are pinned by the golden test.
    pub fn to_json(&self) -> String {
        let lineage =
            self.lineage.as_ref().map_or_else(|| "null".to_string(), SignLineage::to_json);
        let timeline: Vec<String> =
            self.scope_timeline.iter().map(IncidentEvent::to_json).collect();
        let window: Vec<String> = self.window.iter().map(IncidentEvent::to_json).collect();
        format!(
            "{{\"schema\":{},\"mechanism\":{},\"enforcement\":{},\"trap\":{},\"cycle\":{},\
             \"func\":{},\"line\":{},\"check_site\":{},\"check_kind\":{},\"pac_site\":{},\
             \"presented_modifier\":\"{:#018x}\",\"presented_key\":{},\
             \"presented_value\":\"{:#018x}\",\"found_pac\":\"{:#x}\",\
             \"expected_pac\":\"{:#x}\",\"lineage\":{},\"scope_timeline\":[{}],\
             \"window\":[{}],\"dropped_events\":{},\"detail\":{}}}",
            self.schema,
            json_str(&self.mechanism),
            json_str(&self.enforcement),
            json_str(&self.trap),
            self.cycle,
            json_str(&self.func),
            self.line,
            json_str(&self.check_site),
            json_str(&self.check_kind),
            json_str(&self.pac_site),
            self.presented_modifier,
            json_str(&self.presented_key),
            self.presented_value,
            self.found_pac,
            self.expected_pac,
            lineage,
            timeline.join(","),
            window.join(","),
            self.dropped_events,
            json_str(&self.detail),
        )
    }

    /// The one-line forensic verdict: what kind of corruption the lineage
    /// implies.
    pub fn verdict(&self) -> String {
        match &self.lineage {
            None => format!(
                "value {:#018x} was never signed in the recorded window — \
                 consistent with a raw overwrite (forged pointer)",
                self.presented_value
            ),
            Some(l) if l.modifier != self.presented_modifier => format!(
                "modifier mismatch — the signature is genuine but was minted at {} \
                 for modifier {:#018x}, not {:#018x}: a cross-scope-type replay",
                if l.site.is_empty() { l.func.as_str() } else { l.site.as_str() },
                l.modifier,
                self.presented_modifier
            ),
            Some(l) if l.key != self.presented_key => format!(
                "key mismatch — signed with key {} but authenticated with key {}",
                l.key, self.presented_key
            ),
            Some(_) => "signature and modifier match an earlier sign — the slot binding \
                        or lifetime is stale (cross-slot or temporal replay)"
                .to_string(),
        }
    }

    /// Renders the incident as a human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== RSTI incident report ==\n");
        out.push_str(&format!(
            "trap        : {} ({}, {} enforcement)\n",
            self.trap, self.mechanism, self.enforcement
        ));
        let site = if self.check_site.is_empty() {
            "<no site id>".to_string()
        } else {
            self.check_site.clone()
        };
        out.push_str(&format!(
            "where       : {} (line {}) at check site {} [{} {}]\n",
            self.func, self.line, site, self.pac_site, self.check_kind
        ));
        out.push_str(&format!("cycle       : {}\n", self.cycle));
        out.push_str(&format!(
            "presented   : value {:#018x}, modifier {:#018x} (key {}), \
             PAC found {:#x} expected {:#x}\n",
            self.presented_value,
            self.presented_modifier,
            self.presented_key,
            self.found_pac,
            self.expected_pac
        ));
        match &self.lineage {
            Some(l) => out.push_str(&format!(
                "provenance  : value was signed at {} in {} (cycle {}) \
                 with modifier {:#018x} (key {})\n",
                if l.site.is_empty() { "<no site id>" } else { l.site.as_str() },
                l.func,
                l.cycle,
                l.modifier,
                l.key
            )),
            None => out.push_str(&format!(
                "provenance  : no sign event recorded for value {:#018x}\n",
                self.presented_value
            )),
        }
        out.push_str(&format!("verdict     : {}\n", self.verdict()));
        out.push_str(&format!("detail      : {}\n", self.detail));
        if !self.scope_timeline.is_empty() {
            out.push_str("scope timeline:\n");
            for e in &self.scope_timeline {
                out.push_str(&format!("  {}\n", e.render_line()));
            }
        }
        out.push_str(&format!("last {} events:\n", self.window.len()));
        for e in &self.window {
            out.push_str(&format!("  {}\n", e.render_line()));
        }
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "({} earlier events fell off the {}-entry ring)\n",
                self.dropped_events,
                self.window.len()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> IncidentEvent {
        IncidentEvent {
            cycle: 456,
            kind: "sign".into(),
            func: "handler_init".into(),
            site: "handler_init:bb0:3".into(),
            addr: 0x1000,
            value: 0x00ff_0000_0000_1234,
            modifier: 0x9f,
            key: "da".into(),
        }
    }

    fn sample_incident() -> Incident {
        Incident {
            schema: INCIDENT_SCHEMA,
            mechanism: "RSTI-STWC".into(),
            enforcement: "pac_in_pointer".into(),
            trap: "pac_auth_failure".into(),
            cycle: 1234,
            func: "dispatch".into(),
            line: 12,
            check_site: "dispatch:bb2:5".into(),
            check_kind: "pac.auth".into(),
            pac_site: "on_load".into(),
            presented_modifier: 0x1a2b,
            presented_key: "da".into(),
            presented_value: 0x00ff_0000_0000_1234,
            found_pac: 0xff,
            expected_pac: 0x7a,
            lineage: Some(SignLineage {
                site: "handler_init:bb0:3".into(),
                func: "handler_init".into(),
                cycle: 456,
                modifier: 0x9f,
                key: "da".into(),
            }),
            scope_timeline: vec![],
            window: vec![sample_event()],
            dropped_events: 2,
            detail: "found 0xff, expected 0x7a".into(),
        }
    }

    /// Golden test: the incident JSON field names are a public contract.
    /// Any change is an incident-format break and must be deliberate
    /// (bump [`INCIDENT_SCHEMA`] and update every consumer).
    #[test]
    fn incident_json_field_names_are_stable() {
        let j = sample_incident().to_json();
        for field in [
            "\"schema\":1",
            "\"mechanism\":\"RSTI-STWC\"",
            "\"enforcement\":\"pac_in_pointer\"",
            "\"trap\":\"pac_auth_failure\"",
            "\"cycle\":1234",
            "\"func\":\"dispatch\"",
            "\"line\":12",
            "\"check_site\":\"dispatch:bb2:5\"",
            "\"check_kind\":\"pac.auth\"",
            "\"pac_site\":\"on_load\"",
            "\"presented_modifier\":\"0x0000000000001a2b\"",
            "\"presented_key\":\"da\"",
            "\"presented_value\":\"0x00ff000000001234\"",
            "\"found_pac\":\"0xff\"",
            "\"expected_pac\":\"0x7a\"",
            "\"lineage\":{",
            "\"scope_timeline\":[",
            "\"window\":[",
            "\"dropped_events\":2",
            "\"detail\":\"found 0xff, expected 0x7a\"",
        ] {
            assert!(j.contains(field), "missing {field} in {j}");
        }
        // Lineage object fields.
        for field in [
            "\"site\":\"handler_init:bb0:3\"",
            "\"func\":\"handler_init\"",
            "\"cycle\":456",
            "\"modifier\":\"0x000000000000009f\"",
            "\"key\":\"da\"",
        ] {
            assert!(j.contains(field), "missing lineage {field} in {j}");
        }
    }

    /// Event JSON field names are pinned alongside the incident's.
    #[test]
    fn event_json_field_names_are_stable() {
        let j = sample_event().to_json();
        for field in [
            "\"cycle\":456",
            "\"kind\":\"sign\"",
            "\"func\":\"handler_init\"",
            "\"site\":\"handler_init:bb0:3\"",
            "\"addr\":\"0x1000\"",
            "\"value\":\"0x00ff000000001234\"",
            "\"modifier\":\"0x000000000000009f\"",
            "\"key\":\"da\"",
        ] {
            assert!(j.contains(field), "missing {field} in {j}");
        }
    }

    /// A missing lineage serializes as JSON `null` and renders the
    /// never-signed verdict.
    #[test]
    fn raw_overwrite_incident_has_null_lineage() {
        let mut inc = sample_incident();
        inc.lineage = None;
        assert!(inc.to_json().contains("\"lineage\":null"));
        assert!(inc.verdict().contains("never signed"), "{}", inc.verdict());
        assert!(inc.render_text().contains("no sign event recorded"));
    }

    /// A lineage with a different modifier renders the replay verdict
    /// naming both modifiers.
    #[test]
    fn replay_incident_verdict_names_both_modifiers() {
        let inc = sample_incident();
        let v = inc.verdict();
        assert!(v.contains("modifier mismatch"), "{v}");
        assert!(v.contains("0x000000000000009f"), "{v}");
        assert!(v.contains("0x0000000000001a2b"), "{v}");
        let text = inc.render_text();
        assert!(text.contains("== RSTI incident report =="));
        assert!(text.contains("provenance  : value was signed at handler_init:bb0:3"));
        assert!(text.contains("trap        : pac_auth_failure (RSTI-STWC, pac_in_pointer"));
    }
}
