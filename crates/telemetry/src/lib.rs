//! # rsti-telemetry — structured tracing, metrics, and violation audit
//!
//! A zero-dependency, thread-safe observability layer for the whole RSTI
//! pipeline. The paper's evaluation is built on *counting things* — signed
//! pointers, authenticated loads and calls, per-mechanism check volumes
//! (Figs. 9/10, Tables 2–4) — and this crate makes those counts first-class
//! runtime data instead of ad-hoc printouts:
//!
//! * [`Collector`] — atomic counters plus monotonic span timers behind an
//!   `Arc`-shareable handle; the process-wide instance is [`global`];
//! * [`Phase`] / [`CounterId`] — the closed taxonomy of pipeline phases
//!   and metric names (stable serialized identifiers);
//! * [`Event`] — a `#[derive]`-free event enum with hand-rolled JSONL
//!   serialization (the workspace is dependency-free by design);
//! * [`AuditRecord`] — one structured violation-audit entry per RSTI trap:
//!   mechanism, STI class modifier, instrumentation site, faulting
//!   instruction, function, and line — the data behind Table 4's
//!   detection claims;
//! * [`TelemetrySnapshot`] — a point-in-time registry snapshot with stable
//!   serialized field names (golden-tested);
//! * [`Incident`] — a full forensic report for one RSTI detection trap,
//!   synthesized by the VM's flight recorder (`incident` module): failing
//!   check site, expected-vs-presented modifier/key, sign-site lineage,
//!   scope timeline, and the last-K event window.
//!
//! ## Off-by-default cost guarantee
//!
//! The collector is disabled until [`Collector::enable`] runs (the CLI's
//! `--trace` flag or the `RSTI_TRACE` environment variable). Every hot-path
//! entry point begins with a single relaxed-load branch on the enabled
//! flag, so a disabled collector compiles down to branch-on-bool no-ops;
//! the `vm_throughput` bench guard holds the disabled-path delta under 2%.

#![warn(missing_docs)]

pub mod export;
pub mod incident;

pub use export::{
    chrome_trace, phase_trace_events, to_folded, Histogram, TraceEvent, HIST_BUCKETS,
};
pub use incident::{Incident, IncidentEvent, SignLineage, INCIDENT_SCHEMA};

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Taxonomy
// ---------------------------------------------------------------------------

/// A timed pipeline phase. The serialized names ([`Phase::name`]) are part
/// of the trace format and must stay stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Frontend: lex + parse to the AST.
    Parse,
    /// Frontend: AST lowering to verified IR.
    Lower,
    /// Core: STI fact collection (`collect_facts`).
    CollectFacts,
    /// Core: RSTI-type construction (`analyze`).
    Analyze,
    /// Core: the instrumentation pass.
    Instrument,
    /// Core: the O2-model optimizer (`optimize_program`).
    Optimize,
    /// VM: basic-block compilation for the closure-threaded engine.
    VmCompile,
    /// VM: program execution.
    VmRun,
    /// Fuzzing: grammar-directed program generation plus the oracle runs.
    FuzzGen,
    /// Fuzzing: delta-debugging minimization of a failing program.
    FuzzMinimize,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 10] = [
        Phase::Parse,
        Phase::Lower,
        Phase::CollectFacts,
        Phase::Analyze,
        Phase::Instrument,
        Phase::Optimize,
        Phase::VmCompile,
        Phase::VmRun,
        Phase::FuzzGen,
        Phase::FuzzMinimize,
    ];

    /// Stable serialized name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Lower => "lower",
            Phase::CollectFacts => "collect_facts",
            Phase::Analyze => "analyze",
            Phase::Instrument => "instrument",
            Phase::Optimize => "optimize",
            Phase::VmCompile => "vm_compile",
            Phase::VmRun => "vm_run",
            Phase::FuzzGen => "fuzz_gen",
            Phase::FuzzMinimize => "fuzz_minimize",
        }
    }
}

/// A registered metric. The serialized names ([`CounterId::name`]) are part
/// of the snapshot format and must stay stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterId {
    // -- instrumentation pass (static site counts) --
    /// On-store signs inserted by the pass.
    SignsInserted,
    /// On-load (and pp) authentications inserted by the pass.
    AuthsInserted,
    /// Redundant authentications elided block-locally (single-store slot
    /// promotion plus the straight-line available-auth cache).
    AuthsElidedBlock,
    /// Additional authentications elided by the CFG-level dataflow pass
    /// (available auths intersected across predecessors, reuse gated on
    /// the dominator tree).
    AuthsElidedDom,
    /// Loop-header load+auth pairs hoisted into loop preheaders.
    AuthsHoisted,
    /// Authentications removed by the interprocedural level: summary-kill
    /// dataflow elisions, sign→store forwarding, and folded internal-
    /// boundary re-sign round-trips.
    AuthsElidedIpo,
    /// Call sites inlined by the post-instrumentation size-budgeted
    /// inliner.
    CallsInlined,
    /// Direct-call sites whose kill set the bottom-up function summaries
    /// refined below the intraprocedural clobber-everything assumption.
    SummaryKillRefinements,
    /// PAC modifiers resolved at optimize time (STL location-mixing with a
    /// statically known address folded into the instruction's modifier).
    ModifiersPrecomputed,
    /// External-boundary strips inserted.
    StripsInserted,
    /// Pointer-to-pointer CE/FE sites inserted.
    PpSitesInserted,
    // -- analysis (per-mechanism RSTI-type class counts) --
    /// RSTI-type classes built under STWC.
    ClassesStwc,
    /// RSTI-type classes built under STC.
    ClassesStc,
    /// RSTI-type classes built under STL.
    ClassesStl,
    /// Classes built under the PARTS baseline.
    ClassesParts,
    // -- PAC unit --
    /// QARMA cipher invocations (PAC memo misses).
    QarmaCalls,
    /// Full-PAC memo hits.
    PacMemoHits,
    /// Tweak-schedule memo hits.
    SchedMemoHits,
    /// Tweak-schedule memo misses (LFSR expansions).
    SchedMemoMisses,
    // -- VM dynamic counts --
    /// Finished runs executed by the interpreter.
    VmRunsInterp,
    /// Finished runs executed by the closure-threaded compiled engine.
    VmRunsCompiled,
    /// Basic blocks compiled for the closure-threaded engine.
    VmCompiledBlocks,
    /// Dynamic `pac` (sign) operations executed.
    VmPacSigns,
    /// Dynamic `aut` operations executed.
    VmPacAuths,
    /// Dynamic authentication failures.
    VmAuthFailures,
    /// Runs that ended in a trap of any kind.
    VmTraps,
    /// Runs that ended in an RSTI detection (the violation audit).
    VmViolations,
    /// Finished runs executed with the attribution profiler enabled.
    VmAttrRuns,
    /// Deterministic call-stack samples taken by the attribution profiler.
    VmAttrSamples,
    // -- VM executed instructions, by opcode class --
    /// Memory instructions executed (load/store/alloca).
    VmInstMem,
    /// Arithmetic instructions executed (bin/cmp/convert/bitcast).
    VmInstArith,
    /// Calls executed (direct/indirect/external).
    VmInstCall,
    /// PA instructions executed (`pac`/`aut`/`xpac`/`pp_*`).
    VmInstPac,
    /// Block terminators executed.
    VmInstBranch,
    /// Everything else (malloc/free/print).
    VmInstOther,
    // -- differential fuzzing --
    /// Seeds run through the differential oracles.
    FuzzSeedsRun,
    /// Oracle failures observed.
    FuzzFailures,
    /// Candidate programs tried during delta-debugging minimization.
    FuzzMinimizeAttempts,
    // -- serving (`rsti serve`) --
    /// Requests accepted by the serve front end.
    ServeRequests,
    /// Requests answered from the content-addressed module cache.
    ServeCacheHits,
    /// Requests that had to run the full instrumentation pipeline.
    ServeCacheMisses,
    /// Cached images evicted by the LRU bound.
    ServeCacheEvictions,
    /// Requests that returned a structured error (bad input, panic).
    ServeErrors,
    // -- the collector itself --
    /// JSONL trace-sink write failures (events dropped, never propagated
    /// into the traced program — but no longer silently).
    TraceSinkErrors,
}

impl CounterId {
    /// Every counter, in snapshot order.
    pub const ALL: [CounterId; 44] = [
        CounterId::SignsInserted,
        CounterId::AuthsInserted,
        CounterId::AuthsElidedBlock,
        CounterId::AuthsElidedDom,
        CounterId::AuthsHoisted,
        CounterId::AuthsElidedIpo,
        CounterId::CallsInlined,
        CounterId::SummaryKillRefinements,
        CounterId::ModifiersPrecomputed,
        CounterId::StripsInserted,
        CounterId::PpSitesInserted,
        CounterId::ClassesStwc,
        CounterId::ClassesStc,
        CounterId::ClassesStl,
        CounterId::ClassesParts,
        CounterId::QarmaCalls,
        CounterId::PacMemoHits,
        CounterId::SchedMemoHits,
        CounterId::SchedMemoMisses,
        CounterId::VmRunsInterp,
        CounterId::VmRunsCompiled,
        CounterId::VmCompiledBlocks,
        CounterId::VmPacSigns,
        CounterId::VmPacAuths,
        CounterId::VmAuthFailures,
        CounterId::VmTraps,
        CounterId::VmViolations,
        CounterId::VmAttrRuns,
        CounterId::VmAttrSamples,
        CounterId::VmInstMem,
        CounterId::VmInstArith,
        CounterId::VmInstCall,
        CounterId::VmInstPac,
        CounterId::VmInstBranch,
        CounterId::VmInstOther,
        CounterId::FuzzSeedsRun,
        CounterId::FuzzFailures,
        CounterId::FuzzMinimizeAttempts,
        CounterId::ServeRequests,
        CounterId::ServeCacheHits,
        CounterId::ServeCacheMisses,
        CounterId::ServeCacheEvictions,
        CounterId::ServeErrors,
        CounterId::TraceSinkErrors,
    ];

    /// Stable serialized name.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::SignsInserted => "signs_inserted",
            CounterId::AuthsInserted => "auths_inserted",
            CounterId::AuthsElidedBlock => "auths_elided_block",
            CounterId::AuthsElidedDom => "auths_elided_dom",
            CounterId::AuthsHoisted => "auths_hoisted",
            CounterId::AuthsElidedIpo => "auths_elided_ipo",
            CounterId::CallsInlined => "calls_inlined",
            CounterId::SummaryKillRefinements => "summary_kill_refinements",
            CounterId::ModifiersPrecomputed => "modifiers_precomputed",
            CounterId::StripsInserted => "strips_inserted",
            CounterId::PpSitesInserted => "pp_sites_inserted",
            CounterId::ClassesStwc => "classes_stwc",
            CounterId::ClassesStc => "classes_stc",
            CounterId::ClassesStl => "classes_stl",
            CounterId::ClassesParts => "classes_parts",
            CounterId::QarmaCalls => "qarma_calls",
            CounterId::PacMemoHits => "pac_memo_hits",
            CounterId::SchedMemoHits => "sched_memo_hits",
            CounterId::SchedMemoMisses => "sched_memo_misses",
            CounterId::VmRunsInterp => "vm_runs_interp",
            CounterId::VmRunsCompiled => "vm_runs_compiled",
            CounterId::VmCompiledBlocks => "vm_compiled_blocks",
            CounterId::VmPacSigns => "vm_pac_signs",
            CounterId::VmPacAuths => "vm_pac_auths",
            CounterId::VmAuthFailures => "vm_auth_failures",
            CounterId::VmTraps => "vm_traps",
            CounterId::VmViolations => "vm_violations",
            CounterId::VmAttrRuns => "vm_attr_runs",
            CounterId::VmAttrSamples => "vm_attr_samples",
            CounterId::VmInstMem => "vm_inst_mem",
            CounterId::VmInstArith => "vm_inst_arith",
            CounterId::VmInstCall => "vm_inst_call",
            CounterId::VmInstPac => "vm_inst_pac",
            CounterId::VmInstBranch => "vm_inst_branch",
            CounterId::VmInstOther => "vm_inst_other",
            CounterId::FuzzSeedsRun => "fuzz_seeds_run",
            CounterId::FuzzFailures => "fuzz_failures",
            CounterId::FuzzMinimizeAttempts => "fuzz_minimize_attempts",
            CounterId::ServeRequests => "serve_requests",
            CounterId::ServeCacheHits => "serve_cache_hits",
            CounterId::ServeCacheMisses => "serve_cache_misses",
            CounterId::ServeCacheEvictions => "serve_cache_evictions",
            CounterId::ServeErrors => "serve_errors",
            CounterId::TraceSinkErrors => "trace_sink_errors",
        }
    }

    fn index(self) -> usize {
        CounterId::ALL.iter().position(|&c| c == self).expect("covered")
    }
}

const N_COUNTERS: usize = CounterId::ALL.len();
const N_PHASES: usize = Phase::ALL.len();

// ---------------------------------------------------------------------------
// Violation audit
// ---------------------------------------------------------------------------

/// One violation-audit entry: everything Table 4 needs to attribute a
/// detection — which mechanism fired, on which STI class (modifier), at
/// which instrumentation site, in which function/instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// Mechanism in force (`RSTI-STWC`, `RSTI-STC`, `RSTI-STL`, `PARTS`).
    pub mechanism: String,
    /// The STI class's 64-bit PAC modifier (the class identity at runtime).
    pub modifier: u64,
    /// The instrumentation site kind that fired (`on_load`, `on_store`,
    /// `cast_resign`, `arg_resign`, `pp_auth`, ...).
    pub site: String,
    /// Function the check executed in.
    pub func: String,
    /// Source line (0 when debug info is absent).
    pub line: u32,
    /// The faulting instruction (`pac.auth`, `pp.auth`, ...).
    pub inst: String,
    /// Free-form detail (found/expected PAC, missing CE tag, ...).
    pub detail: String,
}

impl AuditRecord {
    /// Serializes the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"type\":\"violation\",\"mechanism\":{},\"modifier\":\"{:#018x}\",\
             \"site\":{},\"func\":{},\"line\":{},\"inst\":{},\"detail\":{}}}",
            json_str(&self.mechanism),
            self.modifier,
            json_str(&self.site),
            json_str(&self.func),
            self.line,
            json_str(&self.inst),
            json_str(&self.detail),
        )
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// A trace event, serialized as one JSONL line. Deliberately `#[derive]`-free:
/// the wire format is the hand-rolled [`Event::to_json`], not an artifact of
/// a derive, so it cannot drift silently.
pub enum Event<'a> {
    /// A completed span.
    Span {
        /// Phase the span timed.
        phase: Phase,
        /// Wall-clock nanoseconds.
        ns: u64,
    },
    /// A counter delta worth tracing individually.
    Counter {
        /// The counter.
        id: CounterId,
        /// Amount added.
        delta: u64,
    },
    /// An RSTI violation (detection trap).
    Violation(&'a AuditRecord),
    /// End-of-run summary from the VM.
    RunEnd {
        /// Instructions executed.
        insts: u64,
        /// Modelled cycles.
        cycles: u64,
        /// Dynamic `pac` count.
        pac_signs: u64,
        /// Dynamic `aut` count.
        pac_auths: u64,
        /// Final status rendering.
        status: &'a str,
    },
}

impl Event<'_> {
    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Event::Span { phase, ns } => {
                format!("{{\"type\":\"span\",\"phase\":\"{}\",\"ns\":{}}}", phase.name(), ns)
            }
            Event::Counter { id, delta } => {
                format!("{{\"type\":\"counter\",\"name\":\"{}\",\"delta\":{}}}", id.name(), delta)
            }
            Event::Violation(rec) => rec.to_json(),
            Event::RunEnd { insts, cycles, pac_signs, pac_auths, status } => format!(
                "{{\"type\":\"run_end\",\"insts\":{},\"cycles\":{},\"pac_signs\":{},\
                 \"pac_auths\":{},\"status\":{}}}",
                insts,
                cycles,
                pac_signs,
                pac_auths,
                json_str(status)
            ),
        }
    }
}

/// Escapes a string as a JSON string literal (with surrounding quotes).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

/// The metrics registry: atomic counters, span accumulators, and an
/// optional JSONL sink. Thread-safe through `&self`; the process-wide
/// instance is [`global`], and tests build private ones with
/// [`Collector::new`].
pub struct Collector {
    enabled: AtomicBool,
    counters: [AtomicU64; N_COUNTERS],
    span_ns: [AtomicU64; N_PHASES],
    span_calls: [AtomicU64; N_PHASES],
    sink: Mutex<Option<Box<dyn Write + Send>>>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A fresh, disabled collector with no sink.
    pub fn new() -> Self {
        Collector {
            enabled: AtomicBool::new(false),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            span_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            span_calls: std::array::from_fn(|_| AtomicU64::new(0)),
            sink: Mutex::new(None),
        }
    }

    /// Turns collection on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns collection off (the sink, if any, is kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether collection is on. One relaxed load — the only cost a
    /// disabled pipeline pays.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Zeroes every counter and span accumulator (tests, `rsti profile`).
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for (ns, calls) in self.span_ns.iter().zip(&self.span_calls) {
            ns.store(0, Ordering::Relaxed);
            calls.store(0, Ordering::Relaxed);
        }
    }

    /// Adds `n` to a counter. No-op (one branch) while disabled.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        if self.is_enabled() && n > 0 {
            self.counters[id.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of a counter.
    pub fn get(&self, id: CounterId) -> u64 {
        self.counters[id.index()].load(Ordering::Relaxed)
    }

    /// Starts a span over `phase`. While disabled the guard holds no
    /// timestamp and its drop is a no-op.
    #[inline]
    pub fn span(&self, phase: Phase) -> SpanGuard<'_> {
        SpanGuard {
            collector: self,
            phase,
            start: if self.is_enabled() { Some(Instant::now()) } else { None },
        }
    }

    fn finish_span(&self, phase: Phase, ns: u64) {
        let i = Phase::ALL.iter().position(|&p| p == phase).expect("covered");
        self.span_ns[i].fetch_add(ns, Ordering::Relaxed);
        self.span_calls[i].fetch_add(1, Ordering::Relaxed);
        self.emit(&Event::Span { phase, ns });
    }

    /// Locks the sink, recovering from poison: a panic in one emitting
    /// thread must not silence tracing (or crash `emit`) in every other
    /// thread for the rest of the process — the writer itself is still a
    /// valid object, at worst missing the panicking thread's last line.
    fn sink_guard(&self) -> std::sync::MutexGuard<'_, Option<Box<dyn Write + Send>>> {
        self.sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Routes trace output to a JSONL file at `path`.
    ///
    /// # Errors
    /// Propagates file-creation errors.
    pub fn set_sink_path(&self, path: &str) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        *self.sink_guard() = Some(Box::new(std::io::BufWriter::new(file)));
        Ok(())
    }

    /// Installs an arbitrary writer as the JSONL sink (tests).
    pub fn set_sink(&self, w: Box<dyn Write + Send>) {
        *self.sink_guard() = Some(w);
    }

    /// Removes the sink, flushing it first.
    pub fn clear_sink(&self) {
        if let Some(mut w) = self.sink_guard().take() {
            let _ = w.flush();
        }
    }

    /// Writes one event to the sink (if any).
    ///
    /// The whole line — JSON plus trailing newline — is buffered into one
    /// `write_all` while the sink lock is held, so concurrent emitters
    /// (e.g. `rsti serve` workers) can never interleave partial lines even
    /// through a writer that splits `write_fmt` into pieces. I/O failures
    /// never propagate into the traced program, but they are no longer
    /// swallowed either: each failed line bumps
    /// [`CounterId::TraceSinkErrors`].
    pub fn emit(&self, event: &Event<'_>) {
        if !self.is_enabled() {
            return;
        }
        let mut guard = self.sink_guard();
        if let Some(w) = guard.as_mut() {
            let mut line = event.to_json();
            line.push('\n');
            let res = w.write_all(line.as_bytes()).and_then(|()| w.flush());
            drop(guard);
            if res.is_err() {
                self.add(CounterId::TraceSinkErrors, 1);
            }
        }
    }

    /// Records a violation: bumps [`CounterId::VmViolations`] and emits the
    /// audit record to the sink.
    pub fn record_violation(&self, rec: &AuditRecord) {
        self.add(CounterId::VmViolations, 1);
        self.emit(&Event::Violation(rec));
    }

    /// Enables collection and installs a sink when `RSTI_TRACE` names a
    /// path. Returns whether the environment turned tracing on.
    pub fn init_from_env(&self) -> bool {
        match std::env::var("RSTI_TRACE") {
            Ok(path) if !path.is_empty() => {
                self.enable();
                let _ = self.set_sink_path(&path);
                true
            }
            _ => false,
        }
    }

    /// A point-in-time snapshot of every span accumulator and counter.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            phases: Phase::ALL
                .iter()
                .enumerate()
                .map(|(i, &p)| PhaseStat {
                    phase: p.name(),
                    calls: self.span_calls[i].load(Ordering::Relaxed),
                    total_ns: self.span_ns[i].load(Ordering::Relaxed),
                })
                .collect(),
            counters: CounterId::ALL
                .iter()
                .map(|&c| CounterStat { name: c.name(), value: self.get(c) })
                .collect(),
        }
    }
}

/// RAII span timer returned by [`Collector::span`]; records the elapsed
/// wall-time on drop.
pub struct SpanGuard<'a> {
    collector: &'a Collector,
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.start.take() {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.collector.finish_span(self.phase, ns);
        }
    }
}

/// The process-wide collector. Disabled until the CLI's `--trace` flag or
/// `RSTI_TRACE` enables it.
pub fn global() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::new)
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// One phase's accumulated span statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Stable phase name.
    pub phase: &'static str,
    /// Completed spans.
    pub calls: u64,
    /// Total wall-clock nanoseconds.
    pub total_ns: u64,
}

/// One counter's value.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterStat {
    /// Stable counter name.
    pub name: &'static str,
    /// Current value.
    pub value: u64,
}

/// A point-in-time view of the registry, with stable serialized field
/// names (`phases[].{phase,calls,total_ns}`, `counters[].{name,value}` —
/// see the golden test).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Span accumulators, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseStat>,
    /// Counters, in [`CounterId::ALL`] order.
    pub counters: Vec<CounterStat>,
}

impl TelemetrySnapshot {
    /// Serializes the snapshot as one JSON object.
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"phase\":\"{}\",\"calls\":{},\"total_ns\":{}}}",
                    p.phase, p.calls, p.total_ns
                )
            })
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|c| format!("{{\"name\":\"{}\",\"value\":{}}}", c.name, c.value))
            .collect();
        format!(
            "{{\"phases\":[{}],\"counters\":[{}]}}",
            phases.join(","),
            counters.join(",")
        )
    }

    /// Value of a counter by stable name (0 when unknown).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }

    /// Total nanoseconds recorded for a phase by stable name.
    pub fn phase_ns(&self, name: &str) -> u64 {
        self.phases.iter().find(|p| p.phase == name).map_or(0, |p| p.total_ns)
    }

    /// Renders the snapshot as the human tables `rsti profile` prints.
    pub fn render_tables(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<16} {:>8} {:>14}\n", "phase", "calls", "total ms"));
        for p in &self.phases {
            if p.calls == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<16} {:>8} {:>14.3}\n",
                p.phase,
                p.calls,
                p.total_ns as f64 / 1e6
            ));
        }
        out.push_str(&format!("\n{:<20} {:>14}\n", "counter", "value"));
        for c in &self.counters {
            if c.value == 0 {
                continue;
            }
            out.push_str(&format!("{:<20} {:>14}\n", c.name, c.value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A sink that appends into a shared buffer, for asserting JSONL output.
    struct VecSink(Arc<StdMutex<Vec<u8>>>);
    impl Write for VecSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn disabled_collector_is_inert() {
        let c = Collector::new();
        c.add(CounterId::SignsInserted, 5);
        {
            let _s = c.span(Phase::Parse);
        }
        let snap = c.snapshot();
        assert_eq!(snap.counter("signs_inserted"), 0);
        assert_eq!(snap.phase_ns("parse"), 0);
        assert_eq!(snap.phases[0].calls, 0);
    }

    #[test]
    fn counters_and_spans_accumulate_when_enabled() {
        let c = Collector::new();
        c.enable();
        c.add(CounterId::VmPacSigns, 3);
        c.add(CounterId::VmPacSigns, 4);
        {
            let _s = c.span(Phase::Analyze);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = c.snapshot();
        assert_eq!(snap.counter("vm_pac_signs"), 7);
        assert!(snap.phase_ns("analyze") > 0);
        c.reset();
        assert_eq!(c.snapshot().counter("vm_pac_signs"), 0);
    }

    #[test]
    fn collector_is_thread_safe() {
        let c = Arc::new(Collector::new());
        c.enable();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.add(CounterId::QarmaCalls, 1);
                    }
                });
            }
        });
        assert_eq!(c.get(CounterId::QarmaCalls), 8000);
    }

    #[test]
    fn events_serialize_to_valid_jsonl_shapes() {
        let rec = AuditRecord {
            mechanism: "RSTI-STWC".into(),
            modifier: 0xdead_beef,
            site: "on_load".into(),
            func: "dispatch".into(),
            line: 12,
            inst: "pac.auth".into(),
            detail: "found 0x0, expected \"0x7\"".into(),
        };
        let j = rec.to_json();
        assert!(j.starts_with("{\"type\":\"violation\""), "{j}");
        assert!(j.contains("\"mechanism\":\"RSTI-STWC\""), "{j}");
        assert!(j.contains("\\\"0x7\\\""), "escaped quotes: {j}");
        let span = Event::Span { phase: Phase::VmRun, ns: 42 }.to_json();
        assert_eq!(span, "{\"type\":\"span\",\"phase\":\"vm_run\",\"ns\":42}");
        let end = Event::RunEnd { insts: 1, cycles: 2, pac_signs: 3, pac_auths: 4, status: "exit: 0" }
            .to_json();
        assert!(end.contains("\"status\":\"exit: 0\""), "{end}");
    }

    #[test]
    fn sink_receives_events_line_per_event() {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        let c = Collector::new();
        c.enable();
        c.set_sink(Box::new(VecSink(Arc::clone(&buf))));
        c.emit(&Event::Counter { id: CounterId::AuthsElidedDom, delta: 9 });
        {
            let _s = c.span(Phase::Optimize);
        }
        c.clear_sink();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"auths_elided_dom\""));
        assert!(lines[1].contains("\"phase\":\"optimize\""));
    }

    /// A sink whose writes always fail, for the error-surfacing contract.
    struct FailSink;
    impl Write for FailSink {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk on fire"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sink_write_failures_are_counted_not_swallowed() {
        let c = Collector::new();
        c.enable();
        c.set_sink(Box::new(FailSink));
        assert_eq!(c.get(CounterId::TraceSinkErrors), 0);
        c.emit(&Event::Counter { id: CounterId::VmTraps, delta: 1 });
        c.emit(&Event::Span { phase: Phase::Parse, ns: 1 });
        assert_eq!(c.get(CounterId::TraceSinkErrors), 2, "each dropped line counted");
        // The failure never propagates: emit returned normally twice.
    }

    /// A sink that records write() call boundaries, to pin the
    /// one-write_all-per-line contract that keeps concurrent emitters from
    /// interleaving partial lines.
    struct ChunkSink(Arc<StdMutex<Vec<Vec<u8>>>>);
    impl Write for ChunkSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().push(buf.to_vec());
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn each_event_is_a_single_complete_write() {
        let chunks = Arc::new(StdMutex::new(Vec::new()));
        let c = Arc::new(Collector::new());
        c.enable();
        c.set_sink(Box::new(ChunkSink(Arc::clone(&chunks))));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..50 {
                        c.emit(&Event::Span { phase: Phase::VmRun, ns: t * 1000 + i });
                    }
                });
            }
        });
        let chunks = chunks.lock().unwrap();
        assert_eq!(chunks.len(), 200, "one write per event");
        for ch in chunks.iter() {
            let line = std::str::from_utf8(ch).unwrap();
            assert!(line.starts_with("{\"type\":\"span\""), "complete line: {line}");
            assert!(line.ends_with("}\n"), "newline-terminated: {line}");
            assert_eq!(line.matches('\n').count(), 1);
        }
    }

    /// Serialization-stability golden test: the snapshot JSON's field names
    /// and counter/phase identifiers are a public contract. Any change here
    /// is a trace-format break and must be deliberate.
    #[test]
    fn snapshot_json_field_names_are_stable() {
        let c = Collector::new();
        c.enable();
        c.add(CounterId::SignsInserted, 1);
        let json = c.snapshot().to_json();
        // Top-level shape.
        assert!(json.starts_with("{\"phases\":["), "{json}");
        assert!(json.contains("],\"counters\":["), "{json}");
        // Per-entry field names.
        assert!(json.contains("{\"phase\":\"parse\",\"calls\":0,\"total_ns\":0}"), "{json}");
        assert!(json.contains("{\"name\":\"signs_inserted\",\"value\":1}"), "{json}");
        // The full stable identifier sets.
        for p in Phase::ALL {
            assert!(json.contains(&format!("\"phase\":\"{}\"", p.name())), "{}", p.name());
        }
        for cid in CounterId::ALL {
            assert!(json.contains(&format!("\"name\":\"{}\"", cid.name())), "{}", cid.name());
        }
        let expected_names = [
            "signs_inserted", "auths_inserted", "auths_elided_block", "auths_elided_dom",
            "auths_hoisted", "auths_elided_ipo", "calls_inlined",
            "summary_kill_refinements", "modifiers_precomputed", "strips_inserted",
            "pp_sites_inserted", "classes_stwc", "classes_stc", "classes_stl",
            "classes_parts", "qarma_calls", "pac_memo_hits", "sched_memo_hits",
            "sched_memo_misses", "vm_runs_interp", "vm_runs_compiled",
            "vm_compiled_blocks", "vm_pac_signs", "vm_pac_auths", "vm_auth_failures",
            "vm_traps", "vm_violations", "vm_attr_runs", "vm_attr_samples",
            "vm_inst_mem", "vm_inst_arith", "vm_inst_call",
            "vm_inst_pac", "vm_inst_branch", "vm_inst_other", "fuzz_seeds_run",
            "fuzz_failures", "fuzz_minimize_attempts", "serve_requests",
            "serve_cache_hits", "serve_cache_misses", "serve_cache_evictions",
            "serve_errors", "trace_sink_errors",
        ];
        let got: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(got, expected_names, "counter taxonomy drifted");
        let expected_phases = [
            "parse", "lower", "collect_facts", "analyze", "instrument", "optimize",
            "vm_compile", "vm_run", "fuzz_gen", "fuzz_minimize",
        ];
        let got: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(got, expected_phases, "phase taxonomy drifted");
    }

    #[test]
    fn render_tables_hides_zero_rows() {
        let c = Collector::new();
        c.enable();
        c.add(CounterId::VmTraps, 2);
        let t = c.snapshot().render_tables();
        assert!(t.contains("vm_traps"));
        assert!(!t.contains("vm_inst_mem"), "{t}");
    }
}
