//! Profile export formats: log-bucketed histograms, inferno-compatible
//! folded stacks, and Chrome trace-event JSON.
//!
//! The attribution profiler (see `rsti-vm`) produces deterministic
//! model-cycle data; this module turns that data (and the phase spans the
//! collector already keeps) into the two interchange formats every
//! profiling UI understands:
//!
//! * **Folded stacks** — one line per unique call path,
//!   `frame0;frame1;frame2 <count>`, the input format of Brendan Gregg's
//!   `flamegraph.pl` and the `inferno` toolchain;
//! * **Chrome trace events** — the `chrome://tracing` / Perfetto JSON
//!   array of `"ph":"X"` complete events.
//!
//! Both serializers are hand-rolled (the workspace is dependency-free by
//! design) and golden-tested: the emitted field names and line syntax are
//! a public contract.

use crate::{json_str, TelemetrySnapshot};

// ---------------------------------------------------------------------------
// Log-bucketed histogram
// ---------------------------------------------------------------------------

/// Number of power-of-two buckets: bucket `i` holds values `v` with
/// `floor(log2(v)) == i - 1`; bucket 0 holds `v == 0`.
pub const HIST_BUCKETS: usize = 65;

/// A log-bucketed (power-of-two) histogram of `u64` samples.
///
/// Bucket `0` counts zero-valued samples; bucket `i >= 1` counts samples in
/// `[2^(i-1), 2^i)`. 64 + 1 buckets cover the whole `u64` range, so
/// [`Histogram::record`] never saturates or drops. The shape is the classic
/// HdrHistogram-lite used for latency/cycle distributions where relative
/// error per bucket (at most 2x) beats unbounded memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Lower bound of bucket `i` (inclusive).
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            1 => 1,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket counts, index 0 first.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Approximate quantile with explicit rank semantics: the result is
    /// `bucket_lo` of the bucket holding the `r`-th smallest sample, where
    /// `r = clamp(ceil(q * count), 1, count)` and `q` is clamped to
    /// `[0, 1]` (NaN reads as 0). So by definition:
    ///
    /// * `quantile(0.0)` is the bucket floor of the **minimum** (rank 1 —
    ///   not "skip the first `0 * count` samples", which only coincided
    ///   with rank 1 by accident of the old `.max(1)`);
    /// * `quantile(1.0)` is the bucket floor of the **maximum** (rank
    ///   `count`), never more;
    /// * on a single-entry histogram every `q` returns that one sample's
    ///   bucket floor;
    /// * an empty histogram returns 0 for every `q`.
    ///
    /// The answer is within one power of two below the true quantile —
    /// exactly the bucket resolution.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_lo(i);
            }
        }
        // Unreachable: `rank <= count` and the buckets sum to `count`.
        Self::bucket_lo(Self::bucket_of(self.max))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Serializes as one JSON object with stable field names
    /// (`count`, `sum`, `min`, `max`, `buckets` — non-empty buckets only,
    /// as `[bucket_lo, count]` pairs).
    pub fn to_json(&self) -> String {
        let pairs: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| format!("[{},{}]", Self::bucket_lo(i), n))
            .collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.min(),
            self.max,
            pairs.join(",")
        )
    }
}

// ---------------------------------------------------------------------------
// Folded stacks (inferno / flamegraph.pl input)
// ---------------------------------------------------------------------------

/// Renders `(call path, sample count)` pairs as folded-stack lines:
/// `root;child;leaf <count>`, one per line, lexicographically sorted so the
/// output is deterministic regardless of map iteration order. Empty paths
/// and zero counts are skipped. Frame names have `;`, whitespace, and
/// newlines replaced by `_` — the folded format reserves those characters
/// as separators.
pub fn to_folded<S: AsRef<str>>(stacks: &[(Vec<S>, u64)]) -> String {
    let mut lines: Vec<String> = stacks
        .iter()
        .filter(|(path, count)| !path.is_empty() && *count > 0)
        .map(|(path, count)| {
            let joined: Vec<String> = path.iter().map(|f| fold_frame(f.as_ref())).collect();
            format!("{} {}", joined.join(";"), count)
        })
        .collect();
    lines.sort_unstable();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

fn fold_frame(name: &str) -> String {
    name.chars()
        .map(|c| if c == ';' || c.is_whitespace() { '_' } else { c })
        .collect()
}

// ---------------------------------------------------------------------------
// Chrome trace events
// ---------------------------------------------------------------------------

/// One Chrome trace "complete" event (`"ph":"X"`). Timestamps and
/// durations are in microseconds per the trace-event spec.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (shown on the timeline slice).
    pub name: String,
    /// Category string (`rsti.phase`, `rsti.func`, ...).
    pub cat: String,
    /// Start timestamp, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Thread lane the slice renders in.
    pub tid: u64,
    /// Extra `args` entries, already-JSON-encoded values keyed by name.
    pub args: Vec<(String, String)>,
}

impl TraceEvent {
    fn to_json(&self) -> String {
        let args: Vec<String> =
            self.args.iter().map(|(k, v)| format!("{}:{}", json_str(k), v)).collect();
        format!(
            "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":1,\"tid\":{},\"args\":{{{}}}}}",
            json_str(&self.name),
            json_str(&self.cat),
            self.ts_us,
            self.dur_us,
            self.tid,
            args.join(",")
        )
    }
}

/// Wraps trace events as the Chrome trace-event JSON object
/// (`{"traceEvents":[...],"displayTimeUnit":"ms"}`), loadable in
/// `chrome://tracing` and Perfetto.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let body: Vec<String> = events.iter().map(TraceEvent::to_json).collect();
    format!("{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}", body.join(","))
}

/// Converts the collector's accumulated phase spans into trace events.
///
/// The collector keeps aggregate span data (total ns + call count per
/// phase), not individual timestamped spans, so each phase becomes one
/// slice laid end-to-end in [`crate::Phase::ALL`] (pipeline) order on
/// thread lane 1 — a duration-faithful, order-faithful rendering rather
/// than a wall-clock-faithful one. `args.calls` carries the span count.
/// Zero-call phases are skipped.
pub fn phase_trace_events(snap: &TelemetrySnapshot) -> Vec<TraceEvent> {
    let mut events = Vec::new();
    let mut ts = 0.0f64;
    for p in &snap.phases {
        if p.calls == 0 {
            continue;
        }
        let dur = p.total_ns as f64 / 1_000.0;
        events.push(TraceEvent {
            name: p.phase.to_string(),
            cat: "rsti.phase".to_string(),
            ts_us: ts,
            dur_us: dur,
            tid: 1,
            args: vec![("calls".to_string(), p.calls.to_string())],
        });
        ts += dur;
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_lo(2), 2);
        assert_eq!(Histogram::bucket_lo(64), 1 << 63);
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        // p50 of 6 samples -> rank 3 -> the [2,4) bucket.
        assert_eq!(h.quantile(0.5), 2);
        // p100 lands in the [512,1024) bucket.
        assert_eq!(h.quantile(1.0), 512);
        let mut other = Histogram::new();
        other.record(5000);
        h.merge(&other);
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 5000);
    }

    /// The explicit p0/p50/p100 contract: p0 is the minimum's bucket floor,
    /// p100 the maximum's, and degenerate histograms behave by definition,
    /// not by accident of rank arithmetic.
    #[test]
    fn quantile_rank_semantics_are_explicit() {
        // Empty: every quantile is 0.
        let empty = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(empty.quantile(q), 0, "empty at q={q}");
        }

        // Single entry: every quantile is that sample's bucket floor.
        let mut one = Histogram::new();
        one.record(900); // bucket [512, 1024)
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(one.quantile(q), 512, "single-entry at q={q}");
        }

        // Multi-bucket: p0 tracks the min, p100 the max, p50 the median.
        let mut h = Histogram::new();
        for v in [1, 16, 16, 16, 4096] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1, "p0 = floor(bucket(min))");
        assert_eq!(h.quantile(0.5), 16, "p50 = floor(bucket(rank 3))");
        assert_eq!(h.quantile(1.0), 4096, "p100 = floor(bucket(max))");
        // Out-of-range and NaN q clamp instead of over/under-ranking.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
    }

    /// Golden: histogram JSON field names are a public contract.
    #[test]
    fn histogram_json_field_names_are_stable() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(3);
        let j = h.to_json();
        assert_eq!(j, "{\"count\":2,\"sum\":6,\"min\":3,\"max\":3,\"buckets\":[[2,2]]}");
    }

    /// Golden: folded-stack line syntax (`a;b;c <count>\n`, sorted).
    #[test]
    fn folded_stack_line_syntax_is_stable() {
        let stacks = vec![
            (vec!["main", "loop", "leaf"], 7u64),
            (vec!["main"], 3),
            (vec!["main", "aux"], 0),   // dropped: zero count
            (Vec::<&str>::new(), 5),    // dropped: empty path
        ];
        let out = to_folded(&stacks);
        assert_eq!(out, "main 3\nmain;loop;leaf 7\n");
    }

    #[test]
    fn folded_frames_escape_separator_characters() {
        let stacks = vec![(vec!["a;b", "c d"], 1u64)];
        assert_eq!(to_folded(&stacks), "a_b;c_d 1\n");
    }

    /// Golden: Chrome trace-event JSON field names are a public contract
    /// (`traceEvents`, `name`/`cat`/`ph`/`ts`/`dur`/`pid`/`tid`/`args`).
    #[test]
    fn chrome_trace_field_names_are_stable() {
        let ev = TraceEvent {
            name: "vm_run".into(),
            cat: "rsti.phase".into(),
            ts_us: 0.0,
            dur_us: 1.5,
            tid: 1,
            args: vec![("calls".into(), "2".into())],
        };
        let j = chrome_trace(&[ev]);
        assert_eq!(
            j,
            "{\"traceEvents\":[{\"name\":\"vm_run\",\"cat\":\"rsti.phase\",\"ph\":\"X\",\
             \"ts\":0.000,\"dur\":1.500,\"pid\":1,\"tid\":1,\"args\":{\"calls\":2}}],\
             \"displayTimeUnit\":\"ms\"}"
        );
    }

    #[test]
    fn phase_trace_events_lay_spans_end_to_end() {
        let c = crate::Collector::new();
        c.enable();
        {
            let _a = c.span(crate::Phase::Parse);
        }
        {
            let _b = c.span(crate::Phase::VmRun);
        }
        let events = phase_trace_events(&c.snapshot());
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "parse");
        assert_eq!(events[1].name, "vm_run");
        // Second slice starts where the first ends.
        assert!((events[1].ts_us - events[0].dur_us).abs() < 1e-9);
        let j = chrome_trace(&events);
        assert!(j.starts_with("{\"traceEvents\":["), "{j}");
    }
}
