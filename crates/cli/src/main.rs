//! The `rsti` binary: compile, analyze, instrument, and run MiniC programs
//! under the RSTI mechanisms.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (code, out) = rsti_cli::run_cli(&args);
    print!("{out}");
    std::process::exit(code);
}
