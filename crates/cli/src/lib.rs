//! # rsti-cli — the `rsti` command-line driver
//!
//! A small front door over the whole pipeline:
//!
//! ```text
//! rsti run <file.mc> [--mech stwc|stc|stl|parts|none|adaptive]
//!                    [--backend pac|mac|interp|compiled]
//!                    [--opt none|block|cfg|ipo] [--stats] [--trace out.jsonl]
//! rsti profile <file.mc> [--mech ...] [--backend ...] [--opt none|block|cfg|ipo]
//!                        [--attr] [--top N] [--flame out.folded] [--chrome out.json]
//!                        [--trace out.jsonl]
//! rsti report [--out DIR] [--top N] [--history reports/bench_history.jsonl]
//! rsti analyze <file.mc> [--mech stwc|stc|stl|parts]
//! rsti instrument <file.mc> [--mech ...]        # dump instrumented IR
//! rsti equivalence <file.mc>                    # Table 3 row for a file
//! rsti fuzz [--seeds N] [--start S] [--attr] [--record] [--minimize] [--corpus DIR]
//! rsti explain <file.mc> | --attack <id> [--mech ...] [--backend ...] [--json]
//! ```
//!
//! `profile --attr` turns on the deterministic attribution profiler:
//! per-function exclusive cycle/instruction/check accounting, per-site
//! check stats, and sampled call paths. `--flame` writes the folded
//! stacks (inferno/flamegraph.pl input); `--chrome` writes a Chrome
//! `chrome://tracing` / Perfetto trace of the pipeline phases.
//!
//! `report` runs the nbench + NGINX workload mix under every mechanism
//! with attribution on and renders `reports/hotspots.md` — the
//! per-function app/PAC/pp cycle split — plus a trajectory diff of the
//! last two `reports/bench_history.jsonl` entries.
//!
//! `fuzz` runs the differential campaign from `rsti-fuzz`: every seed's
//! program must behave identically under the baseline and every
//! `mechanism × optimization` configuration, verify at every pass boundary,
//! and never panic. Failures are delta-debugged with `--minimize` and
//! written as `.mc` repros with `--corpus DIR`; the process exits nonzero
//! if any oracle was violated.
//!
//! `explain` arms the pointer-provenance flight recorder and renders the
//! forensic incident report for the first RSTI detection trap: the failing
//! check site, the expected-vs-presented modifier and key, the sign-site
//! lineage of the authenticated value, a scope timeline, and the last-K
//! event window (`--json` for the structured form). `--attack <id>` runs a
//! Table 1 scenario from `rsti-attacks` instead of a file; `run`,
//! `profile`, and `fuzz` accept `--record` to arm the same recorder.
//!
//! `--trace <path>` (or the `RSTI_TRACE` env var) turns the global
//! telemetry collector on and streams JSONL events — phase spans, counter
//! deltas, violation audit records, end-of-run summaries — to the path.
//! `profile` always collects and prints the per-phase wall-time and
//! counter tables.
//!
//! The command logic lives here (testable); `main.rs` only forwards
//! `std::env::args`.

#![warn(missing_docs)]

use rsti_core::{InstrumentStats, Mechanism, OptLevel};
use rsti_vm::{ExecResult, Image, Status, Vm};
use std::fmt::Write as _;

/// What `--mech` selects: an uninstrumented baseline, one fixed
/// mechanism, or the §7 adaptive hardening (STWC plus location-binding
/// for oversized classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechChoice {
    /// No instrumentation.
    Baseline,
    /// One fixed mechanism.
    Fixed(Mechanism),
    /// Adaptive hardening on top of STWC.
    Adaptive,
}

impl MechChoice {
    /// Display label for headers.
    pub fn label(self) -> &'static str {
        match self {
            MechChoice::Baseline => "baseline",
            MechChoice::Fixed(m) => m.name(),
            MechChoice::Adaptive => "adaptive",
        }
    }
}

/// Parses every mechanism name the usage string lists (plus the
/// `rsti-*` long forms), including `adaptive`.
///
/// # Errors
/// Returns a message for unknown names.
pub fn parse_mech_choice(s: &str) -> Result<MechChoice, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "stwc" | "rsti-stwc" => MechChoice::Fixed(Mechanism::Stwc),
        "stc" | "rsti-stc" => MechChoice::Fixed(Mechanism::Stc),
        "stl" | "rsti-stl" => MechChoice::Fixed(Mechanism::Stl),
        "parts" => MechChoice::Fixed(Mechanism::Parts),
        "none" | "baseline" => MechChoice::Baseline,
        "adaptive" => MechChoice::Adaptive,
        other => {
            return Err(format!(
                "unknown mechanism `{other}` (stwc|stc|stl|parts|none|adaptive)"
            ))
        }
    })
}

/// Parses a mechanism name (`none` → `None`). `adaptive` maps to its base
/// mechanism, STWC; use [`parse_mech_choice`] to distinguish it.
///
/// # Errors
/// Returns a message for unknown names.
pub fn parse_mechanism(s: &str) -> Result<Option<Mechanism>, String> {
    Ok(match parse_mech_choice(s)? {
        MechChoice::Baseline => None,
        MechChoice::Fixed(m) => Some(m),
        MechChoice::Adaptive => Some(Mechanism::Stwc),
    })
}

/// Runs the CLI; returns (exit code, output text).
pub fn run_cli(args: &[String]) -> (i32, String) {
    // `fuzz` takes no input file and owns its exit code (nonzero on oracle
    // violations, not only on bad arguments), so it bypasses `dispatch`.
    if args.first().map(String::as_str) == Some("fuzz") {
        return match cmd_fuzz(args) {
            Ok(r) => r,
            Err(e) => (1, format!("error: {e}\n{USAGE}")),
        };
    }
    // `report` also takes no input file: it runs the built-in workload mix.
    if args.first().map(String::as_str) == Some("report") {
        return match cmd_report(args) {
            Ok(out) => (0, out),
            Err(e) => (1, format!("error: {e}\n{USAGE}")),
        };
    }
    // `explain` may take `--attack <id>` instead of an input file, so it
    // bypasses `dispatch` too.
    if args.first().map(String::as_str) == Some("explain") {
        return match cmd_explain(args) {
            Ok(out) => (0, out),
            Err(e) => (1, format!("error: {e}\n{USAGE}")),
        };
    }
    // `serve` streams JSONL responses straight to stdout while running
    // (returning them in one batch would defeat a long-lived service), so
    // it bypasses `dispatch` as well.
    if args.first().map(String::as_str) == Some("serve") {
        return match cmd_serve(args) {
            Ok(r) => r,
            Err(e) => (1, format!("error: {e}\n{USAGE}")),
        };
    }
    match dispatch(args) {
        Ok(out) => (0, out),
        Err(e) => (1, format!("error: {e}\n{USAGE}")),
    }
}

/// The `fuzz` subcommand: a bounded differential campaign.
///
/// # Errors
/// Returns usage errors (bad flag values); oracle violations are *not*
/// errors — they are reported in the output with exit code 1.
fn cmd_fuzz(args: &[String]) -> Result<(i32, String), String> {
    let tel = rsti_telemetry::global();
    if let Some(path) = flag_value(args, "--trace") {
        tel.enable();
        tel.set_sink_path(path)
            .map_err(|e| format!("cannot open trace file `{path}`: {e}"))?;
    } else {
        tel.init_from_env();
    }

    let parse_u64 = |flag: &str, default: u64| -> Result<u64, String> {
        match flag_value(args, flag) {
            Some(s) => s.parse().map_err(|_| format!("bad {flag} value `{s}`")),
            None => Ok(default),
        }
    };
    let cfg = rsti_fuzz::FuzzConfig {
        start: parse_u64("--start", 0)?,
        seeds: parse_u64("--seeds", 100)?,
        minimize: args.iter().any(|a| a == "--minimize"),
        ..Default::default()
    };
    // The campaign cross-checks the compiled engine by default;
    // `--backend interp` opts out. (Enforcement backends are part of the
    // oracle matrix itself, so `pac`/`mac` are accepted but irrelevant.)
    let (_enforce, exec) = parse_backends(args)?;
    rsti_fuzz::set_exec_oracle(exec != Some(rsti_vm::ExecBackend::Interp));
    // `--attr` runs every oracle VM with the attribution profiler on: the
    // verdicts must not change (inertness), and the exec oracle then also
    // diffs the engines' profiles on every generated program.
    rsti_fuzz::set_attr_profile(args.iter().any(|a| a == "--attr"));
    // `--record` arms the flight recorder on every oracle VM: verdicts must
    // not change, and the exec oracle then also diffs the engines'
    // synthesized incidents bit-for-bit on every generated program.
    rsti_fuzz::set_record(args.iter().any(|a| a == "--record"));
    let corpus_dir = flag_value(args, "--corpus");

    let report = rsti_fuzz::run_campaign(&cfg);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fuzz: {} seed(s) from {}, {} oracle violation(s)",
        report.seeds_run,
        cfg.start,
        report.failures.len()
    );
    for f in &report.failures {
        let _ = writeln!(out, "seed {}: {}", f.seed, f.kind);
        if let Some(min) = &f.minimized {
            let _ = writeln!(
                out,
                "  minimized to {} line(s) in {} oracle run(s)",
                min.lines().count(),
                f.attempts
            );
        }
        if let Some(dir) = corpus_dir {
            let name = format!("seed_{:06}", f.seed);
            let src = f.minimized.as_deref().unwrap_or(&f.source);
            match rsti_fuzz::corpus::write_repro(
                std::path::Path::new(dir),
                &name,
                f.seed,
                &f.kind.class_key(),
                src,
            ) {
                Ok(p) => {
                    let _ = writeln!(out, "  repro written: {}", p.display());
                }
                Err(e) => {
                    let _ = writeln!(out, "  cannot write repro: {e}");
                }
            }
        }
    }
    Ok((if report.clean() { 0 } else { 1 }, out))
}

/// Parses the `serve` flags into a server config plus the output options
/// (`--socket`, `--stats-out`, `--trace`). Split from [`cmd_serve`] so the
/// flag grammar is unit-testable without touching stdin.
///
/// # Errors
/// Returns a message for unparsable numeric flag values.
pub fn parse_serve_config(
    args: &[String],
) -> Result<(rsti_serve::ServeConfig, ServeOptions), String> {
    let parse_usize = |flag: &str, default: usize| -> Result<usize, String> {
        match flag_value(args, flag) {
            Some(s) => s.parse().map_err(|_| format!("bad {flag} value `{s}`")),
            None => Ok(default),
        }
    };
    let defaults = rsti_serve::ServeConfig::default();
    let fuel = match flag_value(args, "--fuel") {
        Some(s) => s.parse().map_err(|_| format!("bad --fuel value `{s}`"))?,
        None => defaults.fuel,
    };
    let cfg = rsti_serve::ServeConfig {
        workers: parse_usize("--workers", defaults.workers)?.max(1),
        cache_cap: parse_usize("--cache-cap", defaults.cache_cap)?,
        fuel,
    };
    let opts = ServeOptions {
        socket: flag_value(args, "--socket").map(str::to_owned),
        stats_out: flag_value(args, "--stats-out").map(str::to_owned),
        trace: flag_value(args, "--trace").map(str::to_owned),
    };
    Ok((cfg, opts))
}

/// Output-side `serve` options (everything that is not a [`rsti_serve::ServeConfig`]
/// tunable).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Accept connections on this Unix socket instead of stdin/stdout.
    pub socket: Option<String>,
    /// Write the final stats snapshot (the `{\"cmd\":\"stats\"}` payload)
    /// to this file on exit.
    pub stats_out: Option<String>,
    /// Enable telemetry with this JSONL sink.
    pub trace: Option<String>,
}

/// The `serve` subcommand: a persistent instrumentation-and-execution
/// service over stdin-JSONL or a Unix socket (see `rsti-serve`).
/// Responses stream to stdout as they complete; the returned string only
/// carries the final one-line summary (stderr gets it too, so piping
/// stdout stays pure JSONL).
///
/// # Errors
/// Returns usage errors and fatal I/O errors (bind/accept failures).
fn cmd_serve(args: &[String]) -> Result<(i32, String), String> {
    let (cfg, opts) = parse_serve_config(args)?;
    let tel = rsti_telemetry::global();
    if let Some(path) = &opts.trace {
        tel.enable();
        tel.set_sink_path(path)
            .map_err(|e| format!("cannot open trace file `{path}`: {e}"))?;
    } else {
        tel.init_from_env();
    }
    let server = rsti_serve::Server::new(cfg);
    if let Some(path) = &opts.socket {
        #[cfg(unix)]
        rsti_serve::serve_socket(&server, std::path::Path::new(path))
            .map_err(|e| format!("serve socket `{path}`: {e}"))?;
        #[cfg(not(unix))]
        return Err(format!("--socket is only supported on unix (got `{path}`)"));
    } else {
        let stdin = std::io::stdin();
        rsti_serve::serve_lines(&server, stdin.lock(), std::io::stdout())
            .map_err(|e| format!("serve I/O: {e}"))?;
    }
    if let Some(path) = &opts.stats_out {
        std::fs::write(path, server.stats_json())
            .map_err(|e| format!("cannot write stats file `{path}`: {e}"))?;
    }
    let m = server.metrics();
    let summary = format!(
        "serve: {} request(s), {} hit(s), {} miss(es), {} eviction(s), {} error(s)\n",
        m.requests(),
        m.hits(),
        m.misses(),
        m.evictions(),
        m.errors()
    );
    eprint!("{summary}");
    Ok((0, String::new()))
}

const USAGE: &str = "\
usage:
  rsti run <file.mc> [--mech stwc|stc|stl|parts|none|adaptive] [--backend pac|mac|interp|compiled] [--opt none|block|cfg|ipo] [--record] [--stats] [--trace out.jsonl]
  rsti profile <file.mc> [--mech stwc|stc|stl|parts|none|adaptive] [--backend pac|mac|interp|compiled] [--opt none|block|cfg|ipo] [--attr] [--record] [--top N] [--flame out.folded] [--chrome out.json] [--trace out.jsonl]

  --optimize is shorthand for --opt cfg (the full pipeline).
  --backend selects the enforcement scheme (pac|mac) or the execution
  engine (interp|compiled); repeat the flag to set both axes.
  profile --attr adds per-function/per-check-site attribution tables;
  --flame writes folded call stacks (flamegraph.pl input, needs --attr);
  --chrome writes a Chrome/Perfetto trace of the pipeline phases.
  rsti report [--out DIR] [--top N] [--history reports/bench_history.jsonl]

  report runs the nbench+NGINX mix under every mechanism with attribution
  on and writes DIR/hotspots.md (default reports/): the per-function
  app/PAC/pp cycle split plus a diff of the last two bench-history entries.
  rsti explain <file.mc> [--mech stwc|stc|stl|parts|none|adaptive] [--backend pac|mac|interp|compiled] [--opt none|block|cfg|ipo] [--json]
  rsti explain --attack <scenario-id> [--mech stwc|stc|stl|parts|none] [--backend interp|compiled] [--json]

  explain arms the pointer-provenance flight recorder and renders the
  forensic incident report for the first RSTI detection trap: failing
  check site, expected vs presented modifier/key, sign-site lineage,
  scope timeline, and the last-K event window (--json for the structured
  form). --attack runs a Table 1 scenario instead of a file. run, profile,
  and fuzz accept --record to arm the same recorder on their runs.
  rsti analyze <file.mc> [--mech stwc|stc|stl|parts]
  rsti instrument <file.mc> [--mech stwc|stc|stl|parts]
  rsti equivalence <file.mc>
  rsti fuzz [--seeds N] [--start S] [--backend interp|compiled] [--attr] [--record] [--minimize] [--corpus DIR] [--trace out.jsonl]

  fuzz cross-checks the compiled engine against the interpreter on every
  run; --backend interp opts out (interpreter-only campaign). --attr runs
  every oracle VM with the attribution profiler on (verdicts must not
  change; engine profiles must agree). --record likewise arms the flight
  recorder everywhere and diffs the engines' incidents.
  rsti serve [--workers N] [--cache-cap N] [--fuel N] [--socket PATH] [--stats-out FILE] [--trace out.jsonl]

  serve reads JSONL requests from stdin (one JSON object per line, e.g.
  {\"id\":1,\"cmd\":\"run\",\"source\":\"int main() { return 0; }\",
  \"mech\":\"stwc\",\"opt\":\"cfg\",\"exec\":\"compiled\",\"enforce\":\"pac\"})
  and answers one JSON line per request, in input order, on stdout.
  Instrumented modules (and their compiled closures) are cached in an LRU
  keyed by hash(source, mech, opt, exec, enforce), shared by --workers
  threads; cmd is run|compile|profile|explain|stats|shutdown, and source
  may be replaced by a workload name (\"workload\":\"numeric sort\").
  --socket serves the same protocol on a Unix socket; --stats-out writes
  the final counter/latency snapshot as JSON on exit.
  RSTI_TRACE=<path> in the environment is equivalent to --trace <path>.
";

/// Mechanism names the usage string offers for `--mech` (kept in sync by
/// a unit test).
pub const USAGE_MECHS: [&str; 6] = ["stwc", "stc", "stl", "parts", "none", "adaptive"];

/// Backend names the usage string offers for `--backend`: two enforcement
/// schemes and two execution engines (kept in sync by a unit test).
pub const USAGE_BACKENDS: [&str; 4] = ["pac", "mac", "interp", "compiled"];

fn read_source(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// Resolves the optimization level from the flags: `--opt
/// none|block|cfg|ipo` wins; the legacy boolean `--optimize` means the
/// full intraprocedural (CFG) pipeline; the default is unoptimized.
///
/// # Errors
/// Returns a message for unknown level names.
pub fn parse_opt_level(args: &[String]) -> Result<OptLevel, String> {
    if let Some(v) = flag_value(args, "--opt") {
        return OptLevel::parse(v);
    }
    Ok(if args.iter().any(|a| a == "--optimize") {
        OptLevel::Cfg
    } else {
        OptLevel::None
    })
}

/// Instruments (or not) per the mechanism choice and builds the image.
fn build_image(
    module: &rsti_ir::Module,
    choice: MechChoice,
    level: OptLevel,
) -> (Image, Option<InstrumentStats>) {
    let instrumented = match choice {
        MechChoice::Baseline => return (Image::baseline(module), None),
        MechChoice::Adaptive => {
            rsti_core::instrument_adaptive(module, rsti_core::DEFAULT_ECV_THRESHOLD)
        }
        MechChoice::Fixed(m) => rsti_core::instrument(module, m),
    };
    let mut p = instrumented;
    rsti_core::optimize_program_at(&mut p, level);
    let stats = p.stats;
    (Image::from_instrumented(&p), Some(stats))
}

/// Splits every `--backend` occurrence onto the two axes the flag selects:
/// the enforcement scheme (`pac`|`mac` — how signatures are stored) and the
/// execution engine (`interp`|`compiled` — how blocks are dispatched). The
/// flag may be given once per axis; `None` on either axis means the caller's
/// default (PAC-in-pointer; the interpreter for `run`/`profile`, the
/// cross-checking differential pair for `fuzz`).
///
/// # Errors
/// Returns a message for unknown names, a missing value, or a repeated
/// choice on the same axis.
pub fn parse_backends(
    args: &[String],
) -> Result<(Option<rsti_vm::Backend>, Option<rsti_vm::ExecBackend>), String> {
    let mut enforce: Option<rsti_vm::Backend> = None;
    let mut exec: Option<rsti_vm::ExecBackend> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] != "--backend" {
            i += 1;
            continue;
        }
        let v = args
            .get(i + 1)
            .ok_or("--backend needs a value (pac|mac|interp|compiled)")?;
        match v.as_str() {
            "pac" | "mac" => {
                let b = if v == "mac" { rsti_vm::Backend::MacTable } else { rsti_vm::Backend::PacInPointer };
                if enforce.replace(b).is_some() {
                    return Err(format!("enforcement backend given twice (`--backend {v}`)"));
                }
            }
            "interp" | "compiled" => {
                let e = if v == "compiled" { rsti_vm::ExecBackend::Compiled } else { rsti_vm::ExecBackend::Interp };
                if exec.replace(e).is_some() {
                    return Err(format!("execution backend given twice (`--backend {v}`)"));
                }
            }
            other => return Err(format!("unknown backend `{other}` (pac|mac|interp|compiled)")),
        }
        i += 2;
    }
    Ok((enforce, exec))
}

fn apply_backend(img: Image, args: &[String]) -> Result<Image, String> {
    let (enforce, exec) = parse_backends(args)?;
    Ok(img
        .with_backend(enforce.unwrap_or(rsti_vm::Backend::PacInPointer))
        .with_exec(exec.unwrap_or(rsti_vm::ExecBackend::Interp)))
}

fn render_audit(out: &mut String, r: &ExecResult) {
    for rec in &r.audit {
        let _ = writeln!(
            out,
            "violation: {} {} at {} in {}:{} (modifier {:#018x}): {}",
            rec.mechanism, rec.inst, rec.site, rec.func, rec.line, rec.modifier, rec.detail
        );
    }
}

/// `--top N` (default 10): how many rows the attribution tables show.
fn parse_top(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--top") {
        Some(s) => s.parse().map_err(|_| format!("bad --top value `{s}`")),
        None => Ok(10),
    }
}

/// Renders the per-function and per-check-site attribution tables.
fn render_attr_tables(out: &mut String, p: &rsti_vm::AttrProfile, top: usize) {
    let _ = writeln!(
        out,
        "attribution: sampling every {} cycles, {} call-stack sample(s)",
        p.sample_every, p.samples
    );
    let _ = writeln!(out, "top functions by exclusive cycles:");
    let _ = writeln!(
        out,
        "  {:<24} {:>8} {:>12} {:>12} {:>8} {:>10} {:>8} {:>6}",
        "function", "calls", "cycles", "insts", "auths", "pac-cyc", "pp-cyc", "chk%"
    );
    for &i in p.ranked_funcs().iter().take(top) {
        let f = &p.funcs[i];
        let chk = f.pac_cycles + f.pp_cycles;
        let _ = writeln!(
            out,
            "  {:<24} {:>8} {:>12} {:>12} {:>8} {:>10} {:>8} {:>5.1}%",
            f.name,
            f.calls,
            f.cycles,
            f.insts,
            f.pac_auths,
            f.pac_cycles,
            f.pp_cycles,
            chk as f64 / f.cycles.max(1) as f64 * 100.0
        );
    }
    let mut sites: Vec<&rsti_vm::SiteAttr> = p.sites.iter().filter(|s| s.execs > 0).collect();
    sites.sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| a.site.id.cmp(&b.site.id)));
    if !sites.is_empty() {
        let _ = writeln!(out, "top check sites by cycles:");
        let _ = writeln!(
            out,
            "  {:<28} {:<12} {:>5} {:>10} {:>10} {:>8} {:>8}",
            "site", "kind", "line", "execs", "cycles", "signs", "auths"
        );
        for s in sites.iter().take(top) {
            let _ = writeln!(
                out,
                "  {:<28} {:<12} {:>5} {:>10} {:>10} {:>8} {:>8}",
                s.site.label(),
                s.site.kind,
                s.site.line,
                s.execs,
                s.cycles,
                s.signs,
                s.auths
            );
        }
    }
}

/// Extracts `"key": <number>` from one line of hand-rolled JSON.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = line.find(&pat)? + pat.len();
    let rest = line[i..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Renders the bench-trajectory lines from the non-empty `history` entries
/// (oldest first): the last entry's headline numbers plus a percentage diff
/// against the previous entry. With fewer than two entries — or when the
/// previous entry was written under a different `schema` version, so its
/// numbers are not comparable — the section says "no prior entry" instead
/// of silently omitting the diff or comparing across schema changes.
fn render_history_diff(md: &mut String, history: &str, lines: &[&str]) {
    let Some(&last) = lines.last() else {
        let _ = writeln!(md, "`{history}` is empty.");
        return;
    };
    let field = |k: &str| json_num(last, k);
    let _ = writeln!(
        md,
        "Last `{history}` entry: interp {:.0} insts/s, compiled {:.0} \
         insts/s (x{:.2}), telemetry cost {:.2}% (compiled {:.2}%), \
         attr-on cost {:.2}%.",
        field("insts_per_sec").unwrap_or(0.0),
        field("compiled_insts_per_sec").unwrap_or(0.0),
        field("compiled_speedup_vs_interp").unwrap_or(0.0),
        field("telemetry_enabled_cost_pct").unwrap_or(0.0),
        field("compiled_telemetry_cost_pct").unwrap_or(0.0),
        field("attr_cost_pct").unwrap_or(0.0),
    );
    if lines.len() < 2 {
        let _ = writeln!(md, "No prior entry to diff against (first recorded run).");
        return;
    }
    let prev = lines[lines.len() - 2];
    if json_num(prev, "schema") != json_num(last, "schema") {
        let sch = |l: &str| json_num(l, "schema").map_or("?".into(), |v| format!("{v:.0}"));
        let _ = writeln!(
            md,
            "No prior comparable entry (previous record has schema {}, this one {}) \
             — diff skipped.",
            sch(prev),
            sch(last)
        );
        return;
    }
    let delta = |k: &str| -> Option<f64> {
        let (p, l) = (json_num(prev, k)?, json_num(last, k)?);
        (p > 0.0).then(|| (l / p - 1.0) * 100.0)
    };
    let _ = writeln!(
        md,
        "Vs previous entry: interp {:+.1}%, compiled {:+.1}% \
         (wall-clock, machine-dependent).",
        delta("insts_per_sec").unwrap_or(0.0),
        delta("compiled_insts_per_sec").unwrap_or(0.0),
    );
}

/// One aggregated hotspot row for the report: a function in one workload.
struct HotRow {
    name: String,
    calls: u64,
    cycles: u64,
    pac_cycles: u64,
    pp_cycles: u64,
}

/// The `report` subcommand: runs the nbench + NGINX mix under every
/// mechanism with attribution on, writes `<out>/hotspots.md` (per-function
/// app/PAC/pp cycle split, top check sites, bench-history diff), and
/// returns the rendered report.
///
/// # Errors
/// Returns usage errors and I/O failures writing the report.
fn cmd_report(args: &[String]) -> Result<String, String> {
    let top = parse_top(args)?;
    let out_dir = flag_value(args, "--out").unwrap_or("reports");
    let history = flag_value(args, "--history").unwrap_or("reports/bench_history.jsonl");

    let mut md = String::new();
    let _ = writeln!(md, "# Execution hotspots — nbench + NGINX mix\n");
    let _ = writeln!(
        md,
        "Generated by `rsti report` (deterministic: model cycles, not wall time).\n\
         Exclusive per-function cycles split into *app* (ordinary execution),\n\
         *PAC* (`pac`/`aut`/`xpac` instructions), and *pp* (`pp_*` metadata\n\
         checks); top {top} functions per mechanism ranked by check-cycle\n\
         share (PAC + pp). Full pipeline (`--opt cfg`).\n"
    );

    for mech in Mechanism::ALL {
        let mut rows: Vec<HotRow> = Vec::new();
        let (mut tot, mut pac, mut pp) = (0u64, 0u64, 0u64);
        let mut stwc_sites: Vec<rsti_vm::SiteAttr> = Vec::new();
        let ws: Vec<_> =
            rsti_workloads::nbench().into_iter().chain(rsti_workloads::nginx()).collect();
        for w in &ws {
            let mut m = w.module();
            rsti_core::inline_leaf_functions(&mut m, 96);
            let mut p = rsti_core::instrument(&m, mech);
            rsti_core::optimize_program_at(&mut p, OptLevel::Cfg);
            let img = Image::from_instrumented(&p).with_attr();
            let mut vm = Vm::new(&img);
            vm.set_fuel(200_000_000);
            let r = vm.run();
            if !matches!(r.status, Status::Exited(0)) {
                return Err(format!("{}/{}: {:?}", w.name, mech.name(), r.status));
            }
            let prof = r.attr.expect("attribution profile");
            for &i in &prof.ranked_funcs() {
                let f = &prof.funcs[i];
                tot += f.cycles;
                pac += f.pac_cycles;
                pp += f.pp_cycles;
                rows.push(HotRow {
                    name: format!("{}/{}", w.name, f.name),
                    calls: f.calls,
                    cycles: f.cycles,
                    pac_cycles: f.pac_cycles,
                    pp_cycles: f.pp_cycles,
                });
            }
            if mech == Mechanism::Stwc {
                stwc_sites.extend(prof.sites.iter().filter(|s| s.execs > 0).cloned());
            }
        }
        rows.sort_by(|a, b| {
            (b.pac_cycles + b.pp_cycles)
                .cmp(&(a.pac_cycles + a.pp_cycles))
                .then_with(|| b.cycles.cmp(&a.cycles))
                .then_with(|| a.name.cmp(&b.name))
        });
        let pct = |x: u64| x as f64 / tot.max(1) as f64 * 100.0;
        let _ = writeln!(md, "## {}\n", mech.name());
        let _ = writeln!(
            md,
            "Mix totals: {tot} cycles — app {} ({:.1}%), PAC {pac} ({:.1}%), pp {pp} ({:.1}%).\n",
            tot - pac - pp,
            pct(tot - pac - pp),
            pct(pac),
            pct(pp)
        );
        let _ = writeln!(md, "| function | calls | cycles | app | pac | pp | check share |");
        let _ = writeln!(md, "|---|---:|---:|---:|---:|---:|---:|");
        for r in rows.iter().take(top) {
            let chk = r.pac_cycles + r.pp_cycles;
            let _ = writeln!(
                md,
                "| {} | {} | {} | {} | {} | {} | {:.1}% |",
                r.name,
                r.calls,
                r.cycles,
                r.cycles - chk,
                r.pac_cycles,
                r.pp_cycles,
                chk as f64 / r.cycles.max(1) as f64 * 100.0
            );
        }
        let _ = writeln!(md);
        if mech == Mechanism::Stwc {
            stwc_sites
                .sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| a.site.id.cmp(&b.site.id)));
            let _ = writeln!(md, "### Top check sites ({})\n", mech.name());
            let _ = writeln!(md, "| site | kind | line | execs | cycles | auths |");
            let _ = writeln!(md, "|---|---|---:|---:|---:|---:|");
            for s in stwc_sites.iter().take(top) {
                let _ = writeln!(
                    md,
                    "| {} | {} | {} | {} | {} | {} |",
                    s.site.label(),
                    s.site.kind,
                    s.site.line,
                    s.execs,
                    s.cycles,
                    s.auths
                );
            }
            let _ = writeln!(md);
        }
    }

    let _ = writeln!(md, "## Bench trajectory\n");
    match std::fs::read_to_string(history) {
        Ok(body) => {
            let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
            render_history_diff(&mut md, history, &lines);
        }
        Err(_) => {
            let _ = writeln!(
                md,
                "No bench history at `{history}` yet — run \
                 `cargo run --release -p rsti-bench --bin vm_throughput`."
            );
        }
    }

    std::fs::create_dir_all(out_dir).map_err(|e| format!("cannot create `{out_dir}`: {e}"))?;
    let path = std::path::Path::new(out_dir).join("hotspots.md");
    std::fs::write(&path, &md).map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
    let mut out = md;
    let _ = writeln!(out, "wrote {}", path.display());
    Ok(out)
}

/// Short engine name for headers.
fn exec_name(e: rsti_vm::ExecBackend) -> &'static str {
    match e {
        rsti_vm::ExecBackend::Interp => "interp",
        rsti_vm::ExecBackend::Compiled => "compiled",
    }
}

/// The `explain` subcommand: runs a program — or a Table 1 attack scenario
/// with `--attack <id>` — with the flight recorder armed and renders the
/// forensic incident report for the first RSTI detection trap, or says why
/// there is nothing to explain. `--json` emits the structured incident.
///
/// # Errors
/// Returns usage errors: unknown attack id or flag values, a missing or
/// unreadable input, or `--backend pac|mac` combined with `--attack`.
fn cmd_explain(args: &[String]) -> Result<String, String> {
    let json = args.iter().any(|a| a == "--json");
    let (enforce, exec) = parse_backends(args)?;
    let mut out = String::new();
    if let Some(id) = flag_value(args, "--attack") {
        if enforce.is_some() {
            return Err("--backend pac|mac does not combine with --attack (the harness \
                        owns enforcement); pick the engine with --backend interp|compiled"
                .into());
        }
        let all: Vec<rsti_attacks::Scenario> = rsti_attacks::scenarios::all()
            .into_iter()
            .chain(rsti_attacks::scenarios::extras())
            .collect();
        let s = all.iter().find(|s| s.id == id).ok_or_else(|| {
            let ids: Vec<&str> = all.iter().map(|s| s.id).collect();
            format!("unknown attack `{id}`; one of: {}", ids.join(", "))
        })?;
        let mech = match flag_value(args, "--mech") {
            Some(name) => parse_mechanism(name)?,
            None => Some(Mechanism::Stwc),
        };
        let engine = exec.unwrap_or(rsti_vm::ExecBackend::Interp);
        let (verdict, inc) = rsti_attacks::evaluate_with_record(s, mech, engine, true);
        match inc {
            Some(inc) if json => {
                let _ = writeln!(out, "{}", inc.to_json());
            }
            Some(inc) => {
                let _ = writeln!(
                    out,
                    "explain: attack `{}` under {} ({} engine): {}",
                    s.id,
                    rsti_attacks::defense_name(mech),
                    exec_name(engine),
                    verdict.label()
                );
                out.push_str(&inc.render_text());
            }
            None => {
                let _ = writeln!(
                    out,
                    "explain: attack `{}` under {} ({} engine): {} — no detection \
                     trap, so there is no incident to explain",
                    s.id,
                    rsti_attacks::defense_name(mech),
                    exec_name(engine),
                    verdict.label()
                );
            }
        }
    } else {
        let file = args
            .get(1)
            .filter(|a| !a.starts_with("--"))
            .ok_or("explain needs <file.mc> or --attack <scenario-id>")?;
        let src = read_source(file)?;
        let module = rsti_frontend::compile(&src, file).map_err(|e| e.to_string())?;
        let choice = match flag_value(args, "--mech") {
            Some(s) => parse_mech_choice(s)?,
            None => MechChoice::Fixed(Mechanism::Stwc),
        };
        let level = parse_opt_level(args)?;
        let (img, _stats) = build_image(&module, choice, level);
        let img = apply_backend(img, args)?.with_record();
        let r = Vm::new(&img).run();
        match &r.incident {
            Some(inc) if json => {
                let _ = writeln!(out, "{}", inc.to_json());
            }
            Some(inc) => {
                let _ = writeln!(out, "explain: {file} (mech {})", choice.label());
                out.push_str(&inc.render_text());
            }
            None => {
                let status = match &r.status {
                    Status::Exited(c) => format!("exit {c}"),
                    Status::Trapped(t) => format!("trap {t}"),
                };
                let _ = writeln!(
                    out,
                    "explain: {file} (mech {}): no RSTI detection trap ({status}) — \
                     nothing to explain",
                    choice.label()
                );
            }
        }
    }
    Ok(out)
}

fn dispatch(args: &[String]) -> Result<String, String> {
    let cmd = args.first().ok_or("missing command")?;
    let file = args.get(1).ok_or("missing <file.mc>")?;

    // Telemetry setup precedes compilation so the parse/lower spans of
    // this very invocation land in the snapshot.
    let tel = rsti_telemetry::global();
    let profiling = cmd == "profile";
    if profiling {
        tel.reset();
        tel.enable();
    }
    let tracing = if let Some(path) = flag_value(args, "--trace") {
        tel.enable();
        tel.set_sink_path(path)
            .map_err(|e| format!("cannot open trace file `{path}`: {e}"))?;
        true
    } else {
        tel.init_from_env()
    };

    let src = read_source(file)?;
    let module = rsti_frontend::compile(&src, file).map_err(|e| e.to_string())?;
    let choice = match flag_value(args, "--mech") {
        Some(s) => parse_mech_choice(s)?,
        None => MechChoice::Fixed(Mechanism::Stwc),
    };
    let mech = match choice {
        MechChoice::Baseline => None,
        MechChoice::Fixed(m) => Some(m),
        MechChoice::Adaptive => Some(Mechanism::Stwc),
    };

    match cmd.as_str() {
        "run" => {
            let mut out = String::new();
            let level = parse_opt_level(args)?;
            let (img, stats) = build_image(&module, choice, level);
            let mut img = apply_backend(img, args)?;
            if args.iter().any(|a| a == "--record") {
                img = img.with_record();
            }
            let mut vm = Vm::new(&img);
            let r = vm.run();
            for line in &r.output {
                let _ = writeln!(out, "{line}");
            }
            for e in &r.events {
                let _ = writeln!(out, "[extern{}] {}({})",
                    if e.critical { "!" } else { "" }, e.name, e.args.join(", "));
            }
            render_audit(&mut out, &r);
            if let Some(inc) = &r.incident {
                out.push_str(&inc.render_text());
            }
            match &r.status {
                Status::Exited(c) => {
                    let _ = writeln!(out, "exit: {c}");
                }
                Status::Trapped(t) => {
                    let _ = writeln!(out, "trap: {t}");
                }
            }
            if args.iter().any(|a| a == "--stats") {
                let _ = writeln!(
                    out,
                    "cycles: {}  insts: {}  pac signs: {}  pac auths: {}",
                    r.cycles, r.insts, r.pac_signs, r.pac_auths
                );
                if let Some(s) = stats {
                    let _ = writeln!(
                        out,
                        "instrumentation: {} store-signs, {} load-auths, {} cast-resigns, {} arg-resigns, {} strips, {} pp",
                        s.signs_on_store, s.auths_on_load, s.cast_resigns,
                        s.arg_resigns, s.strips, s.pp_signs
                    );
                }
                // With tracing explicitly requested, --stats prints the
                // full collector snapshot (the `run --trace --stats`
                // contract; gated on the flag, not on ambient collector
                // state, so parallel in-process callers stay independent).
                if tracing {
                    let _ = writeln!(out);
                    out.push_str(&tel.snapshot().render_tables());
                }
            }
            Ok(out)
        }
        "profile" => {
            let level = parse_opt_level(args)?;
            let attr = args.iter().any(|a| a == "--attr");
            let top = parse_top(args)?;
            let flame = flag_value(args, "--flame");
            let chrome = flag_value(args, "--chrome");
            if flame.is_some() && !attr {
                return Err("--flame needs --attr (folded stacks come from the profiler)".into());
            }
            let (img, _stats) = build_image(&module, choice, level);
            let mut img = apply_backend(img, args)?;
            if attr {
                img = img.with_attr();
            }
            if args.iter().any(|a| a == "--record") {
                img = img.with_record();
            }
            let mut vm = Vm::new(&img);
            let r = vm.run();
            let mut out = String::new();
            let _ = writeln!(out, "profile: {file} (mech {})", choice.label());
            match &r.status {
                Status::Exited(c) => {
                    let _ = writeln!(out, "status: exit {c}");
                }
                Status::Trapped(t) => {
                    let _ = writeln!(out, "status: trap {t}");
                }
            }
            render_audit(&mut out, &r);
            if let Some(inc) = &r.incident {
                out.push_str(&inc.render_text());
            }
            if let Some(p) = &r.attr {
                let _ = writeln!(out);
                render_attr_tables(&mut out, p, top);
                if let Some(path) = flame {
                    std::fs::write(path, p.folded_lines())
                        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                    let _ = writeln!(out, "folded stacks written: {path}");
                }
            }
            let _ = writeln!(out);
            out.push_str(&tel.snapshot().render_tables());
            if let Some(path) = chrome {
                let events = rsti_telemetry::phase_trace_events(&tel.snapshot());
                std::fs::write(path, rsti_telemetry::chrome_trace(&events))
                    .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                let _ = writeln!(out, "chrome trace written: {path}");
            }
            Ok(out)
        }
        "analyze" => {
            let m = mech.unwrap_or(Mechanism::Stwc);
            let a = rsti_core::analyze(&module, m);
            let mut out = String::new();
            let _ = writeln!(out, "{} RSTI-types for `{file}`:", a.classes.len());
            for (i, c) in a.classes.iter().enumerate() {
                let tys: Vec<String> =
                    c.types.iter().map(|t| module.types.display(*t)).collect();
                let members: Vec<&str> =
                    c.members.iter().map(|&v| a.facts.vars[v].name.as_str()).collect();
                let _ = writeln!(
                    out,
                    "M{:<3} types[{}] perm {} modifier {:#018x}\n     members: {}",
                    i + 1,
                    tys.join(", "),
                    if c.writable { "R/W" } else { "R" },
                    c.modifier,
                    members.join(", ")
                );
            }
            Ok(out)
        }
        "instrument" => {
            let m = mech.unwrap_or(Mechanism::Stwc);
            let p = rsti_core::instrument(&module, m);
            Ok(rsti_ir::print_module(&p.module))
        }
        "equivalence" => {
            let s = rsti_core::equivalence_stats(&module);
            Ok(format!(
                "NT {}  RT(STC) {}  RT(STWC) {}  RT(STL) {}  NV {}\nlargest ECV: STC {} STWC {}\nlargest ECT: STC {} STWC {}\n",
                s.nt, s.rt_stc, s.rt_stwc, s.rt_stl, s.nv,
                s.ecv_stc, s.ecv_stwc, s.ect_stc, s.ect_stwc
            ))
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const PROG: &str = r#"
        int main() {
            int* p = (int*) malloc(sizeof(int));
            *p = 21;
            print_int(*p * 2);
            return 0;
        }
    "#;

    #[test]
    fn run_command_executes() {
        let f = write_temp("rsti_cli_run.mc", PROG);
        let (code, out) = run_cli(&["run".into(), f, "--stats".into()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("42"), "{out}");
        assert!(out.contains("exit: 0"), "{out}");
        assert!(out.contains("pac signs"), "{out}");
    }

    #[test]
    fn run_baseline_has_no_pac() {
        let f = write_temp("rsti_cli_base.mc", PROG);
        let (code, out) =
            run_cli(&["run".into(), f, "--mech".into(), "none".into(), "--stats".into()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("pac signs: 0"), "{out}");
    }

    #[test]
    fn analyze_lists_classes() {
        let f = write_temp("rsti_cli_an.mc", PROG);
        let (code, out) = run_cli(&["analyze".into(), f]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("RSTI-types"), "{out}");
        assert!(out.contains("int*"), "{out}");
    }

    #[test]
    fn instrument_dumps_pac_ir() {
        let f = write_temp("rsti_cli_instr.mc", PROG);
        let (code, out) = run_cli(&["instrument".into(), f, "--mech".into(), "stl".into()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("pac.sign"), "{out}");
        assert!(out.contains("pac.auth"), "{out}");
    }

    #[test]
    fn equivalence_prints_row() {
        let f = write_temp("rsti_cli_eq.mc", PROG);
        let (code, out) = run_cli(&["equivalence".into(), f]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("NT "), "{out}");
    }

    #[test]
    fn errors_are_reported() {
        let (code, out) = run_cli(&["run".into(), "/nonexistent.mc".into()]);
        assert_eq!(code, 1);
        assert!(out.contains("cannot read"), "{out}");
        let (code, _) = run_cli(&["bogus".into(), "/x".into()]);
        assert_eq!(code, 1);
        let f = write_temp("rsti_cli_bad.mc", "int main( {");
        let (code, out) = run_cli(&["run".into(), f]);
        assert_eq!(code, 1);
        assert!(out.contains("line"), "{out}");
    }

    #[test]
    fn every_usage_listed_backend_parses() {
        // The usage string and `parse_backends` must not drift: every name
        // the help offers is accepted and lands on the expected axis.
        for name in USAGE_BACKENDS {
            assert!(USAGE.contains(name), "usage lists `{name}`");
            let args = ["--backend".to_string(), name.to_string()];
            let (enforce, exec) = parse_backends(&args).unwrap_or_else(|e| panic!("`{name}`: {e}"));
            match name {
                "pac" => assert_eq!(enforce, Some(rsti_vm::Backend::PacInPointer)),
                "mac" => assert_eq!(enforce, Some(rsti_vm::Backend::MacTable)),
                "interp" => assert_eq!(exec, Some(rsti_vm::ExecBackend::Interp)),
                "compiled" => assert_eq!(exec, Some(rsti_vm::ExecBackend::Compiled)),
                other => panic!("untested usage backend `{other}`"),
            }
        }
        // Both axes at once; duplicates on one axis are rejected.
        let both: Vec<String> =
            ["--backend", "mac", "--backend", "compiled"].map(String::from).into();
        assert_eq!(
            parse_backends(&both).unwrap(),
            (Some(rsti_vm::Backend::MacTable), Some(rsti_vm::ExecBackend::Compiled))
        );
        let dup: Vec<String> =
            ["--backend", "interp", "--backend", "compiled"].map(String::from).into();
        assert!(parse_backends(&dup).unwrap_err().contains("twice"));
        assert!(parse_backends(&["--backend".to_string()]).is_err());
    }

    #[test]
    fn run_with_compiled_engine_matches_interp_output() {
        let f = write_temp("rsti_cli_compiled.mc", PROG);
        let interp = run_cli(&["run".into(), f.clone(), "--stats".into()]);
        let compiled = run_cli(&[
            "run".into(),
            f.clone(),
            "--backend".into(),
            "compiled".into(),
            "--stats".into(),
        ]);
        assert_eq!(interp, compiled, "engines must agree on output and stats");
        // Both axes together, with the optimizer on.
        let (code, out) = run_cli(&[
            "run".into(),
            f,
            "--backend".into(),
            "mac".into(),
            "--backend".into(),
            "compiled".into(),
            "--opt".into(),
            "cfg".into(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("42"), "{out}");
    }

    #[test]
    fn run_with_mac_backend_and_optimize() {
        let f = write_temp("rsti_cli_mac.mc", PROG);
        let (code, out) = run_cli(&[
            "run".into(),
            f.clone(),
            "--backend".into(),
            "mac".into(),
            "--optimize".into(),
            "--stats".into(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("42"), "{out}");
        let (code, _) = run_cli(&["run".into(), f.clone(), "--mech".into(), "adaptive".into()]);
        assert_eq!(code, 0);
        let (code, out) = run_cli(&["run".into(), f, "--backend".into(), "xyz".into()]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown backend"), "{out}");
    }

    #[test]
    fn opt_levels_parse_and_agree_on_output() {
        let f = write_temp("rsti_cli_optlevels.mc", PROG);
        let mut outputs = Vec::new();
        for level in ["none", "block", "cfg", "ipo"] {
            let (code, out) = run_cli(&[
                "run".into(),
                f.clone(),
                "--opt".into(),
                level.into(),
            ]);
            assert_eq!(code, 0, "--opt {level}: {out}");
            // Program-visible lines only (everything before `exit:` plus
            // the status itself must be bit-identical across levels).
            outputs.push(out);
        }
        assert_eq!(outputs[0], outputs[1], "none vs block");
        assert_eq!(outputs[0], outputs[2], "none vs cfg");
        assert_eq!(outputs[0], outputs[3], "none vs ipo");

        let (code, out) = run_cli(&["run".into(), f, "--opt".into(), "turbo".into()]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown opt level"), "{out}");
    }

    // Exercises every optimizer stage: `q` promotes (block counter), the
    // loop header's `*p` pair hoists, and the body/join re-auths elide via
    // the dominator dataflow.
    const OPT_RICH_PROG: &str = r#"
        int sink;
        int main() {
            int* q = (int*) malloc(4);
            *q = 7;
            int* p = (int*) malloc(4);
            if (sink > 0) { p = (int*) malloc(4); }
            *p = 0;
            int i = 0;
            while (*p < 5) {
                *p = *p + 1;
                i = i + 1;
            }
            print_int(*p + *q);
            return 0;
        }
    "#;

    #[test]
    fn profile_reports_split_elision_counters() {
        let f = write_temp("rsti_cli_prof_opt.mc", OPT_RICH_PROG);
        let (code, out) = run_cli(&[
            "profile".into(),
            f,
            "--mech".into(),
            "stwc".into(),
            "--opt".into(),
            "cfg".into(),
        ]);
        assert_eq!(code, 0, "{out}");
        for counter in ["auths_elided_block", "auths_elided_dom", "auths_hoisted"] {
            assert!(out.contains(counter), "missing `{counter}`: {out}");
        }
    }

    // `bump` is a small init-stored leaf (inlined); `lagged` keeps an
    // uninitialized-on-one-arm local so it survives as a call whose empty
    // summary lets the `gp` fact cross it — the second `*gp` elides only
    // interprocedurally.
    const IPO_RICH_PROG: &str = r#"
        int sink;
        int* gp;
        long bump(long v) {
            long t = v * 2;
            return t + 1;
        }
        long lagged(long v) {
            long x;
            if (v > 1) { x = v; }
            return x;
        }
        int main() {
            gp = (int*) malloc(4);
            if (sink > 0) { gp = (int*) malloc(8); }
            int a = *gp;
            long w = lagged((long) a);
            int b = a + *gp;
            long c = bump((long) b + w);
            print_int(c);
            return 0;
        }
    "#;

    #[test]
    fn profile_reports_interprocedural_counters() {
        let f = write_temp("rsti_cli_prof_ipo.mc", IPO_RICH_PROG);
        let (code, out) = run_cli(&[
            "profile".into(),
            f,
            "--mech".into(),
            "stwc".into(),
            "--opt".into(),
            "ipo".into(),
        ]);
        assert_eq!(code, 0, "{out}");
        // The counter table hides zero rows, so containment doubles as a
        // "this pipeline stage actually fired" assertion.
        for counter in ["auths_elided_ipo", "calls_inlined", "summary_kill_refinements"] {
            assert!(out.contains(counter), "missing `{counter}`: {out}");
        }
    }

    #[test]
    fn bundled_samples_run_under_every_mechanism() {
        // The samples/ directory must stay working: it is the README's
        // hands-on entry point.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../samples");
        let mut found = 0;
        for entry in std::fs::read_dir(&root).expect("samples/ exists") {
            let path = entry.unwrap().path();
            if path.extension().and_then(|e| e.to_str()) != Some("mc") {
                continue;
            }
            found += 1;
            let p = path.to_string_lossy().into_owned();
            for mech in ["none", "parts", "stc", "stwc", "stl", "adaptive"] {
                let (code, out) = run_cli(&[
                    "run".into(),
                    p.clone(),
                    "--mech".into(),
                    mech.into(),
                ]);
                assert_eq!(code, 0, "{p} under {mech}: {out}");
                assert!(out.contains("exit: 0"), "{p} under {mech}: {out}");
            }
        }
        assert!(found >= 3, "expected bundled samples, found {found}");
    }

    #[test]
    fn fuzz_smoke_is_clean_and_exits_zero() {
        let (code, out) = run_cli(&["fuzz".into(), "--seeds".into(), "2".into()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("2 seed(s)"), "{out}");
        assert!(out.contains("0 oracle violation(s)"), "{out}");
    }

    #[test]
    fn fuzz_rejects_bad_flag_values() {
        let (code, out) = run_cli(&["fuzz".into(), "--seeds".into(), "many".into()]);
        assert_eq!(code, 1);
        assert!(out.contains("bad --seeds"), "{out}");
        let (code, out) = run_cli(&["fuzz".into(), "--start".into(), "-3".into()]);
        assert_eq!(code, 1);
        assert!(out.contains("bad --start"), "{out}");
    }

    #[test]
    fn usage_lists_the_fuzz_command() {
        assert!(USAGE.contains("rsti fuzz"), "{USAGE}");
    }

    #[test]
    fn usage_lists_the_serve_command_and_its_protocol_verbs() {
        assert!(USAGE.contains("rsti serve"), "{USAGE}");
        for needle in ["--workers", "--cache-cap", "--socket", "--stats-out", "shutdown"] {
            assert!(USAGE.contains(needle), "usage lists `{needle}`");
        }
    }

    #[test]
    fn serve_flags_parse_with_defaults_and_overrides() {
        let (cfg, opts) = parse_serve_config(&["serve".into()]).unwrap();
        let defaults = rsti_serve::ServeConfig::default();
        assert_eq!(cfg.workers, defaults.workers);
        assert_eq!(cfg.cache_cap, defaults.cache_cap);
        assert_eq!(cfg.fuel, defaults.fuel);
        assert_eq!(opts, ServeOptions::default());

        let args: Vec<String> = [
            "serve", "--workers", "8", "--cache-cap", "32", "--fuel", "5000",
            "--socket", "/tmp/rsti.sock", "--stats-out", "stats.json", "--trace", "t.jsonl",
        ]
        .map(String::from)
        .into();
        let (cfg, opts) = parse_serve_config(&args).unwrap();
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.cache_cap, 32);
        assert_eq!(cfg.fuel, 5000);
        assert_eq!(opts.socket.as_deref(), Some("/tmp/rsti.sock"));
        assert_eq!(opts.stats_out.as_deref(), Some("stats.json"));
        assert_eq!(opts.trace.as_deref(), Some("t.jsonl"));

        // --workers 0 is clamped to one worker, not an error.
        let args: Vec<String> = ["serve", "--workers", "0"].map(String::from).into();
        assert_eq!(parse_serve_config(&args).unwrap().0.workers, 1);
    }

    #[test]
    fn serve_rejects_bad_numeric_flags_via_run_cli() {
        for flag in ["--workers", "--cache-cap", "--fuel"] {
            let (code, out) =
                run_cli(&["serve".into(), flag.into(), "many".into()]);
            assert_eq!(code, 1);
            assert!(out.contains(&format!("bad {flag}")), "{out}");
        }
    }

    #[test]
    fn mechanism_parsing() {
        assert_eq!(parse_mechanism("stwc").unwrap(), Some(Mechanism::Stwc));
        assert_eq!(parse_mechanism("NONE").unwrap(), None);
        assert_eq!(parse_mechanism("adaptive").unwrap(), Some(Mechanism::Stwc));
        assert!(parse_mechanism("xyz").is_err());
    }

    #[test]
    fn every_usage_listed_mechanism_parses() {
        // The usage string and the parser must not drift: every name the
        // help offers is accepted, and each maps to the expected choice.
        for name in USAGE_MECHS {
            assert!(USAGE.contains(name), "usage lists `{name}`");
            let c = parse_mech_choice(name).unwrap_or_else(|e| panic!("`{name}`: {e}"));
            match name {
                "none" => assert_eq!(c, MechChoice::Baseline),
                "adaptive" => assert_eq!(c, MechChoice::Adaptive),
                "stwc" => assert_eq!(c, MechChoice::Fixed(Mechanism::Stwc)),
                "stc" => assert_eq!(c, MechChoice::Fixed(Mechanism::Stc)),
                "stl" => assert_eq!(c, MechChoice::Fixed(Mechanism::Stl)),
                "parts" => assert_eq!(c, MechChoice::Fixed(Mechanism::Parts)),
                other => panic!("untested usage mechanism `{other}`"),
            }
        }
        // Long forms and the baseline alias keep working too.
        for (long, short) in [("rsti-stwc", "stwc"), ("rsti-stc", "stc"), ("rsti-stl", "stl")] {
            assert_eq!(parse_mech_choice(long).unwrap(), parse_mech_choice(short).unwrap());
        }
        assert_eq!(parse_mech_choice("baseline").unwrap(), MechChoice::Baseline);
    }

    #[test]
    fn profile_prints_phase_and_counter_tables() {
        let f = write_temp("rsti_cli_prof.mc", PROG);
        let (code, out) = run_cli(&["profile".into(), f, "--mech".into(), "stwc".into()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("status: exit 0"), "{out}");
        // Per-phase wall-time table: the run's own phases must appear.
        assert!(out.contains("phase"), "{out}");
        for phase in ["parse", "lower", "collect_facts", "analyze", "instrument", "vm_run"] {
            assert!(out.contains(phase), "missing phase `{phase}`: {out}");
        }
        // Per-mechanism check counters.
        assert!(out.contains("signs_inserted"), "{out}");
        assert!(out.contains("auths_inserted"), "{out}");
        assert!(out.contains("classes_stwc"), "{out}");
        assert!(out.contains("vm_pac_signs"), "{out}");
    }

    #[test]
    fn profile_attr_renders_tables_and_exports() {
        let f = write_temp("rsti_cli_attr.mc", PROG);
        let flame = std::env::temp_dir().join("rsti_cli_attr.folded");
        let chrome = std::env::temp_dir().join("rsti_cli_attr_trace.json");
        let (code, out) = run_cli(&[
            "profile".into(),
            f.clone(),
            "--attr".into(),
            "--top".into(),
            "5".into(),
            "--flame".into(),
            flame.to_string_lossy().into_owned(),
            "--chrome".into(),
            chrome.to_string_lossy().into_owned(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("attribution: sampling every"), "{out}");
        assert!(out.contains("top functions by exclusive cycles"), "{out}");
        assert!(out.contains("top check sites by cycles"), "{out}");
        assert!(out.contains("main"), "{out}");
        // Folded stacks: `frame;frame count` lines (flamegraph.pl input).
        let folded = std::fs::read_to_string(&flame).unwrap();
        for line in folded.lines() {
            let (path, count) = line.rsplit_once(' ').expect("folded line shape");
            assert!(!path.is_empty() && count.parse::<u64>().is_ok(), "{line}");
        }
        // Chrome trace: the stable envelope plus the pipeline phases.
        let trace = std::fs::read_to_string(&chrome).unwrap();
        assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
        assert!(trace.contains("\"ph\":\"X\""), "{trace}");
        assert!(trace.contains("vm_run"), "{trace}");

        // --flame without --attr is a usage error.
        let (code, out) = run_cli(&[
            "profile".into(),
            f,
            "--flame".into(),
            "/tmp/x.folded".into(),
        ]);
        assert_eq!(code, 1);
        assert!(out.contains("--flame needs --attr"), "{out}");
    }

    #[test]
    fn report_writes_hotspots_markdown() {
        let dir = std::env::temp_dir().join("rsti_cli_report");
        let hist = std::env::temp_dir().join("rsti_cli_report_hist.jsonl");
        std::fs::write(
            &hist,
            "{\"schema\":1,\"insts_per_sec\":1000,\"compiled_insts_per_sec\":3000,\
             \"compiled_speedup_vs_interp\":3.0,\"telemetry_enabled_cost_pct\":2.0,\
             \"compiled_telemetry_cost_pct\":1.0,\"attr_cost_pct\":4.5}\n\
             {\"schema\":1,\"insts_per_sec\":1100,\"compiled_insts_per_sec\":3300,\
             \"compiled_speedup_vs_interp\":3.0,\"telemetry_enabled_cost_pct\":2.0,\
             \"compiled_telemetry_cost_pct\":1.0,\"attr_cost_pct\":4.5}\n",
        )
        .unwrap();
        let (code, out) = run_cli(&[
            "report".into(),
            "--out".into(),
            dir.to_string_lossy().into_owned(),
            "--top".into(),
            "5".into(),
            "--history".into(),
            hist.to_string_lossy().into_owned(),
        ]);
        assert_eq!(code, 0, "{out}");
        let md = std::fs::read_to_string(dir.join("hotspots.md")).unwrap();
        assert!(md.contains("# Execution hotspots"), "{md}");
        for mech in ["RSTI-STWC", "RSTI-STC", "RSTI-STL", "PARTS"] {
            assert!(md.contains(&format!("## {mech}")), "missing section {mech}: {md}");
        }
        assert!(md.contains("| function | calls | cycles | app | pac | pp | check share |"), "{md}");
        assert!(md.contains("Top check sites"), "{md}");
        // History diff: both the last entry and the vs-previous delta.
        assert!(md.contains("interp 1100 insts/s"), "{md}");
        assert!(md.contains("Vs previous entry: interp +10.0%"), "{md}");
    }

    #[test]
    fn history_diff_reports_missing_or_incomparable_prior_entry() {
        // Satellite fix: fewer than two history entries (or a schema change
        // in the tail) must say "no prior entry", never a bogus or silently
        // absent diff.
        let one = "{\"schema\":1,\"insts_per_sec\":1000,\"compiled_insts_per_sec\":3000,\
                   \"compiled_speedup_vs_interp\":3.0,\"telemetry_enabled_cost_pct\":2.0,\
                   \"compiled_telemetry_cost_pct\":1.0,\"attr_cost_pct\":4.5}";
        let mut md = String::new();
        render_history_diff(&mut md, "h.jsonl", &[one]);
        assert!(md.contains("interp 1000 insts/s"), "{md}");
        assert!(md.contains("No prior entry to diff against"), "{md}");
        assert!(!md.contains("Vs previous entry"), "{md}");

        let old_schema = one.replace("\"schema\":1", "\"schema\":0");
        let mut md = String::new();
        render_history_diff(&mut md, "h.jsonl", &[old_schema.as_str(), one]);
        assert!(md.contains("No prior comparable entry"), "{md}");
        assert!(md.contains("schema 0, this one 1"), "{md}");
        assert!(!md.contains("Vs previous entry"), "{md}");

        let newer = one.replace("1000", "1100");
        let mut md = String::new();
        render_history_diff(&mut md, "h.jsonl", &[one, newer.as_str()]);
        assert!(md.contains("Vs previous entry: interp +10.0%"), "{md}");

        let mut md = String::new();
        render_history_diff(&mut md, "h.jsonl", &[]);
        assert!(md.contains("is empty"), "{md}");
    }

    #[test]
    fn explain_attack_renders_incident_report() {
        let (code, out) = run_cli(&[
            "explain".into(),
            "--attack".into(),
            "newton-cscfi".into(),
            "--mech".into(),
            "stwc".into(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("== RSTI incident report =="), "{out}");
        assert!(out.contains("verdict     :"), "{out}");
        assert!(out.contains("attacker_write"), "{out}");
        // Without a defense nothing traps, so there is nothing to explain.
        let (code, out) = run_cli(&[
            "explain".into(),
            "--attack".into(),
            "newton-cscfi".into(),
            "--mech".into(),
            "none".into(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("no detection trap"), "{out}");
        // Unknown ids list the catalogue.
        let (code, out) = run_cli(&["explain".into(), "--attack".into(), "nope".into()]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown attack"), "{out}");
        assert!(out.contains("newton-cscfi"), "{out}");
    }

    #[test]
    fn explain_attack_json_is_engine_invariant() {
        let mut bodies = Vec::new();
        for engine in ["interp", "compiled"] {
            let (code, out) = run_cli(&[
                "explain".into(),
                "--attack".into(),
                "newton-cscfi".into(),
                "--backend".into(),
                engine.into(),
                "--json".into(),
            ]);
            assert_eq!(code, 0, "{engine}: {out}");
            let body = out.trim_end();
            assert!(body.starts_with('{') && body.ends_with('}'), "{out}");
            assert!(body.contains("\"schema\":1"), "{out}");
            assert!(body.contains("\"check_site\":"), "{out}");
            assert!(body.contains("\"presented_modifier\":"), "{out}");
            bodies.push(out);
        }
        assert_eq!(bodies[0], bodies[1], "incident JSON must be engine-invariant");
    }

    #[test]
    fn explain_file_mode_handles_benign_programs() {
        let f = write_temp("rsti_cli_explain_benign.mc", PROG);
        let (code, out) = run_cli(&["explain".into(), f]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("no RSTI detection trap"), "{out}");
        // explain without a file or --attack is a usage error.
        let (code, out) = run_cli(&["explain".into()]);
        assert_eq!(code, 1);
        assert!(out.contains("--attack"), "{out}");
    }

    #[test]
    fn usage_lists_explain_and_record() {
        assert!(USAGE.contains("rsti explain"), "{USAGE}");
        assert!(USAGE.contains("--attack"), "{USAGE}");
        assert!(USAGE.contains("--record"), "{USAGE}");
    }

    #[test]
    fn run_record_is_silent_on_clean_runs() {
        // Recorder inertness at the CLI surface: arming it must not change
        // a clean run's output in any way.
        let f = write_temp("rsti_cli_run_rec.mc", PROG);
        let plain = run_cli(&["run".into(), f.clone(), "--stats".into()]);
        let rec = run_cli(&["run".into(), f, "--record".into(), "--stats".into()]);
        assert_eq!(plain, rec, "recorder must not change a clean run's output");
    }

    #[test]
    fn fuzz_smoke_with_recorder_is_clean() {
        // Recorder inertness under the differential oracle: verdicts stay
        // unchanged and interp ≡ compiled incidents on every seed.
        let (code, out) =
            run_cli(&["fuzz".into(), "--seeds".into(), "2".into(), "--record".into()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("0 oracle violation(s)"), "{out}");
        rsti_fuzz::set_record(false);
    }

    #[test]
    fn json_num_extracts_numbers() {
        let line = "{\"a\":1,\"b\": -2.5, \"c\":1.2e3,\"s\":\"x\"}";
        assert_eq!(json_num(line, "a"), Some(1.0));
        assert_eq!(json_num(line, "b"), Some(-2.5));
        assert_eq!(json_num(line, "c"), Some(1200.0));
        assert_eq!(json_num(line, "s"), None);
        assert_eq!(json_num(line, "missing"), None);
    }

    #[test]
    fn fuzz_smoke_with_profiler_is_clean() {
        // Satellite guarantee: the attribution profiler never changes an
        // oracle verdict — a profiled campaign stays green.
        let (code, out) =
            run_cli(&["fuzz".into(), "--seeds".into(), "2".into(), "--attr".into()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("0 oracle violation(s)"), "{out}");
        rsti_fuzz::set_attr_profile(false);
    }

    #[test]
    fn run_trace_emits_valid_jsonl_and_snapshot() {
        let f = write_temp("rsti_cli_trace.mc", PROG);
        let trace = std::env::temp_dir().join("rsti_cli_trace.jsonl");
        let trace_s = trace.to_string_lossy().into_owned();
        let (code, out) = run_cli(&[
            "run".into(),
            f,
            "--trace".into(),
            trace_s,
            "--stats".into(),
        ]);
        assert_eq!(code, 0, "{out}");
        // --trace --stats adds the full snapshot tables.
        assert!(out.contains("counter"), "{out}");
        let body = std::fs::read_to_string(&trace).unwrap();
        assert!(!body.trim().is_empty(), "trace file has events");
        for line in body.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "JSONL line shape: {line}"
            );
            assert!(line.contains("\"type\":\""), "typed event: {line}");
        }
        assert!(body.contains("\"type\":\"run_end\""), "{body}");
    }

    #[test]
    fn run_reports_violation_audit_record() {
        // An injected STWC violation must surface the structured audit
        // line naming mechanism, site, and faulting instruction.
        let src = r#"
            void benign() { }
            void evil() { print_str("EVIL"); }
            struct ctx { void (*cb)(); };
            struct ctx* g_ctx;
            void dispatch() { g_ctx->cb(); }
            int main() {
                g_ctx = (struct ctx*) malloc(sizeof(struct ctx));
                g_ctx->cb = benign;
                dispatch();
                return 0;
            }
        "#;
        let m = rsti_frontend::compile(src, "t").unwrap();
        let p = rsti_core::instrument(&m, Mechanism::Stwc);
        let img = Image::from_instrumented(&p);
        let mut vm = Vm::new(&img);
        assert_eq!(vm.run_to_function("dispatch"), rsti_vm::RunStop::Entered);
        let obj = vm.heap_live()[0].0;
        let evil = vm.func_addr("evil").unwrap();
        vm.attacker_write_u64(obj, evil).unwrap();
        let r = vm.finish();
        let mut out = String::new();
        render_audit(&mut out, &r);
        assert!(out.contains("violation: RSTI-STWC pac_auth at on_load in dispatch"), "{out}");
        assert!(out.contains("modifier 0x"), "{out}");
    }
}
