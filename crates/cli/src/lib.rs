//! # rsti-cli — the `rsti` command-line driver
//!
//! A small front door over the whole pipeline:
//!
//! ```text
//! rsti run <file.mc> [--mech stwc|stc|stl|parts|none|adaptive]
//!                    [--backend pac|mac] [--optimize] [--stats]
//! rsti analyze <file.mc> [--mech stwc|stc|stl|parts]
//! rsti instrument <file.mc> [--mech ...]        # dump instrumented IR
//! rsti equivalence <file.mc>                    # Table 3 row for a file
//! ```
//!
//! The command logic lives here (testable); `main.rs` only forwards
//! `std::env::args`.

#![warn(missing_docs)]

use rsti_core::Mechanism;
use rsti_vm::{Image, Status, Vm};
use std::fmt::Write as _;

/// Parses a mechanism name (`none` → `None`).
///
/// # Errors
/// Returns a message for unknown names.
pub fn parse_mechanism(s: &str) -> Result<Option<Mechanism>, String> {
    Ok(Some(match s.to_ascii_lowercase().as_str() {
        "stwc" | "rsti-stwc" => Mechanism::Stwc,
        "stc" | "rsti-stc" => Mechanism::Stc,
        "stl" | "rsti-stl" => Mechanism::Stl,
        "parts" => Mechanism::Parts,
        "none" | "baseline" => return Ok(None),
        other => return Err(format!("unknown mechanism `{other}` (stwc|stc|stl|parts|none)")),
    }))
}

/// Runs the CLI; returns (exit code, output text).
pub fn run_cli(args: &[String]) -> (i32, String) {
    match dispatch(args) {
        Ok(out) => (0, out),
        Err(e) => (1, format!("error: {e}\n{USAGE}")),
    }
}

const USAGE: &str = "\
usage:
  rsti run <file.mc> [--mech stwc|stc|stl|parts|none|adaptive] [--backend pac|mac] [--optimize] [--stats]
  rsti analyze <file.mc> [--mech stwc|stc|stl|parts]
  rsti instrument <file.mc> [--mech stwc|stc|stl|parts]
  rsti equivalence <file.mc>
";

fn read_source(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn dispatch(args: &[String]) -> Result<String, String> {
    let cmd = args.first().ok_or("missing command")?;
    let file = args.get(1).ok_or("missing <file.mc>")?;
    let src = read_source(file)?;
    let module = rsti_frontend::compile(&src, file).map_err(|e| e.to_string())?;
    let mech = match flag_value(args, "--mech") {
        Some("adaptive") => Some(Mechanism::Stwc), // refined in `run`
        Some(s) => parse_mechanism(s)?,
        None => Some(Mechanism::Stwc),
    };

    match cmd.as_str() {
        "run" => {
            let mut out = String::new();
            let adaptive = flag_value(args, "--mech") == Some("adaptive");
            let optimize = args.iter().any(|a| a == "--optimize");
            let (img, stats) = if adaptive {
                let mut p =
                    rsti_core::instrument_adaptive(&module, rsti_core::DEFAULT_ECV_THRESHOLD);
                if optimize {
                    rsti_core::optimize_program(&mut p);
                }
                let stats = p.stats;
                (Image::from_instrumented(&p), Some(stats))
            } else {
                match mech {
                    None => (Image::baseline(&module), None),
                    Some(m) => {
                        let mut p = rsti_core::instrument(&module, m);
                        if optimize {
                            rsti_core::optimize_program(&mut p);
                        }
                        let stats = p.stats;
                        (Image::from_instrumented(&p), Some(stats))
                    }
                }
            };
            let img = match flag_value(args, "--backend") {
                Some("mac") => img.with_backend(rsti_vm::Backend::MacTable),
                Some("pac") | None => img,
                Some(other) => {
                    return Err(format!("unknown backend `{other}` (pac|mac)"))
                }
            };
            let mut vm = Vm::new(&img);
            let r = vm.run();
            for line in &r.output {
                let _ = writeln!(out, "{line}");
            }
            for e in &r.events {
                let _ = writeln!(out, "[extern{}] {}({})",
                    if e.critical { "!" } else { "" }, e.name, e.args.join(", "));
            }
            match &r.status {
                Status::Exited(c) => {
                    let _ = writeln!(out, "exit: {c}");
                }
                Status::Trapped(t) => {
                    let _ = writeln!(out, "trap: {t}");
                }
            }
            if args.iter().any(|a| a == "--stats") {
                let _ = writeln!(
                    out,
                    "cycles: {}  insts: {}  pac signs: {}  pac auths: {}",
                    r.cycles, r.insts, r.pac_signs, r.pac_auths
                );
                if let Some(s) = stats {
                    let _ = writeln!(
                        out,
                        "instrumentation: {} store-signs, {} load-auths, {} cast-resigns, {} arg-resigns, {} strips, {} pp",
                        s.signs_on_store, s.auths_on_load, s.cast_resigns,
                        s.arg_resigns, s.strips, s.pp_signs
                    );
                }
            }
            Ok(out)
        }
        "analyze" => {
            let m = mech.unwrap_or(Mechanism::Stwc);
            let a = rsti_core::analyze(&module, m);
            let mut out = String::new();
            let _ = writeln!(out, "{} RSTI-types for `{file}`:", a.classes.len());
            for (i, c) in a.classes.iter().enumerate() {
                let tys: Vec<String> =
                    c.types.iter().map(|t| module.types.display(*t)).collect();
                let members: Vec<&str> =
                    c.members.iter().map(|&v| a.facts.vars[v].name.as_str()).collect();
                let _ = writeln!(
                    out,
                    "M{:<3} types[{}] perm {} modifier {:#018x}\n     members: {}",
                    i + 1,
                    tys.join(", "),
                    if c.writable { "R/W" } else { "R" },
                    c.modifier,
                    members.join(", ")
                );
            }
            Ok(out)
        }
        "instrument" => {
            let m = mech.unwrap_or(Mechanism::Stwc);
            let p = rsti_core::instrument(&module, m);
            Ok(rsti_ir::print_module(&p.module))
        }
        "equivalence" => {
            let s = rsti_core::equivalence_stats(&module);
            Ok(format!(
                "NT {}  RT(STC) {}  RT(STWC) {}  RT(STL) {}  NV {}\nlargest ECV: STC {} STWC {}\nlargest ECT: STC {} STWC {}\n",
                s.nt, s.rt_stc, s.rt_stwc, s.rt_stl, s.nv,
                s.ecv_stc, s.ecv_stwc, s.ect_stc, s.ect_stwc
            ))
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const PROG: &str = r#"
        int main() {
            int* p = (int*) malloc(sizeof(int));
            *p = 21;
            print_int(*p * 2);
            return 0;
        }
    "#;

    #[test]
    fn run_command_executes() {
        let f = write_temp("rsti_cli_run.mc", PROG);
        let (code, out) = run_cli(&["run".into(), f, "--stats".into()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("42"), "{out}");
        assert!(out.contains("exit: 0"), "{out}");
        assert!(out.contains("pac signs"), "{out}");
    }

    #[test]
    fn run_baseline_has_no_pac() {
        let f = write_temp("rsti_cli_base.mc", PROG);
        let (code, out) =
            run_cli(&["run".into(), f, "--mech".into(), "none".into(), "--stats".into()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("pac signs: 0"), "{out}");
    }

    #[test]
    fn analyze_lists_classes() {
        let f = write_temp("rsti_cli_an.mc", PROG);
        let (code, out) = run_cli(&["analyze".into(), f]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("RSTI-types"), "{out}");
        assert!(out.contains("int*"), "{out}");
    }

    #[test]
    fn instrument_dumps_pac_ir() {
        let f = write_temp("rsti_cli_instr.mc", PROG);
        let (code, out) = run_cli(&["instrument".into(), f, "--mech".into(), "stl".into()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("pac.sign"), "{out}");
        assert!(out.contains("pac.auth"), "{out}");
    }

    #[test]
    fn equivalence_prints_row() {
        let f = write_temp("rsti_cli_eq.mc", PROG);
        let (code, out) = run_cli(&["equivalence".into(), f]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("NT "), "{out}");
    }

    #[test]
    fn errors_are_reported() {
        let (code, out) = run_cli(&["run".into(), "/nonexistent.mc".into()]);
        assert_eq!(code, 1);
        assert!(out.contains("cannot read"), "{out}");
        let (code, _) = run_cli(&["bogus".into(), "/x".into()]);
        assert_eq!(code, 1);
        let f = write_temp("rsti_cli_bad.mc", "int main( {");
        let (code, out) = run_cli(&["run".into(), f]);
        assert_eq!(code, 1);
        assert!(out.contains("line"), "{out}");
    }

    #[test]
    fn run_with_mac_backend_and_optimize() {
        let f = write_temp("rsti_cli_mac.mc", PROG);
        let (code, out) = run_cli(&[
            "run".into(),
            f.clone(),
            "--backend".into(),
            "mac".into(),
            "--optimize".into(),
            "--stats".into(),
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("42"), "{out}");
        let (code, _) = run_cli(&["run".into(), f.clone(), "--mech".into(), "adaptive".into()]);
        assert_eq!(code, 0);
        let (code, out) = run_cli(&["run".into(), f, "--backend".into(), "xyz".into()]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown backend"), "{out}");
    }

    #[test]
    fn bundled_samples_run_under_every_mechanism() {
        // The samples/ directory must stay working: it is the README's
        // hands-on entry point.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../samples");
        let mut found = 0;
        for entry in std::fs::read_dir(&root).expect("samples/ exists") {
            let path = entry.unwrap().path();
            if path.extension().and_then(|e| e.to_str()) != Some("mc") {
                continue;
            }
            found += 1;
            let p = path.to_string_lossy().into_owned();
            for mech in ["none", "parts", "stc", "stwc", "stl", "adaptive"] {
                let (code, out) = run_cli(&[
                    "run".into(),
                    p.clone(),
                    "--mech".into(),
                    mech.into(),
                ]);
                assert_eq!(code, 0, "{p} under {mech}: {out}");
                assert!(out.contains("exit: 0"), "{p} under {mech}: {out}");
            }
        }
        assert!(found >= 3, "expected bundled samples, found {found}");
    }

    #[test]
    fn mechanism_parsing() {
        assert_eq!(parse_mechanism("stwc").unwrap(), Some(Mechanism::Stwc));
        assert_eq!(parse_mechanism("NONE").unwrap(), None);
        assert!(parse_mechanism("xyz").is_err());
    }
}
