//! Table 2 reproduction: per-mechanism attacker restrictions, measured.
//!
//! The paper's Table 2 is qualitative; here every cell is *measured* by a
//! probe program + corruption:
//!
//! * **pointer corruption, same RSTI-type** — substituting two pointers
//!   that share an RSTI-type succeeds under STC/STWC (the residual
//!   equivalence-class risk the paper discusses in §7) but fails under
//!   STL, whose modifier includes the slot address;
//! * **pointer corruption, different RSTI-type** — detected by every RSTI
//!   mechanism; the PARTS baseline misses it when the basic types match;
//! * **spatial violation** — a buffer overflow writing attacker bytes over
//!   an adjacent pointer is detected by every PA scheme (the bytes carry
//!   no valid PAC);
//! * **temporal violation** — replaying a dangling (freed) pointer into a
//!   slot of a different RSTI-type is detected; reuse within the same
//!   RSTI-type is the residual risk for STC/STWC.

use rsti_core::Mechanism;
use rsti_frontend::compile;
use rsti_vm::{Image, RunStop, Status, Vm};

/// The outcome of a probe under one defense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The corruption slipped through (the program kept running on the
    /// corrupted pointer).
    Undetected,
    /// An authentication check fired.
    Detected,
    /// The program crashed without a defense check firing.
    Crashed,
}

impl ProbeOutcome {
    /// Table cell label.
    pub fn label(&self) -> &'static str {
        match self {
            ProbeOutcome::Undetected => "UNDETECTED",
            ProbeOutcome::Detected => "detected",
            ProbeOutcome::Crashed => "crashed",
        }
    }
}

/// A Table 2 probe.
pub struct Probe {
    /// Row id.
    pub id: &'static str,
    /// What the probe measures.
    pub description: &'static str,
    source: &'static str,
    pause_at: &'static str,
    corrupt: fn(&mut Vm) -> Option<()>,
}

fn run_probe(p: &Probe, defense: Option<Mechanism>) -> ProbeOutcome {
    let m = compile(p.source, p.id).expect("probe compiles");
    let img = match defense {
        None => Image::baseline(&m),
        Some(mech) => Image::from_instrumented(&rsti_core::instrument(&m, mech)),
    };
    let mut vm = Vm::new(&img);
    assert_eq!(vm.run_to_function(p.pause_at), RunStop::Entered, "{}", p.id);
    (p.corrupt)(&mut vm).expect("corruption applies");
    let r = vm.finish();
    match r.status {
        Status::Exited(_) => ProbeOutcome::Undetected,
        Status::Trapped(t) if t.is_detection() => ProbeOutcome::Detected,
        Status::Trapped(_) => ProbeOutcome::Crashed,
    }
}

/// Substitution of two pointers sharing one RSTI-type (same type, same
/// scope, same permission): the residual equivalence-class risk.
pub fn probe_same_class() -> Probe {
    Probe {
        id: "subst-same-rsti-type",
        description: "substitute two pointers with identical scope-type facts",
        source: r#"
            struct item { long v; };
            struct item* a;
            struct item* b;
            long consume() {
                return a->v + b->v;
            }
            int main() {
                a = (struct item*) malloc(sizeof(struct item));
                b = (struct item*) malloc(sizeof(struct item));
                a->v = 1;
                b->v = 2;
                long r = consume();
                return (int) r;
            }
        "#,
        pause_at: "consume",
        corrupt: |vm| {
            // Copy b's (signed) pointer over a's slot.
            let src = vm.global_addr("b")?;
            let dst = vm.global_addr("a")?;
            let bytes = vm.attacker_read(src, 8).ok()?;
            vm.attacker_write(dst, &bytes).ok()
        },
    }
}

/// Substitution across different RSTI-types of the *same basic type*:
/// RSTI's scope separation catches it, a type-only modifier cannot.
pub fn probe_diff_class() -> Probe {
    Probe {
        id: "subst-diff-rsti-type",
        description: "substitute same-basic-type pointers from different scopes",
        source: r#"
            struct item { long v; };
            struct item* frontend_item;
            struct item* backend_item;
            void frontend_init() {
                frontend_item = (struct item*) malloc(sizeof(struct item));
                frontend_item->v = 1;
            }
            void backend_init() {
                backend_item = (struct item*) malloc(sizeof(struct item));
                backend_item->v = 1000;
            }
            long frontend_read() {
                return frontend_item->v;
            }
            int main() {
                frontend_init();
                backend_init();
                long r = frontend_read();
                return (int) r;
            }
        "#,
        pause_at: "frontend_read",
        corrupt: |vm| {
            let src = vm.global_addr("backend_item")?;
            let dst = vm.global_addr("frontend_item")?;
            let bytes = vm.attacker_read(src, 8).ok()?;
            vm.attacker_write(dst, &bytes).ok()
        },
    }
}

/// Spatial violation: overflow attacker bytes over an adjacent heap
/// pointer.
pub fn probe_spatial() -> Probe {
    Probe {
        id: "spatial-overflow",
        description: "buffer overflow writes raw bytes over an adjacent pointer",
        source: r#"
            struct box { long pad; long* payload; };
            struct box* g_box;
            long* g_secret;
            long unbox() {
                return *(g_box->payload);
            }
            int main() {
                g_secret = (long*) malloc(8);
                *g_secret = 77;
                g_box = (struct box*) malloc(sizeof(struct box));
                g_box->payload = g_secret;
                long r = unbox();
                return (int) r;
            }
        "#,
        pause_at: "unbox",
        corrupt: |vm| {
            // The overflow plants a raw (unsigned) pointer to the secret.
            let (obj, _) = *vm.heap_live().get(1)?;
            let (secret, _) = *vm.heap_live().first()?;
            vm.attacker_write_u64(obj + 8, secret).ok()
        },
    }
}

/// Temporal violation: a dangling pointer (to freed memory) is replayed
/// into a slot of a *different* RSTI-type.
pub fn probe_temporal() -> Probe {
    Probe {
        id: "temporal-dangling-replay",
        description: "replay a dangling freed pointer into a different-scope slot",
        source: r#"
            struct sess { long id; };
            struct sess* stale;
            struct sess* active;
            void session_setup() {
                stale = (struct sess*) malloc(sizeof(struct sess));
                stale->id = 13;
                free(stale);
                active = (struct sess*) malloc(sizeof(struct sess));
                active->id = 1;
            }
            long serve() {
                return active->id;
            }
            int main() {
                session_setup();
                long r = serve();
                return (int) r;
            }
        "#,
        pause_at: "serve",
        corrupt: |vm| {
            let src = vm.global_addr("stale")?;
            let dst = vm.global_addr("active")?;
            let bytes = vm.attacker_read(src, 8).ok()?;
            vm.attacker_write(dst, &bytes).ok()
        },
    }
}

/// All probes, in Table 2 row order (plus the self-inflicted-overflow
/// row, which extends the paper's spatial-safety discussion with the
/// program's own buggy copy loop).
pub fn all_probes() -> Vec<Probe> {
    vec![
        probe_same_class(),
        probe_diff_class(),
        probe_spatial(),
        probe_temporal(),
        probe_self_inflicted_overflow(),
    ]
}

/// Runs the capability matrix: probes × defenses.
pub fn capability_matrix() -> Vec<(String, Vec<ProbeOutcome>)> {
    use crate::harness::DEFENSES;
    all_probes()
        .iter()
        .map(|p| {
            (
                p.id.to_string(),
                DEFENSES.iter().map(|&d| run_probe(p, d)).collect(),
            )
        })
        .collect()
}

/// Renders the Table 2 report.
pub fn render_table2() -> String {
    let matrix = capability_matrix();
    let mut out = String::new();
    out.push_str(
        "Table 2 reproduction: attacker restrictions per mechanism (measured)\n\n",
    );
    out.push_str(&format!(
        "{:<26} {:>12} {:>11} {:>11} {:>11} {:>11}\n",
        "probe", "no defense", "PARTS", "STC", "STWC", "STL"
    ));
    for (id, row) in &matrix {
        out.push_str(&format!(
            "{:<26} {:>12} {:>11} {:>11} {:>11} {:>11}\n",
            id,
            row[0].label(),
            row[1].label(),
            row[2].label(),
            row[3].label(),
            row[4].label(),
        ));
    }
    out.push_str(
        "\nReading: STL's location binding removes even same-RSTI-type\n\
         substitution; STC/STWC retain the equivalence-class residual risk\n\
         (paper §7 'Possibility of replay attacks'); type-only PARTS misses\n\
         same-basic-type substitutions entirely.\n",
    );
    out
}

/// The Figure 1 bug shape executed *by the victim itself*: an unsanitized
/// length drives the program's own copy loop across the end of
/// `uncomprbuf` into the adjacent TIFF object. No attacker-API write into
/// the object — the corrupting stores are ordinary `char` stores made by
/// instrumented program code, which carry no PAC; the next load of the
/// clobbered `tif_encoderow` authenticates and traps.
pub fn probe_self_inflicted_overflow() -> Probe {
    Probe {
        id: "self-inflicted-overflow",
        description: "the program's own unsanitized copy loop smashes an adjacent object",
        source: r#"
            struct tiff {
                long tif_scanlinesize;
                void (*tif_encoderow)(struct tiff* t);
            };
            struct tiff* g_out;
            char* g_input;
            char* g_uncomprbuf;
            long g_input_len;
            void default_encoderow(struct tiff* t) {
                t->tif_scanlinesize = t->tif_scanlinesize + 1;
            }
            void decode_strip() {
                // CVE-2015-8668: uncompr_size is not validated against the
                // input length, so the copy runs past the 16-byte buffer
                // into the adjacent TIFF object.
                for (int i = 0; i < g_input_len; i++) {
                    g_uncomprbuf[i] = g_input[i];
                }
                g_out->tif_encoderow(g_out);
            }
            int main() {
                g_input = (char*) malloc(64);
                g_input_len = 8;
                g_uncomprbuf = (char*) malloc(16);
                g_out = (struct tiff*) malloc(sizeof(struct tiff));
                g_out->tif_scanlinesize = 0;
                g_out->tif_encoderow = default_encoderow;
                decode_strip();
                return 0;
            }
        "#,
        pause_at: "decode_strip",
        corrupt: |vm| {
            // The attacker only controls the *input*: oversized length and
            // payload bytes. Heap layout (bump allocator): input(64) |
            // uncomprbuf(16) | tiff(16). Copying 32 bytes into the 16-byte
            // uncomprbuf overlays the whole TIFF object; bytes 24..32 land
            // on tif_encoderow.
            let input = vm.heap_live().first()?.0;
            let len_slot = vm.global_addr("g_input_len")?;
            let gadget = vm.func_addr("default_encoderow")?; // any raw addr
            let mut payload = [0u8; 32];
            for c in payload.chunks_exact_mut(8) {
                c.copy_from_slice(&gadget.to_le_bytes());
            }
            vm.attacker_write(input, &payload).ok()?;
            vm.attacker_write_u64(len_slot, 32).ok()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_class_substitution_beats_stc_stwc_but_not_stl() {
        let p = probe_same_class();
        assert_eq!(run_probe(&p, None), ProbeOutcome::Undetected);
        assert_eq!(run_probe(&p, Some(Mechanism::Parts)), ProbeOutcome::Undetected);
        assert_eq!(run_probe(&p, Some(Mechanism::Stc)), ProbeOutcome::Undetected);
        assert_eq!(run_probe(&p, Some(Mechanism::Stwc)), ProbeOutcome::Undetected);
        assert_eq!(run_probe(&p, Some(Mechanism::Stl)), ProbeOutcome::Detected);
    }

    #[test]
    fn diff_class_substitution_caught_by_rsti_missed_by_parts() {
        let p = probe_diff_class();
        assert_eq!(run_probe(&p, None), ProbeOutcome::Undetected);
        assert_eq!(run_probe(&p, Some(Mechanism::Parts)), ProbeOutcome::Undetected);
        assert_eq!(run_probe(&p, Some(Mechanism::Stc)), ProbeOutcome::Detected);
        assert_eq!(run_probe(&p, Some(Mechanism::Stwc)), ProbeOutcome::Detected);
        assert_eq!(run_probe(&p, Some(Mechanism::Stl)), ProbeOutcome::Detected);
    }

    #[test]
    fn spatial_overflow_detected_by_all_pac_schemes() {
        let p = probe_spatial();
        assert_eq!(run_probe(&p, None), ProbeOutcome::Undetected);
        for mech in Mechanism::ALL {
            assert_eq!(
                run_probe(&p, Some(mech)),
                ProbeOutcome::Detected,
                "{mech} must detect raw overflow"
            );
        }
    }

    #[test]
    fn self_inflicted_overflow_is_caught_by_rsti_not_baseline() {
        // The overflow writes land through the program's own (instrumented)
        // char stores — raw bytes over a signed pointer field. The baseline
        // run executes the planted address; every RSTI mechanism traps at
        // the next authenticated load.
        let p = probe_self_inflicted_overflow();
        let unprotected = run_probe(&p, None);
        assert_ne!(
            unprotected,
            ProbeOutcome::Detected,
            "no defense, nothing to detect"
        );
        for mech in [Mechanism::Stc, Mechanism::Stwc, Mechanism::Stl] {
            assert_eq!(
                run_probe(&p, Some(mech)),
                ProbeOutcome::Detected,
                "{mech} must catch the self-inflicted overflow"
            );
        }
    }

    #[test]
    fn temporal_replay_detected_when_classes_differ() {
        let p = probe_temporal();
        assert_eq!(run_probe(&p, None), ProbeOutcome::Undetected);
        for mech in [Mechanism::Stc, Mechanism::Stwc, Mechanism::Stl] {
            assert_eq!(
                run_probe(&p, Some(mech)),
                ProbeOutcome::Detected,
                "{mech} must detect the dangling replay"
            );
        }
    }
}
