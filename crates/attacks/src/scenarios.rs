//! The Table 1 attack corpus.
//!
//! Every row of the paper's Table 1 is re-created as a MiniC victim whose
//! pointer **scope-type relationships mirror the table**: the corrupted
//! pointer has the row's original type/scope/permission, and the attacker
//! substitutes a value with the row's corrupted type/scope. The detection
//! verdicts are then *derived* by actually running the attack in the VM —
//! nothing is scripted.
//!
//! Two corruption shapes appear, matching how the real exploits work:
//!
//! * **raw writes** (code addresses sprayed by a buffer overflow) — these
//!   carry no PAC and any PA-based scheme detects them;
//! * **replay/substitution** (copying a *legitimately signed* pointer into
//!   a different slot) — these defeat schemes whose modifier collides for
//!   the two slots. This is where RSTI's refined scope-type beats the
//!   PARTS baseline (§6.1.2): `dop-proftpd` and `pittypat-coop` substitute
//!   same-basic-type pointers, which PARTS cannot distinguish.

use crate::harness::{AttackKind, Category, Corruption, Scenario};
use rsti_vm::{ExecResult, Vm};

// ---- shared resolvers ------------------------------------------------------

fn heap0_fnptr_slot(vm: &Vm) -> Option<u64> {
    // First heap object, function pointer at offset 8 (all victim structs
    // put a `long` first).
    vm.heap_live().first().map(|&(a, _)| a + 8)
}

fn heap1_fnptr_slot(vm: &Vm) -> Option<u64> {
    vm.heap_live().get(1).map(|&(a, _)| a + 8)
}

fn events_contain(r: &ExecResult, name: &str) -> bool {
    r.events.iter().any(|e| e.name == name)
}

fn output_contains(r: &ExecResult, s: &str) -> bool {
    r.output.iter().any(|o| o == s)
}

/// All Table 1 scenarios, in the paper's row order.
pub fn all() -> Vec<Scenario> {
    vec![
        newton_cscfi(),
        aocr_nginx_1(),
        aocr_nginx_2(),
        aocr_apache(),
        control_jujutsu(),
        cve_2015_8668(),
        cve_2014_1912(),
        coop_rec_g(),
        coop_ml_g(),
        pittypat_coop(),
        dop_proftpd(),
        newton_cpi(),
    ]
}

// ---- control-flow hijacking -------------------------------------------------

/// NEWTON CsCFI attack (van der Veen et al.): overwrite NGINX's
/// `c->send_chain` with the address of libc `malloc`.
fn newton_cscfi() -> Scenario {
    Scenario {
        id: "newton-cscfi",
        name: "NEWTON CsCFI attack",
        category: Category::ControlFlow,
        kind: AttackKind::Real,
        corrupted_ptr: "c->send_chain (target: malloc)",
        original_info: "type ngx_send_chain_pt, scope ngx_http_write_filter",
        corrupted_info: "type void* (size_t size), scope libc",
        source: r#"
            extern void* libc_malloc(long size);
            struct connection {
                long fd;
                long (*send_chain)(struct connection* c);
            };
            struct connection* g_conn;
            long ngx_output_chain(struct connection* c) {
                c->fd = c->fd + 1;
                return c->fd;
            }
            void ngx_http_write_filter() {
                g_conn->send_chain(g_conn);
            }
            int main() {
                g_conn = (struct connection*) malloc(sizeof(struct connection));
                g_conn->fd = 3;
                g_conn->send_chain = ngx_output_chain;
                ngx_http_write_filter();
                return 0;
            }
        "#,
        pause_at: "ngx_http_write_filter",
        corruption: Corruption::RawWrite {
            dest: heap0_fnptr_slot,
            value: |vm| vm.func_addr("libc_malloc"),
        },
        payload_check: |r| events_contain(r, "libc_malloc"),
    }
}

/// AOCR NGINX attack 1 (Rudd et al.): `task->handler` redirected to libc
/// `_IO_new_file_overflow`.
fn aocr_nginx_1() -> Scenario {
    Scenario {
        id: "aocr-nginx-1",
        name: "AOCR NGINX Attack 1",
        category: Category::ControlFlow,
        kind: AttackKind::Real,
        corrupted_ptr: "task->handler (target: _IO_new_file_overflow)",
        original_info: "type void (*)(void*, ngx_log_t*), scope ngx_thread_pool_cycle",
        corrupted_info: "type int*(File*, int), scope libc",
        source: r#"
            extern int _IO_new_file_overflow(void* f, int ch);
            struct task {
                long id;
                void (*handler)(void* data);
                void* data;
            };
            struct task* g_task;
            void worker_handler(void* data) { }
            void ngx_thread_pool_cycle() {
                g_task->handler(g_task->data);
            }
            int main() {
                g_task = (struct task*) malloc(sizeof(struct task));
                g_task->id = 1;
                g_task->handler = worker_handler;
                g_task->data = null;
                ngx_thread_pool_cycle();
                return 0;
            }
        "#,
        pause_at: "ngx_thread_pool_cycle",
        corruption: Corruption::RawWrite {
            dest: heap0_fnptr_slot,
            value: |vm| vm.func_addr("_IO_new_file_overflow"),
        },
        payload_check: |r| events_contain(r, "_IO_new_file_overflow"),
    }
}

/// AOCR NGINX attack 2: `log->handler` replaced with a *legitimately
/// signed* pointer to `ngx_master_process_cycle` replayed from another
/// slot — a substitution, not a raw write.
fn aocr_nginx_2() -> Scenario {
    Scenario {
        id: "aocr-nginx-2",
        name: "AOCR NGINX Attack 2",
        category: Category::ControlFlow,
        kind: AttackKind::Real,
        corrupted_ptr: "p = log->handler (target: ngx_master_process_cycle)",
        original_info: "type ngx_log_writer_pt, scope ngx_log_set_levels",
        corrupted_info: "type void*(ngx_cycle_t*), scope main",
        source: r#"
            extern void exec(char* cmd);
            struct cycle_s { long n; };
            struct log_s {
                long level;
                void (*handler)(struct log_s* log, char* msg);
            };
            struct log_s* g_log;
            void (*g_proc)(struct cycle_s* c);
            void ngx_master_process_cycle(struct cycle_s* c) {
                exec("/bin/sh");
            }
            void default_log_writer(struct log_s* log, char* msg) {
                log->level = log->level + 1;
            }
            void ngx_log_set_levels(struct log_s* log) {
                log->handler = default_log_writer;
            }
            void ngx_log_write() {
                g_log->handler(g_log, "error");
            }
            int main() {
                g_log = (struct log_s*) malloc(sizeof(struct log_s));
                ngx_log_set_levels(g_log);
                g_proc = ngx_master_process_cycle;
                ngx_log_write();
                return 0;
            }
        "#,
        pause_at: "ngx_log_write",
        corruption: Corruption::Replay {
            src: |vm| vm.global_addr("g_proc"),
            dest: heap0_fnptr_slot,
        },
        payload_check: |r| events_contain(r, "exec"),
    }
}

/// AOCR Apache attack: `eval->errfn` substituted with the signed pointer
/// to `ap_get_exec_line` held elsewhere.
fn aocr_apache() -> Scenario {
    Scenario {
        id: "aocr-apache",
        name: "AOCR Apache Attack",
        category: Category::ControlFlow,
        kind: AttackKind::Real,
        corrupted_ptr: "eval->errfn (target: ap_get_exec_line)",
        original_info: "type sed_err_fn_t, scope sed_reset_eval/eval_errf",
        corrupted_info: "type char*(apr_pool_t*, const char*, ...), scope set_bind_password",
        source: r#"
            extern void exec(char* cmd);
            struct eval_s {
                long state;
                void (*errfn)(struct eval_s* e, char* msg);
            };
            struct eval_s* g_eval;
            char* (*g_exec_line)(void* pool, char* cmd);
            char* ap_get_exec_line(void* pool, char* cmd) {
                exec(cmd);
                return cmd;
            }
            void set_bind_password() {
                g_exec_line = ap_get_exec_line;
            }
            void sed_errfn(struct eval_s* e, char* msg) {
                e->state = e->state + 1;
            }
            void sed_reset_eval(struct eval_s* e) {
                e->errfn = sed_errfn;
            }
            void eval_errf() {
                g_eval->errfn(g_eval, "sed: bad expression");
            }
            int main() {
                g_eval = (struct eval_s*) malloc(sizeof(struct eval_s));
                sed_reset_eval(g_eval);
                set_bind_password();
                eval_errf();
                return 0;
            }
        "#,
        pause_at: "eval_errf",
        corruption: Corruption::Replay {
            src: |vm| vm.global_addr("g_exec_line"),
            dest: heap0_fnptr_slot,
        },
        payload_check: |r| events_contain(r, "exec"),
    }
}

/// Control Jujutsu (Evans et al.): `ctx->output_filter` substituted with
/// the signed `ngx_execute_proc` pointer.
fn control_jujutsu() -> Scenario {
    Scenario {
        id: "control-jujutsu",
        name: "Control Jujutsu NGINX",
        category: Category::ControlFlow,
        kind: AttackKind::Real,
        corrupted_ptr: "ctx->output_filter (target: ngx_execute_proc)",
        original_info: "type ngx_output_chain_filter_pt, scope ngx_output_chain",
        corrupted_info: "type static void*(ngx_cycle_t*, void*), scope ngx_execute",
        source: r#"
            extern void exec(char* cmd);
            struct chain_ctx {
                long n;
                long (*output_filter)(struct chain_ctx* c, void* data);
            };
            long (*g_spawn)(void* cycle, void* data);
            long ngx_execute_proc(void* cycle, void* data) {
                exec("/bin/sh");
                return 0;
            }
            void ngx_execute() {
                g_spawn = ngx_execute_proc;
            }
            long default_filter(struct chain_ctx* c, void* data) {
                c->n = c->n + 1;
                return c->n;
            }
            long ngx_output_chain(struct chain_ctx* ctx) {
                return ctx->output_filter(ctx, null);
            }
            int main() {
                struct chain_ctx* ctx = (struct chain_ctx*) malloc(sizeof(struct chain_ctx));
                ctx->n = 0;
                ctx->output_filter = default_filter;
                ngx_execute();
                ngx_output_chain(ctx);
                return 0;
            }
        "#,
        pause_at: "ngx_output_chain",
        corruption: Corruption::Replay {
            src: |vm| vm.global_addr("g_spawn"),
            dest: heap0_fnptr_slot,
        },
        payload_check: |r| events_contain(r, "exec"),
    }
}

/// CVE-2015-8668 (libtiff, the paper's Figure 1): heap overflow from
/// `uncomprbuf` into the adjacent TIFF object, overwriting
/// `tif_encoderow` with an arbitrary address (here: libc `system`).
fn cve_2015_8668() -> Scenario {
    Scenario {
        id: "cve-2015-8668",
        name: "CVE-2015-8668 (libtiff)",
        category: Category::ControlFlow,
        kind: AttackKind::Real,
        corrupted_ptr: "tif->tif_encoderow (target: arbitrary pointer)",
        original_info: "type TIFFCodeMethod, scope _TIFFSetDefaultCompression/TIFFWriteScanline/TIFFOpen/main",
        corrupted_info: "unknown (CVE): attacker-chosen address",
        source: r#"
            extern void system(char* cmd);
            struct tiff {
                long tif_scanlinesize;
                void (*tif_encoderow)(struct tiff* t);
            };
            struct tiff* g_out;
            void default_encoderow(struct tiff* t) {
                t->tif_scanlinesize = t->tif_scanlinesize + 1;
            }
            void _TIFFSetDefaultCompressionState(struct tiff* t) {
                t->tif_encoderow = default_encoderow;
            }
            struct tiff* TIFFOpen() {
                struct tiff* t = (struct tiff*) malloc(sizeof(struct tiff));
                t->tif_scanlinesize = 0;
                _TIFFSetDefaultCompressionState(t);
                return t;
            }
            void TIFFWriteScanline(struct tiff* t) {
                t->tif_encoderow(t);
            }
            int main() {
                // Unsanitized size: uncomprbuf can be too small (Figure 1).
                char* uncomprbuf = (char*) malloc(64);
                g_out = TIFFOpen();
                uncomprbuf[0] = 'P';
                TIFFWriteScanline(g_out);
                return 0;
            }
        "#,
        pause_at: "TIFFWriteScanline",
        // The overflow from allocation 0 (uncomprbuf) lands in allocation 1
        // (the TIFF object) — the VM's bump allocator keeps them adjacent,
        // exactly the heap-grooming the real exploit relies on.
        corruption: Corruption::RawWrite {
            dest: heap1_fnptr_slot,
            value: |vm| vm.func_addr("system"),
        },
        payload_check: |r| events_contain(r, "system"),
    }
}

/// CVE-2014-1912 (CPython): corrupting `tp->tp_hash` to an arbitrary
/// target, triggered through `PyObject_Hash`.
fn cve_2014_1912() -> Scenario {
    Scenario {
        id: "cve-2014-1912",
        name: "CVE-2014-1912 (CPython)",
        category: Category::ControlFlow,
        kind: AttackKind::Real,
        corrupted_ptr: "tp->tp_hash (target: arbitrary pointer)",
        original_info: "type hashfunc, scope inherit_slots/PyObject_Hash",
        corrupted_info: "unknown (CVE): attacker-chosen address",
        source: r#"
            extern void system(char* cmd);
            struct typeobject {
                long refcnt;
                long (*tp_hash)(void* obj);
            };
            struct typeobject* g_type;
            long default_hash(void* obj) { return 42; }
            void inherit_slots(struct typeobject* tp) {
                tp->tp_hash = default_hash;
            }
            long PyObject_Hash(void* obj) {
                return g_type->tp_hash(obj);
            }
            int main() {
                g_type = (struct typeobject*) malloc(sizeof(struct typeobject));
                g_type->refcnt = 1;
                inherit_slots(g_type);
                long h = PyObject_Hash(null);
                return (int) h;
            }
        "#,
        pause_at: "PyObject_Hash",
        corruption: Corruption::RawWrite {
            dest: heap0_fnptr_slot,
            value: |vm| vm.func_addr("system"),
        },
        payload_check: |r| events_contain(r, "system"),
    }
}

/// COOP REC-G (Crane et al., synthetic): substitute `objB->unref` (class
/// X) with the signed virtual-destructor pointer of class Z. Same function
/// signature, different composite scope — a counterfeit-object call.
fn coop_rec_g() -> Scenario {
    Scenario {
        id: "coop-rec-g",
        name: "COOP REC-G",
        category: Category::ControlFlow,
        kind: AttackKind::Synthetic,
        corrupted_ptr: "objB->unref (target: virtual ~Z())",
        original_info: "type class X, scope class X",
        corrupted_info: "type class Z, scope class Z",
        source: r#"
            struct X {
                long refs;
                void (*unref)(void* self);
            };
            struct Z {
                long refs;
                void (*dtor)(void* self);
            };
            struct X* objB;
            struct Z* objZ;
            void x_unref(void* self) { }
            void z_dtor(void* self) { print_str("~Z() gadget"); }
            void release_all() {
                objB->unref(objB);
            }
            int main() {
                objB = (struct X*) malloc(sizeof(struct X));
                objZ = (struct Z*) malloc(sizeof(struct Z));
                objB->unref = x_unref;
                objZ->dtor = z_dtor;
                release_all();
                return 0;
            }
        "#,
        pause_at: "release_all",
        corruption: Corruption::Replay {
            src: heap1_fnptr_slot,  // objZ->dtor, legitimately signed
            dest: heap0_fnptr_slot, // objB->unref
        },
        payload_check: |r| output_contains(r, "~Z() gadget"),
    }
}

/// COOP ML-G (Schuster et al., synthetic): the main-loop gadget invokes
/// `students[i]->decCourseCount`, substituted with `~Course()`.
fn coop_ml_g() -> Scenario {
    Scenario {
        id: "coop-ml-g",
        name: "COOP ML-G",
        category: Category::ControlFlow,
        kind: AttackKind::Synthetic,
        corrupted_ptr: "students[i]->decCourseCount() (target: virtual ~Course())",
        original_info: "type void*(), scope class Student/class Course",
        corrupted_info: "type class Course, scope class Course",
        source: r#"
            struct Student {
                long id;
                void (*decCourseCount)(void* self);
            };
            struct Course {
                long id;
                void (*dtor)(void* self);
            };
            struct Student* g_student;
            struct Course* g_course;
            void student_dec(void* self) { }
            void course_dtor(void* self) { print_str("~Course() gadget"); }
            void main_loop() {
                g_student->decCourseCount(g_student);
            }
            int main() {
                g_student = (struct Student*) malloc(sizeof(struct Student));
                g_course = (struct Course*) malloc(sizeof(struct Course));
                g_student->decCourseCount = student_dec;
                g_course->dtor = course_dtor;
                main_loop();
                return 0;
            }
        "#,
        pause_at: "main_loop",
        corruption: Corruption::Replay {
            src: heap1_fnptr_slot,
            dest: heap0_fnptr_slot,
        },
        payload_check: |r| output_contains(r, "~Course() gadget"),
    }
}

/// The PittyPat COOP attack (Ding et al., synthetic): two same-typed
/// `registration` members in different classes; the attacker makes the
/// Teacher object dispatch the Student handler. PARTS cannot detect this
/// (same basic type); RSTI's composite scope can (§6.1.2).
fn pittypat_coop() -> Scenario {
    Scenario {
        id: "pittypat-coop",
        name: "PittyPat COOP Attack",
        category: Category::ControlFlow,
        kind: AttackKind::Synthetic,
        corrupted_ptr: "member_2->registration (target: member_1->registration)",
        original_info: "type void*(), scope main/class Teacher",
        corrupted_info: "type void*(), scope main/class Student",
        source: r#"
            struct Student {
                long id;
                void (*registration)(void* self);
            };
            struct Teacher {
                long id;
                void (*registration)(void* self);
            };
            struct Student* member_1;
            struct Teacher* member_2;
            void student_registration(void* self) { print_str("student-registration"); }
            void teacher_registration(void* self) { print_str("teacher-registration"); }
            void register_teacher() {
                member_2->registration(member_2);
            }
            int main() {
                member_1 = (struct Student*) malloc(sizeof(struct Student));
                member_2 = (struct Teacher*) malloc(sizeof(struct Teacher));
                member_1->registration = student_registration;
                member_2->registration = teacher_registration;
                register_teacher();
                return 0;
            }
        "#,
        pause_at: "register_teacher",
        corruption: Corruption::Replay {
            src: heap0_fnptr_slot,  // member_1->registration (Student)
            dest: heap1_fnptr_slot, // member_2->registration (Teacher)
        },
        payload_check: |r| output_contains(r, "student-registration"),
    }
}

// ---- data-oriented attacks ---------------------------------------------------

/// The DOP ProFTPd attack (Hu et al.): substitute the `&ServerName` data
/// pointer with `resp_buf` so that the response path leaks the secret
/// buffer (the SSL key in the original exploit). `const char*` vs `char*`,
/// different scopes — detected by RSTI, missed by PARTS (§6.1.2).
fn dop_proftpd() -> Scenario {
    Scenario {
        id: "dop-proftpd",
        name: "DOP ProFTPd Attack",
        category: Category::DataOriented,
        kind: AttackKind::Real,
        corrupted_ptr: "&ServerName (target: resp_buf / ssl_ctx)",
        original_info: "type const char*, scope core_display_file",
        corrupted_info: "type char*, scope pr_response_send_raw",
        source: r#"
            extern void send_response(char* s);
            const char* ServerName = "ftp.example.org";
            char* resp_buf;
            void pr_response_send_raw() {
                resp_buf[0] = 'K';
            }
            void core_display_file() {
                send_response(ServerName);
            }
            int main() {
                resp_buf = (char*) malloc(64);
                pr_response_send_raw();
                core_display_file();
                return 0;
            }
        "#,
        pause_at: "core_display_file",
        corruption: Corruption::Replay {
            src: |vm| vm.global_addr("resp_buf"),
            dest: |vm| vm.global_addr("ServerName"),
        },
        // The payload leaks a heap address (the secret buffer) instead of
        // the string-literal segment the banner legitimately lives in.
        payload_check: |r| {
            r.events.iter().any(|e| {
                e.name == "send_response"
                    && e.args.first().is_some_and(|a| a.starts_with("0x4000"))
            })
        },
    }
}

/// NEWTON CPI attack: `v[index].get_handler` redirected to libc `dlopen`.
fn newton_cpi() -> Scenario {
    Scenario {
        id: "newton-cpi",
        name: "NEWTON CPI attack",
        category: Category::DataOriented,
        kind: AttackKind::Real,
        corrupted_ptr: "v[index].get_handler (target: dlopen)",
        original_info: "type ngx_http_get_variable_pt, scope ngx_http_get_indexed_variable",
        corrupted_info: "type void*(const char*, int), scope ngx_load_module",
        source: r#"
            extern void* dlopen(char* filename, int flags);
            struct variable {
                long flags;
                long (*get_handler)(struct variable* v);
            };
            struct variable* g_vars;
            long default_get(struct variable* v) { return v->flags; }
            long ngx_http_get_indexed_variable(int index) {
                struct variable* v = g_vars + index;
                return v->get_handler(v);
            }
            int main() {
                g_vars = (struct variable*) malloc(4 * sizeof(struct variable));
                for (int i = 0; i < 4; i = i + 1) {
                    struct variable* v = g_vars + i;
                    v->flags = i;
                    v->get_handler = default_get;
                }
                long r = ngx_http_get_indexed_variable(2);
                return (int) r;
            }
        "#,
        pause_at: "ngx_http_get_indexed_variable",
        corruption: Corruption::RawWrite {
            // v[2].get_handler = element 2 * 16 bytes + offset 8
            dest: |vm| vm.heap_live().first().map(|&(a, _)| a + 2 * 16 + 8),
            value: |vm| vm.func_addr("dlopen"),
        },
        payload_check: |r| events_contain(r, "dlopen"),
    }
}

// ---- beyond Table 1: additional exploit classes ------------------------------

/// Extra scenarios beyond the paper's Table 1 rows: the Figure 2 GHTTPD
/// data-oriented check bypass, a GOT-style global function-pointer table
/// overwrite, and a temporal (use-after-free replay) exploit.
pub fn extras() -> Vec<Scenario> {
    vec![ghttpd_fig2(), got_overwrite(), uaf_session_replay()]
}

/// The paper's Figure 2: GHTTPD's `ptr` is corrupted between the `/..`
/// validation and the CGI dispatch — pure data-oriented check bypass.
fn ghttpd_fig2() -> Scenario {
    Scenario {
        id: "ghttpd-fig2",
        name: "GHTTPD check bypass (Figure 2)",
        category: Category::DataOriented,
        kind: AttackKind::Real,
        corrupted_ptr: "ptr (request) -> attacker upload buffer",
        original_info: "type char*, scope serveconnection",
        corrupted_info: "type char*, scope recv_upload",
        source: r#"
            extern void exec_cgi(char* path);
            char* request;
            char* upload_buf;
            void recv_upload() {
                upload_buf = (char*) malloc(64);
                upload_buf[0] = '/';
                upload_buf[1] = '.';
                upload_buf[2] = '.';
                upload_buf[3] = '\0';
            }
            void handle_cgi() { exec_cgi(request); }
            int serveconnection() {
                request = "cgi-bin/status";
                handle_cgi();
                return 200;
            }
            int main() {
                recv_upload();
                return serveconnection() - 200;
            }
        "#,
        pause_at: "handle_cgi",
        corruption: Corruption::Replay {
            src: |vm| vm.global_addr("upload_buf"),
            dest: |vm| vm.global_addr("request"),
        },
        payload_check: |r| {
            r.events.iter().any(|e| {
                e.name == "exec_cgi"
                    && e.args.first().is_some_and(|a| a.starts_with("0x4000"))
            })
        },
    }
}

/// GOT-style attack: a global dispatch table of function pointers; one
/// entry is overwritten with the raw address of libc `system`.
fn got_overwrite() -> Scenario {
    Scenario {
        id: "got-overwrite",
        name: "GOT-style table overwrite",
        category: Category::ControlFlow,
        kind: AttackKind::Synthetic,
        corrupted_ptr: "got[1] (target: system)",
        original_info: "type void(*)(), scope resolve_and_call",
        corrupted_info: "type int (const char*), scope libc",
        source: r#"
            extern void system(char* cmd);
            struct got_entry { long idx; void (*fn)(); };
            struct got_entry* g_got;
            void impl_a() { }
            void impl_b() { }
            void resolve_and_call(int slot) {
                struct got_entry* e = g_got + slot;
                e->fn();
            }
            int main() {
                g_got = (struct got_entry*) malloc(2 * sizeof(struct got_entry));
                struct got_entry* e0 = g_got;
                e0->idx = 0;
                e0->fn = impl_a;
                struct got_entry* e1 = g_got + 1;
                e1->idx = 1;
                e1->fn = impl_b;
                resolve_and_call(1);
                return 0;
            }
        "#,
        pause_at: "resolve_and_call",
        corruption: Corruption::RawWrite {
            dest: |vm| vm.heap_live().first().map(|&(a, _)| a + 16 + 8),
            value: |vm| vm.func_addr("system"),
        },
        payload_check: |r| events_contain(r, "system"),
    }
}

/// Temporal exploit: a freed session object's (still validly signed)
/// pointer is replayed into the active-session slot; the victim then
/// operates on freed memory the attacker controls.
fn uaf_session_replay() -> Scenario {
    Scenario {
        id: "uaf-session-replay",
        name: "Use-after-free session replay",
        category: Category::DataOriented,
        kind: AttackKind::Synthetic,
        corrupted_ptr: "active (target: freed stale session)",
        original_info: "type struct sess*, scope session_setup/serve",
        corrupted_info: "type struct sess*, scope session_setup (freed)",
        source: r#"
            extern void grant_access(long uid);
            struct sess { long uid; };
            struct sess* stale;
            struct sess* active;
            void session_setup() {
                stale = (struct sess*) malloc(sizeof(struct sess));
                stale->uid = 0;
                free(stale);
                active = (struct sess*) malloc(sizeof(struct sess));
                active->uid = 1000;
            }
            void serve() {
                grant_access(active->uid);
            }
            int main() {
                session_setup();
                serve();
                return 0;
            }
        "#,
        pause_at: "serve",
        corruption: Corruption::Replay {
            src: |vm| vm.global_addr("stale"),
            dest: |vm| vm.global_addr("active"),
        },
        // Payload: access granted for the attacker-controlled freed
        // object's uid (0 = root) instead of the active session's 1000.
        payload_check: |r| {
            r.events
                .iter()
                .any(|e| e.name == "grant_access" && e.args.first().is_some_and(|a| a == "0"))
        },
    }
}
