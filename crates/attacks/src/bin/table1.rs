//! Regenerates the paper's Table 1: runs all twelve attacks under every
//! defense and prints the verdict matrix.

fn main() {
    let mut scenarios = rsti_attacks::scenarios::all();
    if std::env::args().any(|a| a == "--extended") {
        scenarios.extend(rsti_attacks::scenarios::extras());
    }
    let matrix = rsti_attacks::run_matrix(&scenarios);
    print!("{}", rsti_attacks::render_table1(&scenarios, &matrix));
}
