//! Regenerates the paper's Table 2: measured attacker-restriction matrix.

fn main() {
    print!("{}", rsti_attacks::render_table2());
}
