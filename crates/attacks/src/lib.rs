//! # rsti-attacks — the security evaluation (paper §6.1, Tables 1 and 2)
//!
//! Re-creates all twelve Table 1 exploits as MiniC victims with the same
//! pointer scope-type relationships as the paper's table, drives them with
//! the VM's attacker API, and derives per-defense verdicts; plus measured
//! Table 2 capability probes.
//!
//! ```
//! use rsti_attacks::{scenarios, harness};
//! use rsti_core::Mechanism;
//!
//! let s = &scenarios::all()[0]; // NEWTON CsCFI
//! // Unprotected, the hijack succeeds...
//! assert_eq!(harness::evaluate(s, None), harness::Verdict::PayloadExecuted);
//! // ...under RSTI-STWC it is detected.
//! assert!(matches!(
//!     harness::evaluate(s, Some(Mechanism::Stwc)),
//!     harness::Verdict::Detected(_)
//! ));
//! ```

#![warn(missing_docs)]

pub mod capability;
pub mod harness;
pub mod scenarios;

pub use capability::{capability_matrix, render_table2, ProbeOutcome};
pub use harness::{
    check_benign, defense_name, evaluate, evaluate_with_record, render_table1, run_matrix,
    AttackKind, Category, Corruption, MatrixRow, Scenario, Verdict, DEFENSES,
};

#[cfg(test)]
mod tests {
    use super::*;
    use rsti_core::Mechanism;

    /// Scenarios whose substitution uses the same basic type on both
    /// sides — the ones the PARTS baseline cannot detect (§6.1.2).
    const PARTS_MISSES: &[&str] = &["coop-rec-g", "coop-ml-g", "pittypat-coop", "dop-proftpd"];

    #[test]
    fn every_victim_runs_cleanly_when_not_attacked() {
        for s in scenarios::all() {
            for d in DEFENSES {
                check_benign(&s, d).unwrap_or_else(|e| {
                    panic!("{} under {}: {e}", s.id, defense_name(d))
                });
            }
        }
    }

    #[test]
    fn unprotected_attacks_all_succeed() {
        for s in scenarios::all() {
            let v = evaluate(&s, None);
            assert_eq!(
                v,
                Verdict::PayloadExecuted,
                "{} must succeed with no defense, got {v:?}",
                s.id
            );
        }
    }

    #[test]
    fn rsti_detects_every_table1_attack() {
        for s in scenarios::all() {
            for mech in [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl] {
                let v = evaluate(&s, Some(mech));
                assert!(
                    matches!(v, Verdict::Detected(_)),
                    "{} under {}: expected detection, got {v:?}",
                    s.id,
                    mech
                );
            }
        }
    }

    #[test]
    fn parts_misses_same_basic_type_substitutions() {
        for s in scenarios::all() {
            let v = evaluate(&s, Some(Mechanism::Parts));
            if PARTS_MISSES.contains(&s.id) {
                assert_eq!(
                    v,
                    Verdict::PayloadExecuted,
                    "{}: PARTS should miss this same-type substitution, got {v:?}",
                    s.id
                );
            } else {
                assert!(
                    v.stopped(),
                    "{}: PARTS should stop this attack, got {v:?}",
                    s.id
                );
            }
        }
    }

    #[test]
    fn matrix_report_renders() {
        let scenarios = scenarios::all();
        let matrix = run_matrix(&scenarios[..2]);
        let text = render_table1(&scenarios[..2], &matrix);
        assert!(text.contains("newton-cscfi"));
        assert!(text.contains("HIJACKED"));
        assert!(text.contains("detected"));
    }

    #[test]
    fn extra_scenarios_follow_the_same_contract() {
        for s in scenarios::extras() {
            assert_eq!(
                evaluate(&s, None),
                Verdict::PayloadExecuted,
                "{} must succeed unprotected",
                s.id
            );
            for mech in [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl] {
                let v = evaluate(&s, Some(mech));
                assert!(
                    matches!(v, Verdict::Detected(_)),
                    "{} under {}: {v:?}",
                    s.id,
                    mech
                );
            }
            for d in DEFENSES {
                check_benign(&s, d)
                    .unwrap_or_else(|e| panic!("{} benign under {}: {e}", s.id, defense_name(d)));
            }
        }
        // The same-type substitutions in the extras evade PARTS, like
        // their Table 1 cousins.
        for s in scenarios::extras() {
            let v = evaluate(&s, Some(Mechanism::Parts));
            if ["ghttpd-fig2", "uaf-session-replay"].contains(&s.id) {
                assert_eq!(v, Verdict::PayloadExecuted, "{}: {v:?}", s.id);
            } else {
                assert!(v.stopped(), "{}: {v:?}", s.id);
            }
        }
    }

    #[test]
    fn every_detected_attack_yields_a_forensic_incident() {
        // The tentpole acceptance claim: each Table 1 row that traps
        // produces an incident naming the failing check site and the
        // expected-vs-presented modifier, with sign-site lineage for
        // replayed (legitimately signed) values and none for raw
        // overwrites — bit-identical between the two engines.
        use rsti_vm::ExecBackend;
        for s in scenarios::all() {
            for mech in [Mechanism::Stwc, Mechanism::Stc, Mechanism::Stl] {
                let (vi, ii) =
                    evaluate_with_record(&s, Some(mech), ExecBackend::Interp, true);
                let (vc, ic) =
                    evaluate_with_record(&s, Some(mech), ExecBackend::Compiled, true);
                assert_eq!(vi, vc, "{} under {mech}: verdicts diverge", s.id);
                assert_eq!(ii, ic, "{} under {mech}: incidents diverge", s.id);
                assert!(
                    matches!(vi, Verdict::Detected(_)),
                    "{} under {mech}: {vi:?}",
                    s.id
                );
                let inc = ii.unwrap_or_else(|| {
                    panic!("{} under {mech}: detection must synthesize an incident", s.id)
                });
                assert_eq!(inc.mechanism, mech.name(), "{}", s.id);
                assert!(
                    !inc.check_site.is_empty(),
                    "{} under {mech}: failing check site named",
                    s.id
                );
                assert!(
                    inc.window.iter().any(|e| e.kind == "attacker_write"),
                    "{} under {mech}: the corruption itself is on the timeline",
                    s.id
                );
                match s.corruption {
                    Corruption::RawWrite { .. } => {
                        assert!(
                            inc.lineage.is_none(),
                            "{} under {mech}: raw overwrite has no sign lineage",
                            s.id
                        );
                        assert!(
                            inc.verdict().contains("never signed"),
                            "{} under {mech}: {}",
                            s.id,
                            inc.verdict()
                        );
                    }
                    Corruption::Replay { .. } => {
                        let lin = inc.lineage.as_ref().unwrap_or_else(|| {
                            panic!(
                                "{} under {mech}: replayed value must resolve to its sign site",
                                s.id
                            )
                        });
                        assert!(!lin.site.is_empty() || !lin.func.is_empty(), "{}", s.id);
                        assert_ne!(
                            (lin.modifier, lin.key.clone()),
                            (inc.presented_modifier, inc.presented_key.clone()),
                            "{} under {mech}: replay detected ⇒ context differs",
                            s.id
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scenario_metadata_matches_paper_shape() {
        let all = scenarios::all();
        assert_eq!(all.len(), 12, "Table 1 has 12 rows");
        let cf = all.iter().filter(|s| s.category == Category::ControlFlow).count();
        let dd = all.iter().filter(|s| s.category == Category::DataOriented).count();
        assert_eq!(cf, 10);
        assert_eq!(dd, 2);
        let synthetic = all.iter().filter(|s| s.kind == AttackKind::Synthetic).count();
        assert_eq!(synthetic, 3, "COOP REC-G, ML-G, PittyPat are synthetic");
    }
}
