//! The security-evaluation harness.
//!
//! Each Table 1 row becomes a [`Scenario`]: a MiniC victim whose pointer
//! scope-type relationships mirror the paper's table, plus a corruption
//! procedure using the VM's attacker API and a payload predicate. The
//! harness runs every scenario under no defense, PARTS, and the three RSTI
//! mechanisms, and *derives* the verdict from what actually happens — the
//! attack either achieves its goal, is detected by an authentication trap,
//! or crashes.

use rsti_core::Mechanism;
use rsti_frontend::compile;
use rsti_vm::{ExecBackend, ExecResult, Image, Incident, RunStop, Status, Trap, Vm};
use std::fmt;

/// Attack category (Table 1 grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Control-flow hijacking.
    ControlFlow,
    /// Data-oriented attack.
    DataOriented,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::ControlFlow => write!(f, "control-flow hijacking"),
            Category::DataOriented => write!(f, "data-oriented"),
        }
    }
}

/// Whether the exploit targets real-life software code (R) or synthetic
/// victim code (S), per the paper's annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Attack on (modelled) real software.
    Real,
    /// Contrived exploit of the class.
    Synthetic,
}

/// How the attacker corrupts memory once the victim is paused.
pub enum Corruption {
    /// Write a raw 64-bit value (e.g. a code address) into a slot. The
    /// classic overwrite: the value carries no PAC.
    RawWrite {
        /// Resolves the destination slot address.
        dest: fn(&Vm) -> Option<u64>,
        /// Resolves the value to plant.
        value: fn(&Vm) -> Option<u64>,
    },
    /// Replay/substitution: copy the (signed) 8-byte pointer at `src` into
    /// `dest`. Defeats naive PAC schemes when both slots share a modifier.
    Replay {
        /// Resolves the source slot.
        src: fn(&Vm) -> Option<u64>,
        /// Resolves the destination slot.
        dest: fn(&Vm) -> Option<u64>,
    },
}

/// One Table 1 row.
pub struct Scenario {
    /// Short id, e.g. `newton-cscfi`.
    pub id: &'static str,
    /// Paper row name.
    pub name: &'static str,
    /// Category.
    pub category: Category,
    /// (R) or (S).
    pub kind: AttackKind,
    /// The corrupted pointer, paper notation.
    pub corrupted_ptr: &'static str,
    /// Original scope-type information (paper column).
    pub original_info: &'static str,
    /// Corrupted scope-type information (paper column).
    pub corrupted_info: &'static str,
    /// The MiniC victim program.
    pub source: &'static str,
    /// Function at whose entry the corruption happens.
    pub pause_at: &'static str,
    /// The corruption.
    pub corruption: Corruption,
    /// Whether the payload achieved its goal.
    pub payload_check: fn(&ExecResult) -> bool,
}

/// Outcome of one scenario under one defense.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The attack achieved its goal — the defense failed.
    PayloadExecuted,
    /// An RSTI/PAC check fired — the defense detected the attack.
    Detected(Trap),
    /// The program crashed for a non-defense reason (attack failed, but
    /// not detected as such).
    Crashed(Trap),
    /// The program ran to completion without executing the payload.
    Survived,
    /// Harness problem (victim failed to reach the pause point, or the
    /// corruption addresses did not resolve).
    Inconclusive(String),
}

impl Verdict {
    /// Whether the defense stopped the payload (detected or otherwise).
    pub fn stopped(&self) -> bool {
        !matches!(self, Verdict::PayloadExecuted | Verdict::Inconclusive(_))
    }

    /// Short cell label for the Table 1 report.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::PayloadExecuted => "HIJACKED",
            Verdict::Detected(_) => "detected",
            Verdict::Crashed(_) => "crashed",
            Verdict::Survived => "survived",
            Verdict::Inconclusive(_) => "??",
        }
    }
}

/// The defenses evaluated, in report order.
pub const DEFENSES: [Option<Mechanism>; 5] = [
    None,
    Some(Mechanism::Parts),
    Some(Mechanism::Stc),
    Some(Mechanism::Stwc),
    Some(Mechanism::Stl),
];

/// Name of a defense column.
pub fn defense_name(d: Option<Mechanism>) -> &'static str {
    match d {
        None => "no defense",
        Some(m) => m.name(),
    }
}

/// Runs one scenario under one defense and derives the verdict.
pub fn evaluate(s: &Scenario, defense: Option<Mechanism>) -> Verdict {
    evaluate_with_record(s, defense, ExecBackend::Interp, false).0
}

/// [`evaluate`], with the engine selectable and the flight recorder
/// optionally armed: when `record` is on and the defense detects the
/// corruption, the returned [`Incident`] is the forensic narrative of the
/// attack — failing check site, expected-vs-presented modifier, sign-site
/// lineage, event window. Both engines produce bit-identical incidents.
pub fn evaluate_with_record(
    s: &Scenario,
    defense: Option<Mechanism>,
    exec: ExecBackend,
    record: bool,
) -> (Verdict, Option<Box<Incident>>) {
    let m = match compile(s.source, s.id) {
        Ok(m) => m,
        Err(e) => {
            return (Verdict::Inconclusive(format!("victim does not compile: {e}")), None)
        }
    };
    let mut img = match defense {
        None => Image::baseline(&m),
        Some(mech) => Image::from_instrumented(&rsti_core::instrument(&m, mech)),
    };
    img = img.with_exec(exec);
    if record {
        img = img.with_record();
    }
    let mut vm = Vm::new(&img);
    match vm.run_to_function(s.pause_at) {
        RunStop::Entered => {}
        RunStop::Done(st) => {
            return (
                Verdict::Inconclusive(format!("victim never reached {}: {st:?}", s.pause_at)),
                None,
            )
        }
    }
    // Perform the corruption.
    let err = match &s.corruption {
        Corruption::RawWrite { dest, value } => {
            match (dest(&vm), value(&vm)) {
                (Some(d), Some(v)) => vm.attacker_write_u64(d, v).err().map(|e| e.to_string()),
                _ => Some("corruption addresses did not resolve".into()),
            }
        }
        Corruption::Replay { src, dest } => match (src(&vm), dest(&vm)) {
            (Some(sa), Some(da)) => match vm.attacker_read(sa, 8) {
                Ok(bytes) => vm.attacker_write(da, &bytes).err().map(|e| e.to_string()),
                Err(e) => Some(e.to_string()),
            },
            _ => Some("corruption addresses did not resolve".into()),
        },
    };
    if let Some(e) = err {
        return (Verdict::Inconclusive(e), None);
    }
    let r = vm.finish();
    if (s.payload_check)(&r) {
        return (Verdict::PayloadExecuted, r.incident);
    }
    let verdict = match r.status {
        Status::Exited(_) => Verdict::Survived,
        Status::Trapped(t) if t.is_detection() => Verdict::Detected(t),
        Status::Trapped(t) => Verdict::Crashed(t),
    };
    (verdict, r.incident)
}

/// Sanity check: the victim must run cleanly (no traps, no payload) when
/// *not* attacked, under every defense. Returns an error description.
pub fn check_benign(s: &Scenario, defense: Option<Mechanism>) -> Result<(), String> {
    let m = compile(s.source, s.id).map_err(|e| format!("compile: {e}"))?;
    let img = match defense {
        None => Image::baseline(&m),
        Some(mech) => Image::from_instrumented(&rsti_core::instrument(&m, mech)),
    };
    let r = Vm::new(&img).run();
    match &r.status {
        Status::Exited(_) => {
            if (s.payload_check)(&r) {
                Err("payload fires without an attack".into())
            } else {
                Ok(())
            }
        }
        Status::Trapped(t) => Err(format!("benign run trapped: {t}")),
    }
}

/// One row of the full evaluation matrix.
pub struct MatrixRow {
    /// Scenario id.
    pub id: &'static str,
    /// Verdicts in [`DEFENSES`] order.
    pub verdicts: Vec<Verdict>,
}

/// Runs the full matrix over `scenarios`.
pub fn run_matrix(scenarios: &[Scenario]) -> Vec<MatrixRow> {
    scenarios
        .iter()
        .map(|s| MatrixRow {
            id: s.id,
            verdicts: DEFENSES.iter().map(|&d| evaluate(s, d)).collect(),
        })
        .collect()
}

/// Renders the Table 1 report.
pub fn render_table1(scenarios: &[Scenario], matrix: &[MatrixRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "Table 1 reproduction: real and synthesized exploits vs. defenses\n\
         (paper: all rows detected by RSTI; PARTS misses same-basic-type\n\
         substitutions such as DOP ProFTPd and PittyPat)\n\n",
    );
    out.push_str(&format!(
        "{:<22} {:>12} {:>10} {:>10} {:>10} {:>10}\n",
        "attack", "no defense", "PARTS", "STC", "STWC", "STL"
    ));
    for (s, row) in scenarios.iter().zip(matrix) {
        out.push_str(&format!(
            "{:<22} {:>12} {:>10} {:>10} {:>10} {:>10}\n",
            s.id,
            row.verdicts[0].label(),
            row.verdicts[1].label(),
            row.verdicts[2].label(),
            row.verdicts[3].label(),
            row.verdicts[4].label(),
        ));
    }
    out.push('\n');
    for s in scenarios {
        out.push_str(&format!(
            "{:<22} [{}] {} ({:?})\n    corrupted: {}\n    original:  {}\n    attacker:  {}\n",
            s.id, s.name, s.category, s.kind, s.corrupted_ptr, s.original_info, s.corrupted_info
        ));
    }
    out
}
