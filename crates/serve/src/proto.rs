//! The `rsti serve` wire protocol: one JSON object per line in, one JSON
//! object per line out, in request order.
//!
//! The parser is hand-rolled (the workspace is dependency-free by design)
//! and deliberately small: it accepts exactly the JSON subset a request
//! needs — objects, arrays, strings with escapes, numbers, booleans,
//! `null` — and rejects trailing garbage. Responses are built with the
//! same stable-field-order discipline as the telemetry serializers, so a
//! warm cache hit is **byte-identical** to the cold response for the same
//! request, except for the single `"cache":"hit"` / `"cache":"miss"`
//! field (a documented part of the contract that `tools/` smoke scripts
//! strip before diffing).
//!
//! ## Request schema
//!
//! ```json
//! {"id":1,"cmd":"run","source":"int main(){return 0;}",
//!  "mech":"stwc","opt":"cfg","exec":"compiled","enforce":"pac"}
//! ```
//!
//! * `id` — optional request id echoed in the response (`null` if absent).
//! * `cmd` — `run` | `compile` | `profile` | `explain` | `stats` |
//!   `shutdown` (plus the hidden `__panic` isolation-test hook).
//! * `source` — inline MiniC text, or `workload` — a benchmark name from
//!   `rsti-workloads` (`NUMERIC SORT`, `NGINX-access-log`, ...).
//! * `mech` — `stwc` | `stc` | `stl` | `parts` | `none`/`baseline` |
//!   `adaptive` (default `stwc`).
//! * `opt` — `none` | `block` | `cfg` | `ipo` (default `cfg`).
//! * `exec` — `interp` | `compiled` (default `interp`).
//! * `enforce` — `pac` | `mac` (default `pac`).
//! * `record` — boolean; arm the flight recorder (implied by `explain`).

use rsti_core::{Mechanism, OptLevel};
use rsti_telemetry::json_str;
use rsti_vm::{Backend, ExecBackend, ExecResult, Status};

// ---------------------------------------------------------------------------
// Minimal JSON value parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Object fields keep their input order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a field of an object (first match wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parses one complete JSON value; rejects trailing non-whitespace.
///
/// # Errors
/// Returns a byte-offset-bearing message for malformed input.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", *c as char, self.i)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while matches!(self.b.get(self.i), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.b.get(self.i + 1) != Some(&b'\\')
                                    || self.b.get(self.i + 2) != Some(&b'u')
                                {
                                    return Err("lone high surrogate".into());
                                }
                                self.i += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| "bad unicode escape".to_string())?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Fast path: consume the whole unescaped run in one
                    // slice push (the input is a &str, so UTF-8 boundaries
                    // are valid by construction). Large inline sources
                    // make per-char pushes a quadratic trap.
                    let start = self.i;
                    while !matches!(self.b.get(self.i), None | Some(b'"' | b'\\')) {
                        self.i += 1;
                    }
                    let run =
                        std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let s = self
            .b
            .get(self.i + 1..self.i + 5)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(s).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape {s:?}"))?;
        self.i += 4;
        Ok(v)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((k, v));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// The instrumentation-mechanism axis of a request, mirroring the CLI's
/// `--mech` choices (serve cannot depend on `rsti-cli`, which sits above
/// it, so the choice is re-stated here with the same accepted names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechSel {
    /// Uninstrumented baseline.
    Baseline,
    /// One fixed mechanism.
    Fixed(Mechanism),
    /// ECV-threshold-driven per-module choice (paper §6.4).
    Adaptive,
}

impl MechSel {
    /// Stable label — one axis of the content-addressed cache key.
    pub fn label(self) -> &'static str {
        match self {
            MechSel::Baseline => "baseline",
            MechSel::Fixed(Mechanism::Stwc) => "stwc",
            MechSel::Fixed(Mechanism::Stc) => "stc",
            MechSel::Fixed(Mechanism::Stl) => "stl",
            MechSel::Fixed(Mechanism::Parts) => "parts",
            MechSel::Adaptive => "adaptive",
        }
    }

    /// Parses the names accepted by `rsti --mech`.
    ///
    /// # Errors
    /// Returns a message listing the accepted names.
    pub fn parse(s: &str) -> Result<MechSel, String> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "stwc" | "rsti-stwc" => MechSel::Fixed(Mechanism::Stwc),
            "stc" | "rsti-stc" => MechSel::Fixed(Mechanism::Stc),
            "stl" | "rsti-stl" => MechSel::Fixed(Mechanism::Stl),
            "parts" => MechSel::Fixed(Mechanism::Parts),
            "none" | "baseline" => MechSel::Baseline,
            "adaptive" => MechSel::Adaptive,
            other => {
                return Err(format!(
                    "unknown mech {other:?} (expected stwc|stc|stl|parts|none|adaptive)"
                ))
            }
        })
    }
}

/// What a request asks the service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmd {
    /// Instrument + execute, returning the full execution result.
    Run,
    /// Instrument only (warms the cache; returns instrumentation stats).
    Compile,
    /// Execute with the attribution profiler armed.
    Profile,
    /// Execute with the flight recorder armed; returns the incident.
    Explain,
    /// Service counters + per-phase latency histograms.
    Stats,
    /// Graceful shutdown: drain in-flight requests, then stop.
    Shutdown,
    /// Hidden test hook: panic inside the request handler, to exercise
    /// per-request isolation without a real bug.
    DebugPanic,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed request id (`None` renders as JSON `null`).
    pub id: Option<u64>,
    /// The command.
    pub cmd: Cmd,
    /// Inline MiniC source (mutually exclusive with `workload`).
    pub source: Option<String>,
    /// Benchmark name resolved via `rsti-workloads`.
    pub workload: Option<String>,
    /// Mechanism axis.
    pub mech: MechSel,
    /// Optimization level axis.
    pub opt: OptLevel,
    /// Execution engine axis.
    pub exec: ExecBackend,
    /// Enforcement scheme axis.
    pub enforce: Backend,
    /// Arm the flight recorder (`explain` implies this).
    pub record: bool,
}

impl Request {
    /// Parses one JSONL request line.
    ///
    /// # Errors
    /// Returns a message naming the malformed field.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = parse_json(line)?;
        if !matches!(v, Json::Obj(_)) {
            return Err("request must be a JSON object".into());
        }
        let cmd = match v.get("cmd").and_then(Json::as_str) {
            Some("run") => Cmd::Run,
            Some("compile") => Cmd::Compile,
            Some("profile") => Cmd::Profile,
            Some("explain") => Cmd::Explain,
            Some("stats") => Cmd::Stats,
            Some("shutdown") => Cmd::Shutdown,
            Some("__panic") => Cmd::DebugPanic,
            Some(other) => {
                return Err(format!(
                    "unknown cmd {other:?} (expected run|compile|profile|explain|stats|shutdown)"
                ))
            }
            None => return Err("request needs a \"cmd\" string".into()),
        };
        let id = v.get("id").and_then(Json::as_u64);
        let source = v.get("source").and_then(Json::as_str).map(str::to_owned);
        let workload = v.get("workload").and_then(Json::as_str).map(str::to_owned);
        if source.is_some() && workload.is_some() {
            return Err("\"source\" and \"workload\" are mutually exclusive".into());
        }
        let mech = match v.get("mech").and_then(Json::as_str) {
            Some(s) => MechSel::parse(s)?,
            None => MechSel::Fixed(Mechanism::Stwc),
        };
        let opt = match v.get("opt").and_then(Json::as_str) {
            Some(s) => OptLevel::parse(s)?,
            None => OptLevel::Cfg,
        };
        let exec = match v.get("exec").and_then(Json::as_str) {
            Some("interp") => ExecBackend::Interp,
            Some("compiled") => ExecBackend::Compiled,
            Some(other) => return Err(format!("unknown exec {other:?} (expected interp|compiled)")),
            None => ExecBackend::Interp,
        };
        let enforce = match v.get("enforce").and_then(Json::as_str) {
            Some("pac") => Backend::PacInPointer,
            Some("mac") => Backend::MacTable,
            Some(other) => return Err(format!("unknown enforce {other:?} (expected pac|mac)")),
            None => Backend::PacInPointer,
        };
        let record = v.get("record").and_then(Json::as_bool).unwrap_or(false)
            || cmd == Cmd::Explain;
        Ok(Request { id, cmd, source, workload, mech, opt, exec, enforce, record })
    }
}

// ---------------------------------------------------------------------------
// Content-addressed cache key
// ---------------------------------------------------------------------------

/// 128-bit FNV-1a over the five axes that determine the instrumented
/// module: source text, mechanism, opt level, execution engine, and
/// enforcement scheme. Axes are separated by a `0x1f` unit separator so
/// concatenation ambiguities (`"ab" + "c"` vs `"a" + "bc"`) cannot
/// collide. The `record` flag is deliberately **not** part of the key:
/// the recorder is applied to a cheap [`rsti_vm::Image`] clone at run
/// time, and (after the `CompiledCache` poison fix in this PR) that clone
/// still shares the compiled block closures.
pub fn cache_key(
    source: &str,
    mech: MechSel,
    opt: OptLevel,
    exec: ExecBackend,
    enforce: Backend,
) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u128::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(PRIME);
    };
    eat(source.as_bytes());
    eat(mech.label().as_bytes());
    eat(opt.label().as_bytes());
    eat(exec.label().as_bytes());
    eat(match enforce {
        Backend::PacInPointer => b"pac",
        Backend::MacTable => b"mac",
    });
    h
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

fn id_json(id: Option<u64>) -> String {
    id.map_or_else(|| "null".to_string(), |n| n.to_string())
}

/// A structured error response (the request is still answered in order;
/// the worker pool survives).
pub fn error_response(id: Option<u64>, msg: &str) -> String {
    format!("{{\"id\":{},\"ok\":false,\"error\":{}}}", id_json(id), json_str(msg))
}

/// The acknowledgement for a `shutdown` request.
pub fn shutdown_response(id: Option<u64>) -> String {
    format!("{{\"id\":{},\"ok\":true,\"cmd\":\"shutdown\"}}", id_json(id))
}

fn status_json(status: &Status) -> String {
    match status {
        Status::Exited(c) => json_str(&format!("exit {c}")),
        Status::Trapped(t) => json_str(&format!("trap: {t}")),
    }
}

fn instr_json(instr: Option<&rsti_core::InstrumentStats>) -> String {
    match instr {
        None => "null".to_string(),
        Some(s) => format!(
            "{{\"signs_on_store\":{},\"auths_on_load\":{},\"cast_resigns\":{},\
             \"arg_resigns\":{},\"strips\":{},\"pp_signs\":{},\"pp_auths\":{}}}",
            s.signs_on_store,
            s.auths_on_load,
            s.cast_resigns,
            s.arg_resigns,
            s.strips,
            s.pp_signs,
            s.pp_auths,
        ),
    }
}

/// The response for `run` / `compile` / `profile` / `explain`.
///
/// Field order is a public contract (stable across cache hits and misses;
/// only the `cache` field differs between a cold and a warm answer).
pub fn exec_response(
    req: &Request,
    cache: &str,
    key: u128,
    instr: Option<&rsti_core::InstrumentStats>,
    result: Option<&ExecResult>,
) -> String {
    let cmd = match req.cmd {
        Cmd::Run => "run",
        Cmd::Compile => "compile",
        Cmd::Profile => "profile",
        Cmd::Explain => "explain",
        _ => unreachable!("exec_response is only built for pipeline commands"),
    };
    let mut out = format!(
        "{{\"id\":{},\"ok\":true,\"cmd\":\"{}\",\"cache\":\"{}\",\"key\":\"{:032x}\",\"instr\":{}",
        id_json(req.id),
        cmd,
        cache,
        key,
        instr_json(instr),
    );
    if let Some(r) = result {
        out.push_str(&format!(",\"status\":{}", status_json(&r.status)));
        let output: Vec<String> = r.output.iter().map(|l| json_str(l)).collect();
        out.push_str(&format!(",\"output\":[{}]", output.join(",")));
        let events: Vec<String> = r
            .events
            .iter()
            .map(|e| {
                let args: Vec<String> = e.args.iter().map(|a| json_str(a)).collect();
                format!(
                    "{{\"name\":{},\"args\":[{}],\"critical\":{}}}",
                    json_str(&e.name),
                    args.join(","),
                    e.critical
                )
            })
            .collect();
        out.push_str(&format!(",\"events\":[{}]", events.join(",")));
        out.push_str(&format!(
            ",\"cycles\":{},\"insts\":{},\"pac_signs\":{},\"pac_auths\":{}",
            r.cycles, r.insts, r.pac_signs, r.pac_auths
        ));
        let audits: Vec<String> = r.audit.iter().map(|a| a.to_json()).collect();
        out.push_str(&format!(",\"audit\":[{}]", audits.join(",")));
        if req.cmd == Cmd::Profile {
            if let Some(attr) = &r.attr {
                let mut rows: Vec<&rsti_vm::FuncAttr> =
                    attr.funcs.iter().filter(|f| f.calls > 0).collect();
                rows.sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| a.name.cmp(&b.name)));
                let rows: Vec<String> = rows
                    .iter()
                    .take(5)
                    .map(|f| {
                        format!(
                            "{{\"func\":{},\"calls\":{},\"cycles\":{},\"insts\":{}}}",
                            json_str(&f.name),
                            f.calls,
                            f.cycles,
                            f.insts
                        )
                    })
                    .collect();
                out.push_str(&format!(",\"attr\":[{}]", rows.join(",")));
            }
        }
        if req.record {
            match &r.incident {
                Some(i) => out.push_str(&format!(",\"incident\":{}", i.to_json())),
                None => out.push_str(",\"incident\":null"),
            }
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_run_request_with_defaults() {
        let r = Request::parse(r#"{"cmd":"run","source":"int main() { return 0; }"}"#).unwrap();
        assert_eq!(r.cmd, Cmd::Run);
        assert_eq!(r.id, None);
        assert_eq!(r.mech, MechSel::Fixed(Mechanism::Stwc));
        assert_eq!(r.opt, OptLevel::Cfg);
        assert_eq!(r.exec, ExecBackend::Interp);
        assert_eq!(r.enforce, Backend::PacInPointer);
        assert!(!r.record);
    }

    #[test]
    fn parses_every_axis_and_the_id() {
        let r = Request::parse(
            r#"{"id":7,"cmd":"profile","workload":"NUMERIC SORT","mech":"stl",
               "opt":"block","exec":"compiled","enforce":"mac","record":true}"#,
        )
        .unwrap();
        assert_eq!(r.id, Some(7));
        assert_eq!(r.cmd, Cmd::Profile);
        assert_eq!(r.workload.as_deref(), Some("NUMERIC SORT"));
        assert_eq!(r.mech, MechSel::Fixed(Mechanism::Stl));
        assert_eq!(r.opt, OptLevel::BlockLocal);
        assert_eq!(r.exec, ExecBackend::Compiled);
        assert_eq!(r.enforce, Backend::MacTable);
        assert!(r.record);
    }

    #[test]
    fn parses_the_ipo_opt_level() {
        let r = Request::parse(
            r#"{"cmd":"run","source":"int main() { return 0; }","opt":"ipo"}"#,
        )
        .unwrap();
        assert_eq!(r.opt, OptLevel::Ipo);
    }

    #[test]
    fn explain_implies_record() {
        let r = Request::parse(r#"{"cmd":"explain","source":"int main() { return 0; }"}"#).unwrap();
        assert!(r.record);
    }

    #[test]
    fn rejects_malformed_requests_with_a_reason() {
        for (line, needle) in [
            ("not json", "bad literal"),
            ("@!?", "unexpected"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"source":"x"}"#, "needs a \"cmd\""),
            (r#"{"cmd":"frobnicate"}"#, "unknown cmd"),
            (r#"{"cmd":"run","mech":"quantum"}"#, "unknown mech"),
            (r#"{"cmd":"run","exec":"jit"}"#, "unknown exec"),
            (r#"{"cmd":"run","enforce":"mte"}"#, "unknown enforce"),
            (r#"{"cmd":"run","source":"x","workload":"y"}"#, "mutually exclusive"),
            (r#"{"cmd":"run"} trailing"#, "trailing garbage"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line:?} -> {err:?}");
        }
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"s":"a\"b\\c\ndA😀","a":[1,-2.5,true,null,{}]}"#)
            .unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\nd\u{41}\u{1F600}"));
        match v.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 5);
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[1], Json::Num(-2.5));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn cache_key_changes_with_every_axis() {
        // Property: flipping any single axis — source text, mechanism,
        // opt level, execution engine, enforcement — yields a new key.
        let base = (
            "int main() { return 0; }",
            MechSel::Fixed(Mechanism::Stwc),
            OptLevel::Cfg,
            ExecBackend::Interp,
            Backend::PacInPointer,
        );
        let k0 = cache_key(base.0, base.1, base.2, base.3, base.4);
        let mut keys = vec![k0];
        keys.push(cache_key("int main() { return 1; }", base.1, base.2, base.3, base.4));
        for m in [
            MechSel::Baseline,
            MechSel::Fixed(Mechanism::Stc),
            MechSel::Fixed(Mechanism::Stl),
            MechSel::Fixed(Mechanism::Parts),
            MechSel::Adaptive,
        ] {
            keys.push(cache_key(base.0, m, base.2, base.3, base.4));
        }
        for o in [OptLevel::None, OptLevel::BlockLocal, OptLevel::Ipo] {
            keys.push(cache_key(base.0, base.1, o, base.3, base.4));
        }
        keys.push(cache_key(base.0, base.1, base.2, ExecBackend::Compiled, base.4));
        keys.push(cache_key(base.0, base.1, base.2, base.3, Backend::MacTable));
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "cache-key collision across axes: {keys:#x?}");
    }

    #[test]
    fn cache_key_separates_axis_boundaries() {
        // The 0x1f separator keeps (source="a", mech label "stwc"...) from
        // colliding with a source that absorbs part of the next axis.
        let a = cache_key("a", MechSel::Fixed(Mechanism::Stwc), OptLevel::None,
            ExecBackend::Interp, Backend::PacInPointer);
        let b = cache_key("astwc", MechSel::Fixed(Mechanism::Stwc), OptLevel::None,
            ExecBackend::Interp, Backend::PacInPointer);
        assert_ne!(a, b);
    }

    #[test]
    fn record_flag_does_not_change_the_key() {
        // `record` is applied to an Image clone at run time — same module.
        let r1 = Request::parse(r#"{"cmd":"run","source":"int main() { return 0; }"}"#).unwrap();
        let r2 = Request::parse(
            r#"{"cmd":"run","source":"int main() { return 0; }","record":true}"#,
        )
        .unwrap();
        let k = |r: &Request| {
            cache_key(r.source.as_deref().unwrap(), r.mech, r.opt, r.exec, r.enforce)
        };
        assert_eq!(k(&r1), k(&r2));
    }
}
