//! Size-bounded LRU of instrumented modules, shared by every worker.
//!
//! Entries are `Arc`ed [`Image`]s keyed by the 128-bit content hash from
//! [`crate::proto::cache_key`]. The image inside an entry carries its
//! `CompiledCache`, so a hit reuses the compiled block closures as well —
//! a warm request touches no frontend, lowering, instrumentation,
//! optimization, or translation code at all.
//!
//! Eviction never invalidates in-flight work: the cache only drops its
//! *own* `Arc` strong count, so a worker holding an entry across an
//! eviction keeps a fully live image until it finishes (property-tested
//! in `crate::tests`).
//!
//! Poison-recovery policy (DESIGN §11): the map mutex is only held for
//! pure map manipulation — no user code runs under it — so a panic while
//! holding it cannot leave a half-applied state worse than a missing or
//! stale entry. Every lock therefore recovers the guard from a poisoned
//! mutex instead of unwrapping, the same policy as `CompiledCache` and
//! the telemetry sink.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use rsti_core::InstrumentStats;
use rsti_vm::Image;

/// One cached module: the shared image plus the instrumentation stats
/// reported back on both cold and warm `compile` responses.
#[derive(Debug)]
pub struct CacheEntry {
    /// The content-hash key this entry lives under.
    pub key: u128,
    /// The instrumented (and, for compiled-exec requests, pre-translated)
    /// image. Cloning the `Arc` is the whole point: hits share it.
    pub img: Arc<Image>,
    /// Instrumentation-site counters (`None` for the baseline).
    pub instr: Option<InstrumentStats>,
}

struct Slot {
    entry: Arc<CacheEntry>,
    last_used: u64,
}

/// The shared module cache. All methods take `&self`; the internal map is
/// mutex-guarded and safe to call from any worker.
pub struct ModuleCache {
    cap: usize,
    tick: AtomicU64,
    map: Mutex<HashMap<u128, Slot>>,
}

impl ModuleCache {
    /// A cache holding at most `cap` entries (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        ModuleCache { cap: cap.max(1), tick: AtomicU64::new(0), map: Mutex::new(HashMap::new()) }
    }

    fn guard(&self) -> MutexGuard<'_, HashMap<u128, Slot>> {
        self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Capacity bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.guard().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, bumping its recency on a hit.
    pub fn get(&self, key: u128) -> Option<Arc<CacheEntry>> {
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.guard();
        map.get_mut(&key).map(|slot| {
            slot.last_used = now;
            Arc::clone(&slot.entry)
        })
    }

    /// Inserts `entry`, evicting least-recently-used entries down to
    /// capacity. Returns how many entries were evicted. If two workers
    /// race to build the same key, the later insert wins — both images
    /// are equivalent (the build is a pure function of the key), so the
    /// only cost is the duplicated build work.
    pub fn insert(&self, entry: Arc<CacheEntry>) -> u64 {
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.guard();
        map.insert(entry.key, Slot { entry, last_used: now });
        let mut evicted = 0;
        while map.len() > self.cap {
            // Oldest `last_used` first; ties (impossible with the atomic
            // tick, but cheap to pin down) break toward the smaller key
            // so eviction order is deterministic.
            let victim = map
                .iter()
                .map(|(k, s)| (s.last_used, *k))
                .min()
                .map(|(_, k)| k);
            match victim {
                Some(k) => {
                    map.remove(&k);
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: u128) -> Arc<CacheEntry> {
        let module = rsti_frontend::compile("int main() { return 0; }", "<cache-test>").unwrap();
        Arc::new(CacheEntry { key, img: Arc::new(Image::baseline(&module)), instr: None })
    }

    #[test]
    fn lru_evicts_the_least_recently_used_key() {
        let cache = ModuleCache::new(2);
        cache.insert(entry(1));
        cache.insert(entry(2));
        assert!(cache.get(1).is_some(), "freshen key 1 so key 2 is now LRU");
        let evicted = cache.insert(entry(3));
        assert_eq!(evicted, 1);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none(), "key 2 was least recently used");
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_does_not_invalidate_held_entries() {
        let cache = ModuleCache::new(1);
        cache.insert(entry(10));
        let held = cache.get(10).expect("just inserted");
        cache.insert(entry(11)); // evicts key 10 from the cache...
        assert!(cache.get(10).is_none());
        // ...but the held Arc keeps the image alive and runnable.
        let mut vm = rsti_vm::Vm::new(&held.img);
        let r = vm.run();
        assert_eq!(r.status, rsti_vm::Status::Exited(0));
    }

    #[test]
    fn capacity_is_clamped_to_at_least_one() {
        let cache = ModuleCache::new(0);
        cache.insert(entry(1));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(1).is_some());
    }
}
