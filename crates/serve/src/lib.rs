//! `rsti serve` — a persistent instrumentation-and-execution service.
//!
//! Every `rsti run` pays the whole pipeline — parse, lower, instrument,
//! optimize, (translate) — before the first instruction executes, even
//! though the paper's cost model amortizes instrumentation over millions
//! of dynamic checks. This crate turns that one-shot pipeline into a
//! server: requests arrive as JSONL (stdin or a Unix socket), and the
//! instrumented [`Image`] for each distinct
//! `(source, mechanism, opt, exec, enforce)` tuple is built **once**,
//! cached in a size-bounded LRU ([`cache::ModuleCache`]), and shared
//! across a pool of VM workers. A cache hit touches none of the pipeline:
//! the per-phase latency histograms in [`ServeMetrics`] record zero new
//! frontend/instrument/optimize/translate samples for warm requests, and
//! the compiled block closures inside the image's `CompiledCache` are
//! reused as-is (this is why the poisoned-lock `Clone` fix in `rsti-vm`
//! is a satellite of this PR — a lost `CompiledCache` would silently turn
//! warm profile/explain requests into recompiles).
//!
//! Reliability contract:
//!
//! * **Ordering** — responses are emitted in request order regardless of
//!   worker interleaving (a sequence-numbered reorder buffer).
//! * **Isolation** — a malformed, trapping, or even panicking request
//!   produces a structured `{"ok":false,...}` response; the pool and the
//!   cache survive (panics are caught per-request, and every shared lock
//!   recovers from poisoning).
//! * **Determinism** — a warm response is byte-identical to the cold
//!   response for the same request except for the `"cache"` field, and
//!   both are byte-identical to what a one-shot `rsti run` of the same
//!   configuration would compute (property-tested below).

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use rsti_telemetry::{global as tel, CounterId, Histogram};
use rsti_vm::{ExecBackend, ExecResult, Image, Vm};

pub mod cache;
pub mod proto;

use cache::{CacheEntry, ModuleCache};
use proto::{Cmd, MechSel, Request};

// ---------------------------------------------------------------------------
// Configuration and metrics
// ---------------------------------------------------------------------------

/// Server tunables (all have CLI flags on `rsti serve`).
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// VM worker threads per input stream.
    pub workers: usize,
    /// Module-cache capacity (entries).
    pub cache_cap: usize,
    /// Fuel budget per request — a runaway program traps with
    /// `FuelExhausted` instead of wedging a worker.
    pub fuel: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { workers: 4, cache_cap: 128, fuel: 200_000_000 }
    }
}

/// Pipeline phases timed per request. Warm cache hits record samples
/// only in `Execute` (and `Request`) — the asserted "skips the pipeline
/// entirely" property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePhase {
    /// Parse + lower (`rsti-frontend`).
    Frontend,
    /// STI fact collection + instrumentation pass.
    Instrument,
    /// The optimizer at the requested level.
    Optimize,
    /// Closure translation for the compiled engine.
    Translate,
    /// VM execution.
    Execute,
    /// Whole request, parse to serialized response.
    Request,
}

impl ServePhase {
    const ALL: [ServePhase; 6] = [
        ServePhase::Frontend,
        ServePhase::Instrument,
        ServePhase::Optimize,
        ServePhase::Translate,
        ServePhase::Execute,
        ServePhase::Request,
    ];

    /// Stable JSON field name (`*_ns`: values are nanoseconds).
    pub fn name(self) -> &'static str {
        match self {
            ServePhase::Frontend => "frontend_ns",
            ServePhase::Instrument => "instrument_ns",
            ServePhase::Optimize => "optimize_ns",
            ServePhase::Translate => "translate_ns",
            ServePhase::Execute => "execute_ns",
            ServePhase::Request => "request_ns",
        }
    }
}

/// Service-level counters plus per-phase latency histograms.
///
/// The counters here are authoritative (always counted); they are also
/// mirrored into the process-wide telemetry collector's
/// `serve_*` counters, which only accumulate while tracing is enabled.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    phases: Mutex<[Histogram; 6]>,
}

impl ServeMetrics {
    /// Requests received (including malformed ones).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Cache hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (cold builds).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// LRU evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Structured error responses (parse errors, unknown workloads,
    /// compile errors, caught panics).
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Caught request-handler panics (a subset of [`Self::errors`]).
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    fn phase_guard(&self) -> std::sync::MutexGuard<'_, [Histogram; 6]> {
        self.phases.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn record_phase(&self, phase: ServePhase, ns: u64) {
        self.phase_guard()[phase as usize].record(ns);
    }

    /// Samples recorded for a phase — a warm hit adds none to
    /// `Frontend` / `Instrument` / `Optimize` / `Translate`.
    pub fn phase_count(&self, phase: ServePhase) -> u64 {
        self.phase_guard()[phase as usize].count()
    }

    /// Total nanoseconds recorded for a phase.
    pub fn phase_sum(&self, phase: ServePhase) -> u64 {
        self.phase_guard()[phase as usize].sum()
    }

    /// The stats snapshot (the payload of a `stats` response).
    pub fn to_json(&self, cache_len: usize, cache_cap: usize) -> String {
        let phases = self.phase_guard();
        let hists: Vec<String> = ServePhase::ALL
            .iter()
            .map(|&p| format!("\"{}\":{}", p.name(), phases[p as usize].to_json()))
            .collect();
        format!(
            "{{\"requests\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"errors\":{},\"panics\":{},\"cache_len\":{},\"cache_cap\":{},\
             \"phases\":{{{}}}}}",
            self.requests(),
            self.hits(),
            self.misses(),
            self.evictions(),
            self.errors(),
            self.panics(),
            cache_len,
            cache_cap,
            hists.join(","),
        )
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// The shared service state: config, module cache, metrics, shutdown
/// flag. All methods take `&self`; one `Server` serves any number of
/// worker threads and input streams concurrently.
pub struct Server {
    cfg: ServeConfig,
    cache: ModuleCache,
    metrics: ServeMetrics,
    shutdown: AtomicBool,
}

impl Server {
    /// A server with the given tunables.
    pub fn new(cfg: ServeConfig) -> Self {
        Server {
            cache: ModuleCache::new(cfg.cache_cap),
            cfg,
            metrics: ServeMetrics::default(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The tunables this server was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Service counters and latency histograms.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The shared module cache.
    pub fn cache(&self) -> &ModuleCache {
        &self.cache
    }

    /// Whether a graceful shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a graceful shutdown (idempotent).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The stats snapshot as JSON (also served via `{"cmd":"stats"}`).
    pub fn stats_json(&self) -> String {
        self.metrics.to_json(self.cache.len(), self.cache.cap())
    }

    /// Parses and answers one request line. Never panics outward: a
    /// handler panic is caught and converted into an `{"ok":false}`
    /// response, leaving the pool and the cache intact.
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_parsed(Request::parse(line))
    }

    /// Answers one (pre-)parsed request.
    pub fn handle_parsed(&self, parsed: Result<Request, String>) -> String {
        let t0 = Instant::now();
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        tel().add(CounterId::ServeRequests, 1);
        let resp = match parsed {
            Err(e) => {
                self.count_error();
                proto::error_response(None, &e)
            }
            Ok(req) => {
                let id = req.id;
                match catch_unwind(AssertUnwindSafe(|| self.dispatch(&req))) {
                    Ok(Ok(resp)) => resp,
                    Ok(Err(e)) => {
                        self.count_error();
                        proto::error_response(id, &e)
                    }
                    Err(payload) => {
                        self.metrics.panics.fetch_add(1, Ordering::Relaxed);
                        self.count_error();
                        let msg = panic_message(payload.as_ref());
                        proto::error_response(id, &format!("panic in request handler: {msg}"))
                    }
                }
            }
        };
        self.metrics.record_phase(ServePhase::Request, elapsed_ns(t0));
        resp
    }

    fn count_error(&self) {
        self.metrics.errors.fetch_add(1, Ordering::Relaxed);
        tel().add(CounterId::ServeErrors, 1);
    }

    fn dispatch(&self, req: &Request) -> Result<String, String> {
        match req.cmd {
            Cmd::Stats => Ok(format!(
                "{{\"id\":{},\"ok\":true,\"cmd\":\"stats\",\"stats\":{}}}",
                req.id.map_or_else(|| "null".to_string(), |n| n.to_string()),
                self.stats_json()
            )),
            Cmd::Shutdown => {
                self.request_shutdown();
                Ok(proto::shutdown_response(req.id))
            }
            Cmd::DebugPanic => panic!("injected panic (rsti serve isolation-test hook)"),
            Cmd::Run | Cmd::Compile | Cmd::Profile | Cmd::Explain => self.handle_exec(req),
        }
    }

    /// The pipeline commands: resolve source, hit or build the cache,
    /// then (except for `compile`) execute on the shared image.
    fn handle_exec(&self, req: &Request) -> Result<String, String> {
        let src: std::borrow::Cow<'_, str> = match (&req.source, &req.workload) {
            (Some(s), _) => std::borrow::Cow::Borrowed(s.as_str()),
            (None, Some(w)) => {
                let wl = rsti_workloads::all_workloads()
                    .into_iter()
                    .find(|x| x.name.eq_ignore_ascii_case(w))
                    .ok_or_else(|| format!("unknown workload {w:?}"))?;
                std::borrow::Cow::Owned(wl.source)
            }
            (None, None) => return Err("request needs \"source\" or \"workload\"".into()),
        };
        let key = proto::cache_key(&src, req.mech, req.opt, req.exec, req.enforce);
        let (entry, cache_state) = match self.cache.get(key) {
            Some(e) => {
                self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                tel().add(CounterId::ServeCacheHits, 1);
                (e, "hit")
            }
            None => {
                self.metrics.misses.fetch_add(1, Ordering::Relaxed);
                tel().add(CounterId::ServeCacheMisses, 1);
                (self.build_entry(&src, req, key)?, "miss")
            }
        };
        let result = if req.cmd == Cmd::Compile {
            None
        } else {
            let t = Instant::now();
            let r = if req.cmd == Cmd::Profile {
                // Profiling and recording arm per-run state, so they run
                // on a cheap clone; the clone shares the module *and*
                // (post-fix) the CompiledCache, so this is still warm.
                self.run_image(&(*entry.img).clone().with_attr())
            } else if req.record {
                self.run_image(&(*entry.img).clone().with_record())
            } else {
                self.run_image(&entry.img)
            };
            self.metrics.record_phase(ServePhase::Execute, elapsed_ns(t));
            Some(r)
        };
        Ok(proto::exec_response(req, cache_state, key, entry.instr.as_ref(), result.as_ref()))
    }

    /// Cold path: the full pipeline, each phase timed into the service
    /// histograms, ending with a cache insert.
    fn build_entry(&self, src: &str, req: &Request, key: u128) -> Result<Arc<CacheEntry>, String> {
        let t = Instant::now();
        let module = rsti_frontend::compile(src, "<serve>").map_err(|e| format!("compile error: {e}"))?;
        self.metrics.record_phase(ServePhase::Frontend, elapsed_ns(t));
        let (img, instr) = match req.mech {
            MechSel::Baseline => (Image::baseline(&module), None),
            mech => {
                let t = Instant::now();
                let mut p = match mech {
                    MechSel::Adaptive => rsti_core::instrument_adaptive(
                        &module,
                        rsti_core::DEFAULT_ECV_THRESHOLD,
                    ),
                    MechSel::Fixed(m) => rsti_core::instrument(&module, m),
                    MechSel::Baseline => unreachable!("handled above"),
                };
                self.metrics.record_phase(ServePhase::Instrument, elapsed_ns(t));
                let t = Instant::now();
                rsti_core::optimize_program_at(&mut p, req.opt);
                self.metrics.record_phase(ServePhase::Optimize, elapsed_ns(t));
                let stats = p.stats;
                (Image::from_instrumented(&p), Some(stats))
            }
        };
        let img = img.with_backend(req.enforce).with_exec(req.exec);
        if req.exec == ExecBackend::Compiled {
            let t = Instant::now();
            img.precompile();
            self.metrics.record_phase(ServePhase::Translate, elapsed_ns(t));
        }
        let entry = Arc::new(CacheEntry { key, img: Arc::new(img), instr });
        let evicted = self.cache.insert(Arc::clone(&entry));
        if evicted > 0 {
            self.metrics.evictions.fetch_add(evicted, Ordering::Relaxed);
            tel().add(CounterId::ServeCacheEvictions, evicted);
        }
        Ok(entry)
    }

    fn run_image(&self, img: &Image) -> ExecResult {
        let mut vm = Vm::new(img);
        vm.set_fuel(self.cfg.fuel);
        vm.run()
    }
}

fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

// ---------------------------------------------------------------------------
// Stream serving: ordered worker pool
// ---------------------------------------------------------------------------

/// Reorder buffer: workers push `(seq, line)` in completion order; lines
/// drain to the writer in sequence order, one `write_all` per line (the
/// same no-interleaving discipline as the telemetry sink).
struct SeqWriter<W: Write> {
    out: W,
    next: u64,
    pending: BTreeMap<u64, String>,
    failed: Option<io::ErrorKind>,
}

impl<W: Write> SeqWriter<W> {
    fn push(&mut self, seq: u64, mut line: String) -> io::Result<()> {
        if self.failed.is_some() {
            return Ok(()); // already broken; drop quietly, the error is recorded
        }
        line.push('\n');
        self.pending.insert(seq, line);
        while let Some(line) = self.pending.remove(&self.next) {
            if let Err(e) = self.out.write_all(line.as_bytes()).and_then(|()| self.out.flush()) {
                self.failed = Some(e.kind());
                return Err(e);
            }
            self.next += 1;
        }
        Ok(())
    }
}

/// Serves JSONL requests from `input` until EOF or a `shutdown` request,
/// writing one response line per request **in input order** to `output`.
/// Responses are computed by `cfg.workers` threads sharing the server's
/// module cache.
///
/// # Errors
/// Returns the first I/O error from `input` or `output`; requests
/// already read are still answered where possible.
pub fn serve_lines<R: BufRead, W: Write + Send>(
    server: &Server,
    input: R,
    output: W,
) -> io::Result<()> {
    let workers = server.cfg.workers.max(1);
    let (txq, rxq) = mpsc::channel::<(u64, Result<Request, String>)>();
    let rxq = Mutex::new(rxq);
    let writer = Mutex::new(SeqWriter { out: output, next: 0, pending: BTreeMap::new(), failed: None });
    let io_err: Mutex<Option<io::Error>> = Mutex::new(None);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let item = {
                    let rx = rxq.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    rx.recv()
                };
                let Ok((seq, parsed)) = item else { break };
                let resp = server.handle_parsed(parsed);
                let mut w = writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                if let Err(e) = w.push(seq, resp) {
                    let mut slot = io_err.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    slot.get_or_insert(e);
                    // The output stream is gone: stop accepting input.
                    server.request_shutdown();
                }
            });
        }

        let mut seq = 0u64;
        for line in input.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    let mut slot = io_err.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    slot.get_or_insert(e);
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let parsed = Request::parse(&line);
            let is_shutdown = matches!(&parsed, Ok(r) if r.cmd == Cmd::Shutdown);
            if txq.send((seq, parsed)).is_err() {
                break;
            }
            seq += 1;
            if is_shutdown || server.is_shutting_down() {
                break;
            }
        }
        drop(txq); // workers drain the queue, then exit
    });

    let first_err = io_err.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// Unix-socket serving
// ---------------------------------------------------------------------------

/// Binds `path` and serves each connection with [`serve_lines`] on its
/// own thread (each connection gets the full worker pool; all share the
/// server's cache and metrics). Returns after a graceful shutdown has
/// been requested and every accepted connection has drained.
///
/// # Errors
/// Returns bind/accept errors; per-connection I/O errors only end that
/// connection.
#[cfg(unix)]
pub fn serve_socket(server: &Server, path: &std::path::Path) -> io::Result<()> {
    use std::os::unix::net::UnixListener;

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let result = std::thread::scope(|s| -> io::Result<()> {
        loop {
            if server.is_shutting_down() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    let reader = stream.try_clone()?;
                    s.spawn(move || {
                        let _ = serve_lines(server, io::BufReader::new(reader), stream);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    });
    let _ = std::fs::remove_file(path);
    result
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use proto::{cache_key, exec_response};

    /// A small program with enough pointer traffic (indirect calls
    /// through a struct field, casts, heap stores) to give every
    /// mechanism real sign/auth work.
    fn sample_source() -> String {
        rsti_workloads::kernels::assemble(&[
            rsti_workloads::kernels::dispatch_kernel("sv", 6, 2),
            rsti_workloads::kernels::list_kernel("ls", 8, 2),
        ])
    }

    fn request_line(src: &str, mech: &str, opt: &str, exec: &str, enforce: &str) -> String {
        format!(
            "{{\"id\":1,\"cmd\":\"run\",\"source\":{},\"mech\":\"{}\",\"opt\":\"{}\",\
             \"exec\":\"{}\",\"enforce\":\"{}\"}}",
            rsti_telemetry::json_str(src),
            mech,
            opt,
            exec,
            enforce
        )
    }

    /// One-shot reference pipeline — the exact sequence `rsti run` uses
    /// (`build_image` in `rsti-cli`), independent of the server code.
    fn oneshot(req: &Request, src: &str) -> (Option<rsti_core::InstrumentStats>, ExecResult) {
        let module = rsti_frontend::compile(src, "<serve>").unwrap();
        let (img, instr) = match req.mech {
            MechSel::Baseline => (Image::baseline(&module), None),
            MechSel::Adaptive => {
                let mut p =
                    rsti_core::instrument_adaptive(&module, rsti_core::DEFAULT_ECV_THRESHOLD);
                rsti_core::optimize_program_at(&mut p, req.opt);
                let s = p.stats;
                (Image::from_instrumented(&p), Some(s))
            }
            MechSel::Fixed(m) => {
                let mut p = rsti_core::instrument(&module, m);
                rsti_core::optimize_program_at(&mut p, req.opt);
                let s = p.stats;
                (Image::from_instrumented(&p), Some(s))
            }
        };
        let img = img.with_backend(req.enforce).with_exec(req.exec);
        let mut vm = Vm::new(&img);
        vm.set_fuel(ServeConfig::default().fuel);
        (instr, vm.run())
    }

    #[test]
    fn warm_hits_are_bit_identical_to_cold_and_to_oneshot_across_the_matrix() {
        let src = sample_source();
        let server = Server::new(ServeConfig::default());
        for mech in ["none", "parts", "stc", "stwc", "stl", "adaptive"] {
            for opt in ["none", "block", "cfg"] {
                for (exec, enforce) in
                    [("interp", "pac"), ("compiled", "pac"), ("interp", "mac"), ("compiled", "mac")]
                {
                    let line = request_line(&src, mech, opt, exec, enforce);
                    let cold = server.handle_line(&line);
                    let warm = server.handle_line(&line);
                    assert!(cold.contains("\"cache\":\"miss\""), "{mech}/{opt}/{exec}/{enforce}: {cold}");
                    assert!(warm.contains("\"cache\":\"hit\""), "{mech}/{opt}/{exec}/{enforce}");
                    assert_eq!(
                        warm.replace("\"cache\":\"hit\"", "\"cache\":\"miss\""),
                        cold,
                        "warm response must be byte-identical to cold ({mech}/{opt}/{exec}/{enforce})"
                    );
                    // And both must match the one-shot `rsti run` pipeline.
                    let req = Request::parse(&line).unwrap();
                    let (instr, result) = oneshot(&req, &src);
                    let key = cache_key(&src, req.mech, req.opt, req.exec, req.enforce);
                    let expected =
                        exec_response(&req, "miss", key, instr.as_ref(), Some(&result));
                    assert_eq!(cold, expected, "cold response must equal the one-shot pipeline");
                }
            }
        }
        assert_eq!(server.metrics().hits(), 6 * 3 * 4);
        assert_eq!(server.metrics().misses(), 6 * 3 * 4);
    }

    #[test]
    fn warm_requests_skip_frontend_instrument_optimize_and_translate() {
        let server = Server::new(ServeConfig::default());
        let line = request_line(&sample_source(), "stwc", "cfg", "compiled", "pac");
        let cold = server.handle_line(&line);
        assert!(cold.contains("\"ok\":true"), "{cold}");
        let m = server.metrics();
        for p in [ServePhase::Frontend, ServePhase::Instrument, ServePhase::Optimize, ServePhase::Translate]
        {
            assert_eq!(m.phase_count(p), 1, "cold request must time {}", p.name());
        }
        let warm = server.handle_line(&line);
        assert!(warm.contains("\"cache\":\"hit\""), "{warm}");
        for p in [ServePhase::Frontend, ServePhase::Instrument, ServePhase::Optimize, ServePhase::Translate]
        {
            assert_eq!(
                m.phase_count(p),
                1,
                "warm request must record zero new {} samples",
                p.name()
            );
        }
        assert_eq!(m.phase_count(ServePhase::Execute), 2);
        assert_eq!(m.phase_count(ServePhase::Request), 2);
    }

    #[test]
    fn profile_and_explain_reuse_the_cached_compiled_image() {
        let server = Server::new(ServeConfig::default());
        let src = sample_source();
        let warmup = request_line(&src, "stwc", "cfg", "compiled", "pac");
        server.handle_line(&warmup);
        // Same key, different run-time adornments: record + attr run on
        // clones that share the CompiledCache (the satellite-1 fix).
        for cmd in ["profile", "explain"] {
            let line = format!(
                "{{\"id\":2,\"cmd\":\"{}\",\"source\":{},\"mech\":\"stwc\",\"opt\":\"cfg\",\
                 \"exec\":\"compiled\",\"enforce\":\"pac\"}}",
                cmd,
                rsti_telemetry::json_str(&src)
            );
            let resp = server.handle_line(&line);
            assert!(resp.contains("\"cache\":\"hit\""), "{cmd} must hit: {resp}");
            assert!(resp.contains("\"ok\":true"), "{resp}");
        }
        // No new translate samples: the closures were reused.
        assert_eq!(server.metrics().phase_count(ServePhase::Translate), 1);
        assert_eq!(server.metrics().hits(), 2);
    }

    #[test]
    fn a_panicking_request_is_isolated_and_the_pool_survives() {
        let server = Server::new(ServeConfig { workers: 2, ..ServeConfig::default() });
        let input = format!(
            "{{\"id\":1,\"cmd\":\"__panic\"}}\nthis is not json\n{}\n",
            request_line("int main() { return 0; }", "stwc", "none", "interp", "pac")
        );
        let mut out = Vec::new();
        serve_lines(&server, input.as_bytes(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"ok\":false") && lines[0].contains("panic"), "{}", lines[0]);
        assert!(lines[1].contains("\"ok\":false"), "{}", lines[1]);
        assert!(
            lines[2].contains("\"ok\":true") && lines[2].contains("\"status\":\"exit 0\""),
            "{}",
            lines[2]
        );
        assert_eq!(server.metrics().panics(), 1);
        assert_eq!(server.metrics().errors(), 2);
    }

    #[test]
    fn responses_come_back_in_input_order_under_a_worker_pool() {
        let server = Server::new(ServeConfig { workers: 4, ..ServeConfig::default() });
        // Mix cheap and expensive requests so completion order scrambles.
        let cheap = "int main() { return 0; }".to_string();
        let costly = sample_source();
        let mut input = String::new();
        for i in 0..16 {
            let src = if i % 2 == 0 { &costly } else { &cheap };
            input.push_str(&format!(
                "{{\"id\":{},\"cmd\":\"run\",\"source\":{},\"mech\":\"stwc\"}}\n",
                i,
                rsti_telemetry::json_str(src)
            ));
        }
        let mut out = Vec::new();
        serve_lines(&server, input.as_bytes(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 16);
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"id\":{i},")),
                "line {i} out of order: {line}"
            );
            assert!(line.contains("\"ok\":true"), "{line}");
        }
    }

    #[test]
    fn shutdown_drains_in_flight_requests_and_stops_reading() {
        let server = Server::new(ServeConfig { workers: 2, ..ServeConfig::default() });
        let run = request_line("int main() { return 7; }", "stwc", "none", "interp", "pac");
        let input = format!("{run}\n{{\"id\":9,\"cmd\":\"shutdown\"}}\n{run}\n");
        let mut out = Vec::new();
        serve_lines(&server, input.as_bytes(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 2, "the request after shutdown must not be read: {lines:?}");
        assert!(lines[0].contains("\"status\":\"exit 7\""), "{}", lines[0]);
        assert!(lines[1].contains("\"cmd\":\"shutdown\""), "{}", lines[1]);
        assert!(server.is_shutting_down());
    }

    #[test]
    fn lru_eviction_under_load_never_breaks_in_flight_or_future_requests() {
        // Capacity 1: every alternating request evicts the other entry.
        let server = Server::new(ServeConfig { cache_cap: 1, ..ServeConfig::default() });
        let a = request_line("int main() { return 1; }", "stwc", "none", "interp", "pac");
        let b = request_line("int main() { return 2; }", "stwc", "none", "interp", "pac");
        for _ in 0..4 {
            assert!(server.handle_line(&a).contains("\"status\":\"exit 1\""));
            assert!(server.handle_line(&b).contains("\"status\":\"exit 2\""));
        }
        assert!(server.metrics().evictions() >= 6);
        assert_eq!(server.cache().len(), 1);
        assert_eq!(server.metrics().errors(), 0);
    }

    #[test]
    fn stats_and_workload_requests_round_trip() {
        let server = Server::new(ServeConfig::default());
        // Compile (not run) a real workload by name — case-insensitive.
        let resp =
            server.handle_line("{\"id\":1,\"cmd\":\"compile\",\"workload\":\"NUMERIC SORT\"}");
        assert!(resp.contains("\"ok\":true") && resp.contains("\"cmd\":\"compile\""), "{resp}");
        assert!(resp.contains("\"instr\":{"), "compile must report instrumentation stats: {resp}");
        let resp = server.handle_line("{\"id\":2,\"cmd\":\"run\",\"workload\":\"no such bench\"}");
        assert!(resp.contains("\"ok\":false") && resp.contains("unknown workload"), "{resp}");
        let stats = server.handle_line("{\"id\":3,\"cmd\":\"stats\"}");
        assert!(stats.contains("\"requests\":3"), "{stats}");
        assert!(stats.contains("\"misses\":1"), "{stats}");
        assert!(stats.contains("\"frontend_ns\":{\"count\":1"), "{stats}");
    }

    #[test]
    fn trapping_programs_return_a_structured_result_not_an_error() {
        let server = Server::new(ServeConfig::default());
        // Division by zero traps deterministically under every mechanism.
        let resp = server.handle_line(
            "{\"id\":1,\"cmd\":\"run\",\"source\":\"int main() { int x; x = 0; return 1 / x; }\"}",
        );
        assert!(resp.contains("\"ok\":true"), "a trap is a result, not a service error: {resp}");
        assert!(resp.contains("\"status\":\"trap: "), "{resp}");
        assert_eq!(server.metrics().errors(), 0);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip_serves_and_shuts_down() {
        use std::io::{BufRead as _, BufReader, Write as _};
        use std::os::unix::net::UnixStream;

        let dir = std::env::temp_dir();
        let path = dir.join(format!("rsti-serve-test-{}.sock", std::process::id()));
        let server = Server::new(ServeConfig { workers: 2, ..ServeConfig::default() });
        std::thread::scope(|s| {
            let handle = s.spawn(|| serve_socket(&server, &path));
            // Wait for the socket to appear.
            for _ in 0..500 {
                if path.exists() {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let mut stream = UnixStream::connect(&path).expect("connect to serve socket");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            stream
                .write_all(
                    b"{\"id\":1,\"cmd\":\"run\",\"source\":\"int main() { return 5; }\"}\n\
                      {\"id\":2,\"cmd\":\"shutdown\"}\n",
                )
                .unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"status\":\"exit 5\""), "{line}");
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"cmd\":\"shutdown\""), "{line}");
            handle.join().unwrap().unwrap();
        });
        assert!(server.is_shutting_down());
    }

    #[test]
    fn compile_then_run_hits_the_cache_built_by_compile() {
        let server = Server::new(ServeConfig::default());
        let src = "int main() { print_int(3); return 0; }";
        let compile = format!(
            "{{\"id\":1,\"cmd\":\"compile\",\"source\":{}}}",
            rsti_telemetry::json_str(src)
        );
        let run = format!(
            "{{\"id\":2,\"cmd\":\"run\",\"source\":{}}}",
            rsti_telemetry::json_str(src)
        );
        assert!(server.handle_line(&compile).contains("\"cache\":\"miss\""));
        let resp = server.handle_line(&run);
        assert!(resp.contains("\"cache\":\"hit\""), "run after compile must hit: {resp}");
        assert!(resp.contains("\"output\":[\"3\"]"), "{resp}");
    }

    #[test]
    fn mac_and_pac_enforcement_cache_separately() {
        let server = Server::new(ServeConfig::default());
        let src = sample_source();
        let pac = request_line(&src, "stwc", "cfg", "interp", "pac");
        let mac = request_line(&src, "stwc", "cfg", "interp", "mac");
        assert!(server.handle_line(&pac).contains("\"cache\":\"miss\""));
        assert!(server.handle_line(&mac).contains("\"cache\":\"miss\""), "mac must not hit pac");
        assert_eq!(server.metrics().misses(), 2);
    }

    #[test]
    fn explain_responses_are_deterministic_for_a_type_confusion_program() {
        // A struct-cast type confusion: reading a plain data slot as a
        // function pointer. Whatever the mechanism decides (trap + audit
        // + incident, or a clean exit), the warm explain response must be
        // byte-identical to the cold one — incident synthesis uses model
        // cycles, not wall-clock time.
        let src = r#"
            struct fnbox { long (*f)(long v); };
            struct databox { long x; };
            long identity(long v) { return v; }
            int main() {
                struct databox* pb = (struct databox*) malloc(sizeof(struct databox));
                pb->x = 12345;
                void* raw = (void*) pb;
                struct fnbox* pa = (struct fnbox*) raw;
                return (int) pa->f(7);
            }
        "#;
        let server = Server::new(ServeConfig::default());
        let line = format!(
            "{{\"id\":1,\"cmd\":\"explain\",\"source\":{},\"mech\":\"stwc\",\"opt\":\"cfg\"}}",
            rsti_telemetry::json_str(src)
        );
        let cold = server.handle_line(&line);
        let warm = server.handle_line(&line);
        assert_eq!(warm.replace("\"cache\":\"hit\"", "\"cache\":\"miss\""), cold);
        assert!(cold.contains("\"ok\":true"), "{cold}");
        assert!(cold.contains("\"incident\":"), "explain always reports the incident field: {cold}");
    }
}
