//! # rsti-rng — a dependency-free deterministic PRNG
//!
//! The workspace needs seeded randomness in three places: kernel key
//! generation ([`rsti_pac`]'s `PacKeys::random`), the random-program
//! generator (`rsti_workloads::generate`), and the randomized test
//! batteries that replace `proptest` (the build environment carries no
//! third-party registry, so every dependency must live in-tree).
//!
//! [`Rng64`] is xoshiro256++ seeded through SplitMix64 — the standard
//! small-state construction (Blackman & Vigna, 2019): sub-nanosecond
//! output, 256-bit state, and equidistribution properties far beyond what
//! seeded test generation needs. It is **not** cryptographic; the PA keys
//! it generates in tests stand in for a kernel CSPRNG.

#![warn(missing_docs)]

/// A seeded xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded, so
    /// nearby seeds still give uncorrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng64 { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// The next 128 uniformly random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Rejection sampling over the widest multiple of `span` keeps the
        // distribution exactly uniform.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span;
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, the same resolution `rand` uses.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(0, items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = Rng64::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(3, 13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values reached: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng64::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..=3_300).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn next_u64_looks_uniform_per_bit() {
        let mut r = Rng64::seed_from_u64(1234);
        let mut ones = [0u32; 64];
        for _ in 0..4096 {
            let v = r.next_u64();
            for (b, count) in ones.iter_mut().enumerate() {
                *count += ((v >> b) & 1) as u32;
            }
        }
        for (b, &c) in ones.iter().enumerate() {
            assert!((1700..=2400).contains(&c), "bit {b}: {c}/4096 ones");
        }
    }
}
