//! AST-level delta debugging.
//!
//! The reducer shrinks a failing program while insisting that every accepted
//! candidate reproduces the *same* failure class
//! ([`crate::oracle::FailureKind::class_key`]).
//! Candidates that stop compiling, start passing, or fail differently are
//! simply rejected — no validity analysis is needed, which is what makes
//! reducing over the AST (rather than source bytes) attractive: every
//! candidate is a syntactically well-formed program by construction, so the
//! oracle run is never wasted on parse noise.
//!
//! Five edit kinds, applied greedily to a fixpoint under an attempt budget:
//!
//! 1. drop a whole top-level item,
//! 2. drop a single statement (any nesting depth),
//! 3. unwrap a control statement (replace an `if`/loop/block with its body),
//! 4. collapse a trivial call (replace a call expression with its first
//!    argument, or `0` when it has none) — this drops a call-graph edge
//!    while keeping the statement, so failures triggered by the
//!    interprocedural optimizer's cross-function reasoning (`--opt ipo`
//!    summaries, inlining) still shrink toward small corpora instead of
//!    being pinned by the very call that provoked them,
//! 5. simplify a statement's expression (binary → lhs, cast/negation →
//!    operand).

use crate::oracle::check_items;
use rsti_frontend::ast::{Block, Expr, Item, Stmt, UnOp};
use rsti_telemetry::CounterId;

/// Result of a [`minimize`] run.
#[derive(Debug, Clone)]
pub struct MinimizeReport {
    /// The smallest reproducing AST found.
    pub items: Vec<Item>,
    /// Oracle runs spent.
    pub attempts: u32,
    /// Statement count of the input.
    pub stmts_before: usize,
    /// Statement count of the result.
    pub stmts_after: usize,
}

/// Shrinks `items` while preserving the failure class `class_key`.
///
/// The input is assumed to fail with that class; if it does not, the input
/// is returned unchanged (no candidate can be accepted). At most `budget`
/// oracle runs are spent.
pub fn minimize(items: &[Item], class_key: &str, budget: u32) -> MinimizeReport {
    let tel = rsti_telemetry::global();
    let mut cur: Vec<Item> = items.to_vec();
    let mut attempts: u32 = 0;
    let stmts_before = count_stmts(&cur);

    let reproduces = |cand: &[Item], attempts: &mut u32| -> bool {
        *attempts += 1;
        tel.add(CounterId::FuzzMinimizeAttempts, 1);
        matches!(check_items(cand), Err(k) if k.class_key() == class_key)
    };

    'outer: loop {
        let mut changed = false;

        // Whole items, last first: the generator emits `main` last and
        // helpers first, so reverse order tends to hit dead helpers early.
        let mut i = cur.len();
        while i > 0 {
            i -= 1;
            if attempts >= budget {
                break 'outer;
            }
            let mut cand = cur.clone();
            cand.remove(i);
            if reproduces(&cand, &mut attempts) {
                cur = cand;
                changed = true;
            }
        }

        for kind in [
            EditKind::Remove,
            EditKind::Unwrap,
            EditKind::DropElse,
            EditKind::CollapseCall,
            EditKind::Simplify,
        ] {
            let mut k = count_stmts(&cur);
            while k > 0 {
                k -= 1;
                if attempts >= budget {
                    break 'outer;
                }
                let mut cand = cur.clone();
                if apply_edit(&mut cand, k, kind) != Some(true) {
                    continue; // position has no such edit: no oracle run spent
                }
                if reproduces(&cand, &mut attempts) {
                    cur = cand;
                    changed = true;
                    k = k.min(count_stmts(&cur)); // positions shifted
                }
            }
        }

        if !changed {
            break;
        }
    }

    MinimizeReport { stmts_after: count_stmts(&cur), items: cur, attempts, stmts_before }
}

#[derive(Clone, Copy, PartialEq)]
enum EditKind {
    /// Delete the statement.
    Remove,
    /// Replace an `if`/loop/nested block with its body's statements.
    Unwrap,
    /// Delete an `else` branch.
    DropElse,
    /// Replace the first call in the statement's expression with its first
    /// argument (or `0`), severing a call-graph edge.
    CollapseCall,
    /// Shrink the statement's expression one step.
    Simplify,
}

/// Counts statements in pre-order across all function bodies — the position
/// space the edit kinds index into.
pub fn count_stmts(items: &[Item]) -> usize {
    items
        .iter()
        .map(|it| match it {
            Item::Func { body: Some(b), .. } => count_block(b),
            _ => 0,
        })
        .sum()
}

fn count_block(b: &Block) -> usize {
    b.stmts.iter().map(count_stmt).sum()
}

fn count_stmt(s: &Stmt) -> usize {
    1 + match s {
        Stmt::If { then_blk, else_blk, .. } => {
            count_block(then_blk) + else_blk.as_ref().map_or(0, count_block)
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
            count_block(body)
        }
        Stmt::Block(inner) => count_block(inner),
        _ => 0,
    }
}

/// Applies `kind` to the `k`-th statement in pre-order. `None`: fewer than
/// `k + 1` statements. `Some(false)`: position exists but the edit does not
/// apply there (e.g. `DropElse` on a `while`).
fn apply_edit(items: &mut [Item], k: usize, kind: EditKind) -> Option<bool> {
    let mut n = k;
    for it in items.iter_mut() {
        if let Item::Func { body: Some(b), .. } = it {
            if let Some(r) = apply_in_block(b, &mut n, kind) {
                return Some(r);
            }
        }
    }
    None
}

fn apply_in_block(b: &mut Block, n: &mut usize, kind: EditKind) -> Option<bool> {
    let mut i = 0;
    while i < b.stmts.len() {
        if *n == 0 {
            return Some(apply_at(&mut b.stmts, i, kind));
        }
        *n -= 1;
        let nested = match &mut b.stmts[i] {
            Stmt::If { then_blk, else_blk, .. } => apply_in_block(then_blk, n, kind)
                .or_else(|| else_blk.as_mut().and_then(|e| apply_in_block(e, n, kind))),
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                apply_in_block(body, n, kind)
            }
            Stmt::Block(inner) => apply_in_block(inner, n, kind),
            _ => None,
        };
        if nested.is_some() {
            return nested;
        }
        i += 1;
    }
    None
}

fn apply_at(stmts: &mut Vec<Stmt>, i: usize, kind: EditKind) -> bool {
    match kind {
        EditKind::Remove => {
            stmts.remove(i);
            true
        }
        EditKind::Unwrap => {
            let inner = match &mut stmts[i] {
                Stmt::If { then_blk, .. } => Some(std::mem::take(&mut then_blk.stmts)),
                Stmt::While { body, .. }
                | Stmt::DoWhile { body, .. }
                | Stmt::For { body, .. } => Some(std::mem::take(&mut body.stmts)),
                Stmt::Block(inner) => Some(std::mem::take(&mut inner.stmts)),
                _ => None,
            };
            match inner {
                Some(list) => {
                    stmts.splice(i..=i, list);
                    true
                }
                None => false,
            }
        }
        EditKind::DropElse => match &mut stmts[i] {
            Stmt::If { else_blk: e @ Some(_), .. } => {
                *e = None;
                true
            }
            _ => false,
        },
        EditKind::CollapseCall | EditKind::Simplify => {
            let target = match &mut stmts[i] {
                Stmt::Assign { value, .. } => Some(value),
                Stmt::Decl { init: Some(v), .. } => Some(v),
                Stmt::Return(Some(v), _) => Some(v),
                Stmt::Expr(v) => Some(v),
                _ => None,
            };
            match (target, kind) {
                (Some(e), EditKind::CollapseCall) => collapse_first_call(e),
                (Some(e), _) => shrink_expr(e),
                (None, _) => false,
            }
        }
    }
}

/// Replaces the first (pre-order) call in `e` with its first argument, or
/// `0` for a nullary call. Type mismatches the substitution introduces are
/// caught downstream like any other rejected candidate.
fn collapse_first_call(e: &mut Expr) -> bool {
    if let Expr::Call { args, line, .. } = e {
        *e = match args.first() {
            Some(a) => a.clone(),
            None => Expr::IntLit(0, *line),
        };
        return true;
    }
    match e {
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => collapse_first_call(expr),
        Expr::Binary { lhs, rhs, .. } => {
            collapse_first_call(lhs) || collapse_first_call(rhs)
        }
        Expr::Member { base, .. } => collapse_first_call(base),
        Expr::Index { base, index, .. } => {
            collapse_first_call(base) || collapse_first_call(index)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsti_frontend::ast::Stmt;
    use rsti_frontend::parse;

    #[test]
    fn collapse_call_severs_the_call_edge_in_place() {
        let src = "long helper(long x) { return x + 1; }\n\
                   int main() { long r = helper(3); return (int) r; }";
        let mut items = parse(src).unwrap();
        // Pre-order stmt 0 is helper's return; stmt 1 is the decl in main.
        assert_eq!(apply_edit(&mut items, 1, EditKind::CollapseCall), Some(true));
        let Item::Func { body: Some(b), .. } = &items[1] else {
            panic!("main missing")
        };
        match &b.stmts[0] {
            Stmt::Decl { init: Some(Expr::IntLit(3, _)), .. } => {}
            other => panic!("call not collapsed to its argument: {other:?}"),
        }
        // Nothing left to collapse at that position.
        assert_eq!(apply_edit(&mut items, 1, EditKind::CollapseCall), Some(false));
    }

    #[test]
    fn collapse_call_reaches_nested_and_nullary_calls() {
        let src = "long zero() { return 0; }\n\
                   int main() { long r = 1 + zero(); return (int) r; }";
        let mut items = parse(src).unwrap();
        assert_eq!(apply_edit(&mut items, 1, EditKind::CollapseCall), Some(true));
        let Item::Func { body: Some(b), .. } = &items[1] else {
            panic!("main missing")
        };
        match &b.stmts[0] {
            Stmt::Decl { init: Some(Expr::Binary { rhs, .. }), .. } => {
                assert!(
                    matches!(**rhs, Expr::IntLit(0, _)),
                    "nullary call must collapse to 0: {rhs:?}"
                );
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }
}

/// One shrinking step on an expression; type errors introduced here are
/// caught downstream (the candidate fails to compile and is rejected).
fn shrink_expr(e: &mut Expr) -> bool {
    let repl = match e {
        Expr::Binary { lhs, .. } => Some((**lhs).clone()),
        Expr::Cast { expr, .. } => Some((**expr).clone()),
        Expr::Unary { op: UnOp::Neg | UnOp::Not, expr, .. } => Some((**expr).clone()),
        _ => None,
    };
    match repl {
        Some(r) => {
            *e = r;
            true
        }
        None => false,
    }
}
