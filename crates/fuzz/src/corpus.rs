//! The committed regression corpus.
//!
//! Every bug the fuzzer has flushed out leaves a minimal `.mc` repro in
//! `tests/corpus/` at the repository root. The files are ordinary MiniC
//! programs with a one-line provenance comment; [`replay_dir`] pushes each
//! through the full oracle stack, so the corpus doubles as a permanent
//! regression suite — a file that starts failing again means its fix
//! regressed.

use crate::oracle::{check_source, FailureKind};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Writes a repro into `dir` as `<name>.mc` with a provenance header.
/// Returns the path written.
pub fn write_repro(
    dir: &Path,
    name: &str,
    seed: u64,
    class_key: &str,
    src: &str,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.mc"));
    fs::write(&path, format!("// fuzz repro: seed {seed}, class {class_key}\n{src}"))?;
    Ok(path)
}

/// Replays every `.mc` file in `dir` (sorted by name) through the oracles.
/// Returns one `(path, verdict)` pair per file; an empty or missing corpus
/// directory is an error — replaying nothing must not look like passing.
pub fn replay_dir(dir: &Path) -> io::Result<Vec<(PathBuf, Result<(), FailureKind>)>> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "mc"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no .mc files in {}", dir.display()),
        ));
    }
    files
        .into_iter()
        .map(|p| {
            let src = fs::read_to_string(&p)?;
            Ok((p, check_source(&src)))
        })
        .collect()
}
